// Figure 1 reproduction: the three challenge scenarios.
//  (a) a true 0.005% regression that is barely visible at single-server
//      noise levels — FBDetect must catch it (it becomes detectable at the
//      subroutine level / fleet scale; see Figures 2-3 benches);
//  (b) a false positive from a cost shift — the cost-shift detector must
//      filter it;
//  (c) a false positive from a transient throughput dip — the went-away
//      detector must filter it.
// The bench constructs each scenario and prints the verdict of the relevant
// FBDetect stage next to the paper's expectation.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/core/cost_shift.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/fleet/scenario.h"
#include "src/tsdb/database.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);

DetectionConfig BenchConfig() {
  DetectionConfig config;
  config.threshold = 0.0005;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);
  return config;
}

TimeSeries SeriesFromValues(const std::vector<double>& values) {
  TimeSeries series;
  for (size_t i = 0; i < values.size(); ++i) {
    series.Append(static_cast<TimePoint>(i) * kTick, values[i]);
  }
  return series;
}

void ScenarioA() {
  std::printf("\n(a) True 0.005%% regression on a single noisy server\n");
  Rng rng(1);
  const std::vector<double> values = SimulateSingleServerSeries(400, 0.00005, rng);
  std::printf("    %s\n", Sparkline(values).c_str());
  std::printf("    single-server noise sd=%.4f vs regression 0.00005: invisible "
              "(paper: must be caught via variance reduction, see Fig. 2/3 benches)\n",
              SampleStdDev(values));
}

void ScenarioB() {
  std::printf("\n(b) False positive from a cost shift (code refactoring)\n");
  // Two same-class methods; at t*, 60%% of method_b's cost moves to method_a.
  TimeSeriesDatabase db;
  const DetectionConfig config = BenchConfig();
  const Duration total = config.windows.Total();
  const TimePoint shift_at = total - Hours(4);
  Rng rng(2);
  std::vector<double> a_values;
  std::vector<double> b_values;
  for (TimePoint t = 0; t < total; t += kTick) {
    const bool post = t >= shift_at;
    a_values.push_back(rng.Normal(post ? 0.0172 : 0.0100, 0.0004));
    b_values.push_back(rng.Normal(post ? 0.0048 : 0.0120, 0.0004));
    db.Write({"svc", MetricKind::kGcpu, "method_a", ""}, t, a_values.back());
    db.Write({"svc", MetricKind::kGcpu, "method_b", ""}, t, b_values.back());
  }
  std::printf("    method_a gCPU: %s\n", Sparkline(a_values).c_str());
  std::printf("    method_b gCPU: %s\n", Sparkline(b_values).c_str());

  // Stage 1: the change-point stage DOES flag method_a (as the paper says,
  // the rise looks like an obvious regression).
  const TimeSeries* a_series = db.Find({"svc", MetricKind::kGcpu, "method_a", ""});
  const WindowExtract windows = ExtractWindows(*a_series, total, config.windows);
  ChangePointStage stage(config);
  const auto candidate = stage.Detect({"svc", MetricKind::kGcpu, "method_a", ""}, windows);
  std::printf("    change-point stage flags method_a: %s\n",
              candidate.has_value() ? "YES" : "no");

  // Cost-shift detector: the class domain's total is flat -> filtered.
  class PairInfo : public CodeInfoProvider {
   public:
    bool Exists(const std::string&) const override { return true; }
    std::vector<std::string> CallersOf(const std::string&) const override { return {}; }
    std::string ClassOf(const std::string&) const override { return "Widget"; }
    std::vector<std::string> ClassMembers(const std::string&) const override {
      return {"method_a", "method_b"};
    }
    bool IsDescendant(const std::string&, const std::string&) const override { return false; }
  };
  PairInfo code_info;
  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<ClassDomainDetector>(&code_info));
  if (candidate.has_value()) {
    const CostShiftVerdict verdict = detector.Evaluate(*candidate);
    std::printf("    cost-shift detector verdict: %s (domain %s)\n",
                verdict.is_cost_shift ? "COST SHIFT -> filtered (correct)" : "kept (WRONG)",
                verdict.domain.c_str());
  }
}

void ScenarioC() {
  std::printf("\n(c) False positive from a transient throughput dip\n");
  const DetectionConfig config = BenchConfig();
  const Duration total = config.windows.Total();
  const TimePoint dip_start = total - Hours(5);
  const TimePoint dip_end = total - Hours(3);
  Rng rng(3);
  std::vector<double> values;
  for (TimePoint t = 0; t < total; t += kTick) {
    const bool dipped = t >= dip_start && t < dip_end;
    values.push_back(rng.Normal(dipped ? 70.0 : 120.0, 3.0));
  }
  std::printf("    throughput:    %s\n", Sparkline(values).c_str());
  const TimeSeries series = SeriesFromValues(values);
  const MetricId metric{"svc", MetricKind::kThroughput, "", ""};
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  const auto candidate = stage.Detect(metric, windows);
  std::printf("    change-point stage flags the dip: %s\n",
              candidate.has_value() ? "YES" : "no");
  if (candidate.has_value()) {
    const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(*candidate, 144);
    std::printf("    went-away detector verdict: %s (gone_away=%d)\n",
                verdict.keep ? "kept (WRONG)" : "TRANSIENT -> filtered (correct)",
                verdict.gone_away);
  }
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader(
      "Figure 1 — three challenges: tiny true regression, cost-shift FP, transient FP");
  fbdetect::ScenarioA();
  fbdetect::ScenarioB();
  fbdetect::ScenarioC();
  std::printf("\n");
  return 0;
}
