// Figure 7 reproduction: "catching the regression at the end".
//
// The historical window contains a brief spike; the true regression starts
// near the end of the analysis window at a LOWER level than the spike. The
// paper's first two went-away iterations mis-handled this (comparing against
// the spike window concludes the terminal regression recovered); the SAX
// validity rule of the third iteration ignores the spike's buckets (< 3% of
// historical points) and keeps the regression. We sweep spike height and
// regression level to chart the detector's behaviour.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);

DetectionConfig BenchConfig() {
  DetectionConfig config;
  config.threshold = 0.0005;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);
  return config;
}

struct Outcome {
  bool change_point = false;
  WentAwayVerdict verdict;
};

Outcome RunCase(double spike_level, double regression_level, bool draw, uint64_t seed) {
  const DetectionConfig config = BenchConfig();
  const Duration total = config.windows.Total();
  const TimePoint spike_start = Hours(10);
  const TimePoint spike_end = Hours(11);  // ~2% of the historical window.
  const TimePoint regression_at = total - Hours(5);
  Rng rng(seed);
  TimeSeries series;
  std::vector<double> values;
  for (TimePoint t = 0; t < total; t += kTick) {
    double level = 0.050;
    if (t >= spike_start && t < spike_end) {
      level = spike_level;
    } else if (t >= regression_at) {
      level = regression_level;
    }
    values.push_back(rng.Normal(level, 0.0008));
    series.Append(t, values.back());
  }
  if (draw) {
    std::printf("  %s\n", Sparkline(values).c_str());
  }
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  Outcome outcome;
  const auto candidate =
      ChangePointStage(config).Detect({"svc", MetricKind::kGcpu, "sub", ""}, windows);
  outcome.change_point = candidate.has_value();
  if (candidate) {
    outcome.verdict = WentAwayDetector(config).Evaluate(*candidate, 144);
  }
  return outcome;
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("Figure 7 — regression at the end must survive a historical spike");

  std::printf("\nThe paper's exact scenario (spike 0.080, regression 0.062, baseline 0.050):\n");
  const Outcome paper_case = RunCase(0.080, 0.062, /*draw=*/true, 1);
  std::printf("  change point found: %s; went-away verdict: %s\n",
              paper_case.change_point ? "YES" : "no",
              paper_case.verdict.keep ? "KEPT (correct)" : "filtered (WRONG)");

  std::printf("\nSweep of spike height x regression level (K=kept, f=filtered, .=no CP):\n");
  std::printf("%-14s", "spike\\regr");
  const std::vector<double> regressions = {0.054, 0.058, 0.062, 0.070};
  for (double r : regressions) {
    std::printf("%-10.3f", r);
  }
  std::printf("\n");
  uint64_t seed = 10;
  for (double spike : {0.060, 0.080, 0.100, 0.120}) {
    std::printf("%-14.3f", spike);
    for (double regression : regressions) {
      const Outcome outcome = RunCase(spike, regression, false, seed++);
      const char* cell = !outcome.change_point ? "." : (outcome.verdict.keep ? "K" : "f");
      std::printf("%-10s", cell);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: K across the board — the spike's SAX buckets are invalid\n"
              "(<3%% of historical points), so terminal regressions are kept regardless\n"
              "of how high the historical spike was.\n");
  return 0;
}
