// §6.6 reproduction: PyPerf profiling overhead (google-benchmark).
//
// The paper measures a CPU-intensive micro-benchmark (serialize a large
// structure, compress it, write it out) with and without PyPerf sampling:
// no observable overhead at 1 sample / 30 min, ~0.8% throughput loss at the
// worst-case 1 sample / second.
//
// Substitution (DESIGN.md §4): we cannot attach a real eBPF probe here, so
// the "probe cost" is the simulated interpreter snapshot + PyPerf merge —
// the same walk-the-VCS + reconstruct work the eBPF program performs. The
// workload is a synthetic serialize+compress loop. Benchmarks report work
// throughput at sampling rates from never to once per iteration, so the
// overhead-vs-rate shape is directly comparable.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/profiling/pyperf.h"

namespace fbdetect {
namespace {

// A serialize-and-compress-like CPU workload: builds a byte buffer from a
// structure and runs an RLE-ish compression pass over it.
class SerializeCompressWorkload {
 public:
  SerializeCompressWorkload() {
    records_.resize(512);
    uint64_t state = 12345;
    for (auto& record : records_) {
      for (auto& field : record) {
        field = SplitMix64(state);
      }
    }
    buffer_.reserve(records_.size() * 8 * 10);
  }

  uint64_t RunOnce() {
    // "Serialize": varint-encode every field.
    buffer_.clear();
    for (const auto& record : records_) {
      for (uint64_t field : record) {
        uint64_t v = field;
        while (v >= 0x80) {
          buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
          v >>= 7;
        }
        buffer_.push_back(static_cast<uint8_t>(v));
      }
    }
    // "Compress": run-length + rolling checksum pass.
    uint64_t checksum = 1469598103934665603ULL;
    size_t i = 0;
    while (i < buffer_.size()) {
      size_t run = 1;
      while (i + run < buffer_.size() && buffer_[i + run] == buffer_[i] && run < 255) {
        ++run;
      }
      checksum = (checksum ^ buffer_[i]) * 1099511628211ULL + run;
      i += run;
    }
    return checksum;
  }

 private:
  std::vector<std::array<uint64_t, 8>> records_;
  std::vector<uint8_t> buffer_;
};

// Runs the workload; every `sample_every` iterations the profiler takes one
// snapshot and performs the PyPerf merge. sample_every == 0 disables
// profiling entirely.
void BM_WorkloadWithSampling(benchmark::State& state) {
  const int64_t sample_every = state.range(0);
  SerializeCompressWorkload workload;
  SimulatedInterpreterProcess::Options options;
  SimulatedInterpreterProcess process(options, 31337);
  int64_t iteration = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= workload.RunOnce();
    ++iteration;
    if (sample_every > 0 && iteration % sample_every == 0) {
      const InterpreterSnapshot snapshot = process.Sample();
      bool torn = false;
      const std::vector<MergedFrame> merged = MergeStacks(snapshot, &torn);
      benchmark::DoNotOptimize(merged.size());
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(sample_every == 0
                     ? "no profiling"
                     : "sample every " + std::to_string(sample_every) + " iterations");
}

BENCHMARK(BM_WorkloadWithSampling)
    ->Arg(0)      // Baseline: profiling off.
    ->Arg(10000)  // ~1 sample / 30 min equivalent: negligible.
    ->Arg(1000)
    ->Arg(100)    // ~1 sample / s equivalent for this workload.
    ->Arg(10)     // Far beyond production rates; shows the scaling.
    ->Unit(benchmark::kMicrosecond);

// The probe cost in isolation (one snapshot + merge).
void BM_PyPerfSnapshotAndMerge(benchmark::State& state) {
  SimulatedInterpreterProcess::Options options;
  SimulatedInterpreterProcess process(options, 7);
  for (auto _ : state) {
    const InterpreterSnapshot snapshot = process.Sample();
    bool torn = false;
    benchmark::DoNotOptimize(MergeStacks(snapshot, &torn).size());
  }
}

BENCHMARK(BM_PyPerfSnapshotAndMerge);

}  // namespace
}  // namespace fbdetect

BENCHMARK_MAIN();
