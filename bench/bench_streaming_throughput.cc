// Incremental streaming scan harness (DESIGN §14). Writes
// BENCH_streaming.json.
//
// Four measurements:
//   1. Gated vs batch periodic rescan at a 1% dirty-series rate: one shared
//      database, per round append one fresh point to 1% of the series and
//      re-run detection at an advanced as_of on (a) a kBatch pipeline (the
//      oracle, re-evaluating every series) and (b) a kGated pipeline
//      (re-evaluating dirty series, replaying cached verdicts for the rest).
//      The acceptance bar (checked off-smoke) is >= 5x batch/gated.
//   2. Whole-run short-circuit cost: a gated RunAt over an unchanged
//      database, nanoseconds per call.
//   3. Append-observer overhead: the same WriteBatch ingest with and without
//      the streaming DetectorStateStore wired as the database's observer;
//      the delta is the amortized per-point cost of the rolling moments +
//      online CUSUM + BOCPD update.
//   4. Ingest-to-candidate latency: step regressions injected mid-stream;
//      the streaming alert's triggered_at minus the step time, in simulated
//      seconds, against the rerun_interval/2 expected latency of the
//      periodic scan.
//
// `--smoke` shrinks every dimension so CI can exercise the full harness in
// seconds; the JSON notes which mode produced it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/core/detector_state.h"
#include "src/core/pipeline.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

PipelineOptions DetectOptions(ScanMode mode) {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(3);
  options.scan_threads = 1;
  options.scan_mode = mode;
  return options;
}

std::vector<InternedMetricId> MakeSeries(TimeSeriesDatabase& db, size_t count) {
  std::vector<InternedMetricId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(db.Intern(
        MetricId{"svc", MetricKind::kGcpu, "subroutine_" + std::to_string(i), ""}));
  }
  return ids;
}

// Noisy history for every series over (0, end], one value per tick.
void IngestHistory(TimeSeriesDatabase& db, const std::vector<InternedMetricId>& ids,
                   TimePoint end, uint64_t seed) {
  Rng rng(seed);
  WriteBatch batch(&db);
  for (const InternedMetricId& id : ids) {
    for (TimePoint t = kTick; t <= end; t += kTick) {
      batch.Add(id, t, rng.Normal(0.05, 0.002));
      if (batch.point_count() >= 8192) {
        batch.Commit();
      }
    }
  }
  batch.Commit();
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  using namespace fbdetect;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }

  PrintHeader(std::string("Incremental streaming scan: gated re-runs and per-point state") +
              (smoke ? " [smoke]" : ""));

  // --- 1. Gated vs batch periodic rescan at 1% dirty ---------------------
  const size_t num_series = smoke ? 1000 : 10000;
  const size_t dirty_per_round = std::max<size_t>(1, num_series / 100);
  const int rounds = smoke ? 3 : 6;
  // First run at T0; clean series keep data through T0 + rounds ticks so an
  // advancing as_of never makes them look early-ended (which would change
  // what the batch oracle measures).
  const TimePoint first_run = Hours(31);
  const TimePoint history_end = first_run + rounds * kTick;

  std::printf("\n[1] periodic rescan: %zu series, %zu dirty per round (%.1f%%), %d rounds\n",
              num_series, dirty_per_round,
              100.0 * static_cast<double>(dirty_per_round) / static_cast<double>(num_series),
              rounds);

  TimeSeriesDatabase db;
  const std::vector<InternedMetricId> ids = MakeSeries(db, num_series);
  IngestHistory(db, ids, history_end, /*seed=*/42);

  Pipeline batch(&db, nullptr, nullptr, DetectOptions(ScanMode::kBatch));
  Pipeline gated(&db, nullptr, nullptr, DetectOptions(ScanMode::kGated));

  // Warm-up run: both pipelines see every series dirty; the gated pipeline
  // fills its verdict cache. Untimed.
  batch.RunAt("svc", first_run);
  gated.RunAt("svc", first_run);

  Rng dirty_rng(7);
  double batch_ms = 0.0;
  double gated_ms = 0.0;
  for (int round = 1; round <= rounds; ++round) {
    const TimePoint as_of = first_run + round * kTick;
    // Touch the round's 1% slice (rotating so rounds do not reuse one slice).
    WriteBatch touch(&db);
    const size_t first = (static_cast<size_t>(round) * dirty_per_round) % num_series;
    for (size_t i = 0; i < dirty_per_round; ++i) {
      touch.Add(ids[(first + i) % num_series], history_end + round * kTick,
                dirty_rng.Normal(0.05, 0.002));
    }
    touch.Commit();

    const auto batch_start = std::chrono::steady_clock::now();
    batch.RunAt("svc", as_of);
    batch_ms += MillisSince(batch_start);

    const auto gated_start = std::chrono::steady_clock::now();
    gated.RunAt("svc", as_of);
    gated_ms += MillisSince(gated_start);
  }
  const double batch_per_run = batch_ms / rounds;
  const double gated_per_run = gated_ms / rounds;
  const double speedup = batch_per_run / gated_per_run;
  std::printf("    batch  (re-evaluate all):  %8.2f ms/run\n", batch_per_run);
  std::printf("    gated  (1%% re-evaluated):  %8.2f ms/run\n", gated_per_run);
  std::printf("    speedup (batch/gated):     %8.2fx\n", speedup);
  if (!smoke) {
    FBD_CHECK(speedup >= 5.0);  // The PR's acceptance bar.
  }

  // --- 2. Whole-run short-circuit cost -----------------------------------
  // No writes since the last gated run: the run is skipped wholesale.
  const int short_circuit_reps = 1000;
  const auto sc_start = std::chrono::steady_clock::now();
  for (int i = 0; i < short_circuit_reps; ++i) {
    gated.RunAt("svc", first_run + (rounds + 1) * kTick);
  }
  const double short_circuit_ns =
      MillisSince(sc_start) * 1e6 / static_cast<double>(short_circuit_reps);
  std::printf("\n[2] short-circuited re-run (unchanged generation): %.0f ns/run\n",
              short_circuit_ns);

  // --- 3. Append-observer overhead ---------------------------------------
  const size_t obs_series = smoke ? 100 : 500;
  const size_t obs_points = smoke ? 100 : 400;
  const size_t obs_total = obs_series * obs_points;
  std::printf("\n[3] append-observer overhead: %zu series x %zu points\n", obs_series,
              obs_points);

  const auto timed_ingest = [&](TimeSeriesDatabase& target, DetectorStateStore* store) {
    target.SetAppendObserver(store);
    const std::vector<InternedMetricId> keys = MakeSeries(target, obs_series);
    const auto start = std::chrono::steady_clock::now();
    IngestHistory(target, keys, static_cast<TimePoint>(obs_points) * kTick, /*seed=*/11);
    const double ms = MillisSince(start);
    target.SetAppendObserver(nullptr);
    FBD_CHECK(target.total_points() == obs_total);
    return ms;
  };

  TimeSeriesDatabase plain_db;
  const double plain_ms = timed_ingest(plain_db, nullptr);
  TimeSeriesDatabase observed_db;
  DetectorStateStore store(DetectorStateStore::Mode::kStreaming);
  const double observed_ms = timed_ingest(observed_db, &store);
  FBD_CHECK(store.series_count() == obs_series);
  const double per_point_ns =
      std::max(0.0, (observed_ms - plain_ms) * 1e6 / static_cast<double>(obs_total));
  const double plain_mpps = static_cast<double>(obs_total) / (plain_ms * 1000.0);
  const double observed_mpps = static_cast<double>(obs_total) / (observed_ms * 1000.0);
  std::printf("    without observer: %8.1f ms  %6.2f Mpts/s\n", plain_ms, plain_mpps);
  std::printf("    with streaming state: %4.1f ms  %6.2f Mpts/s\n", observed_ms,
              observed_mpps);
  std::printf("    per-point state update: %.0f ns\n", per_point_ns);

  // --- 4. Ingest-to-candidate latency ------------------------------------
  const size_t lat_series = smoke ? 50 : 200;
  const size_t lat_baseline_points = 300;  // > CUSUM baseline of 64.
  const size_t lat_post_points = 50;
  const TimePoint step_at = static_cast<TimePoint>(lat_baseline_points + 1) * kTick;
  std::printf("\n[4] ingest-to-candidate latency: %zu series, 20%% step at t=%lld\n",
              lat_series, static_cast<long long>(step_at));

  TimeSeriesDatabase lat_db;
  DetectorStateStore lat_store(DetectorStateStore::Mode::kStreaming);
  lat_db.SetAppendObserver(&lat_store);
  const std::vector<InternedMetricId> lat_ids = MakeSeries(lat_db, lat_series);
  Rng lat_rng(5);
  {
    WriteBatch lat_batch(&lat_db);
    for (size_t p = 0; p < lat_baseline_points + lat_post_points; ++p) {
      const TimePoint t = static_cast<TimePoint>(p + 1) * kTick;
      for (size_t s = 0; s < lat_series; ++s) {
        const double base = lat_rng.Normal(0.05, 0.002);
        lat_batch.Add(lat_ids[s], t, t >= step_at ? base * 1.2 : base);
      }
      lat_batch.Commit();  // Per-tick commits: alerts carry the tick's timestamp.
    }
  }
  lat_db.SetAppendObserver(nullptr);
  const std::vector<StreamingAlert> alerts = lat_store.DrainAlerts();
  double latency_sum_s = 0.0;
  size_t alerted = 0;
  for (const StreamingAlert& alert : alerts) {
    if (alert.triggered_at >= step_at) {
      latency_sum_s += static_cast<double>(alert.triggered_at - step_at);
      ++alerted;
    }
  }
  const double mean_latency_s = alerted > 0 ? latency_sum_s / static_cast<double>(alerted) : -1.0;
  const double periodic_bound_s = static_cast<double>(Hours(3)) / 2.0;
  std::printf("    alerted %zu/%zu series, mean latency %.0f s (periodic bound: %.0f s)\n",
              alerted, lat_series, mean_latency_s, periodic_bound_s);
  FBD_CHECK(alerted > 0);

  // --- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_streaming.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"gated_rescan\": {\n");
  std::fprintf(json, "    \"series\": %zu, \"dirty_per_round\": %zu, \"rounds\": %d,\n",
               num_series, dirty_per_round, rounds);
  std::fprintf(json, "    \"batch_ms_per_run\": %.3f,\n", batch_per_run);
  std::fprintf(json, "    \"gated_ms_per_run\": %.3f,\n", gated_per_run);
  std::fprintf(json, "    \"speedup\": %.2f\n", speedup);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"short_circuit_ns_per_run\": %.0f,\n", short_circuit_ns);
  std::fprintf(json, "  \"append_observer\": {\n");
  std::fprintf(json, "    \"points\": %zu,\n", obs_total);
  std::fprintf(json, "    \"plain_mpps\": %.3f, \"observed_mpps\": %.3f,\n", plain_mpps,
               observed_mpps);
  std::fprintf(json, "    \"per_point_overhead_ns\": %.0f\n", per_point_ns);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"ingest_to_candidate\": {\n");
  std::fprintf(json, "    \"stepped_series\": %zu, \"alerted_series\": %zu,\n", lat_series,
               alerted);
  std::fprintf(json, "    \"mean_latency_s\": %.1f, \"periodic_bound_s\": %.1f\n",
               mean_latency_s, periodic_bound_s);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_streaming.json\n");
  return 0;
}
