// Single-thread speedup of the simd.h kernel table over its scalar oracle —
// the four vectorized hot-loop families of the scan/funnel path:
//
//   pearson   — sum_pair + centered_moments (AlignedPearson / correlation)
//   som       — squared_distances (BMU search over the flat weight buffer)
//   sanitizer — classify_values + min_positive_gap (verdict/grid pass)
//   gorilla   — full chunk decode: the two-phase decoder (word-at-a-time
//               parse + batch prefix reconstruction + bulk append) against a
//               verbatim copy of the pre-rework bit-by-bit decoder. The
//               64-bit prefix kernels themselves delegate to scalar on AVX2
//               (in-register i64 scans measured slower than the 1-add/cycle
//               scalar chain), so the family's speedup lives in the decode
//               restructuring and is measured there.
//
// Every kernel is first checked bit-identical against the scalar oracle on
// the bench inputs, then timed (min of repetitions, fixed element count).
// Results land in the "kernels" section of BENCH_simd.json. Off --smoke,
// when a vector ISA is available, each family's dominant measurement must
// beat its oracle by >= 2x (the PR's acceptance bar); the forced-scalar leg
// (FBD_DISABLE_SIMD=1) still runs the identity checks and the decode
// comparison (the two-phase decode needs no vector ISA to win).
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/simd.h"
#include "src/tsdb/gorilla.h"

namespace fbdetect {
namespace {

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Verbatim copy of the pre-rework decoder — bit-by-bit reads through the
// public BitReader, point-by-point appends — kept here as the measurement
// oracle for the two-phase decode.
void LegacyDecodeInto(const CompressedTimeSeries& chunk, TimeSeries& out) {
  if (chunk.empty()) {
    return;
  }
  BitReader reader(chunk.bytes(), chunk.bit_count());
  TimePoint timestamp = static_cast<TimePoint>(reader.ReadBits(64));
  uint64_t value_bits = reader.ReadBits(64);
  out.Append(timestamp, std::bit_cast<double>(value_bits));

  Duration delta = 0;
  int leading = 0;
  int trailing = 0;
  for (size_t i = 1; i < chunk.size(); ++i) {
    int64_t dod = 0;
    if (!reader.ReadBit()) {
      dod = 0;
    } else if (!reader.ReadBit()) {
      dod = UnZigZag(reader.ReadBits(7));
    } else if (!reader.ReadBit()) {
      dod = UnZigZag(reader.ReadBits(9));
    } else if (!reader.ReadBit()) {
      dod = UnZigZag(reader.ReadBits(12));
    } else {
      dod = UnZigZag(reader.ReadBits(64));
    }
    delta += dod;
    timestamp += delta;
    if (reader.ReadBit()) {
      if (reader.ReadBit()) {
        leading = static_cast<int>(reader.ReadBits(5));
        int block_bits = static_cast<int>(reader.ReadBits(6));
        if (block_bits == 0) {
          block_bits = 64;
        }
        trailing = 64 - leading - block_bits;
        value_bits ^= reader.ReadBits(block_bits) << trailing;
      } else {
        const int block_bits = 64 - leading - trailing;
        value_bits ^= reader.ReadBits(block_bits) << trailing;
      }
    }
    out.Append(timestamp, std::bit_cast<double>(value_bits));
  }
}

using Clock = std::chrono::steady_clock;

// One timed measurement: runs `fn` `iters` times, returns best ns/element.
template <typename Fn>
double BestNsPerElement(size_t elements, int reps, int iters, const Fn& fn) {
  double best_ns = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        static_cast<double>(iters);
    best_ns = std::min(best_ns, ns);
  }
  return best_ns / static_cast<double>(elements);
}

bool ContractEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b) ||
         (std::isnan(a) && std::isnan(b));
}

struct Entry {
  const char* kernel;
  double scalar_ns;  // Per element.
  double simd_ns;    // Per element (the Active() table).
  double speedup() const { return scalar_ns / simd_ns; }
};

// Keep optimizers from deleting the timed loops.
volatile double g_sink = 0.0;

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  using namespace fbdetect;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }

  PrintHeader(std::string("SIMD kernels vs scalar oracles (single thread)") +
              (smoke ? " [smoke]" : ""));
  const simd::Kernels& active = simd::Active();
  const simd::Kernels& scalar = simd::Scalar();
  const bool vectorized = &active != &scalar;
  std::printf("active ISA: %s%s\n", simd::IsaName(simd::ActiveIsa()),
              vectorized ? "" : " (scalar: identity checks only, speedups = 1x)");

  // A funnel-realistic span: a 10-day window at 10-minute ticks is 1440
  // points; 4096 keeps each timed call long enough to measure while staying
  // resident in L1.
  const size_t kN = 4096;
  const int kReps = smoke ? 3 : 7;
  const int kIters = smoke ? 50 : 400;

  Rng rng(4242);
  std::vector<double> x(kN);
  std::vector<double> y(kN);
  for (size_t i = 0; i < kN; ++i) {
    x[i] = rng.Uniform(-100.0, 100.0);
    y[i] = rng.Uniform(-100.0, 100.0);
  }

  std::vector<Entry> entries;

  // --- pearson: sum_pair + centered_moments ------------------------------
  {
    double sx_a = 0, sy_a = 0, sx_b = 0, sy_b = 0;
    active.sum_pair(x.data(), y.data(), kN, &sx_a, &sy_a);
    scalar.sum_pair(x.data(), y.data(), kN, &sx_b, &sy_b);
    FBD_CHECK(ContractEqual(sx_a, sx_b) && ContractEqual(sy_a, sy_b));
    const double simd_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      double sx = 0, sy = 0;
      active.sum_pair(x.data(), y.data(), kN, &sx, &sy);
      g_sink = sx + sy;
    });
    const double scalar_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      double sx = 0, sy = 0;
      scalar.sum_pair(x.data(), y.data(), kN, &sx, &sy);
      g_sink = sx + sy;
    });
    entries.push_back({"sum_pair", scalar_ns, simd_ns});

    const double mx = sx_b / static_cast<double>(kN);
    const double my = sy_b / static_cast<double>(kN);
    double m_a[3], m_b[3];
    active.centered_moments(x.data(), y.data(), kN, mx, my, &m_a[0], &m_a[1], &m_a[2]);
    scalar.centered_moments(x.data(), y.data(), kN, mx, my, &m_b[0], &m_b[1], &m_b[2]);
    for (int i = 0; i < 3; ++i) {
      FBD_CHECK(ContractEqual(m_a[i], m_b[i]));
    }
    const double cm_simd_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      double sxy = 0, sxx = 0, syy = 0;
      active.centered_moments(x.data(), y.data(), kN, mx, my, &sxy, &sxx, &syy);
      g_sink = sxy + sxx + syy;
    });
    const double cm_scalar_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      double sxy = 0, sxx = 0, syy = 0;
      scalar.centered_moments(x.data(), y.data(), kN, mx, my, &sxy, &sxx, &syy);
      g_sink = sxy + sxx + syy;
    });
    entries.push_back({"centered_moments", cm_scalar_ns, cm_simd_ns});
  }

  // --- som: squared_distances over a funnel-sized flat map ---------------
  {
    // L = ceil(600^(1/4)) = 5 gives a 25-cell map in the funnel; a 256-cell
    // map with 16 dims represents the larger cohorts and times cleanly.
    const size_t kCells = 256;
    const size_t kDims = 16;
    std::vector<double> weights(kCells * kDims);
    std::vector<double> item(kDims);
    for (double& w : weights) {
      w = rng.Uniform(-1.0, 1.0);
    }
    for (double& v : item) {
      v = rng.Uniform(-1.0, 1.0);
    }
    std::vector<double> d2_a(kCells), d2_b(kCells);
    active.squared_distances(weights.data(), kCells, kDims, item.data(), d2_a.data());
    scalar.squared_distances(weights.data(), kCells, kDims, item.data(), d2_b.data());
    for (size_t c = 0; c < kCells; ++c) {
      FBD_CHECK(ContractEqual(d2_a[c], d2_b[c]));
    }
    const size_t elements = kCells * kDims;
    const double simd_ns = BestNsPerElement(elements, kReps, kIters, [&] {
      active.squared_distances(weights.data(), kCells, kDims, item.data(), d2_a.data());
      g_sink = d2_a[0];
    });
    const double scalar_ns = BestNsPerElement(elements, kReps, kIters, [&] {
      scalar.squared_distances(weights.data(), kCells, kDims, item.data(), d2_b.data());
      g_sink = d2_b[0];
    });
    entries.push_back({"squared_distances", scalar_ns, simd_ns});
  }

  // --- sanitizer: classify_values + min_positive_gap ---------------------
  {
    std::vector<double> values = x;
    values[kN / 3] = std::numeric_limits<double>::quiet_NaN();  // Mixed data.
    values[kN / 2] = -std::numeric_limits<double>::infinity();
    uint64_t nf_a = 0, neg_a = 0, nf_b = 0, neg_b = 0;
    active.classify_values(values.data(), kN, &nf_a, &neg_a);
    scalar.classify_values(values.data(), kN, &nf_b, &neg_b);
    FBD_CHECK(nf_a == nf_b && neg_a == neg_b);
    const double simd_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      uint64_t nf = 0, neg = 0;
      active.classify_values(values.data(), kN, &nf, &neg);
      g_sink = static_cast<double>(nf + neg);
    });
    const double scalar_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      uint64_t nf = 0, neg = 0;
      scalar.classify_values(values.data(), kN, &nf, &neg);
      g_sink = static_cast<double>(nf + neg);
    });
    entries.push_back({"classify_values", scalar_ns, simd_ns});

    std::vector<int64_t> stamps(kN);
    int64_t t = 0;
    for (int64_t& s : stamps) {
      t += static_cast<int64_t>(rng.NextUint64(3));  // Gaps 0..2: dirty grid.
      s = t;
    }
    FBD_CHECK(active.min_positive_gap(stamps.data(), kN) ==
              scalar.min_positive_gap(stamps.data(), kN));
    const double gap_simd_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      g_sink = static_cast<double>(active.min_positive_gap(stamps.data(), kN));
    });
    const double gap_scalar_ns = BestNsPerElement(kN, kReps, kIters, [&] {
      g_sink = static_cast<double>(scalar.min_positive_gap(stamps.data(), kN));
    });
    entries.push_back({"min_positive_gap", gap_scalar_ns, gap_simd_ns});
  }

  // --- gorilla: chunk decode, two-phase vs legacy bit-by-bit -------------
  {
    // Identity checks on the phase-2 prefix kernels (delegated to scalar on
    // AVX2, so these are trivially equal there — they still guard any future
    // ISA table that does provide vector scans).
    std::vector<int64_t> dods(kN);
    for (int64_t& d : dods) {
      d = static_cast<int64_t>(rng.NextUint64(17)) - 8;  // Realistic DoD range.
    }
    std::vector<int64_t> out_a(kN), out_b(kN);
    active.prefix_sum_i64(dods.data(), kN, 600, out_a.data());
    scalar.prefix_sum_i64(dods.data(), kN, 600, out_b.data());
    FBD_CHECK(out_a == out_b);
    std::vector<uint64_t> xors(kN);
    for (uint64_t& v : xors) {
      v = rng.NextUint64() & 0x000fffff00000000ull;  // XOR-block-shaped bits.
    }
    std::vector<double> dec_a(kN), dec_b(kN);
    const uint64_t seed = std::bit_cast<uint64_t>(1.25);
    active.prefix_xor_to_doubles(xors.data(), kN, seed, dec_a.data());
    scalar.prefix_xor_to_doubles(xors.data(), kN, seed, dec_b.data());
    for (size_t i = 0; i < kN; ++i) {
      FBD_CHECK(std::bit_cast<uint64_t>(dec_a[i]) == std::bit_cast<uint64_t>(dec_b[i]));
    }

    // The measured family win: decode a realistic chunk (mostly-regular
    // timestamps, sparsely-changing values) through the current two-phase
    // decoder vs the verbatim pre-rework bit-by-bit loop above.
    CompressedTimeSeries chunk;
    int64_t t = 0;
    double value = 100.0;
    for (size_t i = 0; i < kN; ++i) {
      t += 600 + (rng.NextUint64(50) == 0 ? static_cast<int64_t>(rng.NextUint64(30)) : 0);
      if (rng.NextUint64(10) < 3) {
        value += static_cast<double>(rng.NextUint64(1000)) / 1000.0 - 0.5;
      }
      chunk.Append(t, value);
    }
    TimeSeries legacy_out;
    LegacyDecodeInto(chunk, legacy_out);
    const TimeSeries new_out = chunk.Decode();
    FBD_CHECK(legacy_out.size() == new_out.size() && new_out.size() == kN);
    for (size_t i = 0; i < kN; ++i) {
      FBD_CHECK(legacy_out.timestamps()[i] == new_out.timestamps()[i]);
      FBD_CHECK(std::bit_cast<uint64_t>(legacy_out.values()[i]) ==
                std::bit_cast<uint64_t>(new_out.values()[i]));
    }
    const size_t decode_iters = smoke ? 5 : 50;
    const double new_ns = BestNsPerElement(kN, kReps, decode_iters, [&] {
      TimeSeries out;
      chunk.DecodeInto(out);
      g_sink = out.values().back();
    });
    const double legacy_ns = BestNsPerElement(kN, kReps, decode_iters, [&] {
      TimeSeries out;
      LegacyDecodeInto(chunk, out);
      g_sink = out.values().back();
    });
    entries.push_back({"gorilla_decode", legacy_ns, new_ns});
  }

  // --- Report ------------------------------------------------------------
  std::printf("\n%-24s %14s %14s %9s\n", "kernel", "scalar ns/elem", "simd ns/elem",
              "speedup");
  std::string json = "{\"n\": 4096, \"entries\": [";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("%-24s %14.3f %14.3f %8.2fx\n", e.kernel, e.scalar_ns, e.simd_ns,
                e.speedup());
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"kernel\": \"%s\", \"scalar_ns_per_elem\": %.3f, "
                  "\"simd_ns_per_elem\": %.3f, \"speedup\": %.2f}",
                  i == 0 ? "" : ", ", e.kernel, e.scalar_ns, e.simd_ns, e.speedup());
    json += buffer;
  }
  json += "]}";
  UpdateBenchSimdJson("kernels", json);

  // Acceptance bar: each family's dominant kernel >= 2x its oracle, single
  // thread, when a vector ISA is live. Smoke runs (shared CI machines, tiny
  // iteration counts) check identity only.
  if (vectorized && !smoke) {
    for (const char* dominant :
         {"centered_moments", "squared_distances", "classify_values", "gorilla_decode"}) {
      for (const Entry& e : entries) {
        if (std::string(e.kernel) == dominant) {
          FBD_CHECK(e.speedup() >= 2.0);
        }
      }
    }
  }
  return 0;
}
