// Robustness harness: detection quality and survival on dirty fleets.
//
// The paper's pipeline ingests telemetry from hundreds of thousands of hosts;
// at that scale collectors crash, clocks skew, counters wrap, and points
// arrive twice or out of order. This bench runs the same labelled scenario
// fleet at fault rates {0, 0.01, 0.05, 0.10} (FaultInjectorConfig::AllKinds:
// every kind at that per-point/per-epoch probability on 30% of series) and
// measures, per rate:
//   - precision/recall against injected ground truth (group-based matching,
//     same standard as bench_fpfn_accounting)
//   - quarantine totals: what the sanitizer refused to trust, and ingest-time
//     duplicate/out-of-order rejects reconciled against the injector ledger
//   - ingest and detection wall time (graceful degradation must not be paid
//     for on the clean path)
// Writes BENCH_robustness.json. `--smoke` shrinks the world for CI;
// `--telemetry-out <path>` enables the pipeline's telemetry registry and
// dumps its JSON export (last rate wins).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/pipeline.h"
#include "src/fleet/fault_injector.h"
#include "src/observe/telemetry_export.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

struct RateResult {
  double rate = 0.0;
  uint64_t injected_faults = 0;
  size_t reports = 0;
  size_t true_regressions = 0;
  size_t false_positives = 0;
  size_t injected = 0;
  size_t caught = 0;
  double precision = 0.0;
  double recall = 0.0;
  size_t dirty_series = 0;
  uint64_t windows_quarantined = 0;
  uint64_t dropped_duplicate = 0;
  uint64_t dropped_out_of_order = 0;
  uint64_t decode_failures = 0;
  uint64_t detector_exceptions = 0;
  double ingest_ms = 0.0;
  double detect_ms = 0.0;
};

RateResult RunAtRate(double rate, bool smoke, uint64_t seed,
                     const std::string& telemetry_out) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.service_name = "dirty_fleet";
  options.num_servers = smoke ? 200 : 2000;
  options.num_subroutines = smoke ? 40 : 120;
  options.duration = smoke ? Days(6) : Days(14);
  options.samples_per_bucket = smoke ? 1000000 : 3000000;
  options.num_step_regressions = smoke ? 6 : 12;
  options.num_gradual_regressions = smoke ? 1 : 3;
  options.num_cost_shifts = smoke ? 2 : 6;
  options.num_transients = smoke ? 8 : 30;
  options.num_seasonal_shifts = 1;
  options.num_background_commits = smoke ? 40 : 150;
  options.min_regression_magnitude = 0.08;
  options.max_regression_magnitude = 0.8;
  options.gcpu_only = true;
  options.seed = seed;  // Same seed at every rate: identical ground truth.
  const Scenario scenario = GenerateScenario(fleet, options);

  FaultInjector injector(FaultInjectorConfig::AllKinds(rate, seed + 1));
  FleetIngestOptions ingest;
  ingest.threads = 4;
  if (rate > 0.0) {
    ingest.fault_injector = &injector;
  }
  const auto ingest_start = std::chrono::steady_clock::now();
  fleet.Run(scenario.begin, scenario.end, ingest);
  const double ingest_ms = MillisSince(ingest_start);

  PipelineOptions pipeline_options;
  pipeline_options.detection.threshold = 0.0002;
  pipeline_options.detection.windows.historical = smoke ? Days(2) : Days(4);
  pipeline_options.detection.windows.analysis = Hours(4);
  pipeline_options.detection.windows.extended = Hours(2);
  pipeline_options.detection.rerun_interval = Hours(4);
  pipeline_options.scan_threads = 4;
  pipeline_options.telemetry.enabled = !telemetry_out.empty();

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, pipeline_options);
  const auto detect_start = std::chrono::steady_clock::now();
  const std::vector<Regression> reports = pipeline.RunPeriod(
      options.service_name,
      scenario.begin + pipeline_options.detection.windows.historical, scenario.end);
  const double detect_ms = MillisSince(detect_start);

  auto matches_event = [](const Regression& regression, const InjectedEvent& event) {
    if (std::llabs(static_cast<long long>(regression.change_time - event.start)) >
        static_cast<long long>(Days(1))) {
      return false;
    }
    if (!event.subroutine.empty() && regression.metric.entity == event.subroutine) {
      return true;
    }
    return event.commit_id >= 0 &&
           std::find(regression.candidate_root_causes.begin(),
                     regression.candidate_root_causes.end(),
                     event.commit_id) != regression.candidate_root_causes.end();
  };
  auto group_of = [&](const Regression& report) -> const RegressionGroup* {
    for (const RegressionGroup& group : pipeline.groups()) {
      for (const Regression& member : group.members) {
        if (member.metric == report.metric && member.change_time == report.change_time) {
          return &group;
        }
      }
    }
    return nullptr;
  };
  auto event_hit = [&](const Regression& report, const InjectedEvent& event) {
    if (matches_event(report, event)) {
      return true;
    }
    const RegressionGroup* group = group_of(report);
    if (group == nullptr) {
      return false;
    }
    for (const Regression& member : group->members) {
      if (matches_event(member, event)) {
        return true;
      }
    }
    return false;
  };

  RateResult result;
  result.rate = rate;
  result.injected_faults = injector.ledger().total();
  result.reports = reports.size();
  for (const Regression& report : reports) {
    bool is_true = false;
    for (const InjectedEvent& event : fleet.ground_truth()) {
      if (event.IsTrueRegression() && event_hit(report, event)) {
        is_true = true;
        break;
      }
    }
    if (is_true) {
      ++result.true_regressions;
    } else {
      ++result.false_positives;
    }
  }
  for (const InjectedEvent& event : fleet.ground_truth()) {
    if (!event.IsTrueRegression()) {
      continue;
    }
    ++result.injected;
    bool caught = false;
    for (const RegressionGroup& group : pipeline.groups()) {
      for (const Regression& member : group.members) {
        if (matches_event(member, event)) {
          caught = true;
          break;
        }
      }
      if (caught) {
        break;
      }
    }
    result.caught += caught ? 1 : 0;
  }
  result.precision = result.reports == 0
                         ? 1.0
                         : static_cast<double>(result.true_regressions) /
                               static_cast<double>(result.reports);
  result.recall = result.injected == 0
                      ? 1.0
                      : static_cast<double>(result.caught) /
                            static_cast<double>(result.injected);

  const QuarantineReport quarantine = pipeline.quarantine_report();
  result.dirty_series = quarantine.records.size();
  result.windows_quarantined = quarantine.total_windows_quarantined();
  result.dropped_duplicate = quarantine.total_dropped_duplicate();
  result.dropped_out_of_order = quarantine.total_dropped_out_of_order();
  result.decode_failures = quarantine.total_decode_failures();
  result.detector_exceptions = quarantine.total_exceptions();
  result.ingest_ms = ingest_ms;
  result.detect_ms = detect_ms;
  if (!telemetry_out.empty()) {
    // Each rate overwrites the file; the artifact holds the last (highest)
    // rate's attrition and quarantine counters.
    FBD_CHECK(WriteTelemetryFile(pipeline.telemetry(), telemetry_out));
  }
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_out = argv[++i];
    }
  }
  PrintHeader(std::string("robustness — precision/recall on dirty fleets") +
              (smoke ? " [smoke]" : ""));

  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  const uint64_t kSeed = 77;
  std::vector<RateResult> results;
  const std::vector<int> widths = {8, 10, 9, 7, 7, 11, 9, 8, 12, 11, 11};
  PrintRow({"rate", "faults", "reports", "TR", "FP", "recall", "prec", "dirty",
            "quarantined", "ingest_ms", "detect_ms"},
           widths);
  for (const double rate : rates) {
    RateResult r = RunAtRate(rate, smoke, kSeed, telemetry_out);
    PrintRow({FormatDouble(rate, "%.2f"), std::to_string(r.injected_faults),
              std::to_string(r.reports), std::to_string(r.true_regressions),
              std::to_string(r.false_positives), FormatPercent(r.recall, 1),
              FormatPercent(r.precision, 1), std::to_string(r.dirty_series),
              std::to_string(r.windows_quarantined), FormatDouble(r.ingest_ms, "%.0f"),
              FormatDouble(r.detect_ms, "%.0f")},
             widths);
    results.push_back(r);
  }

  // The clean run is the reference: faults must not invent regressions (the
  // false-positive count may only move by what the quarantine absorbed) and
  // recall may degrade only on series the injector actually touched.
  const RateResult& clean = results.front();
  std::printf("\nclean reference: %zu reports, recall %s, precision %s\n", clean.reports,
              FormatPercent(clean.recall, 1).c_str(),
              FormatPercent(clean.precision, 1).c_str());
  for (size_t i = 1; i < results.size(); ++i) {
    const RateResult& r = results[i];
    std::printf("  rate %.2f: recall %+0.1f pts, precision %+0.1f pts, "
                "%llu dup + %llu ooo rejected at ingest, %llu decode failures, "
                "%llu detector exceptions (all isolated)\n",
                r.rate, (r.recall - clean.recall) * 100.0,
                (r.precision - clean.precision) * 100.0,
                static_cast<unsigned long long>(r.dropped_duplicate),
                static_cast<unsigned long long>(r.dropped_out_of_order),
                static_cast<unsigned long long>(r.decode_failures),
                static_cast<unsigned long long>(r.detector_exceptions));
  }

  FILE* json = std::fopen("BENCH_robustness.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"rates\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    std::fprintf(json,
                 "    {\"rate\": %.2f, \"injected_faults\": %llu, \"reports\": %zu, "
                 "\"true_regressions\": %zu, \"false_positives\": %zu, "
                 "\"injected\": %zu, \"caught\": %zu, \"precision\": %.4f, "
                 "\"recall\": %.4f, \"dirty_series\": %zu, "
                 "\"windows_quarantined\": %llu, \"dropped_duplicate\": %llu, "
                 "\"dropped_out_of_order\": %llu, \"decode_failures\": %llu, "
                 "\"detector_exceptions\": %llu, \"ingest_ms\": %.1f, "
                 "\"detect_ms\": %.1f}%s\n",
                 r.rate, static_cast<unsigned long long>(r.injected_faults), r.reports,
                 r.true_regressions, r.false_positives, r.injected, r.caught, r.precision,
                 r.recall, r.dirty_series,
                 static_cast<unsigned long long>(r.windows_quarantined),
                 static_cast<unsigned long long>(r.dropped_duplicate),
                 static_cast<unsigned long long>(r.dropped_out_of_order),
                 static_cast<unsigned long long>(r.decode_failures),
                 static_cast<unsigned long long>(r.detector_exceptions), r.ingest_ms,
                 r.detect_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_robustness.json\n");
  return 0;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) { return fbdetect::Main(argc, argv); }
