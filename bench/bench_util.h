// Shared helpers for the reproduction harnesses: aligned table printing and
// simple sparkline rendering so each bench prints rows comparable to the
// paper's tables/figures.
#ifndef FBDETECT_BENCH_BENCH_UTIL_H_
#define FBDETECT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/stats/descriptive.h"

namespace fbdetect {

// Prints a row of columns padded to the given widths.
inline void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string FormatDouble(double value, const char* format = "%.4f") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return std::string(buffer);
}

inline std::string FormatPercent(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, value * 100.0);
  return std::string(buffer);
}

// Renders a series as a one-line unicode sparkline (8 levels), so the shapes
// of Figure-style results are visible in terminal output.
inline std::string Sparkline(std::span<const double> values, size_t max_width = 100) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return "";
  }
  const double lo = Min(values);
  const double hi = Max(values);
  const size_t stride = values.size() > max_width ? values.size() / max_width : 1;
  std::string line;
  for (size_t i = 0; i < values.size(); i += stride) {
    // Average the stride bucket for stability.
    double sum = 0.0;
    size_t count = 0;
    for (size_t j = i; j < values.size() && j < i + stride; ++j) {
      sum += values[j];
      ++count;
    }
    const double v = sum / static_cast<double>(count);
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * 7.999);
    }
    line += kLevels[level];
  }
  return line;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace fbdetect

#endif  // FBDETECT_BENCH_BENCH_UTIL_H_
