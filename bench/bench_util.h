// Shared helpers for the reproduction harnesses: aligned table printing and
// simple sparkline rendering so each bench prints rows comparable to the
// paper's tables/figures.
#ifndef FBDETECT_BENCH_BENCH_UTIL_H_
#define FBDETECT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/simd.h"
#include "src/stats/descriptive.h"

namespace fbdetect {

// Hardware/build metadata as a single-line JSON object. Every recorded
// number depends on the core count, the dispatched SIMD table, and the
// compiler, so results from different machines are only comparable when
// these fields match.
inline std::string HardwareJsonValue() {
  const char* disable_env = std::getenv("FBD_DISABLE_SIMD");
  const bool simd_disabled =
      disable_env != nullptr && disable_env[0] != '\0' &&
      !(disable_env[0] == '0' && disable_env[1] == '\0');
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"cores\": %u, \"simd_active\": \"%s\", \"simd_best\": \"%s\", "
                "\"simd_disabled_by_env\": %s, \"compiler\": \"%s\"}",
                std::thread::hardware_concurrency(),
                simd::IsaName(simd::ActiveIsa()),
                simd::IsaName(simd::BestAvailableIsa()),
                simd_disabled ? "true" : "false",
#if defined(__clang__)
                "clang " __clang_version__
#else
                "gcc " __VERSION__
#endif
  );
  return std::string(buffer);
}

// Emits the "hardware" metadata member into a BENCH_*.json stream (no
// trailing comma or newline).
inline void WriteHardwareJson(std::FILE* json, const char* indent = "  ") {
  std::fprintf(json, "%s\"hardware\": %s", indent, HardwareJsonValue().c_str());
}

// BENCH_simd.json collects the SIMD/multicore rig's results across several
// binaries: the kernel micro-bench owns "kernels", and each --threads-sweep
// bench owns its own section. The file keeps exactly one top-level member
// per line ('  "name": <single-line value>'), which lets this
// read-modify-write helper re-emit the other binaries' sections verbatim.
// "hardware" is refreshed on every update.
inline void UpdateBenchSimdJson(const std::string& section, const std::string& value) {
  const char* path = "BENCH_simd.json";
  std::vector<std::pair<std::string, std::string>> sections;
  sections.emplace_back("hardware", HardwareJsonValue());
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.compare(0, 3, "  \"") != 0) {
        continue;  // Braces or foreign formatting.
      }
      const size_t name_end = line.find('"', 3);
      size_t value_begin = line.find(": ", name_end == std::string::npos ? 3 : name_end);
      if (name_end == std::string::npos || value_begin == std::string::npos) {
        continue;
      }
      value_begin += 2;
      std::string name = line.substr(3, name_end - 3);
      std::string existing = line.substr(value_begin);
      if (!existing.empty() && existing.back() == ',') {
        existing.pop_back();
      }
      if (name == "hardware" || name == section) {
        continue;  // Superseded below.
      }
      sections.emplace_back(std::move(name), std::move(existing));
    }
  }
  sections.emplace_back(section, value);
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second
        << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "}\n";
  std::printf("\nupdated BENCH_simd.json section \"%s\"\n", section.c_str());
}

// Formats a --threads-sweep curve as a single-line JSON array for
// UpdateBenchSimdJson: per-thread-count wall time plus speedup vs 1 thread.
inline std::string ThreadsCurveJson(const std::vector<int>& threads,
                                    const std::vector<double>& ms) {
  std::string curve = "[";
  char buffer[128];
  for (size_t i = 0; i < threads.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"threads\": %d, \"ms\": %.2f, \"speedup_vs_1\": %.3f}",
                  i == 0 ? "" : ", ", threads[i], ms[i], ms[0] / ms[i]);
    curve += buffer;
  }
  curve += "]";
  return curve;
}

// Prints a row of columns padded to the given widths.
inline void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string FormatDouble(double value, const char* format = "%.4f") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return std::string(buffer);
}

inline std::string FormatPercent(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, value * 100.0);
  return std::string(buffer);
}

// Renders a series as a one-line unicode sparkline (8 levels), so the shapes
// of Figure-style results are visible in terminal output.
inline std::string Sparkline(std::span<const double> values, size_t max_width = 100) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return "";
  }
  const double lo = Min(values);
  const double hi = Max(values);
  const size_t stride = values.size() > max_width ? values.size() / max_width : 1;
  std::string line;
  for (size_t i = 0; i < values.size(); i += stride) {
    // Average the stride bucket for stability.
    double sum = 0.0;
    size_t count = 0;
    for (size_t j = i; j < values.size() && j < i + stride; ++j) {
      sum += values[j];
      ++count;
    }
    const double v = sum / static_cast<double>(count);
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * 7.999);
    }
    line += kLevels[level];
  }
  return line;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace fbdetect

#endif  // FBDETECT_BENCH_BENCH_UTIL_H_
