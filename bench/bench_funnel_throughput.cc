// Post-scan funnel throughput harness for the fingerprint/indexed-dedup
// refactor.
//
// Three measurements, written to BENCH_funnel.json:
//   1. Single-thread funnel pass (merger -> SOMDedup -> PairwiseDedup) over
//      synthetic survivor batches: the pre-refactor string-recomputing
//      funnel vs today's fingerprint-once funnel. The refactor must be
//      >= 2x faster.
//   2. Thread scaling of the new funnel at scan_threads 1/2/4/8 (outputs
//      are byte-identical across thread counts; checked).
//   3. PairwiseDedup ingest scaling in the number of existing groups
//      (G in {64, 256, 1024}): the all-pairs legacy scan re-tokenizes every
//      member per candidate and scales linearly in G; the token-hash
//      inverted index prunes to the handful of groups that can actually
//      pass the merge rule.
//
// Everything in namespace `legacy` below is the pre-change implementation,
// reconstructed verbatim from the seed commit (git show <seed>:src/...):
// string-materializing 2/3-grams and TF-IDF, hash-map timestamp alignment +
// PearsonCorrelation, the nested-vector SOM, the string-keyed merger, and
// the all-pairs pairwise scan. Output consistency between the legacy and
// new funnels is asserted on robust artifacts (survivor counts, group
// counts, representative metric sets) rather than raw doubles: the hashed
// TF-IDF accumulates bucket sums in sorted-hash order instead of
// unordered_map order, which can move embeddings by ulps.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/core/fingerprint.h"
#include "src/core/pairwise_dedup.h"
#include "src/core/same_regression_merger.h"
#include "src/core/som_dedup.h"
#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/fourier.h"
#include "src/stats/text.h"

namespace fbdetect {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

namespace legacy {

uint64_t HashGram(const std::string& gram) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : gram) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::vector<std::string> GramsOf(std::string_view text) {
  std::vector<std::string> grams = CharNgrams(text, 2);
  std::vector<std::string> trigrams = CharNgrams(text, 3);
  grams.insert(grams.end(), trigrams.begin(), trigrams.end());
  return grams;
}

// Pre-refactor string-keyed TF-IDF hasher.
class TfIdf {
 public:
  explicit TfIdf(size_t dimensions) : dimensions_(dimensions) {}

  void Fit(const std::vector<std::string>& corpus) {
    corpus_size_ = corpus.size();
    document_frequency_.clear();
    for (const std::string& document : corpus) {
      std::unordered_set<std::string> seen;
      for (std::string& gram : GramsOf(document)) {
        seen.insert(std::move(gram));
      }
      for (const std::string& gram : seen) {
        ++document_frequency_[gram];
      }
    }
  }

  std::vector<double> Embed(std::string_view text) const {
    std::vector<double> embedding(dimensions_, 0.0);
    std::unordered_map<std::string, double> counts;
    for (std::string& gram : GramsOf(text)) {
      counts[std::move(gram)] += 1.0;
    }
    for (const auto& [gram, count] : counts) {
      double weight = count;
      if (corpus_size_ > 0) {
        const auto it = document_frequency_.find(gram);
        const double df = it != document_frequency_.end() ? static_cast<double>(it->second) : 0.0;
        weight *= std::log((1.0 + static_cast<double>(corpus_size_)) / (1.0 + df)) + 1.0;
      }
      embedding[HashGram(gram) % dimensions_] += weight;
    }
    double norm = 0.0;
    for (double v : embedding) {
      norm += v * v;
    }
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (double& v : embedding) {
        v /= norm;
      }
    }
    return embedding;
  }

 private:
  size_t dimensions_;
  size_t corpus_size_ = 0;
  std::unordered_map<std::string, size_t> document_frequency_;
};

// Pre-refactor hash-map timestamp alignment.
double AlignedPearson(const Regression& a, const Regression& b) {
  if (a.analysis.empty() || b.analysis.empty()) {
    return 0.0;
  }
  std::unordered_map<TimePoint, double> b_by_time;
  const size_t bn = std::min(b.analysis.size(), b.analysis_timestamps.size());
  for (size_t i = 0; i < bn; ++i) {
    b_by_time.emplace(b.analysis_timestamps[i], b.analysis[i]);
  }
  std::vector<double> xs;
  std::vector<double> ys;
  const size_t an = std::min(a.analysis.size(), a.analysis_timestamps.size());
  for (size_t i = 0; i < an; ++i) {
    const auto it = b_by_time.find(a.analysis_timestamps[i]);
    if (it != b_by_time.end()) {
      xs.push_back(a.analysis[i]);
      ys.push_back(it->second);
    }
  }
  if (xs.size() < 8) {
    return 0.0;
  }
  return PearsonCorrelation(xs, ys);
}

// Pre-refactor nested-vector SOM with sequential online training.
class NestedSom {
 public:
  NestedSom(size_t dimensions, int grid, uint64_t seed)
      : dimensions_(dimensions), grid_(std::max(1, grid)) {
    Rng rng(seed);
    cells_.resize(static_cast<size_t>(grid_) * static_cast<size_t>(grid_));
    for (auto& cell : cells_) {
      cell.resize(dimensions_);
      for (double& w : cell) {
        w = rng.Uniform(-0.1, 0.1);
      }
    }
  }

  int BestMatchingUnit(const std::vector<double>& item) const {
    int best = 0;
    double best_d2 = Distance2(cells_[0], item);
    for (size_t c = 1; c < cells_.size(); ++c) {
      const double d2 = Distance2(cells_[c], item);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<int>(c);
      }
    }
    return best;
  }

  void Train(const std::vector<std::vector<double>>& items, const SomTrainConfig& config) {
    if (items.empty()) {
      return;
    }
    Rng rng(config.seed);
    for (auto& cell : cells_) {
      cell = items[rng.NextUint64(items.size())];
    }
    const int epochs = std::max(1, config.epochs);
    const double initial_radius = std::max(1.0, static_cast<double>(grid_) / 2.0);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      const double progress = static_cast<double>(epoch) / static_cast<double>(epochs);
      const double lr = config.initial_learning_rate +
                        (config.final_learning_rate - config.initial_learning_rate) * progress;
      const double radius = std::max(0.5, initial_radius * (1.0 - progress));
      const double radius2 = radius * radius;
      for (const std::vector<double>& item : items) {
        const int bmu = BestMatchingUnit(item);
        const int bmu_row = bmu / grid_;
        const int bmu_col = bmu % grid_;
        for (int row = 0; row < grid_; ++row) {
          for (int col = 0; col < grid_; ++col) {
            const double dr = static_cast<double>(row - bmu_row);
            const double dc = static_cast<double>(col - bmu_col);
            const double grid_d2 = dr * dr + dc * dc;
            if (grid_d2 > radius2) {
              continue;
            }
            const double influence = std::exp(-grid_d2 / (2.0 * radius2));
            std::vector<double>& cell = cells_[static_cast<size_t>(row * grid_ + col)];
            for (size_t i = 0; i < dimensions_; ++i) {
              cell[i] += lr * influence * (item[i] - cell[i]);
            }
          }
        }
      }
    }
  }

  std::vector<int> Assign(const std::vector<std::vector<double>>& items) const {
    std::vector<int> assignment;
    assignment.reserve(items.size());
    for (const std::vector<double>& item : items) {
      assignment.push_back(BestMatchingUnit(item));
    }
    return assignment;
  }

 private:
  double Distance2(const std::vector<double>& weights, const std::vector<double>& item) const {
    double d2 = 0.0;
    for (size_t i = 0; i < dimensions_; ++i) {
      const double d = weights[i] - item[i];
      d2 += d * d;
    }
    return d2;
  }

  size_t dimensions_;
  int grid_;
  std::vector<std::vector<double>> cells_;
};

// Pre-refactor string-keyed SameRegressionMerger.
class Merger {
 public:
  explicit Merger(Duration tolerance) : tolerance_(tolerance) {}

  std::vector<Regression> Filter(std::vector<Regression> regressions) {
    std::vector<Regression> admitted;
    for (Regression& regression : regressions) {
      std::vector<TimePoint>& times = seen_[regression.metric.ToString()];
      bool duplicate = false;
      for (TimePoint t : times) {
        if (std::llabs(static_cast<long long>(t - regression.change_time)) <=
            static_cast<long long>(tolerance_)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        times.push_back(regression.change_time);
        admitted.push_back(std::move(regression));
      }
    }
    return admitted;
  }

 private:
  Duration tolerance_;
  std::unordered_map<std::string, std::vector<TimePoint>> seen_;
};

uint64_t MixCommitId(int64_t id) {
  uint64_t state = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

// Pre-refactor SOMDedup: string TF-IDF fit + embed per regression, nested
// SOM, importance reduction.
class SomDedupOracle {
 public:
  explicit SomDedupOracle(const SomDedupConfig& config = {}) : config_(config) {}

  double ImportanceScore(const Regression& regression, double max_abs_delta,
                         double max_rel_delta) const {
    const double relative =
        max_rel_delta > 0.0 ? std::fabs(regression.relative_delta) / max_rel_delta : 0.0;
    const double absolute =
        max_abs_delta > 0.0 ? std::fabs(regression.delta) / max_abs_delta : 0.0;
    const double popularity = regression.metric.kind == MetricKind::kGcpu
                                  ? std::clamp(regression.baseline_mean, 0.0, 1.0)
                                  : 0.5;
    const double has_root_cause = regression.candidate_root_causes.empty() ? 0.0 : 1.0;
    return config_.w_relative * relative + config_.w_absolute * absolute +
           config_.w_popularity * (1.0 - popularity) + config_.w_root_cause * has_root_cause;
  }

  std::vector<Regression> Deduplicate(std::vector<Regression> regressions) const {
    if (regressions.size() <= 1) {
      for (Regression& regression : regressions) {
        regression.som_cluster = 0;
        regression.importance = ImportanceScore(regression, std::fabs(regression.delta),
                                                std::fabs(regression.relative_delta));
      }
      return regressions;
    }

    std::vector<std::string> corpus;
    corpus.reserve(regressions.size());
    for (const Regression& regression : regressions) {
      corpus.push_back(regression.metric.ToString());
    }
    TfIdf hasher(config_.metric_id_dims);
    hasher.Fit(corpus);

    std::vector<std::vector<double>> features;
    features.reserve(regressions.size());
    for (const Regression& regression : regressions) {
      features.push_back(BuildFeatureVector(regression, hasher));
    }
    NormalizeColumns(features);

    const int grid = SomGridSize(regressions.size());
    NestedSom som(features[0].size(), grid, config_.training.seed);
    som.Train(features, config_.training);
    const std::vector<int> assignment = som.Assign(features);

    double max_abs = 0.0;
    double max_rel = 0.0;
    for (const Regression& regression : regressions) {
      max_abs = std::max(max_abs, std::fabs(regression.delta));
      max_rel = std::max(max_rel, std::fabs(regression.relative_delta));
    }

    std::vector<int> best_index(static_cast<size_t>(grid) * static_cast<size_t>(grid), -1);
    std::vector<size_t> cluster_sizes(best_index.size(), 0);
    for (size_t i = 0; i < regressions.size(); ++i) {
      regressions[i].som_cluster = assignment[i];
      regressions[i].importance = ImportanceScore(regressions[i], max_abs, max_rel);
      const size_t cell = static_cast<size_t>(assignment[i]);
      ++cluster_sizes[cell];
      if (best_index[cell] < 0) {
        best_index[cell] = static_cast<int>(i);
        continue;
      }
      const Regression& incumbent = regressions[static_cast<size_t>(best_index[cell])];
      const Regression& challenger = regressions[i];
      const bool better =
          challenger.importance > incumbent.importance ||
          (challenger.importance == incumbent.importance &&
           challenger.metric.ToString() < incumbent.metric.ToString());
      if (better) {
        best_index[cell] = static_cast<int>(i);
      }
    }

    std::vector<Regression> representatives;
    for (size_t cell = 0; cell < best_index.size(); ++cell) {
      if (best_index[cell] >= 0) {
        Regression representative =
            std::move(regressions[static_cast<size_t>(best_index[cell])]);
        representative.merged_count = cluster_sizes[cell];
        representatives.push_back(std::move(representative));
      }
    }
    return representatives;
  }

 private:
  std::vector<double> BuildFeatureVector(const Regression& regression,
                                         const TfIdf& hasher) const {
    std::vector<double> features;
    const std::vector<double> fourier =
        FourierMagnitudes(regression.analysis, config_.fourier_coefficients);
    features.insert(features.end(), fourier.begin(), fourier.end());
    features.push_back(SampleVariance(regression.analysis));
    features.push_back(regression.analysis.empty()
                           ? 0.0
                           : static_cast<double>(regression.change_index) /
                                 static_cast<double>(regression.analysis.size()));
    features.push_back(regression.delta);
    features.push_back(regression.relative_delta);
    std::vector<double> bitmap(config_.root_cause_bitmap_dims, 0.0);
    for (int64_t commit : regression.candidate_root_causes) {
      bitmap[MixCommitId(commit) % config_.root_cause_bitmap_dims] = 1.0;
    }
    features.insert(features.end(), bitmap.begin(), bitmap.end());
    const std::vector<double> metric_embedding = hasher.Embed(regression.metric.ToString());
    features.insert(features.end(), metric_embedding.begin(), metric_embedding.end());
    return features;
  }

  void NormalizeColumns(std::vector<std::vector<double>>& rows) const {
    if (rows.empty()) {
      return;
    }
    const size_t dims = rows[0].size();
    for (size_t d = 0; d < dims; ++d) {
      double mean = 0.0;
      for (const auto& row : rows) {
        mean += row[d];
      }
      mean /= static_cast<double>(rows.size());
      double var = 0.0;
      for (const auto& row : rows) {
        const double diff = row[d] - mean;
        var += diff * diff;
      }
      var /= static_cast<double>(rows.size());
      const double sd = std::sqrt(var);
      for (auto& row : rows) {
        row[d] = sd > 0.0 ? (row[d] - mean) / sd : 0.0;
      }
    }
  }

  SomDedupConfig config_;
};

// Pre-refactor all-pairs pairwise dedup, recomputing the text features from
// the metric strings for every (candidate, member) pair.
class PairwiseOracle {
 public:
  explicit PairwiseOracle(PairwiseRule rule = {}, StackOverlapFn overlap = nullptr)
      : rule_(rule), overlap_(std::move(overlap)) {}

  PairwiseScores Score(const Regression& candidate, const RegressionGroup& group) const {
    PairwiseScores scores;
    for (const Regression& member : group.members) {
      scores.pearson = std::max(scores.pearson, legacy::AlignedPearson(candidate, member));
      scores.text = std::max(
          scores.text,
          TextCosineSimilarity(candidate.metric.ToString(), member.metric.ToString()));
      if (overlap_ != nullptr && candidate.metric.kind == MetricKind::kGcpu &&
          member.metric.kind == MetricKind::kGcpu) {
        scores.stack_overlap =
            std::max(scores.stack_overlap, overlap_(candidate.metric, member.metric));
      }
    }
    return scores;
  }

  std::vector<int> Ingest(std::vector<Regression> regressions) {
    std::vector<int> new_groups;
    for (Regression& regression : regressions) {
      int best_group = -1;
      double best_aggregate = 0.0;
      for (size_t g = 0; g < groups_.size(); ++g) {
        const PairwiseScores scores = Score(regression, groups_[g]);
        if (rule_.ShouldMerge(scores) && scores.Aggregate() > best_aggregate) {
          best_aggregate = scores.Aggregate();
          best_group = static_cast<int>(g);
        }
      }
      if (best_group >= 0) {
        groups_[static_cast<size_t>(best_group)].members.push_back(std::move(regression));
        continue;
      }
      RegressionGroup group;
      group.group_id = static_cast<int>(groups_.size());
      group.members.push_back(std::move(regression));
      groups_.push_back(std::move(group));
      new_groups.push_back(groups_.back().group_id);
    }
    return new_groups;
  }

  const std::vector<RegressionGroup>& groups() const { return groups_; }

 private:
  PairwiseRule rule_;
  StackOverlapFn overlap_;
  std::vector<RegressionGroup> groups_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Synthetic survivor batches.
// ---------------------------------------------------------------------------

std::vector<double> StepShape(double base, double delta, size_t n, uint64_t seed,
                              double noise) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back((i < n / 2 ? base : base + delta) + rng.Normal(0.0, noise));
  }
  return values;
}

Regression MakeSurvivor(const std::string& subroutine, uint64_t shape_seed,
                        TimePoint change_time, std::vector<int64_t> causes) {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, subroutine, ""};
  regression.change_time = change_time;
  regression.detected_at = change_time + Hours(4);
  regression.change_index = 24;
  regression.baseline_mean = 0.05;
  regression.regressed_mean = 0.06;
  regression.delta = 0.01;
  regression.relative_delta = 0.2;
  regression.analysis = StepShape(0.05, 0.01, 48, shape_seed, 0.0001);
  for (size_t i = 0; i < regression.analysis.size(); ++i) {
    regression.analysis_timestamps.push_back(change_time - Hours(4) +
                                             static_cast<TimePoint>(i) * Minutes(10));
  }
  regression.historical.assign(50, 0.05);
  regression.candidate_root_causes = std::move(causes);
  return regression;
}

// `families` name groups whose members share tokens and correlate in time;
// distinct families share neither. One batch = one simulated re-run's
// post-threshold survivors.
std::vector<Regression> MakeSurvivorBatch(size_t batch, size_t survivors, size_t families) {
  std::vector<Regression> out;
  out.reserve(survivors);
  const TimePoint change_time = Hours(10) + static_cast<TimePoint>(batch) * Days(1);
  for (size_t i = 0; i < survivors; ++i) {
    const size_t family = i % families;
    const size_t member = i / families;
    // Realistic gCPU subroutine ids are long qualified names; gram cost
    // scales with length, which is exactly what the fingerprint path
    // amortizes.
    const std::string name = "ads_ranking_feature_scorer_mod" + std::to_string(family) +
                             "_request_handler_" + std::to_string(batch) + "_" +
                             std::to_string(member) + "_compute_weighted_cost_estimate";
    out.push_back(MakeSurvivor(name, 1000 + family, change_time,
                               {static_cast<int64_t>(family)}));
  }
  return out;
}

struct FunnelResult {
  size_t admitted = 0;
  size_t representatives = 0;
  size_t groups = 0;
  std::multiset<std::string> representative_metrics;
};

// The pre-refactor funnel: every stage recomputes strings/tokens/grams.
FunnelResult RunLegacyFunnel(const std::vector<std::vector<Regression>>& batches,
                             Duration tolerance) {
  FunnelResult result;
  legacy::Merger merger(tolerance);
  const legacy::SomDedupOracle som_dedup;
  legacy::PairwiseOracle pairwise;
  for (const std::vector<Regression>& batch : batches) {
    std::vector<Regression> admitted = merger.Filter(batch);
    result.admitted += admitted.size();
    std::vector<Regression> representatives = som_dedup.Deduplicate(std::move(admitted));
    result.representatives += representatives.size();
    for (const Regression& representative : representatives) {
      result.representative_metrics.insert(representative.metric.ToString());
    }
    pairwise.Ingest(std::move(representatives));
  }
  result.groups = pairwise.groups().size();
  return result;
}

// Today's funnel: fingerprint once, then hashed/indexed stages; `pool` fans
// out fingerprinting, SOM assignment, and pairwise scoring.
FunnelResult RunNewFunnel(const std::vector<std::vector<Regression>>& batches,
                          Duration tolerance, ThreadPool* pool) {
  FunnelResult result;
  SameRegressionMerger merger(tolerance);
  const SomDedup som_dedup;
  PairwiseDedup pairwise;
  const SomDedupConfig som_config;
  const FingerprintConfig fp_config{som_config.fourier_coefficients,
                                    som_config.root_cause_bitmap_dims, true};
  for (const std::vector<Regression>& batch : batches) {
    std::vector<FunnelCandidate> candidates(batch.size());
    ParallelIndexFor(batch.size(), pool, [&](size_t i) {
      candidates[i].fingerprint = ComputeFingerprint(batch[i], fp_config);
      candidates[i].regression = batch[i];
    });
    std::vector<FunnelCandidate> admitted = merger.Filter(std::move(candidates));
    result.admitted += admitted.size();
    std::vector<FunnelCandidate> representatives =
        som_dedup.Deduplicate(std::move(admitted), pool);
    result.representatives += representatives.size();
    for (const FunnelCandidate& representative : representatives) {
      result.representative_metrics.insert(representative.fingerprint.metric_string);
    }
    pairwise.Ingest(std::move(representatives), pool);
  }
  result.groups = pairwise.groups().size();
  return result;
}

// Seeds `G` mutually unrelated groups; returns probes that each merge into
// one distinct group.
std::vector<Regression> MakeGroupSeeds(size_t groups) {
  std::vector<Regression> seeds;
  seeds.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    seeds.push_back(MakeSurvivor("grp" + std::to_string(g) + "q" + std::to_string(g * 7 + 13),
                                 5000 + g, Hours(10), {}));
  }
  return seeds;
}

std::vector<Regression> MakeGroupProbes(size_t probes, size_t groups) {
  std::vector<Regression> out;
  out.reserve(probes);
  for (size_t p = 0; p < probes; ++p) {
    const size_t g = (p * (groups / probes)) % groups;  // Spread across groups.
    out.push_back(MakeSurvivor("grp" + std::to_string(g) + "q" + std::to_string(g * 7 + 13),
                               5000 + g, Hours(34), {}));
  }
  return out;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  using namespace fbdetect;
  using Clock = std::chrono::steady_clock;

  bool smoke = false;
  bool threads_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--threads-sweep") {
      threads_sweep = true;
    }
  }

  PrintHeader(std::string("Funnel throughput: fingerprints, flat SOM, indexed pairwise") +
              (smoke ? " [smoke]" : "") + (threads_sweep ? " [threads-sweep]" : ""));
  const unsigned hw_cores = std::thread::hardware_concurrency();
  std::printf("hardware cores: %u\n", hw_cores);

  // --- Threads sweep: the multicore rig (EXPERIMENTS.md) -----------------
  // Records the funnel's per-core-count curve into BENCH_simd.json and
  // returns; the regular sections below are skipped so the sweep can run on
  // a machine reserved for scaling measurements.
  if (threads_sweep) {
    const size_t kBatches = smoke ? 2 : 3;
    const size_t kSurvivors = smoke ? 60 : 600;
    const size_t kFamilies = smoke ? 12 : 24;
    std::vector<std::vector<Regression>> batches;
    for (size_t b = 0; b < kBatches; ++b) {
      batches.push_back(MakeSurvivorBatch(b, kSurvivors, kFamilies));
    }
    const Duration tolerance = Hours(1);
    const FunnelResult baseline = RunNewFunnel(batches, tolerance, nullptr);
    const std::vector<int> threads_list = {1, 2, 4, 8};
    std::vector<double> sweep_ms;
    std::printf("\nfunnel threads sweep (%zu batches x %zu survivors)\n", kBatches,
                kSurvivors);
    for (int threads : threads_list) {
      ThreadPool pool(static_cast<size_t>(threads - 1));
      ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
      const auto sweep_t0 = Clock::now();
      const FunnelResult result = RunNewFunnel(batches, tolerance, pool_ptr);
      const double ms = MillisSince(sweep_t0);
      // Byte-identical across thread counts (PR-5 determinism taxonomy).
      FBD_CHECK(result.admitted == baseline.admitted);
      FBD_CHECK(result.representatives == baseline.representatives);
      FBD_CHECK(result.groups == baseline.groups);
      FBD_CHECK(result.representative_metrics == baseline.representative_metrics);
      sweep_ms.push_back(ms);
      std::printf("    threads=%d: %8.1f ms   speedup vs 1: %.2fx\n", threads, ms,
                  sweep_ms[0] / ms);
    }
    char extra[128];
    std::snprintf(extra, sizeof(extra), "{\"survivors\": %zu, \"batches\": %zu, \"curve\": ",
                  kSurvivors, kBatches);
    UpdateBenchSimdJson("funnel_sweep",
                        extra + ThreadsCurveJson(threads_list, sweep_ms) + "}");
    // On real multicore hardware parallelism must be a measured win at 8
    // threads; a single-core host (or an oversubscribed smoke run) cannot
    // measure scaling, only correctness.
    if (hw_cores >= 2 && !smoke) {
      FBD_CHECK(sweep_ms.front() / sweep_ms.back() > 1.0);
    }
    return 0;
  }

  // --- 1. Single-thread funnel: legacy vs fingerprint path --------------
  const size_t kBatches = smoke ? 2 : 3;
  const size_t kSurvivors = smoke ? 60 : 600;
  const size_t kFamilies = smoke ? 12 : 24;
  std::vector<std::vector<Regression>> batches;
  for (size_t b = 0; b < kBatches; ++b) {
    batches.push_back(MakeSurvivorBatch(b, kSurvivors, kFamilies));
  }
  const Duration tolerance = Hours(1);

  auto t0 = Clock::now();
  const FunnelResult legacy_result = RunLegacyFunnel(batches, tolerance);
  const double legacy_ms = MillisSince(t0);

  t0 = Clock::now();
  const FunnelResult new_result = RunNewFunnel(batches, tolerance, nullptr);
  const double new_ms = MillisSince(t0);

  // Robust output consistency: same funnel narrowing at every stage. (The
  // hashed TF-IDF's ulp-level embedding differences make per-double
  // comparisons meaningless; cluster counts and representative sets are the
  // meaningful contract.)
  FBD_CHECK(legacy_result.admitted == new_result.admitted);
  FBD_CHECK(legacy_result.representatives == new_result.representatives);
  FBD_CHECK(legacy_result.groups == new_result.groups);
  FBD_CHECK(legacy_result.representative_metrics == new_result.representative_metrics);

  const double funnel_speedup = legacy_ms / new_ms;
  std::printf("\n[1] single-thread funnel (%zu batches x %zu survivors, %zu families)\n",
              kBatches, kSurvivors, kFamilies);
  std::printf("    legacy: %8.1f ms   fingerprint: %8.1f ms   speedup: %.1fx\n", legacy_ms,
              new_ms, funnel_speedup);
  std::printf("    admitted: %zu  representatives: %zu  groups: %zu (identical)\n",
              new_result.admitted, new_result.representatives, new_result.groups);
  if (!smoke) {
    FBD_CHECK(funnel_speedup >= 2.0);
  }

  // --- 2. Thread scaling of the new funnel ------------------------------
  std::printf("\n[2] new-funnel thread scaling\n");
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<double> thread_ms;
  for (int threads : thread_counts) {
    ThreadPool pool(static_cast<size_t>(threads - 1));
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
    t0 = Clock::now();
    const FunnelResult result = RunNewFunnel(batches, tolerance, pool_ptr);
    const double ms = MillisSince(t0);
    thread_ms.push_back(ms);
    // Byte-identical across thread counts.
    FBD_CHECK(result.admitted == new_result.admitted);
    FBD_CHECK(result.representatives == new_result.representatives);
    FBD_CHECK(result.groups == new_result.groups);
    FBD_CHECK(result.representative_metrics == new_result.representative_metrics);
    std::printf("    threads=%d: %8.1f ms   speedup vs 1: %.2fx\n", threads, ms,
                thread_ms[0] / ms);
  }

  // --- 3. Pairwise ingest scaling in group count ------------------------
  std::printf("\n[3] pairwise ingest vs existing group count\n");
  std::vector<size_t> group_counts = smoke ? std::vector<size_t>{16, 64}
                                           : std::vector<size_t>{64, 256, 1024};
  const size_t kProbes = smoke ? 8 : 32;
  std::vector<double> scaling_legacy_ms;
  std::vector<double> scaling_indexed_ms;
  for (size_t groups : group_counts) {
    const std::vector<Regression> seeds = MakeGroupSeeds(groups);
    const std::vector<Regression> probes = MakeGroupProbes(kProbes, groups);

    legacy::PairwiseOracle oracle;
    oracle.Ingest(seeds);  // Seeding is untimed on both sides.
    t0 = Clock::now();
    const std::vector<int> oracle_new = oracle.Ingest(probes);
    const double oracle_ms = MillisSince(t0);

    PairwiseDedup indexed;
    indexed.Ingest(seeds);
    t0 = Clock::now();
    const std::vector<int> indexed_new = indexed.Ingest(probes);
    const double indexed_ms = MillisSince(t0);

    FBD_CHECK(oracle.groups().size() == indexed.groups().size());
    FBD_CHECK(oracle_new == indexed_new);
    scaling_legacy_ms.push_back(oracle_ms);
    scaling_indexed_ms.push_back(indexed_ms);
    std::printf("    G=%5zu (%zu probes)  all-pairs: %8.2f ms   indexed: %8.2f ms   "
                "speedup: %.1fx\n",
                groups, kProbes, oracle_ms, indexed_ms, oracle_ms / indexed_ms);
  }

  // --- JSON -------------------------------------------------------------
  FILE* json = std::fopen("BENCH_funnel.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"hardware_cores\": %u,\n", hw_cores);
  std::fprintf(json,
               "  \"funnel_single_thread\": {\"batches\": %zu, \"survivors_per_batch\": %zu, "
               "\"legacy_ms\": %.2f, \"new_ms\": %.2f, \"speedup\": %.2f},\n",
               kBatches, kSurvivors, legacy_ms, new_ms, funnel_speedup);
  std::fprintf(json, "  \"funnel_thread_scaling\": [\n");
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::fprintf(json, "    {\"threads\": %d, \"ms\": %.2f, \"speedup_vs_1\": %.2f}%s\n",
                 thread_counts[i], thread_ms[i], thread_ms[0] / thread_ms[i],
                 i + 1 < thread_counts.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"pairwise_group_scaling\": [\n");
  for (size_t i = 0; i < group_counts.size(); ++i) {
    std::fprintf(json,
                 "    {\"groups\": %zu, \"probes\": %zu, \"all_pairs_ms\": %.3f, "
                 "\"indexed_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 group_counts[i], kProbes, scaling_legacy_ms[i], scaling_indexed_ms[i],
                 scaling_legacy_ms[i] / scaling_indexed_ms[i],
                 i + 1 < group_counts.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_funnel.json\n");
  return 0;
}
