// §6.3 reproduction: root-cause analysis accuracy.
//
// A month-long scenario plants step regressions, each with a culprit commit,
// plus hundreds of benign background commits. For every pipeline report
// matched to an injected regression we check whether the culprit appears in
// the top-3 suggested causes — the paper's metric (71 of 75 suggestions
// correct; suggestions made only above a confidence bar).
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"

namespace fbdetect {
namespace {

void Run(uint64_t seed) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.service_name = "svc";
  options.num_subroutines = 160;
  options.duration = Days(18);
  options.samples_per_bucket = 4000000;
  options.num_step_regressions = 20;
  options.num_gradual_regressions = 0;
  options.num_cost_shifts = 4;
  options.num_transients = 25;
  options.num_background_commits = 300;
  options.min_regression_magnitude = 0.08;
  options.max_regression_magnitude = 0.80;
  options.seed = seed;
  const Scenario scenario = GenerateScenario(fleet, options);
  fleet.Run(scenario.begin, scenario.end);

  PipelineOptions pipeline_options;
  pipeline_options.detection.threshold = 0.0001;
  pipeline_options.detection.windows.historical = Days(4);
  pipeline_options.detection.windows.analysis = Hours(4);
  pipeline_options.detection.windows.extended = Hours(2);
  pipeline_options.detection.rerun_interval = Hours(4);

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, pipeline_options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod("svc", scenario.begin + Days(4), scenario.end);

  size_t matched_reports = 0;
  size_t with_suggestion = 0;
  size_t culprit_top1 = 0;
  size_t culprit_top3 = 0;
  for (const Regression& report : reports) {
    const InjectedEvent* matched = nullptr;
    for (const InjectedEvent& event : fleet.ground_truth()) {
      if (event.IsTrueRegression() && event.subroutine == report.metric.entity &&
          std::llabs(static_cast<long long>(report.change_time - event.start)) <=
              static_cast<long long>(Days(1))) {
        matched = &event;
        break;
      }
    }
    if (matched == nullptr) {
      continue;
    }
    ++matched_reports;
    if (report.root_causes.empty()) {
      continue;
    }
    ++with_suggestion;
    for (size_t rank = 0; rank < report.root_causes.size(); ++rank) {
      if (report.root_causes[rank].commit_id == matched->commit_id) {
        culprit_top3 += 1;
        culprit_top1 += rank == 0 ? 1 : 0;
        break;
      }
    }
  }

  std::printf("commits in change log:            %zu (%d culprits, rest benign)\n",
              fleet.change_log().size(), 20 + 4);
  std::printf("reports matched to injected TRs:  %zu\n", matched_reports);
  std::printf("reports with suggested causes:    %zu\n", with_suggestion);
  std::printf("culprit in top-3 suggestions:     %zu (%.0f%% of suggestions)\n", culprit_top3,
              with_suggestion == 0 ? 0.0 : 100.0 * culprit_top3 / with_suggestion);
  std::printf("culprit ranked #1:                %zu\n", culprit_top1);
  std::printf("\nPaper shape to compare: when FBDetect suggests causes, the culprit is in\n"
              "the top three for the large majority of cases (71/75 = 95%% in the paper).\n");
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader("§6.3 — root-cause analysis top-3 accuracy with planted culprits");
  fbdetect::Run(7);
  return 0;
}
