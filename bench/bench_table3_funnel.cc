// Table 3 reproduction: effectiveness of each technique in filtering
// spurious change points, for three workload styles over one simulated
// month:
//   * FrontFaaS-like  — short-term + long-term, all stages;
//   * PythonFaaS-like — short-term only (the paper: skips long-term);
//   * AdServing-like  — cost-shift analysis disabled (as in the paper).
// Prints, per workload and path, the surviving count after each stage and
// the cumulative reduction ratio "1/x" relative to raw change points —
// the same shape as the paper's Table 3 (absolute values differ: the
// synthetic fleet is far smaller and cleaner than production).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"

namespace fbdetect {
namespace {

struct WorkloadRun {
  std::string name;
  FunnelStats short_funnel;
  FunnelStats long_funnel;
  bool has_long = true;
  bool has_cost_shift = true;
  size_t reported = 0;
  size_t true_positive = 0;
  size_t injected_regressions = 0;
};

WorkloadRun RunWorkload(const std::string& name, const std::string& language,
                        bool enable_long_term, bool enable_cost_shift, uint64_t seed) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.service_name = name;
  options.language = language;
  options.num_subroutines = 150;
  options.duration = Days(18);
  options.tick = Minutes(10);
  options.samples_per_bucket = 2000000;
  options.num_step_regressions = 10;
  options.num_gradual_regressions = 3;
  options.num_cost_shifts = 6;
  options.num_transients = 35;
  options.num_seasonal_shifts = 2;
  options.num_background_commits = 250;
  options.seed = seed;
  const Scenario scenario = GenerateScenario(fleet, options);
  fleet.Run(scenario.begin, scenario.end);

  PipelineOptions pipeline_options;
  pipeline_options.detection.threshold = 0.0003;
  pipeline_options.detection.windows.historical = Days(4);
  pipeline_options.detection.windows.analysis = Hours(4);
  pipeline_options.detection.windows.extended = Hours(2);
  pipeline_options.detection.rerun_interval = Hours(4);
  pipeline_options.detection.enable_long_term = enable_long_term;
  pipeline_options.enable_cost_shift = enable_cost_shift;

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, pipeline_options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod(name, scenario.begin + Days(4), scenario.end);

  WorkloadRun run;
  run.name = name;
  run.short_funnel = pipeline.short_term_funnel();
  run.long_funnel = pipeline.long_term_funnel();
  run.has_long = enable_long_term;
  run.has_cost_shift = enable_cost_shift;
  run.reported = reports.size();

  // Recall: an injected regression counts as caught when ANY member of any
  // regression group matches it — by subroutine and nearby change time, or
  // by carrying its culprit commit among the candidate root causes (the
  // group's representative may be an upstream caller rather than the exact
  // injected subroutine).
  for (const InjectedEvent& event : fleet.ground_truth()) {
    if (!event.IsTrueRegression()) {
      continue;
    }
    ++run.injected_regressions;
    bool caught = false;
    for (const RegressionGroup& group : pipeline.groups()) {
      for (const Regression& member : group.members) {
        const bool time_match =
            std::llabs(static_cast<long long>(member.change_time - event.start)) <=
            static_cast<long long>(Days(1));
        const bool entity_match = member.metric.entity == event.subroutine;
        const bool commit_match =
            event.commit_id >= 0 &&
            std::find(member.candidate_root_causes.begin(),
                      member.candidate_root_causes.end(),
                      event.commit_id) != member.candidate_root_causes.end();
        if (time_match && (entity_match || commit_match)) {
          caught = true;
          break;
        }
      }
      if (caught) {
        break;
      }
    }
    run.true_positive += caught ? 1 : 0;
  }
  return run;
}

std::string Ratio(uint64_t base, uint64_t value) {
  if (value == 0) {
    return base == 0 ? "-" : "1/inf";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "1/%.1f",
                static_cast<double>(base) / static_cast<double>(value));
  return std::string(buffer);
}

std::string Cell(uint64_t base, uint64_t value) {
  return std::to_string(value) + " (" + Ratio(base, value) + ")";
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("Table 3 — per-stage filtering of spurious change points (18 simulated days)");

  std::vector<WorkloadRun> runs;
  runs.push_back(RunWorkload("frontfaas_like", "php", /*long=*/true, /*cost_shift=*/true, 11));
  runs.push_back(
      RunWorkload("pythonfaas_like", "python", /*long=*/false, /*cost_shift=*/true, 22));
  runs.push_back(RunWorkload("adserving_like", "cpp", /*long=*/true, /*cost_shift=*/false, 33));

  const std::vector<int> widths = {30, 24, 24, 24};
  PrintRow({"Stage", "FrontFaaS-like (short)", "PythonFaaS-like (short)",
            "AdServing-like (short)"},
           widths);
  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const WorkloadRun& run : runs) {
      cells.push_back(Cell(run.short_funnel.change_points, getter(run.short_funnel)));
    }
    PrintRow(cells, widths);
  };
  row("# change points detected",
      [](const FunnelStats& f) { return f.change_points; });
  row("after went-away detection",
      [](const FunnelStats& f) { return f.after_went_away; });
  row("after seasonality detection",
      [](const FunnelStats& f) { return f.after_seasonality; });
  row("after threshold filtering",
      [](const FunnelStats& f) { return f.after_threshold; });
  row("after SameRegressionMerger",
      [](const FunnelStats& f) { return f.after_same_merger; });
  row("after SOMDedup", [](const FunnelStats& f) { return f.after_som_dedup; });
  row("after cost-shift analysis",
      [](const FunnelStats& f) { return f.after_cost_shift; });
  row("after PairwiseDedup", [](const FunnelStats& f) { return f.after_pairwise; });

  std::printf("\nLong-term path (same stages sans went-away/seasonality):\n");
  PrintRow({"Stage", "FrontFaaS-like (long)", "-", "AdServing-like (long)"}, widths);
  auto long_row = [&](const char* label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const WorkloadRun& run : runs) {
      cells.push_back(run.has_long ? Cell(run.long_funnel.change_points, getter(run.long_funnel))
                                   : std::string("skipped"));
    }
    PrintRow(cells, widths);
  };
  long_row("# change points detected",
           [](const FunnelStats& f) { return f.change_points; });
  long_row("after threshold filtering",
           [](const FunnelStats& f) { return f.after_threshold; });
  long_row("after SameRegressionMerger",
           [](const FunnelStats& f) { return f.after_same_merger; });
  long_row("after SOMDedup", [](const FunnelStats& f) { return f.after_som_dedup; });
  long_row("after cost-shift analysis",
           [](const FunnelStats& f) { return f.after_cost_shift; });
  long_row("after PairwiseDedup", [](const FunnelStats& f) { return f.after_pairwise; });

  std::printf("\nGround-truth scoring:\n");
  for (const WorkloadRun& run : runs) {
    std::printf("  %-18s reported=%zu, matched-injected=%zu of %zu injected regressions\n",
                run.name.c_str(), run.reported, run.true_positive,
                run.injected_regressions);
  }
  std::printf("\nPaper shape to compare: went-away is the biggest single filter; the\n"
              "total reduction from raw change points to reports spans 2-4 orders of\n"
              "magnitude, with short-term change points far noisier than long-term.\n");
  return 0;
}
