// Figure 8 reproduction: FBDetect vs Yahoo EGADS on the FP/FN trade-off.
//
// Test corpus (scaled from the paper's 107 positive + ~35k negative series):
//   * positive series — step regressions with log-uniform magnitudes;
//   * negative series — pure noise, transient spikes/dips that self-recover,
//     and seasonal series (the production confounders of Fig. 1(c)).
// FBDetect classifies via its short-term stack (change point -> went-away ->
// seasonality -> threshold) and yields a single (FPR, FNR) point. Each EGADS
// algorithm is swept over its sensitivity knob, tracing a curve. Per the
// paper, EGADS combines FBDetect's analysis+extended windows into its
// analysis window.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/core/seasonality_stage.h"
#include "src/core/threshold_filter.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/egads/egads.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);
constexpr int kPositives = 100;
constexpr int kNegatives = 3000;

DetectionConfig BenchConfig() {
  DetectionConfig config;
  config.threshold = 0.0005;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);
  return config;
}

struct Case {
  TimeSeries series;
  bool is_regression = false;
};

std::vector<Case> MakeCorpus(uint64_t seed) {
  std::vector<Case> corpus;
  Rng rng(seed);
  const DetectionConfig config = BenchConfig();
  const Duration total = config.windows.Total();
  const double baseline = 0.050;
  const double noise = 0.0015;

  auto build = [&](auto level_fn) {
    TimeSeries series;
    for (TimePoint t = 0; t < total; t += kTick) {
      series.Append(t, rng.Normal(level_fn(t), noise));
    }
    return series;
  };

  // Positives: steps of log-uniform magnitude inside the analysis window.
  for (int i = 0; i < kPositives; ++i) {
    const double magnitude =
        std::exp(rng.Uniform(std::log(0.002), std::log(0.02)));
    const TimePoint step_at =
        total - config.windows.extended -
        static_cast<TimePoint>(rng.NextUint64(static_cast<uint64_t>(Hours(3)))) - Hours(1);
    Case c;
    c.is_regression = true;
    c.series = build([&](TimePoint t) { return baseline + (t >= step_at ? magnitude : 0.0); });
    corpus.push_back(std::move(c));
  }
  // Negatives: 1/3 pure noise, 1/3 transients, 1/3 seasonal.
  for (int i = 0; i < kNegatives; ++i) {
    Case c;
    c.is_regression = false;
    const int flavor = i % 3;
    if (flavor == 0) {
      c.series = build([&](TimePoint) { return baseline; });
    } else if (flavor == 1) {
      // Transient spike or dip in the analysis window, recovering before the
      // end of the extended window.
      const double magnitude = rng.Uniform(0.005, 0.03) * (rng.NextBool(0.5) ? 1.0 : -1.0);
      const TimePoint start = total - Hours(6) +
                              static_cast<TimePoint>(rng.NextUint64(Hours(2)));
      const TimePoint end = start + Hours(1) +
                            static_cast<TimePoint>(rng.NextUint64(Hours(1)));
      c.series = build([&](TimePoint t) {
        return baseline + ((t >= start && t < end) ? magnitude : 0.0);
      });
    } else {
      const double amplitude = rng.Uniform(0.002, 0.01);
      const double phase = rng.Uniform(0.0, 2.0 * M_PI);
      c.series = build([&](TimePoint t) {
        return baseline + amplitude * std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                                                   static_cast<double>(kDay) +
                                               phase);
      });
    }
    corpus.push_back(std::move(c));
  }
  return corpus;
}

bool FbdetectClassify(const TimeSeries& series, const DetectionConfig& config) {
  const WindowExtract windows =
      ExtractWindows(series, series.end_time() + kTick, config.windows);
  const MetricId metric{"svc", MetricKind::kGcpu, "sub", ""};
  const auto candidate = ChangePointStage(config).Detect(metric, windows);
  if (!candidate) {
    return false;
  }
  if (!WentAwayDetector(config).Evaluate(*candidate, static_cast<size_t>(kDay / kTick)).keep) {
    return false;
  }
  if (SeasonalityStage(config).Evaluate(*candidate).seasonal_filtered) {
    return false;
  }
  return PassesThreshold(*candidate, config);
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("Figure 8 — FBDetect vs EGADS: false-positive / false-negative trade-off");
  const DetectionConfig config = BenchConfig();
  const std::vector<Case> corpus = MakeCorpus(88);

  // FBDetect point.
  int false_positives = 0;
  int false_negatives = 0;
  int positives = 0;
  int negatives = 0;
  for (const Case& c : corpus) {
    const bool flagged = FbdetectClassify(c.series, config);
    if (c.is_regression) {
      ++positives;
      false_negatives += flagged ? 0 : 1;
    } else {
      ++negatives;
      false_positives += flagged ? 1 : 0;
    }
  }
  std::printf("Corpus: %d positives, %d negatives (noise/transient/seasonal)\n\n", positives,
              negatives);
  std::printf("FBDetect: FPR=%.5f FNR=%.3f   (paper: FPR=0.00088, FNR~0)\n\n",
              static_cast<double>(false_positives) / negatives,
              static_cast<double>(false_negatives) / positives);

  // EGADS curves: per the paper, EGADS sees historical as history and
  // analysis+extended combined as its analysis window.
  for (const auto& detector : MakeEgadsDetectors()) {
    std::printf("EGADS %s:\n", detector->name().c_str());
    std::printf("  %-12s %-10s %-10s\n", "sensitivity", "FPR", "FNR");
    for (double sensitivity : {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}) {
      int fp = 0;
      int fn = 0;
      for (const Case& c : corpus) {
        const WindowExtract windows =
            ExtractWindows(c.series, c.series.end_time() + kTick, config.windows);
        const bool flagged = detector->IsAnomalous(
            windows.historical, windows.analysis_plus_extended, sensitivity);
        if (c.is_regression) {
          fn += flagged ? 0 : 1;
        } else {
          fp += flagged ? 1 : 0;
        }
      }
      std::printf("  %-12.2f %-10.5f %-10.3f\n", sensitivity,
                  static_cast<double>(fp) / negatives, static_cast<double>(fn) / positives);
    }
  }
  std::printf("\nPaper shape to compare: no EGADS sensitivity achieves low FPR and low FNR\n"
              "simultaneously (transients force the trade-off); FBDetect sits near the\n"
              "origin thanks to the went-away detector.\n");
  return 0;
}
