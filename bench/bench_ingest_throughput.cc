// Ingestion-path throughput harness for the interned, sharded, tiered
// storage rework. Writes BENCH_ingest.json.
//
// Three measurements:
//   1. Micro ingest, single thread: the same (series x points) workload,
//      interleaved by time step the way the fleet emits it, pushed through
//      (a) the pre-change database reconstructed from the seed commit —
//          string-keyed unordered_map, one hash of three heap strings per
//          Write, generation bump per point;
//      (b) today's database via the string-keyed point-at-a-time path;
//      (c) today's database via pre-interned ids, point-at-a-time;
//      (d) pre-interned ids + WriteBatch, shard_count = 1;
//      (e) pre-interned ids + WriteBatch, shard_count = 16 (the production
//          configuration) — the acceptance comparison is (e) vs (a);
//      (f) as (e) but with periodic SealBefore, i.e. the tiered store paying
//          its compression cost inline with ingestion.
//   2. Multi-thread scaling: one WriteBatch per worker over disjoint series
//      sets into one shared sharded database, at 1/2/4/8 threads.
//      NOTE: scaling is only visible with enough hardware cores; the JSON
//      records the machine's core count next to the numbers.
//   3. Sealed-history memory: fleet-realistic noisy series sealed into
//      Gorilla chunks; reports compressed bytes vs the 16 bytes/point raw
//      layout. The acceptance bar is >= 2x reduction.
//
// `--smoke` shrinks every dimension so CI can exercise the full harness in
// seconds; the JSON notes which mode produced it.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

namespace legacy {

// The seed commit's TimeSeriesDatabase write path: a single unordered_map
// keyed by the full string MetricId, no batching, generation bump per point.
class Database {
 public:
  void Write(const MetricId& id, TimePoint timestamp, double value) {
    series_[id].Append(timestamp, value);
    ++generation_;
  }

  size_t total_points() const {
    size_t total = 0;
    for (const auto& [id, series] : series_) {
      total += series.size();
    }
    return total;
  }

 private:
  std::unordered_map<MetricId, TimeSeries, MetricIdHash> series_;
  uint64_t generation_ = 0;
};

}  // namespace legacy

struct Workload {
  std::vector<MetricId> ids;
  std::vector<double> values;  // One value per time step, shared by all series.
  size_t num_points = 0;       // Per series.

  size_t total_points() const { return ids.size() * num_points; }
  static TimePoint TimeAt(size_t step) { return static_cast<TimePoint>(step + 1) * 600; }
};

// Fleet-shaped identities: many services, one gCPU series per subroutine.
// Entity names mimic what stack-trace sampling actually produces — long,
// namespace-qualified, templated C++ symbols — because the cost of hashing
// and comparing those strings on every Write is precisely what interning
// removes from the hot path.
Workload MakeWorkload(size_t num_services, size_t metrics_per_service, size_t num_points) {
  Workload workload;
  workload.num_points = num_points;
  workload.ids.reserve(num_services * metrics_per_service);
  for (size_t s = 0; s < num_services; ++s) {
    const std::string service = "ads_ranking_inference_tier_" + std::to_string(s);
    for (size_t m = 0; m < metrics_per_service; ++m) {
      workload.ids.push_back(
          {service, MetricKind::kGcpu,
           "facebook::ranking::ScoringEngine<PredictorV" + std::to_string(m % 7) +
               ">::EvaluateCandidateBatch_" + std::to_string(m) + "(RequestContext const&)",
           ""});
    }
  }
  Rng rng(99);
  workload.values.reserve(num_points);
  for (size_t p = 0; p < num_points; ++p) {
    workload.values.push_back(rng.Normal(0.05, 0.001));
  }
  return workload;
}

struct MicroResult {
  double ms = 0.0;
  double mpps = 0.0;  // Million points per second.
};

template <typename Fn>
MicroResult TimeIngest(const Workload& workload, Fn&& ingest) {
  const auto start = std::chrono::steady_clock::now();
  ingest();
  MicroResult result;
  result.ms = MillisSince(start);
  result.mpps = static_cast<double>(workload.total_points()) / (result.ms * 1000.0);
  return result;
}

// Fastest of `reps` runs; `run_once` must build fresh state each call so reps
// are independent.
template <typename Fn>
MicroResult BestOf(int reps, Fn&& run_once) {
  MicroResult best;
  for (int r = 0; r < reps; ++r) {
    const MicroResult result = run_once();
    if (r == 0 || result.ms < best.ms) {
      best = result;
    }
  }
  return best;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  using namespace fbdetect;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }

  PrintHeader(std::string("Ingestion throughput: interned keys, shards, batches, tiering") +
              (smoke ? " [smoke]" : ""));
  const unsigned hw_cores = std::thread::hardware_concurrency();
  std::printf("hardware cores: %u\n", hw_cores);

  // --- 1. Micro ingest, single thread -----------------------------------
  const size_t num_services = smoke ? 8 : 40;
  const size_t metrics_per_service = smoke ? 10 : 50;
  const size_t num_points = smoke ? 40 : 400;
  const Workload workload = MakeWorkload(num_services, metrics_per_service, num_points);
  std::printf("\n[1] micro ingest: %zu series x %zu points = %zu points, per-service tick order\n",
              workload.ids.size(), workload.num_points, workload.total_points());

  // Fleet emission order: each service's metrics are written tick by tick
  // (one ingest worker owns one service), time-interleaved within a service.
  auto pointwise = [&](auto& db, const auto& keys) {
    for (size_t s = 0; s < num_services; ++s) {
      const size_t first = s * metrics_per_service;
      for (size_t p = 0; p < workload.num_points; ++p) {
        const TimePoint t = Workload::TimeAt(p);
        for (size_t m = 0; m < metrics_per_service; ++m) {
          db.Write(keys[first + m], t, workload.values[p]);
        }
      }
    }
  };

  // The seed emit path built a fresh MetricId per point — copying the service
  // and entity strings every Write (see the seed's EmitProcessCpu /
  // WriteGcpuBucket) — then hashed those strings in the database. This is the
  // string-keyed point-at-a-time baseline the interned handles replace.
  auto pointwise_constructing = [&](auto& db) {
    for (size_t s = 0; s < num_services; ++s) {
      const size_t first = s * metrics_per_service;
      for (size_t p = 0; p < workload.num_points; ++p) {
        const TimePoint t = Workload::TimeAt(p);
        for (size_t m = 0; m < metrics_per_service; ++m) {
          const MetricId& proto = workload.ids[first + m];
          MetricId id;
          id.service = proto.service;
          id.kind = proto.kind;
          id.entity = proto.entity;
          db.Write(id, t, workload.values[p]);
        }
      }
    }
  };

  const int reps = smoke ? 1 : 3;

  const MicroResult legacy_result = BestOf(reps, [&] {
    legacy::Database db;
    const MicroResult result = TimeIngest(workload, [&] { pointwise_constructing(db); });
    FBD_CHECK(db.total_points() == workload.total_points());
    return result;
  });

  const MicroResult string_result = BestOf(reps, [&] {
    TimeSeriesDatabase db;
    const MicroResult result = TimeIngest(workload, [&] { pointwise_constructing(db); });
    FBD_CHECK(db.total_points() == workload.total_points());
    return result;
  });

  auto intern_all = [&](TimeSeriesDatabase& db) {
    std::vector<InternedMetricId> interned;
    interned.reserve(workload.ids.size());
    for (const MetricId& id : workload.ids) {
      interned.push_back(db.Intern(id));
    }
    return interned;
  };

  const MicroResult interned_result = BestOf(reps, [&] {
    TimeSeriesDatabase db;
    const std::vector<InternedMetricId> keys = intern_all(db);
    const MicroResult result = TimeIngest(workload, [&] { pointwise(db, keys); });
    FBD_CHECK(db.total_points() == workload.total_points());
    return result;
  });

  auto batched = [&](TimeSeriesDatabase& db, const std::vector<InternedMetricId>& keys,
                     size_t flush_points, size_t seal_every_steps) {
    WriteBatch batch(&db);
    for (size_t s = 0; s < num_services; ++s) {
      const size_t first = s * metrics_per_service;
      for (size_t p = 0; p < workload.num_points; ++p) {
        const TimePoint t = Workload::TimeAt(p);
        for (size_t m = 0; m < metrics_per_service; ++m) {
          batch.Add(keys[first + m], t, workload.values[p]);
        }
        if (batch.point_count() >= flush_points) {
          batch.Commit();
        }
        if (seal_every_steps != 0 && (p + 1) % seal_every_steps == 0) {
          batch.Commit();
          db.SealBefore(t + 1);
        }
      }
    }
    batch.Commit();
  };

  auto batched_variant = [&](size_t shard_count, size_t seal_every_steps) {
    return BestOf(reps, [&] {
      TsdbOptions options;
      options.shard_count = shard_count;
      TimeSeriesDatabase db(options);
      const std::vector<InternedMetricId> keys = intern_all(db);
      const MicroResult result =
          TimeIngest(workload, [&] { batched(db, keys, 4096, seal_every_steps); });
      FBD_CHECK(db.total_points() == workload.total_points());
      return result;
    });
  };

  const MicroResult unsharded_batched_result = batched_variant(1, 0);
  const MicroResult sharded_batched_result = batched_variant(16, 0);
  // Tiered: seal the backlog four times over the run, so the Gorilla
  // compression cost lands inside the timed region.
  const MicroResult tiered_result = batched_variant(16, workload.num_points / 4);

  const double speedup = sharded_batched_result.mpps / legacy_result.mpps;
  std::printf("    %-38s %8.1f ms  %6.2f Mpts/s\n", "legacy db, seed emit (id per point):",
              legacy_result.ms, legacy_result.mpps);
  std::printf("    %-38s %8.1f ms  %6.2f Mpts/s\n", "new db, seed emit (id per point):",
              string_result.ms, string_result.mpps);
  std::printf("    %-38s %8.1f ms  %6.2f Mpts/s\n", "new db, interned, point-at-a-time:",
              interned_result.ms, interned_result.mpps);
  std::printf("    %-38s %8.1f ms  %6.2f Mpts/s\n", "interned + batch, 1 shard:",
              unsharded_batched_result.ms, unsharded_batched_result.mpps);
  std::printf("    %-38s %8.1f ms  %6.2f Mpts/s\n", "interned + batch, 16 shards:",
              sharded_batched_result.ms, sharded_batched_result.mpps);
  std::printf("    %-38s %8.1f ms  %6.2f Mpts/s\n", "interned + batch + inline sealing:",
              tiered_result.ms, tiered_result.mpps);
  std::printf("    speedup (interned+batch+shards vs legacy): %.2fx\n", speedup);

  // --- 2. Multi-thread scaling ------------------------------------------
  std::printf("\n[2] parallel ingest, one batch per worker, shared sharded db\n");
  const size_t scale_services = smoke ? 8 : 64;
  const size_t scale_metrics = smoke ? 10 : 50;
  const size_t scale_points = smoke ? 40 : 300;
  const Workload scale_workload = MakeWorkload(scale_services, scale_metrics, scale_points);
  struct ScalePoint {
    int threads = 0;
    double mpps = 0.0;
    double speedup = 0.0;
  };
  std::vector<ScalePoint> scaling;
  for (int threads : {1, 2, 4, 8}) {
    TsdbOptions options;
    options.shard_count = 64;
    TimeSeriesDatabase db(options);
    std::vector<InternedMetricId> keys;
    keys.reserve(scale_workload.ids.size());
    for (const MetricId& id : scale_workload.ids) {
      keys.push_back(db.Intern(id));
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    const size_t services_per_worker =
        (scale_services + static_cast<size_t>(threads) - 1) / static_cast<size_t>(threads);
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        const size_t service_begin = static_cast<size_t>(w) * services_per_worker;
        const size_t service_end = std::min(scale_services, service_begin + services_per_worker);
        WriteBatch batch(&db);
        for (size_t s = service_begin; s < service_end; ++s) {
          const size_t first = s * scale_metrics;
          for (size_t p = 0; p < scale_workload.num_points; ++p) {
            const TimePoint t = Workload::TimeAt(p);
            for (size_t m = 0; m < scale_metrics; ++m) {
              batch.Add(keys[first + m], t, scale_workload.values[p]);
            }
            if (batch.point_count() >= 4096) {
              batch.Commit();
            }
          }
        }
        batch.Commit();
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    const double ms = MillisSince(start);
    FBD_CHECK(db.total_points() == scale_workload.total_points());
    ScalePoint point;
    point.threads = threads;
    point.mpps = static_cast<double>(scale_workload.total_points()) / (ms * 1000.0);
    point.speedup = scaling.empty() ? 1.0 : point.mpps / scaling.front().mpps;
    scaling.push_back(point);
    std::printf("    threads=%d: %8.1f ms  %6.2f Mpts/s  (%.2fx vs 1 thread)\n", threads, ms,
                point.mpps, point.speedup);
  }

  // --- 3. Sealed-history memory -----------------------------------------
  std::printf("\n[3] sealed history vs raw storage\n");
  const size_t mem_series = smoke ? 20 : 200;
  const size_t mem_points = smoke ? 200 : 2000;
  TimeSeriesDatabase mem_db;
  Rng mem_rng(7);
  for (size_t s = 0; s < mem_series; ++s) {
    const MetricId id{"svc_" + std::to_string(s % 8), MetricKind::kGcpu,
                      "subroutine_" + std::to_string(s), ""};
    const InternedMetricId key = mem_db.Intern(id);
    WriteBatch batch(&mem_db);
    for (size_t p = 0; p < mem_points; ++p) {
      batch.Add(key, Workload::TimeAt(p), mem_rng.Normal(0.05, 0.001));
    }
    batch.Commit();
  }
  mem_db.SealBefore(Workload::TimeAt(mem_points) + 1);
  const TimeSeriesDatabase::MemoryStats stats = mem_db.memory_stats();
  FBD_CHECK(stats.sealed_points == mem_series * mem_points);
  const double ratio =
      static_cast<double>(stats.sealed_raw_bytes()) / static_cast<double>(stats.sealed_bytes);
  std::printf("    %zu series x %zu points: raw %zu bytes, sealed %zu bytes, %.2fx reduction\n",
              mem_series, mem_points, stats.sealed_raw_bytes(), stats.sealed_bytes, ratio);

  // --- JSON -------------------------------------------------------------
  FILE* json = std::fopen("BENCH_ingest.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"hardware_cores\": %u,\n", hw_cores);
  std::fprintf(json, "  \"micro_ingest\": {\n");
  std::fprintf(json, "    \"series\": %zu, \"points_per_series\": %zu,\n", workload.ids.size(),
               workload.num_points);
  std::fprintf(json, "    \"legacy_string_pointwise_mpps\": %.3f,\n", legacy_result.mpps);
  std::fprintf(json, "    \"string_pointwise_mpps\": %.3f,\n", string_result.mpps);
  std::fprintf(json, "    \"interned_pointwise_mpps\": %.3f,\n", interned_result.mpps);
  std::fprintf(json, "    \"interned_batched_1shard_mpps\": %.3f,\n",
               unsharded_batched_result.mpps);
  std::fprintf(json, "    \"interned_batched_16shard_mpps\": %.3f,\n",
               sharded_batched_result.mpps);
  std::fprintf(json, "    \"interned_batched_sealing_mpps\": %.3f,\n", tiered_result.mpps);
  std::fprintf(json, "    \"speedup_vs_legacy\": %.2f\n", speedup);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"thread_scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(json, "    {\"threads\": %d, \"mpps\": %.3f, \"speedup_vs_1\": %.2f}%s\n",
                 scaling[i].threads, scaling[i].mpps, scaling[i].speedup,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"tiered_memory\": {\"series\": %zu, \"points_per_series\": %zu, "
                     "\"raw_bytes\": %zu, \"sealed_bytes\": %zu, \"reduction\": %.2f}\n",
               mem_series, mem_points, stats.sealed_raw_bytes(), stats.sealed_bytes, ratio);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_ingest.json\n");
  return 0;
}
