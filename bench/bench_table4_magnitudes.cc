// Table 4 reproduction: magnitude distribution of detected regressions.
//
// A one-month scenario injects many step/gradual regressions with
// log-uniform magnitudes. Every pipeline report is classified against the
// ground truth as a true regression (TR: matches an injected regression) or
// a false positive (FP: everything else). We then print Smallest / P10 /
// P50 / P90 / P99 / Largest of the reported absolute gCPU deltas for All /
// TR / FP rows, the exact shape of the paper's Table 4.
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

struct Classified {
  std::vector<double> all;
  std::vector<double> true_regressions;
  std::vector<double> false_positives;
};

Classified Run(uint64_t seed) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.service_name = "svc";
  options.num_subroutines = 180;
  options.duration = Days(21);
  options.samples_per_bucket = 4000000;
  options.num_step_regressions = 28;
  options.num_gradual_regressions = 6;
  options.num_cost_shifts = 8;
  options.num_transients = 30;
  options.num_seasonal_shifts = 1;
  options.num_background_commits = 200;
  options.min_regression_magnitude = 0.02;
  options.max_regression_magnitude = 1.00;
  options.seed = seed;
  const Scenario scenario = GenerateScenario(fleet, options);
  fleet.Run(scenario.begin, scenario.end);

  PipelineOptions pipeline_options;
  pipeline_options.detection.threshold = 0.00005;  // 0.005%, FrontFaaS (small).
  pipeline_options.detection.windows.historical = Days(4);
  pipeline_options.detection.windows.analysis = Hours(4);
  pipeline_options.detection.windows.extended = Hours(2);
  pipeline_options.detection.rerun_interval = Hours(4);

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, pipeline_options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod("svc", scenario.begin + Days(4), scenario.end);

  Classified classified;
  for (const Regression& report : reports) {
    // Table 4 tabulates gCPU regression magnitudes; skip other metric kinds.
    if (report.metric.kind != MetricKind::kGcpu) {
      continue;
    }
    const double magnitude = report.delta;  // Absolute gCPU delta.
    classified.all.push_back(magnitude);
    bool matched = false;
    for (const InjectedEvent& event : fleet.ground_truth()) {
      if (!event.IsTrueRegression() ||
          std::llabs(static_cast<long long>(report.change_time - event.start)) >
              static_cast<long long>(Days(1))) {
        continue;
      }
      const bool entity_match = event.subroutine == report.metric.entity;
      const bool commit_match =
          event.commit_id >= 0 &&
          std::find(report.candidate_root_causes.begin(), report.candidate_root_causes.end(),
                    event.commit_id) != report.candidate_root_causes.end();
      if (entity_match || commit_match) {
        matched = true;
        break;
      }
    }
    (matched ? classified.true_regressions : classified.false_positives).push_back(magnitude);
  }
  return classified;
}

void PrintRowFor(const char* label, const std::vector<double>& magnitudes) {
  if (magnitudes.empty()) {
    std::printf("%-5s (no reports)\n", label);
    return;
  }
  std::printf("%-5s %-10s %-10s %-10s %-10s %-10s %-10s  n=%zu\n", label,
              FormatPercent(Min(magnitudes)).c_str(),
              FormatPercent(Percentile(magnitudes, 10.0)).c_str(),
              FormatPercent(Percentile(magnitudes, 50.0)).c_str(),
              FormatPercent(Percentile(magnitudes, 90.0)).c_str(),
              FormatPercent(Percentile(magnitudes, 99.0)).c_str(),
              FormatPercent(Max(magnitudes)).c_str(), magnitudes.size());
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("Table 4 — magnitude distribution of detected regressions (abs gCPU)");
  const Classified classified = Run(2024);
  std::printf("%-5s %-10s %-10s %-10s %-10s %-10s %-10s\n", "", "Smallest", "P10", "P50",
              "P90", "P99", "Largest");
  PrintRowFor("All", classified.all);
  PrintRowFor("TR", classified.true_regressions);
  PrintRowFor("FP", classified.false_positives);
  std::printf("\nPaper shape to compare: TR and All distributions nearly coincide; the\n"
              "largest reported magnitudes tend to be FPs (cost shifts); the smallest\n"
              "detections approach the configured 0.005%% threshold.\n");
  return 0;
}
