// Appendix A.2 reproduction: the detection-threshold law
//     Delta_threshold ∝ sqrt(sigma^2 / n).
//
// For a grid of (sigma^2, n) we find the empirical minimum detectable mean
// shift (80% power at alpha=0.01 under the Welch t-test) by bisection over
// repeated trials, then report Delta / sqrt(sigma^2/n), which the law
// predicts to be a constant (T_critical-ish) across the whole grid.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/stats/hypothesis.h"

namespace fbdetect {
namespace {

// Detection power for shift `delta` at (sigma, n).
double Power(double delta, double sigma, int n, Rng& rng) {
  const int kTrials = 60;
  int detected = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    a.reserve(static_cast<size_t>(n));
    b.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      a.push_back(rng.Normal(0.0, sigma));
      b.push_back(rng.Normal(delta, sigma));
    }
    detected += WelchTTest(a, b, 0.01).significant ? 1 : 0;
  }
  return static_cast<double>(detected) / kTrials;
}

double MinimumDetectableShift(double sigma, int n, Rng& rng) {
  double lo = 0.0;
  double hi = 8.0 * sigma;  // Always detectable.
  for (int iter = 0; iter < 18; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (Power(mid, sigma, n, rng) >= 0.8) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  using namespace fbdetect;

  bool threads_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads-sweep") {
      threads_sweep = true;
    }
  }

  // --- Threads sweep: the multicore rig (EXPERIMENTS.md) -----------------
  // The bisection grid is embarrassingly parallel across (sigma^2, n) cells.
  // Each cell gets its own seeded Rng so the per-cell results are
  // byte-identical for any thread count; the per-core-count curve lands in
  // BENCH_simd.json.
  if (threads_sweep) {
    PrintHeader("Appendix A.2 threads sweep — bisection grid on a ThreadPool");
    struct Cell {
      double variance;
      int n;
    };
    std::vector<Cell> cells;
    for (double variance : {0.25, 1.0, 4.0}) {
      for (int n : {50, 200, 800, 3200}) {
        cells.push_back({variance, n});
      }
    }
    const std::vector<int> threads_list = {1, 2, 4, 8};
    std::vector<double> sweep_ms;
    std::vector<double> baseline;
    for (int threads : threads_list) {
      std::vector<double> ratios(cells.size(), 0.0);
      ThreadPool pool(static_cast<size_t>(threads - 1));
      const auto t0 = std::chrono::steady_clock::now();
      ParallelIndexFor(cells.size(), threads > 1 ? &pool : nullptr, [&](size_t i) {
        Rng cell_rng(99 + 1000 * static_cast<uint64_t>(i));
        const double sigma = std::sqrt(cells[i].variance);
        const double delta = MinimumDetectableShift(sigma, cells[i].n, cell_rng);
        ratios[i] = delta / std::sqrt(cells[i].variance / cells[i].n);
      });
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      if (threads == threads_list.front()) {
        baseline = ratios;
      } else {
        FBD_CHECK(ratios == baseline);  // Byte-identical for any pool size.
      }
      sweep_ms.push_back(ms);
      std::printf("    threads=%d: %8.1f ms   speedup vs 1: %.2fx\n", threads, ms,
                  sweep_ms[0] / ms);
    }
    char extra[64];
    std::snprintf(extra, sizeof(extra), "{\"grid_cells\": %zu, \"curve\": ", cells.size());
    UpdateBenchSimdJson("appendix_sweep",
                        extra + ThreadsCurveJson(threads_list, sweep_ms) + "}");
    return 0;
  }

  PrintHeader("Appendix A.2 — Delta_threshold ∝ sqrt(sigma^2 / n)");
  std::printf("%-10s %-8s %-16s %-20s %-18s\n", "sigma^2", "n", "Delta_threshold",
              "sqrt(sigma^2/n)", "ratio (≈const)");
  Rng rng(99);
  std::vector<double> ratios;
  for (double variance : {0.25, 1.0, 4.0}) {
    const double sigma = std::sqrt(variance);
    for (int n : {50, 200, 800, 3200}) {
      const double delta = MinimumDetectableShift(sigma, n, rng);
      const double scale = std::sqrt(variance / n);
      const double ratio = delta / scale;
      ratios.push_back(ratio);
      std::printf("%-10.2f %-8d %-16.5f %-20.5f %-18.2f\n", variance, n, delta, scale, ratio);
    }
  }
  const double mean_ratio = Mean(ratios);
  double max_dev = 0.0;
  for (double r : ratios) {
    max_dev = std::max(max_dev, std::fabs(r - mean_ratio) / mean_ratio);
  }
  std::printf("\nmean ratio = %.2f, max deviation = %.1f%% — the ratio is (near) constant\n"
              "across a 16x variance range and a 64x sample-size range, confirming\n"
              "Delta_threshold ∝ sqrt(sigma^2/n) (Expression 1).\n",
              mean_ratio, 100.0 * max_dev);
  return 0;
}
