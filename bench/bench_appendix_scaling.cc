// Appendix A.2 reproduction: the detection-threshold law
//     Delta_threshold ∝ sqrt(sigma^2 / n).
//
// For a grid of (sigma^2, n) we find the empirical minimum detectable mean
// shift (80% power at alpha=0.01 under the Welch t-test) by bisection over
// repeated trials, then report Delta / sqrt(sigma^2/n), which the law
// predicts to be a constant (T_critical-ish) across the whole grid.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/stats/hypothesis.h"

namespace fbdetect {
namespace {

// Detection power for shift `delta` at (sigma, n).
double Power(double delta, double sigma, int n, Rng& rng) {
  const int kTrials = 60;
  int detected = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    a.reserve(static_cast<size_t>(n));
    b.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      a.push_back(rng.Normal(0.0, sigma));
      b.push_back(rng.Normal(delta, sigma));
    }
    detected += WelchTTest(a, b, 0.01).significant ? 1 : 0;
  }
  return static_cast<double>(detected) / kTrials;
}

double MinimumDetectableShift(double sigma, int n, Rng& rng) {
  double lo = 0.0;
  double hi = 8.0 * sigma;  // Always detectable.
  for (int iter = 0; iter < 18; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (Power(mid, sigma, n, rng) >= 0.8) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("Appendix A.2 — Delta_threshold ∝ sqrt(sigma^2 / n)");
  std::printf("%-10s %-8s %-16s %-20s %-18s\n", "sigma^2", "n", "Delta_threshold",
              "sqrt(sigma^2/n)", "ratio (≈const)");
  Rng rng(99);
  std::vector<double> ratios;
  for (double variance : {0.25, 1.0, 4.0}) {
    const double sigma = std::sqrt(variance);
    for (int n : {50, 200, 800, 3200}) {
      const double delta = MinimumDetectableShift(sigma, n, rng);
      const double scale = std::sqrt(variance / n);
      const double ratio = delta / scale;
      ratios.push_back(ratio);
      std::printf("%-10.2f %-8d %-16.5f %-20.5f %-18.2f\n", variance, n, delta, scale, ratio);
    }
  }
  const double mean_ratio = Mean(ratios);
  double max_dev = 0.0;
  for (double r : ratios) {
    max_dev = std::max(max_dev, std::fabs(r - mean_ratio) / mean_ratio);
  }
  std::printf("\nmean ratio = %.2f, max deviation = %.1f%% — the ratio is (near) constant\n"
              "across a 16x variance range and a 64x sample-size range, confirming\n"
              "Delta_threshold ∝ sqrt(sigma^2/n) (Expression 1).\n",
              mean_ratio, 100.0 * max_dev);
  return 0;
}
