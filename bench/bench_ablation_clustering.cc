// Ablation: SOM vs K-means vs hierarchical clustering for regression
// deduplication (§5.5.1 "Discussion of alternatives").
//
// The paper chose SOM because its single hyperparameter has a robust
// setting (grid L = ceil(n^1/4)) across workloads, while K needs to be known
// for K-means and the cut level for hierarchical clustering depends on the
// data distribution (and Silhouette-driven selection often fails).
//
// We generate cohorts with a KNOWN number of regression causes (each cause
// produces several near-duplicate feature vectors) at several cohort sizes
// and spreads, then measure how close each algorithm's cluster count gets to
// the truth using its workload-independent setting:
//   SOM          — grid rule, no tuning;
//   K-means      — K fixed to one global value (8) for all cohorts;
//   hierarchical — cut level chosen by maximizing the Silhouette score over
//                  a geometric grid.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/clustering_alternatives.h"
#include "src/core/som.h"

namespace fbdetect {
namespace {

struct Cohort {
  std::vector<std::vector<double>> items;
  int true_causes = 0;
};

Cohort MakeCohort(int causes, int duplicates_per_cause, double spread, bool mixed,
                  uint64_t seed) {
  Cohort cohort;
  cohort.true_causes = causes;
  Rng rng(seed);
  const size_t dims = 8;
  for (int cause = 0; cause < causes; ++cause) {
    std::vector<double> center(dims);
    for (double& c : center) {
      c = rng.Uniform(-5.0, 5.0);
    }
    // "Mixed" cohorts model production heterogeneity: per-cause spreads vary
    // 20x, which is what destabilizes a single global cut level.
    const double cause_spread = mixed ? rng.Uniform(0.1, 2.0) : spread;
    for (int duplicate = 0; duplicate < duplicates_per_cause; ++duplicate) {
      std::vector<double> item(dims);
      for (size_t d = 0; d < dims; ++d) {
        item[d] = center[d] + rng.Normal(0.0, cause_spread);
      }
      cohort.items.push_back(std::move(item));
    }
  }
  return cohort;
}

int SomClusterCount(const Cohort& cohort, uint64_t seed) {
  const int grid = SomGridSize(cohort.items.size());
  SelfOrganizingMap som(cohort.items[0].size(), grid, seed);
  SomTrainConfig train;
  train.seed = seed;
  som.Train(cohort.items, train);
  return CountClusters(som.Assign(cohort.items));
}

int HierarchicalBySilhouette(const Cohort& cohort) {
  double best_score = -2.0;
  int best_count = 1;
  for (double threshold = 0.125; threshold <= 16.0; threshold *= 2.0) {
    const std::vector<int> assignment = HierarchicalCluster(cohort.items, threshold);
    const double score = SilhouetteScore(cohort.items, assignment);
    if (score > best_score) {
      best_score = score;
      best_count = CountClusters(assignment);
    }
  }
  return best_count;
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("§5.5.1 ablation — SOM vs K-means vs hierarchical clustering");
  std::printf("%-8s %-8s %-8s | %-10s %-12s %-14s\n", "causes", "items", "spread", "SOM(rule)",
              "KMeans(K=8)", "Hier(silh.)");
  struct Case {
    int causes;
    int duplicates;
    double spread;  // Ignored when mixed.
    bool mixed;
  };
  const Case cases[] = {
      {2, 12, 0.3, false}, {4, 10, 0.3, false}, {8, 8, 0.3, false},  {16, 6, 0.3, false},
      {4, 10, 0.0, true},  {8, 8, 0.0, true},   {16, 6, 0.0, true},  {32, 5, 0.0, true},
  };
  // For deduplication, merging DISTINCT causes is the costly failure (a
  // regression report is lost); over-segmentation is cleaned up by the later
  // PairwiseDedup pass. Track undercount (causes lost) as the key metric.
  double som_lost = 0.0;
  double kmeans_lost = 0.0;
  double hier_lost = 0.0;
  double som_excess = 0.0;
  double kmeans_excess = 0.0;
  double hier_excess = 0.0;
  uint64_t seed = 1;
  for (const Case& c : cases) {
    const Cohort cohort = MakeCohort(c.causes, c.duplicates, c.spread, c.mixed, seed++);
    const int som = SomClusterCount(cohort, seed++);
    const int kmeans = CountClusters(KMeansCluster(cohort.items, 8, 50, seed++));
    const int hier = HierarchicalBySilhouette(cohort);
    std::printf("%-8d %-8zu %-8s | %-10d %-12d %-14d\n", c.causes, cohort.items.size(),
                c.mixed ? "mixed" : FormatDouble(c.spread, "%.1f").c_str(), som, kmeans, hier);
    som_lost += std::max(0, c.causes - som) / static_cast<double>(c.causes);
    kmeans_lost += std::max(0, c.causes - kmeans) / static_cast<double>(c.causes);
    hier_lost += std::max(0, c.causes - hier) / static_cast<double>(c.causes);
    som_excess += std::max(0, som - c.causes) / static_cast<double>(c.causes);
    kmeans_excess += std::max(0, kmeans - c.causes) / static_cast<double>(c.causes);
    hier_excess += std::max(0, hier - c.causes) / static_cast<double>(c.causes);
  }
  const double n = static_cast<double>(std::size(cases));
  std::printf("\nmean fraction of causes LOST to under-merging —\n"
              "  SOM(grid rule): %.2f   K-means(fixed K): %.2f   hierarchical(silhouette): %.2f\n",
              som_lost / n, kmeans_lost / n, hier_lost / n);
  std::printf("mean EXCESS clusters (duplicate reports not merged, relative to true) —\n"
              "  SOM(grid rule): %.2f   K-means(fixed K): %.2f   hierarchical(silhouette): %.2f\n",
              som_excess / n, kmeans_excess / n, hier_excess / n);
  std::printf(
      "\nPaper shape to compare: the SOM grid rule needs no per-workload tuning and\n"
      "rarely merges distinct causes; a fixed K loses causes whenever K < true count;\n"
      "silhouette-driven cut selection degrades on heterogeneous (mixed-spread) data.\n");
  return 0;
}
