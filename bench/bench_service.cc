// Service-mode load harness (DESIGN.md §16): drives the overload-safe
// ingest server end-to-end over real loopback HTTP and records what the
// robustness layer promises —
//   * sustained:  closed-loop clients, unlimited admission -> points/sec
//                 through accept -> parse -> WriteBatch -> ack, plus
//                 client-observed p50/p99 latency;
//   * overload:   paced clients offering 0.5x / 1x / 4x the admitted rate
//                 against a token bucket -> exact shed accounting
//                 (offered == admitted + shed), bounded queue peaks;
//   * drain:      BeginDrain mid-load against a durable database -> drain
//                 wall time, and a reopen proving every acked point
//                 survived (ack-after-commit + checkpoint-on-drain).
//
// Writes BENCH_service.json. `--smoke` shrinks durations for CI. Exits
// non-zero if any invariant fails, so CI can gate on it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/pipeline.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/service/workload.h"
#include "src/tsdb/database.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct ClientResult {
  uint64_t requests = 0;
  uint64_t http_200 = 0;
  uint64_t http_shed = 0;  // 429 or 503.
  uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;
};

struct LegResult {
  fbdetect::ServiceServer::Stats stats;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t client_requests = 0;
  uint64_t client_200 = 0;
  uint64_t client_shed = 0;
  uint64_t transport_errors = 0;
  double drain_ms = 0;
  bool drained = false;
};

double Percentile(std::vector<double>& values, double q) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(q * static_cast<double>(values.size() - 1));
  return values[index];
}

// One closed- or paced-loop client: POSTs synthetic batches until
// `stop` flips. `interval_ns` == 0 means closed-loop (as fast as acks come
// back); otherwise one request is launched per interval (offered-rate
// pacing for the overload sweep).
ClientResult RunClient(uint16_t port, const std::string& service, int series,
                       int points_per_series, uint64_t interval_ns,
                       const std::atomic<bool>& stop) {
  ClientResult result;
  fbdetect::SyntheticWorkload workload(service, series, points_per_series,
                                       /*start=*/0, /*step=*/60);
  fbdetect::HttpClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    ++result.transport_errors;
    return result;
  }
  std::string body;
  result.latencies_ms.reserve(1 << 16);
  Clock::time_point next = Clock::now();
  while (!stop.load(std::memory_order_relaxed)) {
    if (interval_ns != 0) {
      std::this_thread::sleep_until(next);
      next += std::chrono::nanoseconds(interval_ns);
    }
    workload.NextBody(body);
    fbdetect::HttpResponse response;
    const Clock::time_point sent = Clock::now();
    const fbdetect::Status status =
        client.Post("/ingest", "application/x-fbdetect", body, &response);
    ++result.requests;
    if (!status.ok()) {
      ++result.transport_errors;
      if (!client.Connect("127.0.0.1", port).ok()) {
        break;  // Server is gone (drain leg tears it down mid-flight).
      }
      continue;
    }
    result.latencies_ms.push_back(MsSince(sent));
    if (response.status == 200) {
      ++result.http_200;
    } else if (response.status == 429 || response.status == 503) {
      ++result.http_shed;
    }
  }
  return result;
}

// Spins up a fresh db/pipeline/server, applies `load` for `seconds`, then
// drains (graceful) and returns the merged accounting.
LegResult RunLeg(fbdetect::TsdbOptions tsdb_options,
                 fbdetect::ServiceOptions service_options, int connections,
                 int series, int points_per_series, uint64_t interval_ns,
                 double seconds, uint64_t* reopened_points = nullptr) {
  fbdetect::TimeSeriesDatabase db(tsdb_options);
  fbdetect::PipelineOptions pipeline_options;
  fbdetect::Pipeline pipeline(&db, nullptr, nullptr, pipeline_options);
  fbdetect::ServiceServer server(&db, &pipeline, service_options);
  const fbdetect::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", started.message().c_str());
    std::exit(1);
  }
  std::thread loop([&server] { server.Run(); });

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  std::vector<ClientResult> results(static_cast<size_t>(connections));
  const Clock::time_point begin = Clock::now();
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      results[static_cast<size_t>(c)] =
          RunClient(server.port(), "svc_" + std::to_string(c), series,
                    points_per_series, interval_ns, stop);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));

  // Drain while the clients are still firing — the drain leg's entire point.
  const Clock::time_point drain_begin = Clock::now();
  server.BeginDrain();
  loop.join();
  const double drain_ms = MsSince(drain_begin);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) {
    t.join();
  }

  LegResult leg;
  leg.stats = server.stats();
  leg.seconds = std::chrono::duration<double>(drain_begin - begin).count();
  leg.drain_ms = drain_ms;
  leg.drained = server.drained();
  std::vector<double> latencies;
  for (ClientResult& r : results) {
    leg.client_requests += r.requests;
    leg.client_200 += r.http_200;
    leg.client_shed += r.http_shed;
    leg.transport_errors += r.transport_errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  leg.p50_ms = Percentile(latencies, 0.50);
  leg.p99_ms = Percentile(latencies, 0.99);

  if (reopened_points != nullptr) {
    // Reopen the durable directory: recovery must reproduce every acked
    // point (ack-after-commit + SealBefore checkpoint at drain).
    fbdetect::TimeSeriesDatabase reopened(tsdb_options);
    *reopened_points = reopened.total_points();
  }
  return leg;
}

bool CheckAccounting(const char* leg, const fbdetect::ServiceServer::Stats& s) {
  if (s.offered_requests != s.admitted_requests + s.shed()) {
    std::fprintf(stderr, "FAIL [%s]: offered %llu != admitted %llu + shed %llu\n", leg,
                 static_cast<unsigned long long>(s.offered_requests),
                 static_cast<unsigned long long>(s.admitted_requests),
                 static_cast<unsigned long long>(s.shed()));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  std::printf("bench_service: overload-safe service mode%s\n", smoke ? " [smoke]" : "");
  bool ok = true;

  // --- Leg 1: sustained throughput, unlimited admission, closed loop ---
  fbdetect::ServiceOptions sustained_options;
  sustained_options.parse_threads = 2;
  sustained_options.flush_points = 64 * 1024;
  sustained_options.parse_high_watermark_points = 1 << 20;
  sustained_options.parse_low_watermark_points = 1 << 18;
  sustained_options.ingest_queue_points = 1 << 20;
  const int sustained_conns = 2;
  const int sustained_series = 512;
  const int sustained_pts = 64;  // 32768 points per request.
  const double sustained_secs = smoke ? 1.0 : 5.0;
  LegResult sustained =
      RunLeg(fbdetect::TsdbOptions{}, sustained_options, sustained_conns,
             sustained_series, sustained_pts, /*interval_ns=*/0, sustained_secs);
  const double sustained_pps =
      static_cast<double>(sustained.stats.acked_points) / sustained.seconds;
  std::printf("  sustained: %.0f pts/s (acked %llu in %.2fs), p50 %.2fms p99 %.2fms\n",
              sustained_pps, static_cast<unsigned long long>(sustained.stats.acked_points),
              sustained.seconds, sustained.p50_ms, sustained.p99_ms);
  ok = CheckAccounting("sustained", sustained.stats) && ok;

  // --- Leg 2: overload sweep against a token bucket ---
  const uint64_t admit_rate = smoke ? 200'000 : 500'000;
  const int overload_series = 128;
  const int overload_pts = 32;  // 4096 points per request.
  const uint64_t batch_points =
      static_cast<uint64_t>(overload_series) * static_cast<uint64_t>(overload_pts);
  const int overload_conns = 2;
  const double factors[] = {0.5, 1.0, 4.0};
  struct OverloadRow {
    double factor;
    LegResult leg;
    uint64_t capacity;
  };
  std::vector<OverloadRow> overload_rows;
  for (const double factor : factors) {
    fbdetect::ServiceOptions options;
    options.admit_points_per_sec = admit_rate;
    options.admit_burst_points = admit_rate / 4;
    options.parse_threads = 1;
    options.flush_points = 32 * 1024;
    options.parse_high_watermark_points = 128 * 1024;
    options.parse_low_watermark_points = 32 * 1024;
    options.ingest_queue_points = 128 * 1024;
    const double offered_pps = factor * static_cast<double>(admit_rate);
    // Each of `overload_conns` clients offers its share of the total rate:
    // one batch every batch_points / (offered_pps / conns) seconds.
    const uint64_t interval_ns =
        static_cast<uint64_t>(static_cast<double>(batch_points) *
                              static_cast<double>(overload_conns) / offered_pps * 1e9);
    LegResult leg = RunLeg(fbdetect::TsdbOptions{}, options, overload_conns,
                           overload_series, overload_pts, interval_ns,
                           smoke ? 1.0 : 3.0);
    const double shed_rate =
        leg.stats.offered_requests == 0
            ? 0
            : static_cast<double>(leg.stats.shed()) /
                  static_cast<double>(leg.stats.offered_requests);
    std::printf("  overload %.1fx: offered %llu admitted %llu shed %llu (%.0f%%; "
                "429=%llu 503=%llu) queue peak %llu pts\n",
                factor, static_cast<unsigned long long>(leg.stats.offered_requests),
                static_cast<unsigned long long>(leg.stats.admitted_requests),
                static_cast<unsigned long long>(leg.stats.shed()), shed_rate * 100.0,
                static_cast<unsigned long long>(leg.stats.shed_admission),
                static_cast<unsigned long long>(leg.stats.shed_backpressure +
                                                leg.stats.shed_drain),
                static_cast<unsigned long long>(leg.stats.parse_queue_peak_points));
    ok = CheckAccounting("overload", leg.stats) && ok;
    // The bound the queues promise: peak cost never exceeds capacity plus
    // one oversized item (cost accounting admits one batch into an empty
    // queue regardless of size).
    const uint64_t capacity = options.parse_high_watermark_points + batch_points;
    if (leg.stats.parse_queue_peak_points > capacity) {
      std::fprintf(stderr, "FAIL: parse queue peak %llu exceeds bound %llu\n",
                   static_cast<unsigned long long>(leg.stats.parse_queue_peak_points),
                   static_cast<unsigned long long>(capacity));
      ok = false;
    }
    overload_rows.push_back({factor, std::move(leg), capacity});
  }

  // --- Leg 3: graceful drain mid-load against a durable database ---
  const std::string drain_dir =
      (std::filesystem::temp_directory_path() / "fbd_bench_service_drain").string();
  std::filesystem::remove_all(drain_dir);
  fbdetect::TsdbOptions durable_options;
  durable_options.durable.directory = drain_dir;
  fbdetect::ServiceOptions drain_service;
  drain_service.parse_threads = 1;
  drain_service.flush_points = 16 * 1024;
  drain_service.seal_every_points = 128 * 1024;
  uint64_t reopened_points = 0;
  LegResult drain = RunLeg(durable_options, drain_service, 2, 128, 32,
                           /*interval_ns=*/0, smoke ? 0.5 : 2.0, &reopened_points);
  const bool lossless = reopened_points == drain.stats.acked_points;
  std::printf("  drain: %.1fms, drained=%s, acked %llu pts, reopened %llu pts -> %s\n",
              drain.drain_ms, drain.drained ? "clean" : "FORCED",
              static_cast<unsigned long long>(drain.stats.acked_points),
              static_cast<unsigned long long>(reopened_points),
              lossless ? "lossless" : "LOST DATA");
  ok = CheckAccounting("drain", drain.stats) && ok && drain.drained && lossless;
  std::filesystem::remove_all(drain_dir);

  // --- BENCH_service.json ---
  FILE* json = std::fopen("BENCH_service.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    fbdetect::WriteHardwareJson(json);
    std::fprintf(json, ",\n  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json,
                 "  \"sustained\": {\"connections\": %d, \"batch_points\": %d, "
                 "\"seconds\": %.2f, \"acked_points\": %llu, \"points_per_sec\": %.0f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"transport_errors\": %llu},\n",
                 sustained_conns, sustained_series * sustained_pts, sustained.seconds,
                 static_cast<unsigned long long>(sustained.stats.acked_points),
                 sustained_pps, sustained.p50_ms, sustained.p99_ms,
                 static_cast<unsigned long long>(sustained.transport_errors));
    std::fprintf(json, "  \"overload_admit_points_per_sec\": %llu,\n",
                 static_cast<unsigned long long>(admit_rate));
    std::fprintf(json, "  \"overload\": [\n");
    for (size_t i = 0; i < overload_rows.size(); ++i) {
      const OverloadRow& row = overload_rows[i];
      const fbdetect::ServiceServer::Stats& s = row.leg.stats;
      std::fprintf(json,
                   "    {\"factor\": %.1f, \"offered_requests\": %llu, "
                   "\"admitted_requests\": %llu, \"shed_admission\": %llu, "
                   "\"shed_backpressure\": %llu, \"shed_drain\": %llu, "
                   "\"acked_points\": %llu, \"parse_queue_peak_points\": %llu, "
                   "\"queue_bound_points\": %llu, \"accounting_exact\": %s, "
                   "\"p99_ms\": %.3f}%s\n",
                   row.factor, static_cast<unsigned long long>(s.offered_requests),
                   static_cast<unsigned long long>(s.admitted_requests),
                   static_cast<unsigned long long>(s.shed_admission),
                   static_cast<unsigned long long>(s.shed_backpressure),
                   static_cast<unsigned long long>(s.shed_drain),
                   static_cast<unsigned long long>(s.acked_points),
                   static_cast<unsigned long long>(s.parse_queue_peak_points),
                   static_cast<unsigned long long>(row.capacity),
                   s.offered_requests == s.admitted_requests + s.shed() ? "true" : "false",
                   row.leg.p99_ms, i + 1 < overload_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"drain\": {\"drain_ms\": %.1f, \"drained_clean\": %s, "
                 "\"acked_points\": %llu, \"reopened_points\": %llu, "
                 "\"lossless\": %s, \"seals\": %llu}\n",
                 drain.drain_ms, drain.drained ? "true" : "false",
                 static_cast<unsigned long long>(drain.stats.acked_points),
                 static_cast<unsigned long long>(reopened_points),
                 lossless ? "true" : "false",
                 static_cast<unsigned long long>(drain.stats.seals));
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("  wrote BENCH_service.json\n");
  }

  if (!ok) {
    std::fprintf(stderr, "bench_service: INVARIANT FAILURES (see above)\n");
    return 1;
  }
  std::printf("bench_service: all invariants held\n");
  return 0;
}
