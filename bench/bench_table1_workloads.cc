// Table 1 reproduction: all twelve workload configurations detect at their
// configured detection threshold.
//
// For each preset we synthesize a metric series at the preset's window
// geometry (time scaled so every series has a bounded number of points),
// inject a step regression of 2x the configured threshold inside the
// analysis window, and run the short-term detection stack (change point ->
// went-away -> seasonality -> threshold). We also verify that a 0.2x-
// threshold step is NOT reported (the threshold filter works both ways).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/core/seasonality_stage.h"
#include "src/core/threshold_filter.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

struct RunResult {
  bool change_point = false;
  bool went_away_kept = false;
  bool seasonality_kept = false;
  bool threshold_passed = false;

  bool Reported() const {
    return change_point && went_away_kept && seasonality_kept && threshold_passed;
  }
};

RunResult RunPreset(const DetectionConfig& preset, double step_multiple, uint64_t seed) {
  DetectionConfig config = preset;

  // Scale time so the historical window has ~600 points.
  const Duration tick = std::max<Duration>(Minutes(10), config.windows.historical / 600);

  // Metric family: gCPU-like for absolute rows, throughput-like for the
  // relative CT rows.
  const bool relative = config.threshold_mode == ThresholdMode::kRelative;
  const double baseline = relative ? 1000.0 : 0.02;
  const double step =
      relative ? config.threshold * baseline * step_multiple : config.threshold * step_multiple;
  // Noise: modest relative to the detectable step so the long windows matter.
  const double noise = relative ? baseline * 0.01 : config.threshold * 0.8;

  const Duration total = config.windows.Total();
  const TimePoint step_at = total - config.windows.extended - config.windows.analysis / 2;
  Rng rng(seed);
  TimeSeries series;
  // CT rows monitor throughput, where the regression direction is a DROP.
  const double direction = relative ? -1.0 : 1.0;
  for (TimePoint t = 0; t < total; t += tick) {
    const double level = baseline + (t >= step_at ? direction * step : 0.0);
    series.Append(t, rng.Normal(level, noise));
  }

  const MetricId metric{"svc",
                        relative ? MetricKind::kMaxThroughput : MetricKind::kGcpu,
                        relative ? "" : "sub_x", ""};
  const WindowExtract windows = ExtractWindows(series, total, config.windows);

  RunResult result;
  ChangePointStage stage(config);
  auto candidate = stage.Detect(metric, windows);
  result.change_point = candidate.has_value();
  if (!candidate) {
    return result;
  }
  const size_t points_per_day = static_cast<size_t>(kDay / tick);
  result.went_away_kept = WentAwayDetector(config).Evaluate(*candidate, points_per_day).keep;
  if (!result.went_away_kept) {
    return result;
  }
  result.seasonality_kept = !SeasonalityStage(config).Evaluate(*candidate).seasonal_filtered;
  if (!result.seasonality_kept) {
    return result;
  }
  // The CT rows measure throughput where regressions are drops; the stage
  // already oriented the delta, so the threshold check is uniform.
  result.threshold_passed = PassesThreshold(*candidate, config);
  return result;
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("Table 1 — twelve workload configurations detect at their thresholds");
  const std::vector<int> widths = {22, 12, 10, 12, 12, 12, 16, 16};
  PrintRow({"Workload", "Threshold", "Mode", "Historical", "Analysis", "Extended",
            "detect @2.0x?", "reject @0.2x?"},
           widths);
  int detected = 0;
  int rejected = 0;
  int total = 0;
  uint64_t seed = 1;
  for (const DetectionConfig& preset : AllTable1Configs()) {
    const RunResult strong = RunPreset(preset, 2.0, seed++);
    const RunResult weak = RunPreset(preset, 0.2, seed++);
    ++total;
    detected += strong.Reported() ? 1 : 0;
    rejected += weak.Reported() ? 0 : 1;
    PrintRow({preset.name,
              FormatPercent(preset.threshold, 3),
              preset.threshold_mode == ThresholdMode::kAbsolute ? "abs" : "rel",
              std::to_string(preset.windows.historical / kDay) + "d",
              std::to_string(preset.windows.analysis / kHour) + "h",
              preset.windows.extended == 0
                  ? "N/A"
                  : std::to_string(preset.windows.extended / kHour) + "h",
              strong.Reported() ? "YES" : "MISS",
              weak.Reported() ? "FALSE-POS" : "yes"},
             widths);
  }
  std::printf("\nSummary: %d/%d presets detect a 2x-threshold step; %d/%d reject a "
              "0.2x-threshold step.\n", detected, total, rejected, total);
  return 0;
}
