// Figure 2 reproduction: averaging Linux-process-level CPU across m servers.
//
// Two server generations: half at (mu=40%, var=0.01) gaining +0.003% after
// the change point, half at (mu=60%, var=0.02) gaining +0.007%. The paper
// shows noise shrinking as m grows from 500k to 50M, with the tiny
// regression becoming visible only at impractical m. We reproduce the
// series, report the residual noise level, and test detectability with the
// Welch t-test on the before/after halves.
#include <cstdio>
#include <span>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/fleet/scenario.h"
#include "src/stats/descriptive.h"
#include "src/stats/hypothesis.h"

namespace fbdetect {
namespace {

void RunOne(double num_servers) {
  FleetAverageOptions options;
  options.groups[0].num_servers = num_servers / 2.0;
  options.groups[0].mean = 0.40;
  options.groups[0].variance = 0.01;
  options.groups[0].regression = 0.00003;  // +0.003%.
  options.groups[1].num_servers = num_servers / 2.0;
  options.groups[1].mean = 0.60;
  options.groups[1].variance = 0.02;
  options.groups[1].regression = 0.00007;  // +0.007%.
  options.num_ticks = 200;
  options.change_tick = 100;

  Rng rng(2024);
  const std::vector<double> series = SimulateFleetAverage(options, rng);
  const std::span<const double> all(series);
  const auto before = all.subspan(0, options.change_tick);
  const auto after = all.subspan(options.change_tick);
  const TTestResult test = WelchTTest(before, after, 0.01);
  const double noise_sd = SampleStdDev(before);

  std::printf("m=%-12.0f noise_sd=%.3e  mean_shift=%+.3e  t=%7.2f  detected=%s\n",
              num_servers, noise_sd, Mean(after) - Mean(before), test.t_statistic,
              test.significant ? "YES" : "no");
  std::printf("  %s\n", Sparkline(series).c_str());
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader(
      "Figure 2 — process-level fleet averages; 0.005% regression needs ~50M servers");
  std::printf("(paper: noise visible at m=500k, regression visible only at m=50M)\n\n");
  for (double m : {500000.0, 5000000.0, 50000000.0}) {
    fbdetect::RunOne(m);
  }
  std::printf("\nConclusion: sampling 50M servers is impractical -> need variance\n"
              "reduction via subroutine-level measurement (Figure 3).\n");
  return 0;
}
