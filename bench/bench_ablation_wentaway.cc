// Ablation: the went-away detector's three production iterations (§5.2.2).
//
// Corpus of labelled post-change shapes:
//  * persistent step (TRUE regression) — must keep;
//  * step with a temporary dip + recovery (TRUE) — iteration 1's weakness;
//  * overshoot decaying to a still-regressed plateau, with a historical
//    spike (TRUE) — iteration 2's weakness (Fig. 7);
//  * transient spike that fully recovers (FALSE) — everyone must filter.
// We report keep-rates per iteration per shape; the current (SAX-based)
// iteration should be the only one right on all four.
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/stats/descriptive.h"
#include "src/core/went_away.h"
#include "src/core/went_away_legacy.h"
#include "src/core/workload_config.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);

DetectionConfig BenchConfig() {
  DetectionConfig config;
  config.threshold = 0.0005;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);
  return config;
}

enum class Shape {
  kPersistentStep,
  kStepWithDip,
  kDecayingOvershoot,  // With a historical spike.
  kTransientSpike,
};

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kPersistentStep:
      return "persistent step (TRUE)";
    case Shape::kStepWithDip:
      return "step + temp dip (TRUE)";
    case Shape::kDecayingOvershoot:
      return "overshoot decay + hist spike (TRUE)";
    case Shape::kTransientSpike:
      return "transient spike (FALSE)";
  }
  return "?";
}

bool IsTrueRegression(Shape shape) { return shape != Shape::kTransientSpike; }

TimeSeries MakeSeries(Shape shape, uint64_t seed) {
  const DetectionConfig config = BenchConfig();
  const Duration total = config.windows.Total();
  const TimePoint change_at = total - Hours(5);
  Rng rng(seed);
  TimeSeries series;
  for (TimePoint t = 0; t < total; t += kTick) {
    double level = 0.050;
    switch (shape) {
      case Shape::kPersistentStep:
        if (t >= change_at) {
          level = 0.062;
        }
        break;
      case Shape::kStepWithDip:
        if (t >= change_at) {
          level = 0.062;
          const Duration age = t - change_at;
          if (age >= Minutes(90) && age < Minutes(210)) {
            level = 0.048;  // Long temporary dip below the baseline; the
                            // level recovers with 2h still elevated.
          }
        }
        break;
      case Shape::kDecayingOvershoot:
        if (t >= Hours(10) && t < Hours(11)) {
          level = 0.085;  // Historical spike (~2% of history).
        } else if (t >= change_at) {
          const double age_hours =
              static_cast<double>(t - change_at) / static_cast<double>(kHour);
          level = 0.062 + 0.015 * std::exp(-age_hours / 3.0);  // Slow decay.
        }
        break;
      case Shape::kTransientSpike:
        if (t >= change_at && t < change_at + Hours(2)) {
          level = 0.065;  // Recovers before the series ends.
        }
        break;
    }
    series.Append(t, rng.Normal(level, 0.0008));
  }
  return series;
}

struct KeepRates {
  int candidates = 0;
  int iteration1 = 0;
  int iteration2_good = 0;  // Baseline slice without the spike.
  int iteration2_bad = 0;   // Baseline slice containing the spike.
  int iteration3 = 0;
};

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("§5.2.2 ablation — went-away detector iterations 1/2/3");
  const DetectionConfig config = BenchConfig();
  const int kTrials = 40;

  std::printf("%-38s %-6s %-8s %-10s %-10s %-8s %s\n", "shape", "cands", "iter1", "iter2good",
              "iter2bad", "iter3", "expected");
  for (Shape shape : {Shape::kPersistentStep, Shape::kStepWithDip, Shape::kDecayingOvershoot,
                      Shape::kTransientSpike}) {
    KeepRates rates;
    for (int trial = 0; trial < kTrials; ++trial) {
      const TimeSeries series = MakeSeries(shape, 1000 + static_cast<uint64_t>(trial));
      const WindowExtract windows =
          ExtractWindows(series, series.end_time() + kTick, config.windows);
      // Build the regression record at the KNOWN change point — the ablation
      // compares the went-away predicates, not change-point placement.
      Regression candidate;
      candidate.metric = {"svc", MetricKind::kGcpu, "sub", ""};
      candidate.historical = windows.historical;
      candidate.analysis = windows.analysis_plus_extended;
      candidate.analysis_timestamps = windows.analysis_timestamps;
      candidate.extended_size = windows.extended.size();
      const TimePoint change_at = series.end_time() + kTick - Hours(5);
      candidate.change_index = 0;
      for (size_t i = 0; i < windows.analysis_timestamps.size(); ++i) {
        if (windows.analysis_timestamps[i] >= change_at) {
          candidate.change_index = i;
          break;
        }
      }
      candidate.change_time = change_at;
      candidate.baseline_mean = Mean(candidate.historical);
      candidate.regressed_mean =
          Mean(std::span<const double>(candidate.analysis).subspan(candidate.change_index));
      candidate.delta = candidate.regressed_mean - candidate.baseline_mean;
      if (candidate.delta <= 0.0) {
        continue;
      }
      candidate.relative_delta = candidate.delta / candidate.baseline_mean;
      ++rates.candidates;
      rates.iteration1 += InverseCusumWentAway(config).Keep(candidate) ? 1 : 0;
      rates.iteration2_good += TrendCompareWentAway(config, 0).Keep(candidate) ? 1 : 0;
      // The "bad" offset selects the historical slice containing the spike
      // (spike at hours 10-11 of a 48h history; slices are one analysis+
      // extended window = 6h wide, counted from the end: offset 6 covers
      // hours 6..12).
      rates.iteration2_bad += TrendCompareWentAway(config, 6).Keep(candidate) ? 1 : 0;
      rates.iteration3 += WentAwayDetector(config).Evaluate(candidate, 144).keep ? 1 : 0;
    }
    auto pct = [&](int kept) {
      return rates.candidates == 0 ? 0.0 : 100.0 * kept / rates.candidates;
    };
    std::printf("%-38s %-6d %-7.0f%% %-9.0f%% %-9.0f%% %-7.0f%% %s\n", ShapeName(shape),
                rates.candidates, pct(rates.iteration1), pct(rates.iteration2_good),
                pct(rates.iteration2_bad), pct(rates.iteration3),
                IsTrueRegression(shape) ? "keep (100%)" : "filter (0%)");
  }
  std::printf(
      "\nPaper shape to compare: iteration 1 wrongly filters true regressions with a\n"
      "temporary dip; iteration 2 is fragile to the historical-window choice when the\n"
      "history contains a spike; iteration 3 (SAX validity) is right on all shapes.\n");
  return 0;
}
