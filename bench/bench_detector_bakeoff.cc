// Detection-quality bake-off across change-point backends.
//
// FBDetect's CUSUM+EM detector (§5.2.1) is one of several credible designs;
// the backend registry (src/tsa/changepoint_backend.h) makes E-divisive,
// PELT, and an offline BOCPD adapter drop-in replacements. This bench puts
// all four on IDENTICAL labelled fleets and scores each on the axes that
// matter at hyperscale:
//   - precision / recall against injected ground truth (group-based
//     matching, same standard as bench_fpfn_accounting / bench_robustness)
//   - time-to-detect: mean gap between an injected event's start and the
//     detected_at of the first report that matches it
//   - CPU cost: wall time of the detection phase (identical data, identical
//     scan-thread count — only the backend varies)
// over a matrix of regression magnitudes {50%, 5%, 0.5%} x ingest fault
// rates {0, 0.05, 0.10} (FaultInjectorConfig::AllKinds). Each matrix cell
// generates its fleet ONCE and runs every backend over the same db, so
// scores differ only by detector. Writes BENCH_detectors.json; `--smoke`
// shrinks the world for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/pipeline.h"
#include "src/fleet/fault_injector.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"

namespace fbdetect {
namespace {

constexpr const char* kBackends[] = {"cusum_em", "e_divisive", "pelt", "bocpd"};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

struct BackendScore {
  std::string backend;
  size_t reports = 0;
  size_t true_regressions = 0;
  size_t false_positives = 0;
  size_t injected = 0;
  size_t caught = 0;
  double precision = 0.0;
  double recall = 0.0;
  double mean_ttd_hours = -1.0;  // -1 when nothing was caught.
  double detect_ms = 0.0;
};

struct Cell {
  double magnitude = 0.0;
  double fault_rate = 0.0;
  std::vector<BackendScore> scores;
};

// One fleet per (magnitude, fault rate); every backend scans the same db.
Cell RunCell(double magnitude, double fault_rate, bool smoke, uint64_t seed) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.service_name = "bakeoff";
  options.num_servers = smoke ? 150 : 1500;
  options.num_subroutines = smoke ? 40 : 100;
  options.duration = smoke ? Days(6) : Days(12);
  // Tiny magnitudes need deep sampling to be resolvable at all (Table 4's
  // setup); the same depth is kept across the matrix so only the planted
  // magnitude varies.
  options.samples_per_bucket = smoke ? 2000000 : 4000000;
  options.num_step_regressions = smoke ? 5 : 10;
  options.num_gradual_regressions = 0;
  options.num_cost_shifts = smoke ? 1 : 3;
  options.num_transients = smoke ? 4 : 15;
  options.num_seasonal_shifts = 1;
  options.num_background_commits = smoke ? 30 : 120;
  options.min_regression_magnitude = magnitude;  // Fixed-magnitude band:
  options.max_regression_magnitude = magnitude;  // the cell IS the magnitude.
  options.gcpu_only = true;
  options.seed = seed;  // Same seed across fault rates: identical ground truth.
  const Scenario scenario = GenerateScenario(fleet, options);

  FaultInjector injector(FaultInjectorConfig::AllKinds(fault_rate, seed + 1));
  FleetIngestOptions ingest;
  ingest.threads = 4;
  if (fault_rate > 0.0) {
    ingest.fault_injector = &injector;
  }
  fleet.Run(scenario.begin, scenario.end, ingest);

  Cell cell;
  cell.magnitude = magnitude;
  cell.fault_rate = fault_rate;

  CallGraphCodeInfo code_info(&scenario.service->graph());
  for (const char* backend : kBackends) {
    PipelineOptions pipeline_options;
    pipeline_options.detection.change_point_backend = backend;
    // A threshold below the smallest planted magnitude's gCPU footprint, so
    // the threshold filter never hides backend differences.
    pipeline_options.detection.threshold = 0.00005;
    pipeline_options.detection.windows.historical = smoke ? Days(2) : Days(4);
    pipeline_options.detection.windows.analysis = Hours(4);
    pipeline_options.detection.windows.extended = Hours(2);
    pipeline_options.detection.rerun_interval = Hours(4);
    pipeline_options.scan_threads = 4;
    Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, pipeline_options);

    const auto detect_start = std::chrono::steady_clock::now();
    const std::vector<Regression> reports = pipeline.RunPeriod(
        options.service_name,
        scenario.begin + pipeline_options.detection.windows.historical, scenario.end);
    const double detect_ms = MillisSince(detect_start);

    auto matches_event = [](const Regression& regression, const InjectedEvent& event) {
      if (std::llabs(static_cast<long long>(regression.change_time - event.start)) >
          static_cast<long long>(Days(1))) {
        return false;
      }
      if (!event.subroutine.empty() && regression.metric.entity == event.subroutine) {
        return true;
      }
      return event.commit_id >= 0 &&
             std::find(regression.candidate_root_causes.begin(),
                       regression.candidate_root_causes.end(),
                       event.commit_id) != regression.candidate_root_causes.end();
    };
    auto group_of = [&](const Regression& report) -> const RegressionGroup* {
      for (const RegressionGroup& group : pipeline.groups()) {
        for (const Regression& member : group.members) {
          if (member.metric == report.metric && member.change_time == report.change_time) {
            return &group;
          }
        }
      }
      return nullptr;
    };
    auto event_hit = [&](const Regression& report, const InjectedEvent& event) {
      if (matches_event(report, event)) {
        return true;
      }
      const RegressionGroup* group = group_of(report);
      if (group == nullptr) {
        return false;
      }
      for (const Regression& member : group->members) {
        if (matches_event(member, event)) {
          return true;
        }
      }
      return false;
    };

    BackendScore score;
    score.backend = backend;
    score.reports = reports.size();
    score.detect_ms = detect_ms;
    for (const Regression& report : reports) {
      bool is_true = false;
      for (const InjectedEvent& event : fleet.ground_truth()) {
        if (event.IsTrueRegression() && event_hit(report, event)) {
          is_true = true;
          break;
        }
      }
      if (is_true) {
        ++score.true_regressions;
      } else {
        ++score.false_positives;
      }
    }
    // Recall + time-to-detect: first matching report per injected event.
    double ttd_sum_hours = 0.0;
    for (const InjectedEvent& event : fleet.ground_truth()) {
      if (!event.IsTrueRegression()) {
        continue;
      }
      ++score.injected;
      TimePoint first_detected = 0;
      bool caught = false;
      for (const RegressionGroup& group : pipeline.groups()) {
        for (const Regression& member : group.members) {
          if (matches_event(member, event) &&
              (!caught || member.detected_at < first_detected)) {
            caught = true;
            first_detected = member.detected_at;
          }
        }
      }
      if (caught) {
        ++score.caught;
        // detected_at can precede event.start only through matching slack;
        // clamp so the mean stays interpretable.
        const double gap = first_detected > event.start
                               ? static_cast<double>(first_detected - event.start)
                               : 0.0;
        ttd_sum_hours += gap / static_cast<double>(Hours(1));
      }
    }
    score.precision = score.reports == 0
                          ? 1.0
                          : static_cast<double>(score.true_regressions) /
                                static_cast<double>(score.reports);
    score.recall = score.injected == 0
                       ? 1.0
                       : static_cast<double>(score.caught) /
                             static_cast<double>(score.injected);
    if (score.caught > 0) {
      score.mean_ttd_hours = ttd_sum_hours / static_cast<double>(score.caught);
    }
    cell.scores.push_back(score);
  }
  return cell;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  PrintHeader(std::string("detector bake-off — backends on identical labelled fleets") +
              (smoke ? " [smoke]" : ""));

  const std::vector<double> magnitudes = {0.5, 0.05, 0.005};
  const std::vector<double> fault_rates = {0.0, 0.05, 0.10};
  const uint64_t kSeed = 99;

  const std::vector<int> widths = {6, 7, 11, 8, 4, 4, 7, 7, 8, 10};
  PrintRow({"mag", "faults", "backend", "reports", "TR", "FP", "recall", "prec",
            "ttd_h", "detect_ms"},
           widths);
  std::vector<Cell> cells;
  for (const double magnitude : magnitudes) {
    for (const double rate : fault_rates) {
      Cell cell = RunCell(magnitude, rate, smoke, kSeed);
      for (const BackendScore& s : cell.scores) {
        PrintRow({FormatDouble(magnitude, "%.3f"), FormatDouble(rate, "%.2f"), s.backend,
                  std::to_string(s.reports), std::to_string(s.true_regressions),
                  std::to_string(s.false_positives), FormatPercent(s.recall, 1),
                  FormatPercent(s.precision, 1),
                  s.mean_ttd_hours < 0.0 ? "-" : FormatDouble(s.mean_ttd_hours, "%.1f"),
                  FormatDouble(s.detect_ms, "%.0f")},
                 widths);
      }
      cells.push_back(std::move(cell));
    }
  }

  // Per-backend rollup across the whole matrix.
  std::printf("\nper-backend rollup (unweighted means across %zu cells):\n", cells.size());
  for (const char* backend : kBackends) {
    double precision = 0.0, recall = 0.0, detect_ms = 0.0;
    for (const Cell& cell : cells) {
      for (const BackendScore& s : cell.scores) {
        if (s.backend == backend) {
          precision += s.precision;
          recall += s.recall;
          detect_ms += s.detect_ms;
        }
      }
    }
    const double n = static_cast<double>(cells.size());
    std::printf("  %-11s recall %5.1f%%  precision %5.1f%%  detect %6.0f ms/cell\n",
                backend, 100.0 * recall / n, 100.0 * precision / n, detect_ms / n);
  }

  FILE* json = std::fopen("BENCH_detectors.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"cells\": [\n");
  for (size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    std::fprintf(json, "    {\"magnitude\": %.3f, \"fault_rate\": %.2f, \"backends\": [\n",
                 cell.magnitude, cell.fault_rate);
    for (size_t b = 0; b < cell.scores.size(); ++b) {
      const BackendScore& s = cell.scores[b];
      std::fprintf(json,
                   "      {\"backend\": \"%s\", \"reports\": %zu, "
                   "\"true_regressions\": %zu, \"false_positives\": %zu, "
                   "\"injected\": %zu, \"caught\": %zu, \"precision\": %.4f, "
                   "\"recall\": %.4f, \"mean_ttd_hours\": %.2f, "
                   "\"detect_ms\": %.1f}%s\n",
                   s.backend.c_str(), s.reports, s.true_regressions, s.false_positives,
                   s.injected, s.caught, s.precision, s.recall, s.mean_ttd_hours,
                   s.detect_ms, b + 1 < cell.scores.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", c + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_detectors.json\n");
  return 0;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) { return fbdetect::Main(argc, argv); }
