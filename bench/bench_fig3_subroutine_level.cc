// Figure 3 reproduction: subroutine-level measurement needs 1000x fewer
// servers than process-level (Figure 2).
//
// The process-level CPU of Figure 2 is decomposed across k=1000 subroutines
// (Expression 2: Var(X_subroutine) = Var(X_process)/k). The same +0.005%
// aggregate regression concentrated in one subroutine of ~0.05% gCPU is a
// ~10% relative change there, detectable with m in the hundreds-to-tens-of-
// thousands range instead of tens of millions.
#include <cstdio>
#include <span>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/fleet/scenario.h"
#include "src/stats/descriptive.h"
#include "src/stats/hypothesis.h"

namespace fbdetect {
namespace {

constexpr int kSubroutines = 1000;  // k in §2, conservatively.

void RunOne(double num_servers) {
  // Per-server subroutine-level series: the subroutine's share of process
  // CPU is mu/k with variance sigma^2/k (Expression 2). The regression
  // concentrates entirely in this subroutine.
  FleetAverageOptions options;
  options.groups[0].num_servers = num_servers / 2.0;
  options.groups[0].mean = 0.40 / kSubroutines;
  options.groups[0].variance = 0.01 / kSubroutines;
  options.groups[0].regression = 0.00003;
  options.groups[1].num_servers = num_servers / 2.0;
  options.groups[1].mean = 0.60 / kSubroutines;
  options.groups[1].variance = 0.02 / kSubroutines;
  options.groups[1].regression = 0.00007;
  options.num_ticks = 200;
  options.change_tick = 100;

  Rng rng(42);
  const std::vector<double> series = SimulateFleetAverage(options, rng);
  const std::span<const double> all(series);
  const auto before = all.subspan(0, options.change_tick);
  const auto after = all.subspan(options.change_tick);
  const TTestResult test = WelchTTest(before, after, 0.01);

  std::printf("m=%-8.0f noise_sd=%.3e  mean_shift=%+.3e  t=%7.2f  detected=%s\n", num_servers,
              SampleStdDev(before), Mean(after) - Mean(before), test.t_statistic,
              test.significant ? "YES" : "no");
  std::printf("  %s\n", Sparkline(series).c_str());
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader(
      "Figure 3 — subroutine-level averages: 1000x fewer servers than Figure 2");
  std::printf("(paper: same regression, k=1000 subroutines, m=500/5k/50k servers)\n\n");
  for (double m : {500.0, 5000.0, 50000.0}) {
    fbdetect::RunOne(m);
  }
  std::printf("\nConclusion: the regression detectable at m=50M process-level (Fig. 2)\n"
              "is detectable at m~50k (or less) at the subroutine level.\n");
  return 0;
}
