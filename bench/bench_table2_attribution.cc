// Table 2 reproduction: the gCPU root-cause attribution worked example.
//
// Regression in subroutine B; a code change modifies A and E. The paper's
// numbers: R = 0.14-0.09 = 0.05, L = 0.11-0.07 = 0.04, fraction = 80%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/root_cause.h"

namespace fbdetect {
namespace {

void Run() {
  const std::vector<AttributedSample> samples = {
      {{"A", "B", "C"}, 0.01, 0.02},
      {{"B", "E", "F"}, 0.02, 0.03},
      {{"D", "B", "C"}, 0.02, 0.02},
      {{"B", "E", "D"}, 0.04, 0.06},
      {{"G", "B", "D"}, 0.00, 0.01},  // Did not exist before the regression.
  };
  std::printf("%-22s %-14s %-14s\n", "Stack-trace sample", "gCPU before", "gCPU after");
  double total_before = 0.0;
  double total_after = 0.0;
  for (const AttributedSample& sample : samples) {
    std::string stack;
    for (size_t i = 0; i < sample.stack.size(); ++i) {
      if (i > 0) {
        stack += "->";
      }
      stack += sample.stack[i];
    }
    if (sample.gcpu_before == 0.0) {
      std::printf("%-22s %-14s %-14.2f\n", stack.c_str(), "does not exist",
                  sample.gcpu_after);
    } else {
      std::printf("%-22s %-14.2f %-14.2f\n", stack.c_str(), sample.gcpu_before,
                  sample.gcpu_after);
    }
    total_before += sample.gcpu_before;
    total_after += sample.gcpu_after;
  }
  std::printf("%-22s %-14.2f %-14.2f\n", "Total", total_before, total_after);

  const AttributionResult result = GcpuAttribution(samples, "B", {"A", "E"});
  std::printf("\nRegression magnitude R = %.2f (paper: 0.05)\n", result.regression_magnitude);
  std::printf("Attributed magnitude L = %.2f (paper: 0.04)\n", result.attributed_magnitude);
  std::printf("Attribution fraction L/R = %.0f%% (paper: 80%%)\n", result.fraction * 100.0);

  std::printf("\nAttribution fraction for alternative candidate changes:\n");
  struct Candidate {
    const char* description;
    std::vector<std::string> touched;
  };
  const Candidate candidates[] = {
      {"touches {A, E} (the culprit)", {"A", "E"}},
      {"touches {C} only", {"C"}},
      {"touches {D}", {"D"}},
      {"touches {B} itself", {"B"}},
      {"touches {Z} (unrelated)", {"Z"}},
  };
  for (const Candidate& candidate : candidates) {
    const AttributionResult r = GcpuAttribution(samples, "B", candidate.touched);
    std::printf("  %-32s L/R = %5.1f%%\n", candidate.description, r.fraction * 100.0);
  }
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader("Table 2 — gCPU attribution worked example (exact reproduction)");
  fbdetect::Run();
  return 0;
}
