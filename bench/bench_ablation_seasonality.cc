// Ablation: STL vs moving-average decomposition for the seasonality detector
// (§5.2.3 "Discussion of alternatives").
//
// The paper kept STL because it is "sensitive to slight changes in
// seasonality while being robust against sudden changes". We measure both
// properties:
//  (a) robustness to sudden changes — a step regression on a seasonal series
//      must mostly land in TREND+RESIDUAL, not be absorbed into the seasonal
//      component (else the deseasonalized z-score shrinks and a true
//      regression is filtered);
//  (b) sensitivity to drifting seasonality — when the seasonal amplitude
//      slowly grows, the residual should stay small (the decomposition keeps
//      tracking the pattern).
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/stats/descriptive.h"
#include "src/tsa/stl.h"

namespace fbdetect {
namespace {

constexpr size_t kPeriod = 144;  // One day at 10-minute ticks.

// (a) Step on a seasonal series: fraction of the step magnitude recovered in
// the deseasonalized (trend+residual) median shift. 1.0 = perfect.
double StepRecovery(const Decomposition& decomposition, size_t change, double step) {
  if (!decomposition.valid) {
    return 0.0;
  }
  const std::vector<double> deseasonalized = decomposition.Deseasonalized();
  const std::span<const double> all(deseasonalized);
  const double before = Median(all.subspan(0, change));
  const double after = Median(all.subspan(change));
  return (after - before) / step;
}

}  // namespace
}  // namespace fbdetect

int main() {
  using namespace fbdetect;
  PrintHeader("§5.2.3 ablation — STL vs moving-average seasonality handling");

  // --- (a) Sudden change robustness ---------------------------------------
  Rng rng(1);
  const size_t n = kPeriod * 8;
  const size_t change = n - kPeriod;  // Step one day before the end.
  const double step = 0.010;
  std::vector<double> series;
  for (size_t i = 0; i < n; ++i) {
    const double seasonal =
        0.008 * std::sin(2.0 * M_PI * static_cast<double>(i) / kPeriod);
    const double level = i >= change ? 0.05 + step : 0.05;
    series.push_back(level + seasonal + rng.Normal(0.0, 0.001));
  }
  const Decomposition stl = StlDecompose(series, kPeriod);
  const Decomposition ma = MovingAverageDecompose(series, kPeriod);
  std::printf("(a) step recovery in deseasonalized series (1.0 = ideal):\n");
  std::printf("    STL:            %.3f\n", StepRecovery(stl, change, step));
  std::printf("    moving average: %.3f\n", StepRecovery(ma, change, step));

  // --- (b) Drifting seasonality ---------------------------------------------
  Rng rng2(2);
  std::vector<double> drifting;
  for (size_t i = 0; i < n; ++i) {
    const double amplitude = 0.004 + 0.008 * static_cast<double>(i) / n;  // Grows 3x.
    drifting.push_back(0.05 +
                       amplitude * std::sin(2.0 * M_PI * static_cast<double>(i) / kPeriod) +
                       rng2.Normal(0.0, 0.0005));
  }
  const Decomposition stl_drift = StlDecompose(drifting, kPeriod);
  const Decomposition ma_drift = MovingAverageDecompose(drifting, kPeriod);
  std::printf("\n(b) residual sd under drifting seasonal amplitude (lower = tracks better):\n");
  std::printf("    STL:            %.6f\n", SampleStdDev(stl_drift.residual));
  std::printf("    moving average: %.6f\n", SampleStdDev(ma_drift.residual));

  std::printf("\nPaper shape to compare: STL recovers (a) close to 1.0 while tracking (b)\n"
              "with a smaller residual; the moving average smears sudden changes into the\n"
              "trend gradually and leaves drifting seasonality in the residual.\n");
  return 0;
}
