// Scan-path throughput harness for the zero-copy pipeline refactor.
//
// Five measurements, written to BENCH_pipeline.json:
//   1. Window extraction: copying ExtractWindows vs zero-copy
//      ExtractWindowView, per-extract nanoseconds.
//   2. Full autocorrelation: the pre-refactor per-lag O(n^2) loop vs the
//      Wiener–Khinchin O(n log n) FFT path, at the window sizes the pipeline
//      actually scans.
//   3. STL decomposition: the pre-refactor per-point O(n * span) loess fits
//      and O(n * width) moving average vs today's fixed-kernel loess and
//      prefix-sum moving average.
//   4. Per-series scan: the pre-refactor flow vs the ScanView flow the
//      pipeline runs today, over every metric of a simulated service.
//   5. End-to-end Pipeline::RunPeriod series-scans/sec at scan_threads 1
//      and 4. NOTE: thread scaling is only visible with >= 4 hardware cores;
//      the JSON records the machine's core count next to the numbers.
//
// Everything in namespace `legacy` below is the pre-change implementation,
// reconstructed verbatim from the seed commit (git show <seed>:src/...), so
// sections 2-4 compare against what actually ran before this change rather
// than against today's detectors with one piece swapped out. The stages that
// did not change numerically (CUSUM change point, went-away scoring) are
// exercised through their Regression-typed wrappers, which preserve the old
// copy-per-stage hand-off.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/core/pipeline.h"
#include "src/observe/telemetry_export.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/linreg.h"
#include "src/tsa/dp_changepoint.h"
#include "src/tsa/stl.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

namespace legacy {

// Pre-refactor AutocorrelationFunction: one Autocorrelation() call per lag,
// each recomputing the mean and denominator — O(n * max_lag).
std::vector<double> Acf(std::span<const double> values, size_t max_lag) {
  const size_t limit = values.empty() ? 0 : std::min(max_lag, values.size() - 1);
  std::vector<double> acf;
  acf.reserve(limit);
  for (size_t lag = 1; lag <= limit; ++lag) {
    acf.push_back(Autocorrelation(values, lag));
  }
  return acf;
}

// Pre-refactor DetectSeasonality: identical peak search, but on top of the
// per-lag ACF above.
SeasonalityEstimate DetectSeasonality(std::span<const double> values, size_t min_period,
                                      size_t max_period, double min_correlation) {
  SeasonalityEstimate estimate;
  const size_t n = values.size();
  if (n < 8 || min_period < 2) {
    return estimate;
  }
  const size_t cap = std::min(max_period, n / 2);
  if (cap < min_period) {
    return estimate;
  }
  const std::vector<double> acf = Acf(values, cap);
  const double noise_band = 2.0 / std::sqrt(static_cast<double>(n));
  double best = 0.0;
  size_t best_lag = 0;
  for (size_t lag = min_period; lag <= cap; ++lag) {
    const double r = acf[lag - 1];
    const double prev = lag >= 2 ? acf[lag - 2] : r;
    const double next = lag < cap ? acf[lag] : r;
    if (r >= prev && r >= next && r > best) {
      best = r;
      best_lag = lag;
    }
  }
  if (best_lag != 0 && best > std::max(min_correlation, noise_band)) {
    estimate.present = true;
    estimate.period = best_lag;
    estimate.correlation = best;
  }
  return estimate;
}

double Tricube(double u) {
  const double a = 1.0 - std::fabs(u) * std::fabs(u) * std::fabs(u);
  return a <= 0.0 ? 0.0 : a * a * a;
}

// Pre-refactor loess: a full weighted linear fit at every point, recomputing
// the tricube weights per point — O(n * span).
std::vector<double> LoessSmoothWeighted(std::span<const double> values, size_t span,
                                        std::span<const double> robustness) {
  const size_t n = values.size();
  std::vector<double> smoothed(n, 0.0);
  if (n == 0) {
    return smoothed;
  }
  if (n == 1) {
    smoothed[0] = values[0];
    return smoothed;
  }
  span = std::clamp<size_t>(span, 2, n);
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i >= span / 2 ? i - span / 2 : 0;
    if (lo + span > n) {
      lo = n - span;
    }
    const size_t hi = lo + span;  // Exclusive.
    const double max_dist =
        std::max(static_cast<double>(i - lo), static_cast<double>(hi - 1 - i));
    double sw = 0.0;
    double swx = 0.0;
    double swy = 0.0;
    double swxx = 0.0;
    double swxy = 0.0;
    for (size_t j = lo; j < hi; ++j) {
      const double dist = std::fabs(static_cast<double>(j) - static_cast<double>(i));
      double w = max_dist > 0.0 ? Tricube(dist / (max_dist + 1.0)) : 1.0;
      if (!robustness.empty()) {
        w *= robustness[j];
      }
      if (w <= 0.0) {
        continue;
      }
      const double x = static_cast<double>(j);
      sw += w;
      swx += w * x;
      swy += w * values[j];
      swxx += w * x * x;
      swxy += w * x * values[j];
    }
    if (sw <= 0.0) {
      smoothed[i] = values[i];
      continue;
    }
    const double denom = sw * swxx - swx * swx;
    const double x_i = static_cast<double>(i);
    if (std::fabs(denom) < 1e-12 * sw * swxx + 1e-300) {
      smoothed[i] = swy / sw;
      continue;
    }
    const double slope = (sw * swxy - swx * swy) / denom;
    const double intercept = (swy - slope * swx) / sw;
    smoothed[i] = slope * x_i + intercept;
  }
  return smoothed;
}

// Pre-refactor centered moving average: an inner sum per point — O(n * width).
std::vector<double> CenteredMovingAverage(std::span<const double> values, size_t width) {
  const size_t n = values.size();
  std::vector<double> out(n, 0.0);
  if (width == 0 || n == 0) {
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t half = width / 2;
    size_t lo = i >= half ? i - half : 0;
    size_t hi = std::min(n, i + half + 1);
    if (width % 2 == 0) {
      hi = std::min(n, i + half);  // Symmetric even window.
      if (hi <= lo) {
        hi = lo + 1;
      }
    }
    double sum = 0.0;
    for (size_t j = lo; j < hi; ++j) {
      sum += values[j];
    }
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

size_t NextOdd(size_t x) { return x % 2 == 0 ? x + 1 : x; }

// Pre-refactor STL driver (identical structure to today's), on top of the
// per-point loess and per-point moving average above.
Decomposition StlDecompose(std::span<const double> values, size_t period,
                           const StlConfig& config = {}) {
  Decomposition result;
  const size_t n = values.size();
  result.seasonal.assign(n, 0.0);
  result.trend.assign(values.begin(), values.end());
  result.residual.assign(n, 0.0);
  if (period < 2 || n < 2 * period) {
    return result;
  }
  const size_t trend_span =
      config.trend_span != 0 ? config.trend_span : NextOdd(period + period / 2);
  const size_t lowpass_span = config.lowpass_span != 0 ? config.lowpass_span : NextOdd(period);

  std::vector<double> seasonal(n, 0.0);
  std::vector<double> trend(n, 0.0);
  std::vector<double> robustness;

  for (int outer = 0; outer < std::max(1, config.outer_iterations); ++outer) {
    for (int inner = 0; inner < std::max(1, config.inner_iterations); ++inner) {
      std::vector<double> detrended(n);
      for (size_t i = 0; i < n; ++i) {
        detrended[i] = values[i] - trend[i];
      }
      std::vector<double> cycle(n, 0.0);
      for (size_t phase = 0; phase < period; ++phase) {
        std::vector<double> subseries;
        std::vector<double> subweights;
        std::vector<size_t> indices;
        for (size_t i = phase; i < n; i += period) {
          subseries.push_back(detrended[i]);
          indices.push_back(i);
          if (!robustness.empty()) {
            subweights.push_back(robustness[i]);
          }
        }
        const std::vector<double> smoothed =
            LoessSmoothWeighted(subseries, config.seasonal_span, subweights);
        for (size_t k = 0; k < indices.size(); ++k) {
          cycle[indices[k]] = smoothed[k];
        }
      }
      std::vector<double> lowpass = CenteredMovingAverage(cycle, period);
      lowpass = LoessSmoothWeighted(lowpass, lowpass_span, {});
      for (size_t i = 0; i < n; ++i) {
        seasonal[i] = cycle[i] - lowpass[i];
      }
      std::vector<double> deseasonalized(n);
      for (size_t i = 0; i < n; ++i) {
        deseasonalized[i] = values[i] - seasonal[i];
      }
      trend = LoessSmoothWeighted(deseasonalized, trend_span, robustness);
    }
    if (outer + 1 < config.outer_iterations) {
      std::vector<double> abs_residuals(n);
      for (size_t i = 0; i < n; ++i) {
        abs_residuals[i] = std::fabs(values[i] - seasonal[i] - trend[i]);
      }
      const double h = 6.0 * Median(abs_residuals);
      robustness.assign(n, 1.0);
      if (h > 0.0) {
        for (size_t i = 0; i < n; ++i) {
          const double u = abs_residuals[i] / h;
          const double w = u >= 1.0 ? 0.0 : (1.0 - u * u) * (1.0 - u * u);
          robustness[i] = w;
        }
      }
    }
  }

  result.seasonal = std::move(seasonal);
  result.trend = std::move(trend);
  for (size_t i = 0; i < n; ++i) {
    result.residual[i] = values[i] - result.seasonal[i] - result.trend[i];
  }
  result.valid = true;
  return result;
}

// Pre-refactor SeasonalityStage::Evaluate: copies historical + analysis into
// `combined`, then runs the per-lag ACF and the per-point-loess STL.
SeasonalityVerdict EvaluateSeasonality(const DetectionConfig& config,
                                       const Regression& regression) {
  SeasonalityVerdict verdict;
  const std::vector<double>& historical = regression.historical;
  const std::vector<double>& analysis = regression.analysis;
  if (historical.size() < 16 || analysis.empty()) {
    return verdict;
  }
  std::vector<double> combined(historical.begin(), historical.end());
  combined.insert(combined.end(), analysis.begin(), analysis.end());

  const SeasonalityEstimate season = DetectSeasonality(
      combined, /*min_period=*/4, /*max_period=*/combined.size() / 3,
      config.seasonality_min_correlation);
  if (!season.present) {
    return verdict;
  }
  verdict.seasonality_present = true;
  verdict.period = season.period;

  const Decomposition stl = StlDecompose(combined, season.period);
  if (!stl.valid) {
    return verdict;
  }
  const std::vector<double> deseasonalized = stl.Deseasonalized();
  const double residual_sd = SampleStdDev(stl.residual);
  if (residual_sd <= 0.0) {
    return verdict;
  }
  const size_t change = historical.size() + regression.change_index;
  const size_t analysis_end = combined.size() - regression.extended_size;
  if (change >= combined.size()) {
    return verdict;
  }
  const std::span<const double> cleaned(deseasonalized);
  const double median_before = Median(cleaned.subspan(0, change));
  const size_t analysis_post = analysis_end > change ? analysis_end - change : 0;
  if (analysis_post > 0) {
    const double median_after = Median(cleaned.subspan(change, analysis_post));
    verdict.analysis_zscore = (median_after - median_before) / residual_sd;
  }
  if (regression.extended_size > 0 && analysis_end < combined.size()) {
    const double median_ext = Median(cleaned.subspan(analysis_end));
    verdict.extended_zscore = (median_ext - median_before) / residual_sd;
  } else {
    verdict.extended_zscore = verdict.analysis_zscore;
  }
  verdict.seasonal_filtered =
      verdict.analysis_zscore < config.seasonality_zscore_threshold &&
      verdict.extended_zscore < config.seasonality_zscore_threshold;
  return verdict;
}

// Pre-refactor LongTermDetector::Detect: builds the oriented `full` copy,
// then runs per-lag-ACF seasonality detection and per-point-loess STL on
// every series scanned.
std::optional<Regression> DetectLongTerm(const DetectionConfig& config, const MetricId& metric,
                                         const WindowExtract& windows) {
  const size_t analysis_size = windows.analysis.size();
  if (analysis_size < 16 || windows.historical.size() < 16) {
    return std::nullopt;
  }
  if (HasNonFinite(windows.historical) || HasNonFinite(windows.analysis) ||
      HasNonFinite(windows.extended)) {
    return std::nullopt;
  }
  const double sign = LowerIsRegression(metric.kind) ? -1.0 : 1.0;

  std::vector<double> full;
  full.reserve(windows.historical.size() + analysis_size + windows.extended.size());
  for (double v : windows.historical) {
    full.push_back(sign * v);
  }
  for (double v : windows.analysis) {
    full.push_back(sign * v);
  }
  for (double v : windows.extended) {
    full.push_back(sign * v);
  }

  const SeasonalityEstimate season =
      DetectSeasonality(full, 4, full.size() / 3, config.seasonality_min_correlation);
  const size_t period = season.present ? season.period : std::max<size_t>(4, full.size() / 20);
  const Decomposition stl = StlDecompose(full, period);
  const std::vector<double>& trend = stl.valid ? stl.trend : full;

  const size_t hist_size = windows.historical.size();
  const size_t edge = std::max<size_t>(4, analysis_size / 8);
  const std::span<const double> trend_span(trend);
  const std::span<const double> analysis_trend = trend_span.subspan(hist_size, analysis_size);
  const std::span<const double> extended_trend =
      trend_span.subspan(hist_size + analysis_size);

  const double analysis_start_mean = Mean(analysis_trend.subspan(0, edge));
  const double historical_mean = Mean(trend_span.subspan(0, hist_size));
  const double baseline = std::max(analysis_start_mean, historical_mean);

  const double analysis_end_mean = Mean(analysis_trend.subspan(analysis_trend.size() - edge));
  double current = analysis_end_mean;
  if (!extended_trend.empty()) {
    current = std::min(analysis_end_mean, Mean(extended_trend));
  }

  const double delta = current - baseline;
  const double threshold = config.threshold_mode == ThresholdMode::kAbsolute
                               ? config.threshold
                               : config.threshold * std::fabs(baseline);
  if (delta < threshold) {
    return std::nullopt;
  }

  std::vector<double> normalized(analysis_trend.begin(), analysis_trend.end());
  const double lo = Min(normalized);
  const double hi = Max(normalized);
  if (hi > lo) {
    for (double& v : normalized) {
      v = (v - lo) / (hi - lo);
    }
  }
  size_t change_index = 0;
  const LinearFit fit = FitLine(normalized);
  if (!(fit.valid && fit.rmse < config.long_term_rmse_threshold)) {
    change_index = BestSingleSplit(analysis_trend, /*min_segment=*/edge);
  }

  Regression regression;
  regression.metric = metric;
  regression.long_term = true;
  regression.detected_at = windows.as_of;
  regression.change_index = change_index;
  regression.change_time = change_index < windows.analysis_timestamps.size()
                               ? windows.analysis_timestamps[change_index]
                               : windows.analysis_begin;
  regression.extended_size = windows.extended.size();
  regression.baseline_mean = baseline;
  regression.regressed_mean = current;
  regression.delta = delta;
  regression.relative_delta = baseline != 0.0 ? delta / std::fabs(baseline) : 0.0;
  regression.p_value = 0.0;
  regression.historical.assign(trend_span.begin(),
                               trend_span.begin() + static_cast<long>(hist_size));
  regression.analysis.assign(trend_span.begin() + static_cast<long>(hist_size),
                             trend_span.end());
  regression.analysis_timestamps = windows.analysis_timestamps;
  return regression;
}

}  // namespace legacy

struct BenchWorld {
  FleetSimulator fleet;
  ServiceSimulator* service = nullptr;
  // Full mode is long enough to fill a Table-1-style 10-day historical
  // window; smoke mode shrinks the world so CI can exercise the harness.
  Duration duration = Days(12);
  Duration historical = Days(10);
  TimePoint run_begin = Days(11);

  explicit BenchWorld(bool smoke) {
    if (smoke) {
      duration = Days(3);
      historical = Days(2);
      run_begin = Days(2);
    }
    ServiceConfig config;
    config.name = "svc";
    config.num_servers = 100;
    config.call_graph.num_subroutines = 60;
    config.sampling.samples_per_bucket = 1000000;
    config.sampling.bucket_width = Minutes(10);
    config.tick = Minutes(10);
    config.num_seasonal_subroutines = 10;
    config.seasonal_mix_amplitude = 0.10;
    config.seed = 42;
    service = fleet.AddService(config);

    InjectedEvent regression;
    regression.kind = EventKind::kStepRegression;
    regression.service = "svc";
    regression.subroutine = service->graph().node(5).name;
    regression.start = run_begin + Hours(3);
    regression.magnitude = 0.5;
    fleet.InjectEvent(regression);

    fleet.Run(0, duration);
  }

  PipelineOptions Options(int scan_threads) const {
    PipelineOptions options;
    options.detection.threshold = 0.0005;
    options.detection.windows.historical = historical;
    options.detection.windows.analysis = Hours(4);
    options.detection.windows.extended = Hours(2);
    options.detection.rerun_interval = Hours(4);
    options.scan_threads = scan_threads;
    return options;
  }
};

// The pre-refactor per-series scan: materialized windows, Regression-typed
// hand-offs that copy the windows at every stage, per-lag O(n^2) ACF and
// per-point O(n * span) loess inside both seasonality consumers (the
// long-term path runs them on EVERY series, the seasonality stage on every
// went-away survivor).
size_t LegacyScanMetric(const TimeSeriesDatabase& db, const MetricId& id, TimePoint as_of,
                        const DetectionConfig& detection, const ChangePointStage& change_point,
                        const WentAwayDetector& went_away) {
  const TimeSeries* series = db.Find(id);
  if (series == nullptr) {
    return 0;
  }
  size_t survivors = 0;
  const WindowExtract windows = ExtractWindows(*series, as_of, detection.windows);
  if (std::optional<Regression> candidate = change_point.Detect(id, windows)) {
    if (went_away.Evaluate(*candidate, 144).keep &&
        !legacy::EvaluateSeasonality(detection, *candidate).seasonal_filtered &&
        PassesThreshold(*candidate, detection)) {
      ++survivors;
    }
  }
  if (detection.enable_long_term) {
    if (std::optional<Regression> candidate = legacy::DetectLongTerm(detection, id, windows)) {
      if (PassesThreshold(*candidate, detection)) {
        ++survivors;
      }
    }
  }
  return survivors;
}

// Today's per-series scan (mirrors Pipeline::ScanMetric).
size_t ViewScanMetric(const TimeSeriesDatabase& db, const MetricId& id, TimePoint as_of,
                      const DetectionConfig& detection, const ChangePointStage& change_point,
                      const WentAwayDetector& went_away, const SeasonalityStage& seasonality,
                      const LongTermDetector& long_term, std::vector<double>& scratch) {
  const TimeSeries* series = db.Find(id);
  if (series == nullptr) {
    return 0;
  }
  size_t survivors = 0;
  const WindowView windows = ExtractWindowView(*series, as_of, detection.windows);
  const double sign = LowerIsRegression(id.kind) ? -1.0 : 1.0;
  const ScanView view = OrientWindows(windows, sign, scratch);
  if (const std::optional<ScanCandidate> candidate = change_point.DetectCandidate(view)) {
    if (went_away.Evaluate(view, *candidate, 144).keep &&
        !seasonality.Evaluate(view, *candidate).seasonal_filtered &&
        PassesThreshold(*candidate, detection)) {
      ++survivors;
    }
  }
  if (detection.enable_long_term && long_term.Detect(id, view).has_value()) {
    ++survivors;
  }
  return survivors;
}

// Order-sensitive hash of every detection-relevant field, so two RunPeriod
// outputs compare byte-identical without materializing a canonical dump.
uint64_t FingerprintRegressions(const std::vector<Regression>& regressions) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ regressions.size();
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    (void)SplitMix64(h);
  };
  const auto mix_double = [&](double v) { mix(std::bit_cast<uint64_t>(v)); };
  for (const Regression& r : regressions) {
    mix(std::hash<std::string>{}(r.metric.ToString()));
    mix(r.long_term ? 1 : 0);
    mix(static_cast<uint64_t>(r.detected_at));
    mix(static_cast<uint64_t>(r.change_time));
    mix(r.change_index);
    mix_double(r.baseline_mean);
    mix_double(r.regressed_mean);
    mix_double(r.delta);
    mix_double(r.relative_delta);
    mix_double(r.p_value);
    mix(r.historical.size());
    for (double v : r.historical) {
      mix_double(v);
    }
    mix(r.analysis.size());
    for (double v : r.analysis) {
      mix_double(v);
    }
    for (TimePoint t : r.analysis_timestamps) {
      mix(static_cast<uint64_t>(t));
    }
    mix(r.extended_size);
    for (int64_t c : r.candidate_root_causes) {
      mix(static_cast<uint64_t>(c));
    }
  }
  return h;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  using namespace fbdetect;
  using Clock = std::chrono::steady_clock;

  bool smoke = false;
  bool threads_sweep = false;
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--threads-sweep") {
      threads_sweep = true;
    } else if (std::string(argv[i]) == "--telemetry-out" && i + 1 < argc) {
      telemetry_out = argv[++i];
    }
  }

  PrintHeader(std::string("Scan-path throughput: zero-copy windows, FFT ACF, thread pool") +
              (smoke ? " [smoke]" : "") + (threads_sweep ? " [threads-sweep]" : ""));
  const unsigned hw_cores = std::thread::hardware_concurrency();
  std::printf("hardware cores: %u\n", hw_cores);

  // --- Threads sweep: the multicore rig (EXPERIMENTS.md) -----------------
  // End-to-end RunPeriod per-core-count curve into BENCH_simd.json; the
  // regular sections are skipped.
  if (threads_sweep) {
    BenchWorld sweep_world(smoke);
    const size_t num_ids = sweep_world.fleet.db().ListMetrics("svc").size();
    const std::vector<int> threads_list = {1, 2, 4, 8};
    std::vector<double> sweep_ms;
    uint64_t baseline_fp = 0;
    size_t reruns = 0;
    std::printf("\nRunPeriod threads sweep (%zu metrics)\n", num_ids);
    for (int threads : threads_list) {
      Pipeline pipeline(&sweep_world.fleet.db(), &sweep_world.fleet.change_log(), nullptr,
                        sweep_world.Options(threads));
      const auto sweep_t0 = Clock::now();
      const std::vector<Regression> regressions =
          pipeline.RunPeriod("svc", sweep_world.run_begin, sweep_world.duration);
      const double ms = MillisSince(sweep_t0);
      // Detection output byte-identical at every scan_threads setting.
      const uint64_t fp = FingerprintRegressions(regressions);
      if (threads == threads_list.front()) {
        baseline_fp = fp;
      } else {
        FBD_CHECK(fp == baseline_fp);
      }
      reruns = static_cast<size_t>((sweep_world.duration - sweep_world.run_begin) /
                                   pipeline.options().detection.rerun_interval);
      sweep_ms.push_back(ms);
      std::printf("    threads=%d: %8.1f ms   speedup vs 1: %.2fx\n", threads, ms,
                  sweep_ms[0] / ms);
    }
    char extra[128];
    std::snprintf(extra, sizeof(extra), "{\"series_scans\": %zu, \"curve\": ",
                  num_ids * reruns);
    UpdateBenchSimdJson("pipeline_sweep",
                        extra + ThreadsCurveJson(threads_list, sweep_ms) + "}");
    return 0;
  }

  // --- 1. Window extraction: copy vs view -------------------------------
  TimeSeries long_series;
  for (int i = 0; i < 2016; ++i) {  // 14 days at 10-minute ticks.
    long_series.Append(static_cast<TimePoint>(i) * Minutes(10),
                       1.0 + 0.1 * std::sin(i / 24.0));
  }
  WindowSpec wide;
  wide.historical = Days(10);
  wide.analysis = Hours(4);
  wide.extended = Hours(2);
  const TimePoint wide_as_of = long_series.end_time() + Minutes(10);

  const int kExtractIters = smoke ? 500 : 20000;
  auto t0 = Clock::now();
  double copy_checksum = 0.0;
  for (int i = 0; i < kExtractIters; ++i) {
    const WindowExtract extract = ExtractWindows(long_series, wide_as_of, wide);
    copy_checksum += extract.analysis_plus_extended.back();
  }
  const double copy_extract_ms = MillisSince(t0);

  t0 = Clock::now();
  double view_checksum = 0.0;
  for (int i = 0; i < kExtractIters; ++i) {
    const WindowView view = ExtractWindowView(long_series, wide_as_of, wide);
    view_checksum += view.analysis_plus_extended.back();
  }
  const double view_extract_ms = MillisSince(t0);
  FBD_CHECK(copy_checksum == view_checksum);
  const double extract_speedup = copy_extract_ms / view_extract_ms;
  std::printf("\n[1] window extraction (%d iters, 1476-point window)\n", kExtractIters);
  std::printf("    copy: %8.1f ms   view: %8.1f ms   speedup: %.1fx\n", copy_extract_ms,
              view_extract_ms, extract_speedup);

  // --- 2. Full ACF: old per-lag loop vs FFT -----------------------------
  std::printf("\n[2] autocorrelation function, max_lag = n/3\n");
  std::vector<size_t> acf_sizes = {432, 1476, 2880};
  std::vector<double> acf_old_ms;
  std::vector<double> acf_fft_ms;
  for (size_t n : acf_sizes) {
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      values.push_back(std::sin(static_cast<double>(i) / 17.0) +
                       0.3 * std::cos(static_cast<double>(i) / 5.0));
    }
    const size_t max_lag = n / 3;
    const int iters = smoke ? 4 : (n <= 500 ? 200 : 40);
    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      legacy::Acf(values, max_lag);
    }
    const double old_ms = MillisSince(t0) / iters;
    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      AutocorrelationFunction(values, max_lag);
    }
    const double fft_ms = MillisSince(t0) / iters;
    acf_old_ms.push_back(old_ms);
    acf_fft_ms.push_back(fft_ms);
    std::printf("    n=%5zu  old: %9.3f ms   fft: %9.3f ms   speedup: %.1fx\n", n, old_ms,
                fft_ms, old_ms / fft_ms);
  }

  // --- 3. STL decomposition: per-point loess vs fixed-kernel loess ------
  // n = a 10-day historical + 4h analysis + 2h extended window at 10-minute
  // ticks; period 73 = the long-term detector's n/20 fallback.
  std::printf("\n[3] STL decomposition (n=1476, period=73)\n");
  std::vector<double> stl_input;
  stl_input.reserve(1476);
  for (size_t i = 0; i < 1476; ++i) {
    stl_input.push_back(1.0 + 0.2 * std::sin(static_cast<double>(i) / 11.6) +
                        0.05 * std::cos(static_cast<double>(i) / 3.0));
  }
  const int kStlIters = smoke ? 2 : 20;
  t0 = Clock::now();
  for (int i = 0; i < kStlIters; ++i) {
    legacy::StlDecompose(stl_input, 73);
  }
  const double stl_old_ms = MillisSince(t0) / kStlIters;
  t0 = Clock::now();
  for (int i = 0; i < kStlIters; ++i) {
    StlDecompose(stl_input, 73);
  }
  const double stl_new_ms = MillisSince(t0) / kStlIters;
  const double stl_speedup = stl_old_ms / stl_new_ms;
  std::printf("    old: %8.3f ms   new: %8.3f ms   speedup: %.1fx\n", stl_old_ms, stl_new_ms,
              stl_speedup);

  // --- 4. Per-series scan: legacy flow vs ScanView flow -----------------
  BenchWorld world(smoke);
  const TimeSeriesDatabase& db = world.fleet.db();
  const PipelineOptions options = world.Options(1);
  const DetectionConfig& detection = options.detection;
  const ChangePointStage change_point(detection);
  const WentAwayDetector went_away(detection);
  const SeasonalityStage seasonality(detection);
  const LongTermDetector long_term(detection);
  const std::vector<MetricId> ids = db.ListMetrics("svc");
  const TimePoint scan_as_of = world.run_begin + Hours(8);

  const int kScanIters = smoke ? 1 : 3;
  size_t legacy_survivors = 0;
  t0 = Clock::now();
  for (int iter = 0; iter < kScanIters; ++iter) {
    legacy_survivors = 0;
    for (const MetricId& id : ids) {
      legacy_survivors += LegacyScanMetric(db, id, scan_as_of, detection, change_point,
                                           went_away);
    }
  }
  const double legacy_scan_ms = MillisSince(t0) / kScanIters;

  size_t view_survivors = 0;
  std::vector<double> scratch;
  t0 = Clock::now();
  for (int iter = 0; iter < kScanIters; ++iter) {
    view_survivors = 0;
    for (const MetricId& id : ids) {
      view_survivors += ViewScanMetric(db, id, scan_as_of, detection, change_point, went_away,
                                       seasonality, long_term, scratch);
    }
  }
  const double view_scan_ms = MillisSince(t0) / kScanIters;
  FBD_CHECK(legacy_survivors == view_survivors);
  const double scan_speedup = legacy_scan_ms / view_scan_ms;
  std::printf("\n[4] per-series scan over %zu metrics (single thread)\n", ids.size());
  std::printf("    legacy: %8.1f ms   scanview: %8.1f ms   speedup: %.1fx\n", legacy_scan_ms,
              view_scan_ms, scan_speedup);

  // --- 5. End-to-end RunPeriod, 1 vs 4 scan threads ---------------------
  std::printf("\n[5] end-to-end RunPeriod (scan_threads 1 vs 4)\n");
  double run_ms_1 = 0.0;
  double run_ms_4 = 0.0;
  size_t reruns = 0;
  for (int threads : {1, 4}) {
    Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), nullptr,
                      world.Options(threads));
    t0 = Clock::now();
    pipeline.RunPeriod("svc", world.run_begin, world.duration);
    const double ms = MillisSince(t0);
    reruns = static_cast<size_t>((world.duration - world.run_begin) /
                                 pipeline.options().detection.rerun_interval);
    const double scans = static_cast<double>(ids.size() * reruns);
    std::printf("    threads=%d: %8.1f ms  (%.0f series-scans/sec)\n", threads, ms,
                scans / (ms / 1000.0));
    (threads == 1 ? run_ms_1 : run_ms_4) = ms;
  }
  const double series_scans = static_cast<double>(ids.size() * reruns);

  // --- 6. Telemetry overhead: RunPeriod with the registry off vs on -----
  // Alternating min-of-3 pairs so slow-machine drift hits both sides alike.
  // The off-by-default contract: with telemetry disabled the hot path does
  // zero clock reads and zero atomic writes, and with it enabled the cost
  // stays within the noise floor (< 5%, asserted in smoke mode where CI
  // runs this harness; shared runners routinely jitter a min-of-3 pair by
  // a couple percent, so the bar leaves headroom over the real <1% cost).
  std::printf("\n[6] telemetry overhead (RunPeriod, scan_threads 2, min of 3)\n");
  double telemetry_off_ms = std::numeric_limits<double>::infinity();
  double telemetry_on_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    for (const bool enabled : {false, true}) {
      PipelineOptions observed = world.Options(2);
      observed.telemetry.enabled = enabled;
      Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), nullptr, observed);
      t0 = Clock::now();
      pipeline.RunPeriod("svc", world.run_begin, world.duration);
      const double ms = MillisSince(t0);
      double& best = enabled ? telemetry_on_ms : telemetry_off_ms;
      best = std::min(best, ms);
      if (enabled && rep == 2 && !telemetry_out.empty()) {
        FBD_CHECK(WriteTelemetryFile(pipeline.telemetry(), telemetry_out));
        std::printf("    wrote %s\n", telemetry_out.c_str());
      }
    }
  }
  const double telemetry_overhead = telemetry_on_ms / telemetry_off_ms - 1.0;
  std::printf("    off: %8.1f ms   on: %8.1f ms   overhead: %+.2f%%\n", telemetry_off_ms,
              telemetry_on_ms, telemetry_overhead * 100.0);
  if (smoke) {
    FBD_CHECK(telemetry_on_ms <= telemetry_off_ms * 1.05);
  }

  // --- JSON -------------------------------------------------------------
  FILE* json = std::fopen("BENCH_pipeline.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"hardware_cores\": %u,\n", hw_cores);
  std::fprintf(json, "  \"window_extraction\": {\"iters\": %d, \"copy_ms\": %.3f, "
                     "\"view_ms\": %.3f, \"speedup\": %.2f},\n",
               kExtractIters, copy_extract_ms, view_extract_ms, extract_speedup);
  std::fprintf(json, "  \"acf\": [\n");
  for (size_t i = 0; i < acf_sizes.size(); ++i) {
    std::fprintf(json,
                 "    {\"n\": %zu, \"old_ms\": %.4f, \"fft_ms\": %.4f, \"speedup\": %.2f}%s\n",
                 acf_sizes[i], acf_old_ms[i], acf_fft_ms[i], acf_old_ms[i] / acf_fft_ms[i],
                 i + 1 < acf_sizes.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"stl\": {\"n\": 1476, \"period\": 73, \"old_ms\": %.3f, "
                     "\"new_ms\": %.3f, \"speedup\": %.2f},\n",
               stl_old_ms, stl_new_ms, stl_speedup);
  std::fprintf(json, "  \"per_series_scan\": {\"metrics\": %zu, \"legacy_ms\": %.2f, "
                     "\"scanview_ms\": %.2f, \"speedup\": %.2f},\n",
               ids.size(), legacy_scan_ms, view_scan_ms, scan_speedup);
  std::fprintf(json, "  \"run_period\": {\"series_scans\": %.0f, \"threads1_ms\": %.1f, "
                     "\"threads4_ms\": %.1f, \"threads1_scans_per_sec\": %.0f, "
                     "\"threads4_scans_per_sec\": %.0f},\n",
               series_scans, run_ms_1, run_ms_4, series_scans / (run_ms_1 / 1000.0),
               series_scans / (run_ms_4 / 1000.0));
  std::fprintf(json, "  \"telemetry_overhead\": {\"off_ms\": %.1f, \"on_ms\": %.1f, "
                     "\"overhead_fraction\": %.4f}\n",
               telemetry_off_ms, telemetry_on_ms, telemetry_overhead);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_pipeline.json\n");
  return 0;
}
