// §6.2 reproduction: false-positive / false-negative accounting.
//
// The paper (FrontFaaS, one month): 217 reports; of 70 developer-confirmed,
// 49 were true regressions and 21 false positives (15 of the 21 were cost
// shifts); a developer draws a ticket only once every ~4 years; and FBDetect
// missed no incident it was supposed to catch.
//
// With labelled ground truth we can account exactly. A report is a TRUE
// regression when a pipeline group member matches an injected regression
// (subroutine or culprit commit, within a day); otherwise it is an FP, which
// we sub-classify by what it coincides with (a cost shift, a transient, or
// nothing = noise/drift). False negatives are injected regressions matching
// no group. The per-developer ticket arithmetic is reproduced at fleet scale.
#include <cstdio>
#include <cstdlib>
#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

void Run(uint64_t seed) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.service_name = "frontfaas_like";
  options.num_subroutines = 180;
  options.duration = Days(21);
  options.samples_per_bucket = 3000000;
  options.num_step_regressions = 16;
  options.num_gradual_regressions = 4;
  options.num_cost_shifts = 10;
  options.num_transients = 40;
  options.num_seasonal_shifts = 2;
  options.num_background_commits = 250;
  options.min_regression_magnitude = 0.05;
  options.max_regression_magnitude = 0.8;
  options.gcpu_only = true;  // One threshold, one metric family.
  options.seed = seed;
  const Scenario scenario = GenerateScenario(fleet, options);
  fleet.Run(scenario.begin, scenario.end);

  PipelineOptions pipeline_options;
  pipeline_options.detection.threshold = 0.0002;
  pipeline_options.detection.windows.historical = Days(4);
  pipeline_options.detection.windows.analysis = Hours(4);
  pipeline_options.detection.windows.extended = Hours(2);
  pipeline_options.detection.rerun_interval = Hours(4);

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, pipeline_options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod("frontfaas_like", scenario.begin + Days(4), scenario.end);

  auto matches_event = [](const Regression& regression, const InjectedEvent& event) {
    if (std::llabs(static_cast<long long>(regression.change_time - event.start)) >
        static_cast<long long>(Days(1))) {
      return false;
    }
    if (!event.subroutine.empty() && regression.metric.entity == event.subroutine) {
      return true;
    }
    return event.commit_id >= 0 &&
           std::find(regression.candidate_root_causes.begin(),
                     regression.candidate_root_causes.end(),
                     event.commit_id) != regression.candidate_root_causes.end();
  };

  // Classify every report through its pairwise GROUP: the representative is
  // often an upstream caller of the actually-regressed subroutine, while a
  // group member names the subroutine or carries the culprit commit.
  auto group_of = [&](const Regression& report) -> const RegressionGroup* {
    for (const RegressionGroup& group : pipeline.groups()) {
      for (const Regression& member : group.members) {
        if (member.metric == report.metric && member.change_time == report.change_time) {
          return &group;
        }
      }
    }
    return nullptr;
  };
  size_t true_regressions = 0;
  size_t fp_cost_shift = 0;
  size_t fp_transient = 0;
  size_t fp_other = 0;
  for (const Regression& report : reports) {
    const InjectedEvent* match = nullptr;
    const RegressionGroup* group = group_of(report);
    for (const InjectedEvent& event : fleet.ground_truth()) {
      bool hit = matches_event(report, event);
      if (!hit && group != nullptr) {
        for (const Regression& member : group->members) {
          if (matches_event(member, event)) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        // True regressions take precedence over coincidental transients.
        if (match == nullptr || event.IsTrueRegression()) {
          match = &event;
        }
        if (event.IsTrueRegression()) {
          break;
        }
      }
    }
    if (match != nullptr && match->IsTrueRegression()) {
      ++true_regressions;
    } else if (match != nullptr && match->kind == EventKind::kCostShift) {
      ++fp_cost_shift;
    } else if (match != nullptr && match->kind == EventKind::kTransientIssue) {
      ++fp_transient;
    } else {
      ++fp_other;  // Noise / drift / seasonal residue.
    }
  }

  // False negatives via group membership. The paper's standard is missing a
  // regression FBDetect was SUPPOSED to catch, so split the injected set by
  // whether the expected absolute gCPU delta (baseline x magnitude) clears
  // the configured threshold at all.
  size_t injected = 0;
  size_t missed = 0;
  size_t detectable = 0;
  size_t missed_detectable = 0;
  for (const InjectedEvent& event : fleet.ground_truth()) {
    if (!event.IsTrueRegression()) {
      continue;
    }
    ++injected;
    const TimeSeries* series = fleet.db().Find(
        {options.service_name, MetricKind::kGcpu, event.subroutine, ""});
    double expected_delta = 0.0;
    if (series != nullptr) {
      const std::vector<double> before = series->ValuesBetween(0, event.start);
      if (!before.empty()) {
        expected_delta = Mean(before) * event.magnitude;
      }
    }
    const bool is_detectable = expected_delta >= pipeline_options.detection.threshold;
    detectable += is_detectable ? 1 : 0;
    bool caught = false;
    for (const RegressionGroup& group : pipeline.groups()) {
      for (const Regression& member : group.members) {
        if (matches_event(member, event)) {
          caught = true;
          break;
        }
      }
      if (caught) {
        break;
      }
    }
    missed += caught ? 0 : 1;
    if (is_detectable && !caught) {
      ++missed_detectable;
    }
  }

  const size_t false_positives = fp_cost_shift + fp_transient + fp_other;
  std::printf("reports:                    %zu over %lld days\n", reports.size(),
              static_cast<long long>((options.duration - Days(4)) / kDay));
  std::printf("  true regressions:         %zu\n", true_regressions);
  std::printf("  false positives:          %zu\n", false_positives);
  std::printf("    coinciding w/ cost shift: %zu\n", fp_cost_shift);
  std::printf("    coinciding w/ transient:  %zu\n", fp_transient);
  std::printf("    noise / drift:            %zu\n", fp_other);
  std::printf("false negatives:            %zu of %zu injected regressions\n", missed,
              injected);
  std::printf("  ...of which ABOVE the configured threshold (\"supposed to catch\"):\n"
              "                            %zu of %zu\n", missed_detectable, detectable);
  std::printf("TR:FP ratio:                %.2f (paper: 49:21 = 2.33 among confirmed)\n",
              false_positives == 0
                  ? 0.0
                  : static_cast<double>(true_regressions) / false_positives);

  // The per-developer ticket arithmetic at the paper's fleet scale: 217
  // reports/month over tens of thousands of developers.
  const double reports_per_month =
      static_cast<double>(reports.size()) * 30.0 /
      static_cast<double>((options.duration - Days(4)) / kDay);
  const double developers = 20000.0;
  const double years_between_tickets = developers / (reports_per_month * 12.0);
  std::printf("\nticket arithmetic at paper scale (%0.0f developers):\n", developers);
  std::printf("  %.0f reports/month for this (single) service -> one ticket per developer\n"
              "  every %.0f years; the paper's 217/month across FrontFaaS gives ~4 years.\n",
              reports_per_month, years_between_tickets);
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader("§6.2 — false-positive / false-negative accounting");
  fbdetect::Run(77);
  return 0;
}
