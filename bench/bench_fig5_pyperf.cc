// Figure 5 reproduction: PyPerf end-to-end stack reconstruction.
//
// Samples a simulated CPython process many times and verifies that the
// merged stack (native prefix + Python frames substituted for
// _PyEval_EvalFrameDefault + native-library suffix) exactly reproduces the
// program's logical stack. Reports reconstruction fidelity, the fraction of
// samples reaching native libraries, and per-Python-function inclusive
// sample shares (the gCPU a real deployment would derive).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/profiling/pyperf.h"

namespace fbdetect {
namespace {

void Run() {
  SimulatedInterpreterProcess::Options options;
  options.max_python_depth = 6;
  options.native_leaf_probability = 0.4;
  SimulatedInterpreterProcess process(options, 7);

  const int kSamples = 200000;
  int exact = 0;
  int torn_count = 0;
  int native_leaf = 0;
  std::map<std::string, int> python_containment;

  for (int i = 0; i < kSamples; ++i) {
    const InterpreterSnapshot snapshot = process.Sample();
    bool torn = false;
    const std::vector<MergedFrame> merged = MergeStacks(snapshot, &torn);
    torn_count += torn ? 1 : 0;

    // Fidelity: Python frames in the merged stack == the VCS, in order.
    size_t python_index = 0;
    bool ok = true;
    std::map<std::string, bool> seen_this_sample;
    for (const MergedFrame& frame : merged) {
      if (frame.is_python) {
        if (python_index >= snapshot.virtual_call_stack.size() ||
            frame.symbol != snapshot.virtual_call_stack[python_index].function) {
          ok = false;
          break;
        }
        seen_this_sample[frame.symbol] = true;
        ++python_index;
      }
    }
    ok = ok && python_index == snapshot.virtual_call_stack.size();
    exact += ok ? 1 : 0;
    if (!merged.empty() && !merged.back().is_python && merged.back().symbol != "_start") {
      ++native_leaf;
    }
    for (const auto& [function, unused] : seen_this_sample) {
      ++python_containment[function];
    }
  }

  std::printf("samples:                     %d\n", kSamples);
  std::printf("exact reconstructions:       %d (%.3f%%)\n", exact,
              100.0 * exact / kSamples);
  std::printf("torn samples:                %d\n", torn_count);
  std::printf("samples ending in C library: %.1f%% (configured leaf prob 40%%)\n",
              100.0 * native_leaf / kSamples);

  std::printf("\nTop Python functions by inclusive sample share (gCPU):\n");
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [function, count] : python_containment) {
    ranked.emplace_back(count, function);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %-12s gCPU=%.3f%%\n", ranked[i].second.c_str(),
                100.0 * ranked[i].first / kSamples);
  }
}

}  // namespace
}  // namespace fbdetect

int main() {
  fbdetect::PrintHeader(
      "Figure 5 — PyPerf merged-stack reconstruction over a simulated CPython VCS");
  fbdetect::Run();
  return 0;
}
