// Durable-tier harness for the memory-mapped chunk tier and its group-commit
// write-ahead log (DESIGN.md §15). Writes BENCH_durable.json.
//
// Four measurements:
//   1. Resident memory at scale: the same fleet-shaped workload sealed into
//      (a) the RAM-only tiered store and (b) the durable tier under a small
//      resident-sealed budget, at 10k and 100k series. Reports heap-resident
//      bytes (raw tails + resident sealed chunks + materialized caches) for
//      both. The acceptance bar is >= 2x reduction with tail_hits unchanged:
//      eviction must never degrade the zero-copy tail fast path.
//   2. Cold readback: full-history scans against the evicted database, every
//      sealed chunk decoded straight from the memory-mapped chunk file
//      through the two-phase bit reader. Reports decode throughput.
//   3. Group-commit throughput: time-interleaved ingest with fsync on, swept
//      over group_commit_bytes. Larger groups amortize the write()+fsync()
//      pair over more points; the commit counts make the batching visible.
//   4. Recovery time vs log length: reopen cost after a clean close with the
//      whole history in the WAL (no checkpoint) at several log lengths, and
//      after a checkpoint, where the log holds only cutoff + seal boundary +
//      tail snapshots and recovery cost is bounded by the working set.
//
// `--smoke` shrinks every dimension so CI can exercise the full harness in
// seconds; the JSON notes which mode produced it.
#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {
namespace {

constexpr TimePoint kTick = 600;

TimePoint TimeAt(size_t step) { return static_cast<TimePoint>(step + 1) * kTick; }

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Temp directories (RAII so aborted runs don't leak /tmp).
// ---------------------------------------------------------------------------

struct ScopedDir {
  std::string path;

  explicit ScopedDir(const char* tag) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "/tmp/fbd_bench_durable_%s_XXXXXX", tag);
    const char* dir = mkdtemp(buf);
    FBD_CHECK(dir != nullptr);
    path = dir;
  }

  ~ScopedDir() {
    if (DIR* d = opendir(path.c_str())) {
      while (const dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          (void)unlink((path + "/" + name).c_str());
        }
      }
      closedir(d);
    }
    (void)rmdir(path.c_str());
  }
};

// ---------------------------------------------------------------------------
// Workload: fleet-shaped identities, noisy gauge values. The noise matters —
// random low bits keep Gorilla's value compression honest (~9 bytes/point
// instead of the near-zero cost of constant series), so the resident-memory
// comparison reflects what sealed fleet telemetry actually costs on the heap.
// ---------------------------------------------------------------------------

std::vector<MetricId> MakeIds(size_t num_series) {
  std::vector<MetricId> ids;
  ids.reserve(num_series);
  for (size_t i = 0; i < num_series; ++i) {
    ids.push_back(MetricId{"svc_" + std::to_string(i / 100), MetricKind::kGcpu,
                           "subroutine_" + std::to_string(i % 100), ""});
  }
  return ids;
}

// Series-major ingest (each series' timestamps are appended in order, which
// is all the write path requires), committed every few series so the staged
// batch never rivals the database's own footprint.
void Ingest(TimeSeriesDatabase& db, const std::vector<MetricId>& ids, size_t num_points) {
  WriteBatch batch(&db);
  Rng rng(0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < ids.size(); ++i) {
    const InternedMetricId id = db.Intern(ids[i]);
    const double base = 10.0 + static_cast<double>(i % 97);
    for (size_t step = 0; step < num_points; ++step) {
      batch.Add(id, TimeAt(step), base + rng.Uniform(-1.0, 1.0));
    }
    if ((i + 1) % 64 == 0 || i + 1 == ids.size()) {
      batch.Commit();
    }
  }
}

// Heap-resident bytes attributable to series storage: mutable raw tails plus
// sealed chunks still on the heap plus Find()'s materialized caches. Mapped
// sealed bytes are excluded on purpose — they live in the chunk file and cost
// page cache, which the kernel reclaims under pressure, not heap.
size_t ResidentBytes(const TimeSeriesDatabase& db) {
  const auto m = db.memory_stats();
  return m.raw_points * 16 + m.resident_sealed_bytes + m.materialized_bytes;
}

struct ScaleResult {
  size_t num_series = 0;
  size_t num_points = 0;
  size_t ram_resident = 0;
  size_t durable_resident = 0;
  size_t mapped_bytes = 0;
  double reduction = 0.0;
  uint64_t ram_tail_hits = 0;
  uint64_t durable_tail_hits = 0;
  double cold_ms = 0.0;
  double cold_mpts = 0.0;
  uint64_t cold_mapped_decodes = 0;
};

ScaleResult RunScale(size_t num_series, size_t num_points, size_t tail_points) {
  ScaleResult result;
  result.num_series = num_series;
  result.num_points = num_points;
  const std::vector<MetricId> ids = MakeIds(num_series);
  const TimePoint seal_boundary = TimeAt(num_points - tail_points);

  // Tail scan: one SeriesForScan per series with `begin` inside the tail, the
  // pipeline's steady-state read. Every lookup must stay a zero-copy tail hit.
  const auto scan_tails = [&](TimeSeriesDatabase& db) {
    const uint64_t before = db.scan_stats().tail_hits;
    TimeSeries scratch;
    size_t total = 0;
    for (const MetricId& id : ids) {
      scratch.Clear();
      const TimeSeries* series = db.SeriesForScan(id, seal_boundary, scratch);
      FBD_CHECK(series != nullptr);
      total += series->size();
    }
    FBD_CHECK(total == num_series * tail_points);
    return db.scan_stats().tail_hits - before;
  };

  {
    TsdbOptions ram_options;
    TimeSeriesDatabase ram(ram_options);
    Ingest(ram, ids, num_points);
    ram.SealBefore(seal_boundary);
    result.ram_resident = ResidentBytes(ram);
    result.ram_tail_hits = scan_tails(ram);
  }  // Destroyed before the durable build so peak RSS stays one fleet.

  ScopedDir dir("mem");
  TsdbOptions durable_options;
  durable_options.durable.directory = dir.path;
  durable_options.durable.resident_sealed_budget_bytes = 1 << 16;
  durable_options.durable.fsync = false;  // Measuring memory, not commit cost.
  TimeSeriesDatabase durable(durable_options);
  Ingest(durable, ids, num_points);
  durable.SealBefore(seal_boundary);
  result.durable_resident = ResidentBytes(durable);
  result.mapped_bytes = durable.memory_stats().mapped_sealed_bytes;
  result.durable_tail_hits = scan_tails(durable);
  result.reduction =
      static_cast<double>(result.ram_resident) / static_cast<double>(result.durable_resident);

  // Acceptance: >= 2x resident reduction, tail fast path untouched.
  FBD_CHECK(result.reduction >= 2.0);
  FBD_CHECK(result.ram_tail_hits == result.durable_tail_hits);

  // Cold readback on the same evicted database: full-history scans decode
  // every sealed chunk from the mapped chunk file.
  {
    const uint64_t decodes_before = durable.durable_stats().mapped_readback_decodes;
    TimeSeries scratch;
    size_t total = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const MetricId& id : ids) {
      scratch.Clear();
      const TimeSeries* series = durable.SeriesForScan(id, 0, scratch);
      FBD_CHECK(series != nullptr);
      total += series->size();
    }
    result.cold_ms = MillisSince(start);
    FBD_CHECK(total == num_series * num_points);
    result.cold_mapped_decodes =
        durable.durable_stats().mapped_readback_decodes - decodes_before;
    FBD_CHECK(result.cold_mapped_decodes > 0);
    result.cold_mpts = static_cast<double>(total) / 1e6 / (result.cold_ms / 1e3);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Group-commit throughput: time-interleaved ingest (one WriteBatch commit per
// tick across all series, the fleet's emission shape) with fsync on.
// ---------------------------------------------------------------------------

struct CommitResult {
  size_t group_commit_bytes = 0;
  size_t points = 0;
  double ms = 0.0;
  double mpts = 0.0;
  uint64_t group_commits = 0;
  uint64_t log_bytes_written = 0;
};

CommitResult RunGroupCommit(size_t group_commit_bytes, size_t num_series, size_t num_steps) {
  ScopedDir dir("wal");
  TsdbOptions options;
  options.durable.directory = dir.path;
  options.durable.group_commit_bytes = group_commit_bytes;
  options.durable.fsync = true;
  TimeSeriesDatabase db(options);
  const std::vector<MetricId> metric_ids = MakeIds(num_series);
  std::vector<InternedMetricId> ids;
  ids.reserve(metric_ids.size());
  for (const MetricId& id : metric_ids) {
    ids.push_back(db.Intern(id));
  }
  WriteBatch batch(&db);
  Rng rng(0xC0FFEE);
  const auto start = std::chrono::steady_clock::now();
  for (size_t step = 0; step < num_steps; ++step) {
    for (size_t i = 0; i < ids.size(); ++i) {
      batch.Add(ids[i], TimeAt(step), 50.0 + rng.Uniform(-1.0, 1.0));
    }
    batch.Commit();
  }
  db.SyncDurable();
  CommitResult result;
  result.group_commit_bytes = group_commit_bytes;
  result.points = num_series * num_steps;
  result.ms = MillisSince(start);
  result.mpts = static_cast<double>(result.points) / 1e6 / (result.ms / 1e3);
  result.group_commits = db.durable_stats().group_commits;
  result.log_bytes_written = db.durable_stats().log_bytes_written;
  return result;
}

// ---------------------------------------------------------------------------
// Recovery time vs log length. `checkpoint` seals (and thus rewrites every
// WAL down to cutoff + boundary + tail snapshots) before closing.
// ---------------------------------------------------------------------------

struct RecoveryResult {
  std::string mode;
  size_t ingested_points = 0;
  uint64_t log_bytes = 0;
  uint64_t recovered_points = 0;
  uint64_t recovered_chunks = 0;
  double open_ms = 0.0;
  double replay_mpts = 0.0;
};

RecoveryResult RunRecovery(const std::string& mode, size_t num_series, size_t num_steps,
                           bool checkpoint) {
  ScopedDir dir("rec");
  TsdbOptions options;
  options.durable.directory = dir.path;
  options.durable.fsync = false;
  RecoveryResult result;
  result.mode = mode;
  result.ingested_points = num_series * num_steps;
  {
    TimeSeriesDatabase db(options);
    Ingest(db, MakeIds(num_series), num_steps);
    if (checkpoint) {
      db.SealBefore(TimeAt(num_steps - 8));
    }
    db.SyncDurable();
    result.log_bytes = db.durable_stats().log_bytes;
  }  // Clean close.
  const auto start = std::chrono::steady_clock::now();
  TimeSeriesDatabase reopened(options);
  result.open_ms = MillisSince(start);
  const auto stats = reopened.durable_stats();
  result.recovered_points = stats.recovered_points;
  result.recovered_chunks = stats.recovered_chunks;
  FBD_CHECK(reopened.total_points() == result.ingested_points);
  result.replay_mpts =
      static_cast<double>(result.recovered_points) / 1e6 / (result.open_ms / 1e3);
  return result;
}

int Run(bool smoke) {
  std::printf("durable-tier bench%s\n", smoke ? " [smoke]" : "");
  std::printf("hardware: %s\n", HardwareJsonValue().c_str());

  // --- 1 + 2: resident memory and cold readback, per scale -----------------
  PrintHeader("Resident memory: RAM-only vs durable tier (budget 64 KiB)");
  const std::vector<size_t> scales =
      smoke ? std::vector<size_t>{1000, 4000} : std::vector<size_t>{10000, 100000};
  const size_t num_points = smoke ? 96 : 256;
  const size_t tail_points = 8;
  std::vector<ScaleResult> scale_results;
  const std::vector<int> mem_widths = {10, 14, 16, 16, 12, 12};
  PrintRow({"series", "points", "ram_resident", "durable_res", "reduction", "tail_hits"},
           mem_widths);
  for (const size_t scale : scales) {
    scale_results.push_back(RunScale(scale, num_points, tail_points));
    const ScaleResult& r = scale_results.back();
    PrintRow({std::to_string(r.num_series), std::to_string(r.num_series * r.num_points),
              FormatDouble(static_cast<double>(r.ram_resident) / 1048576.0, "%.1f MiB"),
              FormatDouble(static_cast<double>(r.durable_resident) / 1048576.0, "%.1f MiB"),
              FormatDouble(r.reduction, "%.1fx"),
              std::to_string(r.durable_tail_hits) + "=" + std::to_string(r.ram_tail_hits)},
             mem_widths);
  }

  PrintHeader("Cold readback: full-history scans decoded from the mapped chunk file");
  const std::vector<int> cold_widths = {10, 12, 10, 12, 14};
  PrintRow({"series", "points", "ms", "Mpts/s", "mapped_dec"}, cold_widths);
  for (const ScaleResult& r : scale_results) {
    PrintRow({std::to_string(r.num_series), std::to_string(r.num_series * r.num_points),
              FormatDouble(r.cold_ms, "%.1f"), FormatDouble(r.cold_mpts, "%.1f"),
              std::to_string(r.cold_mapped_decodes)},
             cold_widths);
  }

  // --- 3: group-commit sweep ----------------------------------------------
  PrintHeader("Group-commit throughput (fsync on, time-interleaved ingest)");
  const size_t commit_series = smoke ? 200 : 2000;
  const size_t commit_steps = smoke ? 50 : 200;
  const std::vector<size_t> group_bytes =
      smoke ? std::vector<size_t>{4096, 262144}
            : std::vector<size_t>{4096, 65536, 262144, 1 << 20};
  std::vector<CommitResult> commit_results;
  const std::vector<int> commit_widths = {14, 10, 10, 10, 10, 14};
  PrintRow({"group_bytes", "points", "ms", "Mpts/s", "commits", "wal_written"}, commit_widths);
  for (const size_t bytes : group_bytes) {
    commit_results.push_back(RunGroupCommit(bytes, commit_series, commit_steps));
    const CommitResult& r = commit_results.back();
    PrintRow({std::to_string(r.group_commit_bytes), std::to_string(r.points),
              FormatDouble(r.ms, "%.1f"), FormatDouble(r.mpts, "%.2f"),
              std::to_string(r.group_commits),
              FormatDouble(static_cast<double>(r.log_bytes_written) / 1048576.0, "%.1f MiB")},
             commit_widths);
  }

  // --- 4: recovery vs log length ------------------------------------------
  PrintHeader("Recovery time vs log length");
  const size_t rec_series = smoke ? 100 : 1000;
  const size_t rec_steps = smoke ? 80 : 400;
  std::vector<RecoveryResult> recovery_results;
  recovery_results.push_back(RunRecovery("wal_quarter", rec_series, rec_steps / 4, false));
  recovery_results.push_back(RunRecovery("wal_half", rec_series, rec_steps / 2, false));
  recovery_results.push_back(RunRecovery("wal_full", rec_series, rec_steps, false));
  recovery_results.push_back(RunRecovery("checkpointed", rec_series, rec_steps, true));
  const std::vector<int> rec_widths = {14, 10, 12, 12, 10, 10};
  PrintRow({"mode", "points", "log_bytes", "replayed", "open_ms", "Mpts/s"}, rec_widths);
  for (const RecoveryResult& r : recovery_results) {
    PrintRow({r.mode, std::to_string(r.ingested_points), std::to_string(r.log_bytes),
              std::to_string(r.recovered_points), FormatDouble(r.open_ms, "%.1f"),
              FormatDouble(r.replay_mpts, "%.2f")},
             rec_widths);
  }
  // The checkpointed log replays only tail snapshots; it must be a small
  // fraction of the full-history log on both axes.
  FBD_CHECK(recovery_results.back().log_bytes < recovery_results[2].log_bytes / 2);

  // --- JSON ----------------------------------------------------------------
  FILE* json = std::fopen("BENCH_durable.json", "w");
  FBD_CHECK(json != nullptr);
  std::fprintf(json, "{\n");
  WriteHardwareJson(json);
  std::fprintf(json, ",\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"resident_memory\": [\n");
  for (size_t i = 0; i < scale_results.size(); ++i) {
    const ScaleResult& r = scale_results[i];
    std::fprintf(json,
                 "    {\"series\": %zu, \"points_per_series\": %zu, "
                 "\"ram_resident_bytes\": %zu, \"durable_resident_bytes\": %zu, "
                 "\"mapped_sealed_bytes\": %zu, \"reduction_x\": %.2f, "
                 "\"tail_hits_ram\": %llu, \"tail_hits_durable\": %llu}%s\n",
                 r.num_series, r.num_points, r.ram_resident, r.durable_resident,
                 r.mapped_bytes, r.reduction,
                 static_cast<unsigned long long>(r.ram_tail_hits),
                 static_cast<unsigned long long>(r.durable_tail_hits),
                 i + 1 < scale_results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"cold_readback\": [\n");
  for (size_t i = 0; i < scale_results.size(); ++i) {
    const ScaleResult& r = scale_results[i];
    std::fprintf(json,
                 "    {\"series\": %zu, \"points\": %zu, \"ms\": %.2f, "
                 "\"mpts_per_s\": %.2f, \"mapped_decodes\": %llu}%s\n",
                 r.num_series, r.num_series * r.num_points, r.cold_ms, r.cold_mpts,
                 static_cast<unsigned long long>(r.cold_mapped_decodes),
                 i + 1 < scale_results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"group_commit\": [\n");
  for (size_t i = 0; i < commit_results.size(); ++i) {
    const CommitResult& r = commit_results[i];
    std::fprintf(json,
                 "    {\"group_commit_bytes\": %zu, \"points\": %zu, \"ms\": %.2f, "
                 "\"mpts_per_s\": %.3f, \"group_commits\": %llu, "
                 "\"log_bytes_written\": %llu}%s\n",
                 r.group_commit_bytes, r.points, r.ms, r.mpts,
                 static_cast<unsigned long long>(r.group_commits),
                 static_cast<unsigned long long>(r.log_bytes_written),
                 i + 1 < commit_results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"recovery\": [\n");
  for (size_t i = 0; i < recovery_results.size(); ++i) {
    const RecoveryResult& r = recovery_results[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"ingested_points\": %zu, \"log_bytes\": %llu, "
                 "\"recovered_points\": %llu, \"recovered_chunks\": %llu, "
                 "\"open_ms\": %.2f, \"replay_mpts_per_s\": %.2f}%s\n",
                 r.mode.c_str(), r.ingested_points,
                 static_cast<unsigned long long>(r.log_bytes),
                 static_cast<unsigned long long>(r.recovered_points),
                 static_cast<unsigned long long>(r.recovered_chunks), r.open_ms,
                 r.replay_mpts, i + 1 < recovery_results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_durable.json\n");
  return 0;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  return fbdetect::Run(smoke);
}
