file(REMOVE_RECURSE
  "CMakeFiles/capacity_triage.dir/capacity_triage.cpp.o"
  "CMakeFiles/capacity_triage.dir/capacity_triage.cpp.o.d"
  "capacity_triage"
  "capacity_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
