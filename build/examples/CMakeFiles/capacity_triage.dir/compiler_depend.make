# Empty compiler generated dependencies file for capacity_triage.
# This may be replaced when dependencies are built.
