file(REMOVE_RECURSE
  "CMakeFiles/pyperf_demo.dir/pyperf_demo.cpp.o"
  "CMakeFiles/pyperf_demo.dir/pyperf_demo.cpp.o.d"
  "pyperf_demo"
  "pyperf_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyperf_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
