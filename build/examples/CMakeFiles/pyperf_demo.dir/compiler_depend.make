# Empty compiler generated dependencies file for pyperf_demo.
# This may be replaced when dependencies are built.
