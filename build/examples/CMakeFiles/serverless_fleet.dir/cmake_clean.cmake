file(REMOVE_RECURSE
  "CMakeFiles/serverless_fleet.dir/serverless_fleet.cpp.o"
  "CMakeFiles/serverless_fleet.dir/serverless_fleet.cpp.o.d"
  "serverless_fleet"
  "serverless_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
