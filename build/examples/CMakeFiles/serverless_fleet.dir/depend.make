# Empty dependencies file for serverless_fleet.
# This may be replaced when dependencies are built.
