file(REMOVE_RECURSE
  "CMakeFiles/invoicer.dir/invoicer.cpp.o"
  "CMakeFiles/invoicer.dir/invoicer.cpp.o.d"
  "invoicer"
  "invoicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invoicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
