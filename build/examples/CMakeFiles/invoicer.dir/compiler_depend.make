# Empty compiler generated dependencies file for invoicer.
# This may be replaced when dependencies are built.
