# Empty dependencies file for fbdetect_sim.
# This may be replaced when dependencies are built.
