file(REMOVE_RECURSE
  "CMakeFiles/fbdetect_sim.dir/fbdetect_sim.cc.o"
  "CMakeFiles/fbdetect_sim.dir/fbdetect_sim.cc.o.d"
  "fbdetect_sim"
  "fbdetect_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbdetect_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
