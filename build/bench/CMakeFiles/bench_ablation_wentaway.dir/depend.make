# Empty dependencies file for bench_ablation_wentaway.
# This may be replaced when dependencies are built.
