file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wentaway.dir/bench_ablation_wentaway.cc.o"
  "CMakeFiles/bench_ablation_wentaway.dir/bench_ablation_wentaway.cc.o.d"
  "bench_ablation_wentaway"
  "bench_ablation_wentaway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wentaway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
