file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_funnel.dir/bench_table3_funnel.cc.o"
  "CMakeFiles/bench_table3_funnel.dir/bench_table3_funnel.cc.o.d"
  "bench_table3_funnel"
  "bench_table3_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
