# Empty dependencies file for bench_fpfn_accounting.
# This may be replaced when dependencies are built.
