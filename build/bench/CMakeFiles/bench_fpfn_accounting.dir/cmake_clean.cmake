file(REMOVE_RECURSE
  "CMakeFiles/bench_fpfn_accounting.dir/bench_fpfn_accounting.cc.o"
  "CMakeFiles/bench_fpfn_accounting.dir/bench_fpfn_accounting.cc.o.d"
  "bench_fpfn_accounting"
  "bench_fpfn_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpfn_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
