# Empty dependencies file for bench_appendix_scaling.
# This may be replaced when dependencies are built.
