file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_scaling.dir/bench_appendix_scaling.cc.o"
  "CMakeFiles/bench_appendix_scaling.dir/bench_appendix_scaling.cc.o.d"
  "bench_appendix_scaling"
  "bench_appendix_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
