file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_process_level.dir/bench_fig2_process_level.cc.o"
  "CMakeFiles/bench_fig2_process_level.dir/bench_fig2_process_level.cc.o.d"
  "bench_fig2_process_level"
  "bench_fig2_process_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_process_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
