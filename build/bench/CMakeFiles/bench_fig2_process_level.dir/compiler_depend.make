# Empty compiler generated dependencies file for bench_fig2_process_level.
# This may be replaced when dependencies are built.
