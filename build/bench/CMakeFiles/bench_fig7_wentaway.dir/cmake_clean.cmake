file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_wentaway.dir/bench_fig7_wentaway.cc.o"
  "CMakeFiles/bench_fig7_wentaway.dir/bench_fig7_wentaway.cc.o.d"
  "bench_fig7_wentaway"
  "bench_fig7_wentaway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_wentaway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
