# Empty dependencies file for bench_fig3_subroutine_level.
# This may be replaced when dependencies are built.
