file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_subroutine_level.dir/bench_fig3_subroutine_level.cc.o"
  "CMakeFiles/bench_fig3_subroutine_level.dir/bench_fig3_subroutine_level.cc.o.d"
  "bench_fig3_subroutine_level"
  "bench_fig3_subroutine_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_subroutine_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
