file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pyperf.dir/bench_fig5_pyperf.cc.o"
  "CMakeFiles/bench_fig5_pyperf.dir/bench_fig5_pyperf.cc.o.d"
  "bench_fig5_pyperf"
  "bench_fig5_pyperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pyperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
