file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_magnitudes.dir/bench_table4_magnitudes.cc.o"
  "CMakeFiles/bench_table4_magnitudes.dir/bench_table4_magnitudes.cc.o.d"
  "bench_table4_magnitudes"
  "bench_table4_magnitudes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_magnitudes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
