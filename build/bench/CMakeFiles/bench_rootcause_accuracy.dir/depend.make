# Empty dependencies file for bench_rootcause_accuracy.
# This may be replaced when dependencies are built.
