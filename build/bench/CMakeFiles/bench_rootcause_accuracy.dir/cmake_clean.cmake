file(REMOVE_RECURSE
  "CMakeFiles/bench_rootcause_accuracy.dir/bench_rootcause_accuracy.cc.o"
  "CMakeFiles/bench_rootcause_accuracy.dir/bench_rootcause_accuracy.cc.o.d"
  "bench_rootcause_accuracy"
  "bench_rootcause_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rootcause_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
