file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_egads.dir/bench_fig8_egads.cc.o"
  "CMakeFiles/bench_fig8_egads.dir/bench_fig8_egads.cc.o.d"
  "bench_fig8_egads"
  "bench_fig8_egads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_egads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
