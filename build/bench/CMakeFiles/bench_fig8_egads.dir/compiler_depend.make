# Empty compiler generated dependencies file for bench_fig8_egads.
# This may be replaced when dependencies are built.
