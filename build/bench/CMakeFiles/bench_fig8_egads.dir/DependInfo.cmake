
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_egads.cc" "bench/CMakeFiles/bench_fig8_egads.dir/bench_fig8_egads.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_egads.dir/bench_fig8_egads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/egads/CMakeFiles/fbd_egads.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/fbd_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/fbd_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/tsa/CMakeFiles/fbd_tsa.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/fbd_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tracing/CMakeFiles/fbd_tracing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
