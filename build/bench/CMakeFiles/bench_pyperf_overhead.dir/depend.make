# Empty dependencies file for bench_pyperf_overhead.
# This may be replaced when dependencies are built.
