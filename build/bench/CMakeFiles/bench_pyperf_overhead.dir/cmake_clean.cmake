file(REMOVE_RECURSE
  "CMakeFiles/bench_pyperf_overhead.dir/bench_pyperf_overhead.cc.o"
  "CMakeFiles/bench_pyperf_overhead.dir/bench_pyperf_overhead.cc.o.d"
  "bench_pyperf_overhead"
  "bench_pyperf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pyperf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
