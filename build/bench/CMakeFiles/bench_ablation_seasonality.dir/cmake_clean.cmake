file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seasonality.dir/bench_ablation_seasonality.cc.o"
  "CMakeFiles/bench_ablation_seasonality.dir/bench_ablation_seasonality.cc.o.d"
  "bench_ablation_seasonality"
  "bench_ablation_seasonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seasonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
