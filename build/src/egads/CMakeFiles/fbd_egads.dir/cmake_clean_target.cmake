file(REMOVE_RECURSE
  "libfbd_egads.a"
)
