
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/egads/egads.cc" "src/egads/CMakeFiles/fbd_egads.dir/egads.cc.o" "gcc" "src/egads/CMakeFiles/fbd_egads.dir/egads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
