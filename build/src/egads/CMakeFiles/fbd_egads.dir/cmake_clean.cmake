file(REMOVE_RECURSE
  "CMakeFiles/fbd_egads.dir/egads.cc.o"
  "CMakeFiles/fbd_egads.dir/egads.cc.o.d"
  "libfbd_egads.a"
  "libfbd_egads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_egads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
