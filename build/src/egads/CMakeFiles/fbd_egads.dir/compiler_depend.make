# Empty compiler generated dependencies file for fbd_egads.
# This may be replaced when dependencies are built.
