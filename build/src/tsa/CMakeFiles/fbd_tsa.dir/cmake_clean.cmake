file(REMOVE_RECURSE
  "CMakeFiles/fbd_tsa.dir/cusum.cc.o"
  "CMakeFiles/fbd_tsa.dir/cusum.cc.o.d"
  "CMakeFiles/fbd_tsa.dir/dp_changepoint.cc.o"
  "CMakeFiles/fbd_tsa.dir/dp_changepoint.cc.o.d"
  "CMakeFiles/fbd_tsa.dir/em_changepoint.cc.o"
  "CMakeFiles/fbd_tsa.dir/em_changepoint.cc.o.d"
  "CMakeFiles/fbd_tsa.dir/loess.cc.o"
  "CMakeFiles/fbd_tsa.dir/loess.cc.o.d"
  "CMakeFiles/fbd_tsa.dir/sax.cc.o"
  "CMakeFiles/fbd_tsa.dir/sax.cc.o.d"
  "CMakeFiles/fbd_tsa.dir/stl.cc.o"
  "CMakeFiles/fbd_tsa.dir/stl.cc.o.d"
  "libfbd_tsa.a"
  "libfbd_tsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_tsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
