
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsa/cusum.cc" "src/tsa/CMakeFiles/fbd_tsa.dir/cusum.cc.o" "gcc" "src/tsa/CMakeFiles/fbd_tsa.dir/cusum.cc.o.d"
  "/root/repo/src/tsa/dp_changepoint.cc" "src/tsa/CMakeFiles/fbd_tsa.dir/dp_changepoint.cc.o" "gcc" "src/tsa/CMakeFiles/fbd_tsa.dir/dp_changepoint.cc.o.d"
  "/root/repo/src/tsa/em_changepoint.cc" "src/tsa/CMakeFiles/fbd_tsa.dir/em_changepoint.cc.o" "gcc" "src/tsa/CMakeFiles/fbd_tsa.dir/em_changepoint.cc.o.d"
  "/root/repo/src/tsa/loess.cc" "src/tsa/CMakeFiles/fbd_tsa.dir/loess.cc.o" "gcc" "src/tsa/CMakeFiles/fbd_tsa.dir/loess.cc.o.d"
  "/root/repo/src/tsa/sax.cc" "src/tsa/CMakeFiles/fbd_tsa.dir/sax.cc.o" "gcc" "src/tsa/CMakeFiles/fbd_tsa.dir/sax.cc.o.d"
  "/root/repo/src/tsa/stl.cc" "src/tsa/CMakeFiles/fbd_tsa.dir/stl.cc.o" "gcc" "src/tsa/CMakeFiles/fbd_tsa.dir/stl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
