file(REMOVE_RECURSE
  "libfbd_tsa.a"
)
