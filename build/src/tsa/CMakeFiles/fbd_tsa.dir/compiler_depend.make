# Empty compiler generated dependencies file for fbd_tsa.
# This may be replaced when dependencies are built.
