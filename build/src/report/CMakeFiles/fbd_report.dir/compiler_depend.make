# Empty compiler generated dependencies file for fbd_report.
# This may be replaced when dependencies are built.
