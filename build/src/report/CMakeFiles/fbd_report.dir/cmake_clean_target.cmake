file(REMOVE_RECURSE
  "libfbd_report.a"
)
