file(REMOVE_RECURSE
  "CMakeFiles/fbd_report.dir/report.cc.o"
  "CMakeFiles/fbd_report.dir/report.cc.o.d"
  "libfbd_report.a"
  "libfbd_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
