file(REMOVE_RECURSE
  "libfbd_tsdb.a"
)
