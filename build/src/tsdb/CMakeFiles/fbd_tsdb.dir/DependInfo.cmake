
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdb/database.cc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/database.cc.o" "gcc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/database.cc.o.d"
  "/root/repo/src/tsdb/gorilla.cc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/gorilla.cc.o" "gcc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/gorilla.cc.o.d"
  "/root/repo/src/tsdb/metric_id.cc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/metric_id.cc.o" "gcc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/metric_id.cc.o.d"
  "/root/repo/src/tsdb/timeseries.cc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/timeseries.cc.o" "gcc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/timeseries.cc.o.d"
  "/root/repo/src/tsdb/window.cc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/window.cc.o" "gcc" "src/tsdb/CMakeFiles/fbd_tsdb.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
