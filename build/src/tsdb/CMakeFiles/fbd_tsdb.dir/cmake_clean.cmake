file(REMOVE_RECURSE
  "CMakeFiles/fbd_tsdb.dir/database.cc.o"
  "CMakeFiles/fbd_tsdb.dir/database.cc.o.d"
  "CMakeFiles/fbd_tsdb.dir/gorilla.cc.o"
  "CMakeFiles/fbd_tsdb.dir/gorilla.cc.o.d"
  "CMakeFiles/fbd_tsdb.dir/metric_id.cc.o"
  "CMakeFiles/fbd_tsdb.dir/metric_id.cc.o.d"
  "CMakeFiles/fbd_tsdb.dir/timeseries.cc.o"
  "CMakeFiles/fbd_tsdb.dir/timeseries.cc.o.d"
  "CMakeFiles/fbd_tsdb.dir/window.cc.o"
  "CMakeFiles/fbd_tsdb.dir/window.cc.o.d"
  "libfbd_tsdb.a"
  "libfbd_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
