# Empty dependencies file for fbd_tsdb.
# This may be replaced when dependencies are built.
