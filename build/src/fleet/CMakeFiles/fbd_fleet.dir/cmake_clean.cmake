file(REMOVE_RECURSE
  "CMakeFiles/fbd_fleet.dir/change_log.cc.o"
  "CMakeFiles/fbd_fleet.dir/change_log.cc.o.d"
  "CMakeFiles/fbd_fleet.dir/events.cc.o"
  "CMakeFiles/fbd_fleet.dir/events.cc.o.d"
  "CMakeFiles/fbd_fleet.dir/fleet.cc.o"
  "CMakeFiles/fbd_fleet.dir/fleet.cc.o.d"
  "CMakeFiles/fbd_fleet.dir/scenario.cc.o"
  "CMakeFiles/fbd_fleet.dir/scenario.cc.o.d"
  "CMakeFiles/fbd_fleet.dir/service.cc.o"
  "CMakeFiles/fbd_fleet.dir/service.cc.o.d"
  "libfbd_fleet.a"
  "libfbd_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
