# Empty compiler generated dependencies file for fbd_fleet.
# This may be replaced when dependencies are built.
