file(REMOVE_RECURSE
  "libfbd_fleet.a"
)
