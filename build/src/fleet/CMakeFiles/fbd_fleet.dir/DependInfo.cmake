
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/change_log.cc" "src/fleet/CMakeFiles/fbd_fleet.dir/change_log.cc.o" "gcc" "src/fleet/CMakeFiles/fbd_fleet.dir/change_log.cc.o.d"
  "/root/repo/src/fleet/events.cc" "src/fleet/CMakeFiles/fbd_fleet.dir/events.cc.o" "gcc" "src/fleet/CMakeFiles/fbd_fleet.dir/events.cc.o.d"
  "/root/repo/src/fleet/fleet.cc" "src/fleet/CMakeFiles/fbd_fleet.dir/fleet.cc.o" "gcc" "src/fleet/CMakeFiles/fbd_fleet.dir/fleet.cc.o.d"
  "/root/repo/src/fleet/scenario.cc" "src/fleet/CMakeFiles/fbd_fleet.dir/scenario.cc.o" "gcc" "src/fleet/CMakeFiles/fbd_fleet.dir/scenario.cc.o.d"
  "/root/repo/src/fleet/service.cc" "src/fleet/CMakeFiles/fbd_fleet.dir/service.cc.o" "gcc" "src/fleet/CMakeFiles/fbd_fleet.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tracing/CMakeFiles/fbd_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/fbd_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/fbd_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
