
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/call_graph.cc" "src/profiling/CMakeFiles/fbd_profiling.dir/call_graph.cc.o" "gcc" "src/profiling/CMakeFiles/fbd_profiling.dir/call_graph.cc.o.d"
  "/root/repo/src/profiling/profile.cc" "src/profiling/CMakeFiles/fbd_profiling.dir/profile.cc.o" "gcc" "src/profiling/CMakeFiles/fbd_profiling.dir/profile.cc.o.d"
  "/root/repo/src/profiling/profile_store.cc" "src/profiling/CMakeFiles/fbd_profiling.dir/profile_store.cc.o" "gcc" "src/profiling/CMakeFiles/fbd_profiling.dir/profile_store.cc.o.d"
  "/root/repo/src/profiling/profiler.cc" "src/profiling/CMakeFiles/fbd_profiling.dir/profiler.cc.o" "gcc" "src/profiling/CMakeFiles/fbd_profiling.dir/profiler.cc.o.d"
  "/root/repo/src/profiling/pyperf.cc" "src/profiling/CMakeFiles/fbd_profiling.dir/pyperf.cc.o" "gcc" "src/profiling/CMakeFiles/fbd_profiling.dir/pyperf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsdb/CMakeFiles/fbd_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
