# Empty compiler generated dependencies file for fbd_profiling.
# This may be replaced when dependencies are built.
