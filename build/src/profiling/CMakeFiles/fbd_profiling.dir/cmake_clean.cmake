file(REMOVE_RECURSE
  "CMakeFiles/fbd_profiling.dir/call_graph.cc.o"
  "CMakeFiles/fbd_profiling.dir/call_graph.cc.o.d"
  "CMakeFiles/fbd_profiling.dir/profile.cc.o"
  "CMakeFiles/fbd_profiling.dir/profile.cc.o.d"
  "CMakeFiles/fbd_profiling.dir/profile_store.cc.o"
  "CMakeFiles/fbd_profiling.dir/profile_store.cc.o.d"
  "CMakeFiles/fbd_profiling.dir/profiler.cc.o"
  "CMakeFiles/fbd_profiling.dir/profiler.cc.o.d"
  "CMakeFiles/fbd_profiling.dir/pyperf.cc.o"
  "CMakeFiles/fbd_profiling.dir/pyperf.cc.o.d"
  "libfbd_profiling.a"
  "libfbd_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
