file(REMOVE_RECURSE
  "libfbd_profiling.a"
)
