file(REMOVE_RECURSE
  "libfbd_core.a"
)
