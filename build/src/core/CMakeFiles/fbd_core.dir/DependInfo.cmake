
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/change_point_stage.cc" "src/core/CMakeFiles/fbd_core.dir/change_point_stage.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/change_point_stage.cc.o.d"
  "/root/repo/src/core/clustering_alternatives.cc" "src/core/CMakeFiles/fbd_core.dir/clustering_alternatives.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/clustering_alternatives.cc.o.d"
  "/root/repo/src/core/code_info.cc" "src/core/CMakeFiles/fbd_core.dir/code_info.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/code_info.cc.o.d"
  "/root/repo/src/core/cost_shift.cc" "src/core/CMakeFiles/fbd_core.dir/cost_shift.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/cost_shift.cc.o.d"
  "/root/repo/src/core/long_term.cc" "src/core/CMakeFiles/fbd_core.dir/long_term.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/long_term.cc.o.d"
  "/root/repo/src/core/pairwise_dedup.cc" "src/core/CMakeFiles/fbd_core.dir/pairwise_dedup.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/pairwise_dedup.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/fbd_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/regression.cc" "src/core/CMakeFiles/fbd_core.dir/regression.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/regression.cc.o.d"
  "/root/repo/src/core/root_cause.cc" "src/core/CMakeFiles/fbd_core.dir/root_cause.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/root_cause.cc.o.d"
  "/root/repo/src/core/same_regression_merger.cc" "src/core/CMakeFiles/fbd_core.dir/same_regression_merger.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/same_regression_merger.cc.o.d"
  "/root/repo/src/core/seasonality_stage.cc" "src/core/CMakeFiles/fbd_core.dir/seasonality_stage.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/seasonality_stage.cc.o.d"
  "/root/repo/src/core/som.cc" "src/core/CMakeFiles/fbd_core.dir/som.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/som.cc.o.d"
  "/root/repo/src/core/som_dedup.cc" "src/core/CMakeFiles/fbd_core.dir/som_dedup.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/som_dedup.cc.o.d"
  "/root/repo/src/core/threshold_filter.cc" "src/core/CMakeFiles/fbd_core.dir/threshold_filter.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/threshold_filter.cc.o.d"
  "/root/repo/src/core/went_away.cc" "src/core/CMakeFiles/fbd_core.dir/went_away.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/went_away.cc.o.d"
  "/root/repo/src/core/went_away_legacy.cc" "src/core/CMakeFiles/fbd_core.dir/went_away_legacy.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/went_away_legacy.cc.o.d"
  "/root/repo/src/core/workload_config.cc" "src/core/CMakeFiles/fbd_core.dir/workload_config.cc.o" "gcc" "src/core/CMakeFiles/fbd_core.dir/workload_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/fbd_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/fbd_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/tsa/CMakeFiles/fbd_tsa.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/fbd_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tracing/CMakeFiles/fbd_tracing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
