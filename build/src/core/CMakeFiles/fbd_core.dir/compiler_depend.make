# Empty compiler generated dependencies file for fbd_core.
# This may be replaced when dependencies are built.
