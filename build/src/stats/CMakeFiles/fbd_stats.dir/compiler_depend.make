# Empty compiler generated dependencies file for fbd_stats.
# This may be replaced when dependencies are built.
