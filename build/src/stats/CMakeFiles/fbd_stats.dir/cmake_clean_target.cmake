file(REMOVE_RECURSE
  "libfbd_stats.a"
)
