
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/accumulator.cc" "src/stats/CMakeFiles/fbd_stats.dir/accumulator.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/accumulator.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/fbd_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/fbd_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/fbd_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/fourier.cc" "src/stats/CMakeFiles/fbd_stats.dir/fourier.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/fourier.cc.o.d"
  "/root/repo/src/stats/hypothesis.cc" "src/stats/CMakeFiles/fbd_stats.dir/hypothesis.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/hypothesis.cc.o.d"
  "/root/repo/src/stats/linreg.cc" "src/stats/CMakeFiles/fbd_stats.dir/linreg.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/linreg.cc.o.d"
  "/root/repo/src/stats/text.cc" "src/stats/CMakeFiles/fbd_stats.dir/text.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/text.cc.o.d"
  "/root/repo/src/stats/trend.cc" "src/stats/CMakeFiles/fbd_stats.dir/trend.cc.o" "gcc" "src/stats/CMakeFiles/fbd_stats.dir/trend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
