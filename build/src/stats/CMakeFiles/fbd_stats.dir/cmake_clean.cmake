file(REMOVE_RECURSE
  "CMakeFiles/fbd_stats.dir/accumulator.cc.o"
  "CMakeFiles/fbd_stats.dir/accumulator.cc.o.d"
  "CMakeFiles/fbd_stats.dir/correlation.cc.o"
  "CMakeFiles/fbd_stats.dir/correlation.cc.o.d"
  "CMakeFiles/fbd_stats.dir/descriptive.cc.o"
  "CMakeFiles/fbd_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/fbd_stats.dir/distributions.cc.o"
  "CMakeFiles/fbd_stats.dir/distributions.cc.o.d"
  "CMakeFiles/fbd_stats.dir/fourier.cc.o"
  "CMakeFiles/fbd_stats.dir/fourier.cc.o.d"
  "CMakeFiles/fbd_stats.dir/hypothesis.cc.o"
  "CMakeFiles/fbd_stats.dir/hypothesis.cc.o.d"
  "CMakeFiles/fbd_stats.dir/linreg.cc.o"
  "CMakeFiles/fbd_stats.dir/linreg.cc.o.d"
  "CMakeFiles/fbd_stats.dir/text.cc.o"
  "CMakeFiles/fbd_stats.dir/text.cc.o.d"
  "CMakeFiles/fbd_stats.dir/trend.cc.o"
  "CMakeFiles/fbd_stats.dir/trend.cc.o.d"
  "libfbd_stats.a"
  "libfbd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
