
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracing/trace.cc" "src/tracing/CMakeFiles/fbd_tracing.dir/trace.cc.o" "gcc" "src/tracing/CMakeFiles/fbd_tracing.dir/trace.cc.o.d"
  "/root/repo/src/tracing/trace_generator.cc" "src/tracing/CMakeFiles/fbd_tracing.dir/trace_generator.cc.o" "gcc" "src/tracing/CMakeFiles/fbd_tracing.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiling/CMakeFiles/fbd_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/fbd_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
