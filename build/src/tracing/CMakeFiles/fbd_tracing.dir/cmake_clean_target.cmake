file(REMOVE_RECURSE
  "libfbd_tracing.a"
)
