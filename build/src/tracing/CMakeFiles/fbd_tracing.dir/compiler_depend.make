# Empty compiler generated dependencies file for fbd_tracing.
# This may be replaced when dependencies are built.
