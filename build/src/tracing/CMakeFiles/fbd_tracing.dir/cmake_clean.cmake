file(REMOVE_RECURSE
  "CMakeFiles/fbd_tracing.dir/trace.cc.o"
  "CMakeFiles/fbd_tracing.dir/trace.cc.o.d"
  "CMakeFiles/fbd_tracing.dir/trace_generator.cc.o"
  "CMakeFiles/fbd_tracing.dir/trace_generator.cc.o.d"
  "libfbd_tracing.a"
  "libfbd_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
