file(REMOVE_RECURSE
  "libfbd_common.a"
)
