file(REMOVE_RECURSE
  "CMakeFiles/fbd_common.dir/logging.cc.o"
  "CMakeFiles/fbd_common.dir/logging.cc.o.d"
  "CMakeFiles/fbd_common.dir/random.cc.o"
  "CMakeFiles/fbd_common.dir/random.cc.o.d"
  "CMakeFiles/fbd_common.dir/strings.cc.o"
  "CMakeFiles/fbd_common.dir/strings.cc.o.d"
  "libfbd_common.a"
  "libfbd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
