# Empty compiler generated dependencies file for fbd_common.
# This may be replaced when dependencies are built.
