# Empty compiler generated dependencies file for tsa_test.
# This may be replaced when dependencies are built.
