file(REMOVE_RECURSE
  "CMakeFiles/tsa_test.dir/tsa_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa_test.cc.o.d"
  "tsa_test"
  "tsa_test.pdb"
  "tsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
