file(REMOVE_RECURSE
  "CMakeFiles/profile_store_test.dir/profile_store_test.cc.o"
  "CMakeFiles/profile_store_test.dir/profile_store_test.cc.o.d"
  "profile_store_test"
  "profile_store_test.pdb"
  "profile_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
