# Empty dependencies file for profile_store_test.
# This may be replaced when dependencies are built.
