# Empty compiler generated dependencies file for egads_test.
# This may be replaced when dependencies are built.
