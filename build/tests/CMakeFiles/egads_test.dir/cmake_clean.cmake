file(REMOVE_RECURSE
  "CMakeFiles/egads_test.dir/egads_test.cc.o"
  "CMakeFiles/egads_test.dir/egads_test.cc.o.d"
  "egads_test"
  "egads_test.pdb"
  "egads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
