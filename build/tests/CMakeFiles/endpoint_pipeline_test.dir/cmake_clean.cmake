file(REMOVE_RECURSE
  "CMakeFiles/endpoint_pipeline_test.dir/endpoint_pipeline_test.cc.o"
  "CMakeFiles/endpoint_pipeline_test.dir/endpoint_pipeline_test.cc.o.d"
  "endpoint_pipeline_test"
  "endpoint_pipeline_test.pdb"
  "endpoint_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endpoint_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
