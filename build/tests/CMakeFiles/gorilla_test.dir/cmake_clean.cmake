file(REMOVE_RECURSE
  "CMakeFiles/gorilla_test.dir/gorilla_test.cc.o"
  "CMakeFiles/gorilla_test.dir/gorilla_test.cc.o.d"
  "gorilla_test"
  "gorilla_test.pdb"
  "gorilla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
