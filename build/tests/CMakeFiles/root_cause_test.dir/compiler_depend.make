# Empty compiler generated dependencies file for root_cause_test.
# This may be replaced when dependencies are built.
