# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/tsa_test[1]_include.cmake")
include("/root/repo/build/tests/tsdb_test[1]_include.cmake")
include("/root/repo/build/tests/profiling_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/detectors_test[1]_include.cmake")
include("/root/repo/build/tests/dedup_test[1]_include.cmake")
include("/root/repo/build/tests/root_cause_test[1]_include.cmake")
include("/root/repo/build/tests/egads_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_test[1]_include.cmake")
include("/root/repo/build/tests/alternatives_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/endpoint_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/profile_store_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/gorilla_test[1]_include.cmake")
