#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/random.h"
#include "src/tsdb/gorilla.h"

namespace fbdetect {
namespace {

TEST(BitStreamTest, RoundTripsBitPatterns) {
  BitWriter writer;
  writer.WriteBit(true);
  writer.WriteBits(0b1011, 4);
  writer.WriteBits(0xDEADBEEFCAFEF00DULL, 64);
  writer.WriteBit(false);
  BitReader reader(writer.bytes(), writer.bit_count());
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_EQ(reader.ReadBits(4), 0b1011u);
  EXPECT_EQ(reader.ReadBits(64), 0xDEADBEEFCAFEF00DULL);
  EXPECT_FALSE(reader.ReadBit());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(GorillaTest, ExactRoundTripRegularSeries) {
  CompressedTimeSeries compressed;
  Rng rng(1);
  std::vector<TimePoint> timestamps;
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    timestamps.push_back(static_cast<TimePoint>(i) * Minutes(10));
    values.push_back(rng.Normal(0.05, 0.001));
    compressed.Append(timestamps.back(), values.back());
  }
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), 2000u);
  for (size_t i = 0; i < 2000; ++i) {
    EXPECT_EQ(decoded.timestamps()[i], timestamps[i]);
    EXPECT_EQ(decoded.values()[i], values[i]);  // Bit-exact.
  }
}

TEST(GorillaTest, ExactRoundTripIrregularTimestamps) {
  CompressedTimeSeries compressed;
  Rng rng(2);
  TimePoint t = 1234567;
  std::vector<TimePoint> timestamps;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    t += 1 + static_cast<TimePoint>(rng.NextUint64(100000));  // Wildly irregular.
    timestamps.push_back(t);
    values.push_back(rng.Uniform(-1e9, 1e9));
    compressed.Append(t, values.back());
  }
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), 500u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(decoded.timestamps()[i], timestamps[i]);
    EXPECT_EQ(decoded.values()[i], values[i]);
  }
}

TEST(GorillaTest, SpecialValuesRoundTrip) {
  CompressedTimeSeries compressed;
  const std::vector<double> specials = {0.0, -0.0, 1.0, -1.0,
                                        std::numeric_limits<double>::infinity(),
                                        -std::numeric_limits<double>::infinity(),
                                        std::numeric_limits<double>::denorm_min(),
                                        std::numeric_limits<double>::max(),
                                        1e-300, 0.1, 0.1, 0.1};
  for (size_t i = 0; i < specials.size(); ++i) {
    compressed.Append(static_cast<TimePoint>(i * 60), specials[i]);
  }
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), specials.size());
  for (size_t i = 0; i < specials.size(); ++i) {
    // Compare bit patterns (handles -0.0 vs 0.0).
    EXPECT_EQ(std::signbit(decoded.values()[i]), std::signbit(specials[i]));
    EXPECT_EQ(decoded.values()[i], specials[i]);
  }
}

TEST(GorillaTest, ConstantRegularSeriesCompressesHard) {
  // Regular timestamps + constant value: ~2 bits/point after the header.
  CompressedTimeSeries compressed;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    compressed.Append(static_cast<TimePoint>(i) * Minutes(10), 0.25);
  }
  const double bits_per_point =
      8.0 * static_cast<double>(compressed.byte_size()) / n;
  EXPECT_LT(bits_per_point, 3.0);
  // And the round trip still holds.
  const TimeSeries decoded = compressed.Decode();
  EXPECT_EQ(decoded.size(), static_cast<size_t>(n));
  EXPECT_EQ(decoded.values()[n / 2], 0.25);
}

TEST(GorillaTest, NoisySeriesStillBeatsRawStorage) {
  CompressedTimeSeries compressed;
  Rng rng(3);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    compressed.Append(static_cast<TimePoint>(i) * Minutes(10), rng.Normal(0.05, 0.001));
  }
  // Raw storage: 16 bytes/point. Gorilla on full-precision noise typically
  // lands well under that thanks to timestamp compression + shared exponents.
  const double bytes_per_point = static_cast<double>(compressed.byte_size()) / n;
  EXPECT_LT(bytes_per_point, 12.0);
  const TimeSeries decoded = compressed.Decode();
  EXPECT_EQ(decoded.size(), static_cast<size_t>(n));
}

TEST(GorillaTest, EmptyAndSingle) {
  CompressedTimeSeries compressed;
  EXPECT_TRUE(compressed.empty());
  EXPECT_TRUE(compressed.Decode().empty());
  compressed.Append(42, 3.14);
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded.timestamps()[0], 42);
  EXPECT_EQ(decoded.values()[0], 3.14);
}

TEST(GorillaTest, NanRoundTripsBitExactly) {
  // NaN values flow through the XOR path like any other bit pattern; the
  // round trip must preserve them (value comparison would be false for NaN,
  // so compare bit patterns).
  CompressedTimeSeries compressed;
  const std::vector<double> values = {1.0, std::numeric_limits<double>::quiet_NaN(),
                                      std::numeric_limits<double>::quiet_NaN(), 2.0,
                                      -std::numeric_limits<double>::quiet_NaN(), 0.0};
  for (size_t i = 0; i < values.size(); ++i) {
    compressed.Append(static_cast<TimePoint>(i * 600), values[i]);
  }
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t expected = 0;
    uint64_t actual = 0;
    std::memcpy(&expected, &values[i], sizeof(expected));
    std::memcpy(&actual, &decoded.values()[i], sizeof(actual));
    EXPECT_EQ(actual, expected) << "index " << i;
  }
}

TEST(GorillaTest, LargeTimestampGapsRoundTrip) {
  // Delta-of-deltas far outside the 12-bit bucket exercise the 64-bit escape
  // encoding: a ten-minute series with multi-year holes.
  CompressedTimeSeries compressed;
  const std::vector<TimePoint> timestamps = {
      0, 600, 1200, 1200 + 100 * 365 * kDay, 1200 + 100 * 365 * kDay + 600,
      1200 + 200 * 365 * kDay};
  for (size_t i = 0; i < timestamps.size(); ++i) {
    compressed.Append(timestamps[i], static_cast<double>(i));
  }
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), timestamps.size());
  for (size_t i = 0; i < timestamps.size(); ++i) {
    EXPECT_EQ(decoded.timestamps()[i], timestamps[i]);
    EXPECT_EQ(decoded.values()[i], static_cast<double>(i));
  }
}

TEST(GorillaTest, SinglePointChunkRoundTripsThroughRawParts) {
  // Single-point chunks are the smallest sealed unit; they must survive the
  // serialize-like FromRaw reconstruction and DecodeInto.
  CompressedTimeSeries compressed;
  compressed.Append(987654321, 0.125);
  const CompressedTimeSeries rebuilt = CompressedTimeSeries::FromRaw(
      compressed.bytes() /* copy */, compressed.bit_count(), compressed.size());
  TimeSeries out;
  rebuilt.DecodeInto(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.timestamps()[0], 987654321);
  EXPECT_EQ(out.values()[0], 0.125);
}

TEST(GorillaDeathTest, TruncatedStreamFailsLoudly) {
  CompressedTimeSeries compressed;
  for (int i = 0; i < 100; ++i) {
    compressed.Append(static_cast<TimePoint>(i) * 600, 0.05 + 0.001 * i);
  }

  // Bit count claims more data than the backing bytes hold: rejected at
  // construction (this used to be silent out-of-bounds indexing).
  std::vector<uint8_t> truncated = compressed.bytes();
  truncated.resize(truncated.size() / 2);
  EXPECT_DEATH(CompressedTimeSeries::FromRaw(truncated, compressed.bit_count(),
                                             compressed.size()),
               "");

  // Consistent bytes/bits but an overstated point count: the decoder runs off
  // the end of the stream and must abort, not read garbage.
  const CompressedTimeSeries overcounted = CompressedTimeSeries::FromRaw(
      compressed.bytes(), compressed.bit_count(), compressed.size() + 50);
  EXPECT_DEATH(overcounted.Decode(), "");
}

TEST(GorillaTest, TryDecodeIntoRoundTripsValidChunk) {
  CompressedTimeSeries compressed;
  for (int i = 0; i < 200; ++i) {
    compressed.Append(600 * i, 0.01 * i);
  }
  TimeSeries decoded;
  ASSERT_TRUE(compressed.TryDecodeInto(decoded).ok());
  ASSERT_EQ(decoded.size(), 200u);
  EXPECT_EQ(decoded.timestamps().front(), 0);
  EXPECT_EQ(decoded.timestamps().back(), 600 * 199);
  EXPECT_DOUBLE_EQ(decoded.values().back(), 0.01 * 199);
}

TEST(GorillaTest, TryDecodeIntoOverstatedCountIsDataLossWithValidPrefix) {
  CompressedTimeSeries compressed;
  for (int i = 0; i < 200; ++i) {
    compressed.Append(600 * i, 0.01 * i);
  }
  // Same bytes/bits but an overstated point count: Decode() aborts on this
  // input (see death test above); the recoverable path reports kDataLoss and
  // keeps the valid prefix it decoded before running out of bits.
  const CompressedTimeSeries overcounted = CompressedTimeSeries::FromRaw(
      compressed.bytes(), compressed.bit_count(), compressed.size() + 50);
  TimeSeries partial;
  const Status status = overcounted.TryDecodeInto(partial);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(partial.size(), 200u);
}

TEST(GorillaTest, TryDecodeIntoTruncatedStreamIsDataLossNotAbort) {
  CompressedTimeSeries compressed;
  for (int i = 0; i < 200; ++i) {
    compressed.Append(600 * i, 0.01 * i);
  }
  // Keep only the first 4 bytes: not even the header point survives. The
  // checked reader must refuse cleanly instead of indexing past the buffer.
  const std::vector<uint8_t> tiny(compressed.bytes().begin(),
                                  compressed.bytes().begin() + 4);
  const CompressedTimeSeries truncated =
      CompressedTimeSeries::FromRaw(tiny, 32, compressed.size());
  TimeSeries out;
  EXPECT_EQ(truncated.TryDecodeInto(out).code(), StatusCode::kDataLoss);
  EXPECT_LT(out.size(), 2u);
}

// Property: round trip is exact for any seeded random series.
class GorillaRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GorillaRoundTripTest, BitExactRoundTrip) {
  Rng rng(GetParam());
  CompressedTimeSeries compressed;
  TimePoint t = static_cast<TimePoint>(rng.NextUint64(1000000));
  std::vector<TimePoint> timestamps;
  std::vector<double> values;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    t += 1 + static_cast<TimePoint>(rng.NextUint64(1 + rng.NextUint64(10000)));
    double v = 0.0;
    switch (rng.NextUint64(4)) {
      case 0:
        v = rng.Normal(0.0, 1.0);
        break;
      case 1:
        v = values.empty() ? 1.0 : values.back();  // Repeats.
        break;
      case 2:
        v = rng.Uniform(-1e12, 1e12);
        break;
      default:
        v = rng.LogNormal(0.0, 10.0);
        break;
    }
    timestamps.push_back(t);
    values.push_back(v);
    compressed.Append(t, v);
  }
  const TimeSeries decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(decoded.timestamps()[static_cast<size_t>(i)], timestamps[static_cast<size_t>(i)]);
    ASSERT_EQ(decoded.values()[static_cast<size_t>(i)], values[static_cast<size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GorillaRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fbdetect
