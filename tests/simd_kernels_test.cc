// Property tests for the SIMD kernel dispatch layer (src/common/simd.h).
//
// The contract under test (DESIGN.md §13): every kernel implementation —
// scalar, AVX2, NEON — produces byte-identical output for identical input.
// Each test runs BestAvailable() (whatever this CPU supports, ignoring
// FBD_DISABLE_SIMD) against Scalar() on random and adversarial inputs and
// compares results bit-for-bit, so the suite is meaningful on both the
// vectorized and the forced-scalar CI legs. Also covers the Arena scratch
// allocator and the ThreadPool granularity floor these kernels ride on.

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/arena.h"
#include "src/common/random.h"
#include "src/common/simd.h"
#include "src/common/thread_pool.h"

namespace fbdetect {
namespace {

// Lengths that exercise empty/singleton spans, sub-vector-width tails,
// exact vector multiples, and long streams.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 31, 64, 100, 255, 1000};

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

// Random doubles with occasional NaN/Inf/negative-zero/denormal landmines.
std::vector<double> AdversarialDoubles(size_t n, Rng& rng) {
  std::vector<double> values(n);
  for (double& v : values) {
    switch (rng.NextUint64(12)) {
      case 0:
        v = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        v = std::numeric_limits<double>::infinity();
        break;
      case 2:
        v = -std::numeric_limits<double>::infinity();
        break;
      case 3:
        v = -0.0;
        break;
      case 4:
        v = std::numeric_limits<double>::denorm_min();
        break;
      default:
        v = rng.Uniform(-1e6, 1e6);
        break;
    }
  }
  return values;
}

std::vector<double> FiniteDoubles(size_t n, Rng& rng) {
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.Uniform(-100.0, 100.0);
  }
  return values;
}

// The determinism contract (simd.h): bit-identical results, except that any
// NaN is equivalent to any NaN. IEEE addition is bit-commutative EXCEPT for
// which operand's NaN payload survives, and the compiler may commute the
// scalar oracle's adds — so once a reduction is NaN-poisoned, only NaN-ness
// (which every consumer checks via isfinite/comparisons) is defined, not the
// payload or sign bit.
bool ContractEqual(double a, double b) {
  return Bits(a) == Bits(b) || (std::isnan(a) && std::isnan(b));
}

void ExpectBitEqual(double a, double b, const char* what, size_t n) {
  EXPECT_TRUE(ContractEqual(a, b)) << what << " diverges at n=" << n << " (" << a
                                   << " vs " << b << ")";
}

TEST(SimdKernelsTest, ActiveIsaIsReportable) {
  // Smoke: the dispatch resolves and names every table.
  EXPECT_STREQ(simd::IsaName(simd::Isa::kScalar), "scalar");
  const char* active = simd::IsaName(simd::ActiveIsa());
  const char* best = simd::IsaName(simd::BestAvailableIsa());
  EXPECT_NE(active, nullptr);
  EXPECT_NE(best, nullptr);
}

TEST(SimdKernelsTest, SumPairMatchesScalarOnRandomInputs) {
  Rng rng(101);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<double> x =
          trial % 2 == 0 ? FiniteDoubles(n, rng) : AdversarialDoubles(n, rng);
      const std::vector<double> y =
          trial % 2 == 0 ? FiniteDoubles(n, rng) : AdversarialDoubles(n, rng);
      double sx_a = -1.0, sy_a = -1.0, sx_b = -2.0, sy_b = -2.0;
      best.sum_pair(x.data(), y.data(), n, &sx_a, &sy_a);
      scalar.sum_pair(x.data(), y.data(), n, &sx_b, &sy_b);
      ExpectBitEqual(sx_a, sx_b, "sum_pair sum_x", n);
      ExpectBitEqual(sy_a, sy_b, "sum_pair sum_y", n);
    }
  }
}

TEST(SimdKernelsTest, SumPairAllowsAliasedInputs) {
  Rng rng(102);
  const std::vector<double> x = FiniteDoubles(33, rng);
  double sx_a = 0.0, sy_a = 0.0, sx_b = 0.0, sy_b = 0.0;
  simd::BestAvailable().sum_pair(x.data(), x.data(), x.size(), &sx_a, &sy_a);
  simd::Scalar().sum_pair(x.data(), x.data(), x.size(), &sx_b, &sy_b);
  EXPECT_EQ(Bits(sx_a), Bits(sx_b));
  EXPECT_EQ(Bits(sx_a), Bits(sy_a));
}

TEST(SimdKernelsTest, CenteredMomentsMatchScalarOnRandomInputs) {
  Rng rng(103);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<double> x =
          trial % 2 == 0 ? FiniteDoubles(n, rng) : AdversarialDoubles(n, rng);
      const std::vector<double> y =
          trial % 2 == 0 ? FiniteDoubles(n, rng) : AdversarialDoubles(n, rng);
      const double mx = rng.Uniform(-10.0, 10.0);
      const double my = rng.Uniform(-10.0, 10.0);
      double sxy_a = 0, sxx_a = 0, syy_a = 0, sxy_b = 0, sxx_b = 0, syy_b = 0;
      best.centered_moments(x.data(), y.data(), n, mx, my, &sxy_a, &sxx_a, &syy_a);
      scalar.centered_moments(x.data(), y.data(), n, mx, my, &sxy_b, &sxx_b, &syy_b);
      ExpectBitEqual(sxy_a, sxy_b, "centered_moments sxy", n);
      ExpectBitEqual(sxx_a, sxx_b, "centered_moments sxx", n);
      ExpectBitEqual(syy_a, syy_b, "centered_moments syy", n);
    }
  }
}

TEST(SimdKernelsTest, SquaredDistancesMatchScalarAcrossShapes) {
  Rng rng(104);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  // Cell counts around the 4-cell transpose block and dimension counts around
  // the 4-dim inner block, plus funnel-realistic shapes (L^2 cells, ~12 dims).
  const size_t kCells[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 25, 49};
  const size_t kDims[] = {1, 2, 3, 4, 5, 8, 11, 12, 17};
  for (size_t cells : kCells) {
    for (size_t dims : kDims) {
      for (int trial = 0; trial < 2; ++trial) {
        const std::vector<double> weights =
            trial == 0 ? FiniteDoubles(cells * dims, rng)
                       : AdversarialDoubles(cells * dims, rng);
        const std::vector<double> item =
            trial == 0 ? FiniteDoubles(dims, rng) : AdversarialDoubles(dims, rng);
        std::vector<double> d2_a(cells, -1.0);
        std::vector<double> d2_b(cells, -2.0);
        best.squared_distances(weights.data(), cells, dims, item.data(), d2_a.data());
        scalar.squared_distances(weights.data(), cells, dims, item.data(), d2_b.data());
        for (size_t c = 0; c < cells; ++c) {
          EXPECT_TRUE(ContractEqual(d2_a[c], d2_b[c]))
              << "squared_distances diverges at cell " << c << " (cells=" << cells
              << ", dims=" << dims << ")";
        }
      }
    }
  }
}

TEST(SimdKernelsTest, ClassifyValuesMatchesScalarAndIsExact) {
  Rng rng(105);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<double> values = AdversarialDoubles(n, rng);
      uint64_t nf_a = 99, neg_a = 99, nf_b = 77, neg_b = 77;
      best.classify_values(values.data(), n, &nf_a, &neg_a);
      scalar.classify_values(values.data(), n, &nf_b, &neg_b);
      EXPECT_EQ(nf_a, nf_b) << "non_finite count diverges at n=" << n;
      EXPECT_EQ(neg_a, neg_b) << "negative count diverges at n=" << n;
      // Independent reference: the sanitizer's historical scalar loop.
      uint64_t nf_ref = 0, neg_ref = 0;
      for (double v : values) {
        if (!std::isfinite(v)) {
          ++nf_ref;
        } else if (v < 0.0) {
          ++neg_ref;
        }
      }
      EXPECT_EQ(nf_a, nf_ref);
      EXPECT_EQ(neg_a, neg_ref);
    }
  }
}

TEST(SimdKernelsTest, ClassifyValuesTreatsNegativeZeroAsNonNegative) {
  const double values[] = {-0.0, 0.0, -1.0};
  uint64_t nf = 0, neg = 0;
  simd::BestAvailable().classify_values(values, 3, &nf, &neg);
  EXPECT_EQ(nf, 0u);
  EXPECT_EQ(neg, 1u);  // Only -1.0; IEEE -0.0 is not < 0.
}

TEST(SimdKernelsTest, MinPositiveGapMatchesScalar) {
  Rng rng(106);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<int64_t> stamps(n);
      int64_t t = static_cast<int64_t>(rng.NextUint64(1000));
      for (int64_t& s : stamps) {
        // Mix of positive gaps, repeats, and out-of-order drops so the
        // positive-gap filter actually has to discriminate.
        const uint64_t kind = rng.NextUint64(4);
        if (kind == 0) {
          t -= static_cast<int64_t>(rng.NextUint64(30));
        } else if (kind == 1) {
          // Repeat: zero gap.
        } else {
          t += static_cast<int64_t>(1 + rng.NextUint64(120));
        }
        s = t;
      }
      EXPECT_EQ(best.min_positive_gap(stamps.data(), n),
                scalar.min_positive_gap(stamps.data(), n))
          << "min_positive_gap diverges at n=" << n << " trial=" << trial;
    }
  }
}

TEST(SimdKernelsTest, MinPositiveGapEdgeCases) {
  const simd::Kernels& k = simd::BestAvailable();
  EXPECT_EQ(k.min_positive_gap(nullptr, 0), 0);
  const int64_t one[] = {42};
  EXPECT_EQ(k.min_positive_gap(one, 1), 0);
  const int64_t flat[] = {5, 5, 5, 5, 5, 5, 5, 5, 5};
  EXPECT_EQ(k.min_positive_gap(flat, 9), 0);  // No strictly positive gap.
  const int64_t falling[] = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(k.min_positive_gap(falling, 9), 0);
  // INT64_MAX as the only positive gap must be reported, not treated as the
  // "none found" sentinel.
  const int64_t huge[] = {0, std::numeric_limits<int64_t>::max()};
  EXPECT_EQ(k.min_positive_gap(huge, 2), std::numeric_limits<int64_t>::max());
}

TEST(SimdKernelsTest, PrefixSumMatchesScalarWithWraparound) {
  Rng rng(107);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<int64_t> in(n);
      for (int64_t& v : in) {
        // Full-range values force two's-complement wraparound in the sums.
        v = static_cast<int64_t>(rng.NextUint64());
      }
      const int64_t seed = static_cast<int64_t>(rng.NextUint64());
      std::vector<int64_t> out_a(n, -1);
      std::vector<int64_t> out_b(n, -2);
      best.prefix_sum_i64(in.data(), n, seed, out_a.data());
      scalar.prefix_sum_i64(in.data(), n, seed, out_b.data());
      EXPECT_EQ(out_a, out_b) << "prefix_sum_i64 diverges at n=" << n;
    }
  }
}

TEST(SimdKernelsTest, PrefixSumWorksInPlace) {
  Rng rng(108);
  std::vector<int64_t> in(100);
  for (int64_t& v : in) {
    v = static_cast<int64_t>(rng.NextUint64(1000)) - 500;
  }
  std::vector<int64_t> expected(in.size());
  simd::Scalar().prefix_sum_i64(in.data(), in.size(), 7, expected.data());
  std::vector<int64_t> inplace = in;
  simd::BestAvailable().prefix_sum_i64(inplace.data(), inplace.size(), 7,
                                       inplace.data());
  EXPECT_EQ(inplace, expected);
}

TEST(SimdKernelsTest, PrefixXorToDoublesMatchesScalar) {
  Rng rng(109);
  const simd::Kernels& best = simd::BestAvailable();
  const simd::Kernels& scalar = simd::Scalar();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint64_t> in(n);
      for (uint64_t& v : in) {
        // Arbitrary bit patterns: XOR chains routinely pass through NaN and
        // Inf encodings mid-stream, and the payload bits must survive.
        v = rng.NextUint64();
      }
      const uint64_t seed = rng.NextUint64();
      std::vector<double> out_a(n, 1.0);
      std::vector<double> out_b(n, 2.0);
      best.prefix_xor_to_doubles(in.data(), n, seed, out_a.data());
      scalar.prefix_xor_to_doubles(in.data(), n, seed, out_b.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(Bits(out_a[i]), Bits(out_b[i]))
            << "prefix_xor_to_doubles diverges at i=" << i << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelsTest, ScalarTableIsUsedWhenEnvDisablesSimd) {
  // Active() is resolved once per process, so this test only checks
  // consistency: if the env var is set the active table must be scalar.
  const char* env = std::getenv("FBD_DISABLE_SIMD");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
    EXPECT_EQ(&simd::Active(), &simd::Scalar());
  } else {
    EXPECT_EQ(simd::ActiveIsa(), simd::BestAvailableIsa());
  }
}

// --- Arena ------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (size_t bytes : {1, 3, 63, 64, 65, 1000}) {
    void* p = arena.AllocateBytes(bytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u)
        << "allocation of " << bytes << " bytes is misaligned";
  }
}

TEST(ArenaTest, MakeSpanZeroInitializesAndUninitializedSpanIsDistinct) {
  Arena arena;
  const std::span<double> zeroed = arena.MakeSpan<double>(257);
  for (double v : zeroed) {
    EXPECT_EQ(Bits(v), 0u);
  }
  const std::span<int64_t> raw = arena.MakeUninitializedSpan<int64_t>(17);
  EXPECT_EQ(raw.size(), 17u);
  EXPECT_NE(static_cast<void*>(raw.data()), static_cast<void*>(zeroed.data()));
}

TEST(ArenaTest, ScopeRewindReusesMemory) {
  Arena arena;
  void* first = nullptr;
  {
    ArenaScope scope(arena);
    first = scope.MakeUninitializedSpan<double>(100).data();
  }
  {
    ArenaScope scope(arena);
    // After the rewind the same storage is handed out again — the steady
    // state of the scan loop is zero mallocs.
    EXPECT_EQ(scope.MakeUninitializedSpan<double>(100).data(), first);
  }
}

TEST(ArenaTest, ScopesNestLikeStackFrames) {
  Arena arena;
  ArenaScope outer(arena);
  const std::span<int64_t> outer_span = outer.MakeSpan<int64_t>(8);
  outer_span[0] = 42;
  const size_t before = arena.reserved_bytes();
  {
    ArenaScope inner(arena);
    const std::span<int64_t> inner_span = inner.MakeSpan<int64_t>(1 << 20);
    inner_span[0] = 7;  // Large enough to force extra blocks.
    EXPECT_GT(arena.reserved_bytes(), before);
  }
  // Inner blocks are released; the outer allocation is untouched.
  EXPECT_EQ(arena.reserved_bytes(), before);
  EXPECT_EQ(outer_span[0], 42);
}

TEST(ArenaTest, ThreadLocalArenasAreDistinctPerThread) {
  Arena* main_arena = &Arena::ThreadLocal();
  Arena* worker_arena = nullptr;
  ThreadPool pool(1);
  pool.ParallelFor(2, [&](size_t task) {
    if (task == 1) {
      // Task 1 runs wherever; both tasks claiming scratch concurrently must
      // not alias the main thread's arena state.
      ArenaScope scope(Arena::ThreadLocal());
      scope.MakeSpan<double>(64);
    } else {
      worker_arena = &Arena::ThreadLocal();
    }
  });
  EXPECT_NE(worker_arena, nullptr);
  (void)main_arena;
}

// --- ThreadPool granularity floor -------------------------------------------

TEST(ThreadPoolGranularityTest, ResultsIdenticalAcrossGrainAndPoolSize) {
  // The regression this guards: ParallelIndexFor's min_items_per_lane floor
  // must never change results, only whether the pool is woken. Sweep n around
  // the threshold for serial, small-pool, and large-pool execution.
  const size_t kGrain = 8;
  for (size_t n : {0ul, 1ul, 7ul, 8ul, 15ul, 16ul, 17ul, 64ul, 129ul}) {
    std::vector<uint64_t> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = i * i + 1;
    }
    for (size_t workers : {0ul, 1ul, 3ul, 7ul}) {
      ThreadPool pool(workers);
      std::vector<uint64_t> got(n, 0);
      ParallelIndexFor(
          n, &pool, [&](size_t i) { got[i] = i * i + 1; }, kGrain);
      EXPECT_EQ(got, expected) << "n=" << n << " workers=" << workers;
    }
  }
}

TEST(ThreadPoolGranularityTest, SmallBatchesStayOnCallingThread) {
  // Below the floor the pool must not be dispatched at all: every index runs
  // on the calling thread (observable via thread-local identity).
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(7);
  ParallelIndexFor(
      ran_on.size(), &pool, [&](size_t i) { ran_on[i] = std::this_thread::get_id(); },
      /*min_items_per_lane=*/8);
  for (size_t i = 0; i < ran_on.size(); ++i) {
    EXPECT_EQ(ran_on[i], caller) << "index " << i << " left the calling thread";
  }
  EXPECT_EQ(pool.stats().batches, 0u);
}

TEST(ThreadPoolGranularityTest, LargeBatchesUseThePool) {
  ThreadPool pool(4);
  std::atomic<size_t> off_thread{0};
  const std::thread::id caller = std::this_thread::get_id();
  ParallelIndexFor(
      1024, &pool,
      [&](size_t) {
        if (std::this_thread::get_id() != caller) {
          off_thread.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*min_items_per_lane=*/8);
  EXPECT_GT(pool.stats().batches, 0u);
}

TEST(ThreadPoolGranularityTest, ExceptionsStillPropagateThroughGrainedPath) {
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelIndexFor(
          256, &pool,
          [&](size_t i) {
            if (i == 200) {
              throw std::runtime_error("boom");
            }
          },
          /*min_items_per_lane=*/4),
      std::runtime_error);
  // The pool must remain usable after an exception drains.
  std::atomic<size_t> count{0};
  ParallelIndexFor(
      64, &pool, [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); }, 1);
  EXPECT_EQ(count.load(), 64u);
}

}  // namespace
}  // namespace fbdetect
