// Tests for the paper's "discussion of alternatives" implementations: the
// legacy went-away iterations (§5.2.2) and the clustering alternatives
// (§5.5.1), plus the new metadata/endpoint-cost/IO fleet emissions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/random.h"
#include "src/core/clustering_alternatives.h"
#include "src/core/went_away.h"
#include "src/core/went_away_legacy.h"
#include "src/core/workload_config.h"
#include "src/fleet/service.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Legacy went-away iterations.
// ---------------------------------------------------------------------------

DetectionConfig LegacyConfig() {
  DetectionConfig config;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);
  return config;
}

// A regression record with a hand-built shape: historical flat at
// `base` (with an optional spike), post-change data given explicitly.
Regression BuildRegression(double base, const std::vector<double>& post,
                           bool historical_spike) {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, "sub", ""};
  Rng rng(7);
  for (int i = 0; i < 288; ++i) {
    double level = base;
    if (historical_spike && i >= 60 && i < 66) {
      level = base * 1.8;  // 6 of 288 points: ~2%, below SAX validity.
    }
    regression.historical.push_back(rng.Normal(level, base * 0.02));
  }
  // Analysis window: half pre-change at base, half the provided post data.
  for (int i = 0; i < 12; ++i) {
    regression.analysis.push_back(rng.Normal(base, base * 0.02));
  }
  regression.change_index = regression.analysis.size();
  regression.analysis.insert(regression.analysis.end(), post.begin(), post.end());
  for (size_t i = 0; i < regression.analysis.size(); ++i) {
    regression.analysis_timestamps.push_back(static_cast<TimePoint>(i) * Minutes(10));
  }
  regression.baseline_mean = base;
  regression.regressed_mean = Mean(std::span<const double>(post));
  regression.delta = regression.regressed_mean - base;
  regression.relative_delta = regression.delta / base;
  return regression;
}

// A true regression whose post window contains a temporary dip: the paper's
// counter-example for iteration 1.
TEST(LegacyWentAwayTest, InverseCusumFiltersTrueRegressionWithDip) {
  std::vector<double> post;
  Rng rng(8);
  for (int i = 0; i < 34; ++i) {
    double level = 0.065;             // Regressed level.
    if (i >= 12 && i < 28) {
      level = 0.050;                  // Long temporary dip back to baseline...
    }
    post.push_back(rng.Normal(level, 0.001));
  }
  const Regression regression = BuildRegression(0.050, post, false);
  const DetectionConfig config = LegacyConfig();
  // Iteration 1 wrongly filters it (the dip looks like a compensating
  // inverse shift)...
  EXPECT_FALSE(InverseCusumWentAway(config).Keep(regression));
  // ...while the current SAX-based detector keeps it.
  EXPECT_TRUE(WentAwayDetector(config).Evaluate(regression, 144).keep);
}

TEST(LegacyWentAwayTest, InverseCusumKeepsCleanStep) {
  std::vector<double> post;
  Rng rng(9);
  for (int i = 0; i < 36; ++i) {
    post.push_back(rng.Normal(0.065, 0.001));
  }
  const Regression regression = BuildRegression(0.050, post, false);
  EXPECT_TRUE(InverseCusumWentAway(LegacyConfig()).Keep(regression));
}

// Fig. 7's counter-example for iteration 2: with a spike in the chosen
// baseline slice, a decaying-but-still-regressed series compares as
// "recovered".
TEST(LegacyWentAwayTest, TrendCompareDependsOnBaselineWindowChoice) {
  // Post window: decays from a high overshoot to a still-regressed plateau.
  std::vector<double> post;
  Rng rng(10);
  for (int i = 0; i < 36; ++i) {
    const double level = 0.062 + 0.02 * std::exp(-i / 6.0);
    post.push_back(rng.Normal(level, 0.0005));
  }
  const DetectionConfig config = LegacyConfig();
  const Regression with_spike = BuildRegression(0.050, post, /*historical_spike=*/true);
  // The spike sits at indices 60..66 of 288 historical points. With offset
  // such that the baseline slice contains the spike, the still-regressed
  // tail (~0.062) compares BELOW the spike's P90 -> wrongly filtered.
  // offset counts slices from the end; slice size = analysis size (48).
  // Spike at 60..66 => inside slice [48, 96) => offset 4 covers [96+..]..
  // offsets: 0 -> [240,288), 4 -> [48,96).
  const TrendCompareWentAway spike_baseline(config, 4);
  EXPECT_FALSE(spike_baseline.Keep(with_spike));
  // With a clean baseline slice the same regression is kept.
  const TrendCompareWentAway clean_baseline(config, 0);
  EXPECT_TRUE(clean_baseline.Keep(with_spike));
  // The current detector keeps it regardless — no window choice to get wrong.
  EXPECT_TRUE(WentAwayDetector(config).Evaluate(with_spike, 144).keep);
}

// ---------------------------------------------------------------------------
// Clustering alternatives.
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> TwoBlobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> items;
  for (int i = 0; i < per_blob; ++i) {
    items.push_back({rng.Normal(0.0, 0.2), rng.Normal(0.0, 0.2)});
  }
  for (int i = 0; i < per_blob; ++i) {
    items.push_back({rng.Normal(5.0, 0.2), rng.Normal(5.0, 0.2)});
  }
  return items;
}

TEST(KMeansTest, SeparatesTwoBlobsWithCorrectK) {
  const auto items = TwoBlobs(30, 1);
  const std::vector<int> assignment = KMeansCluster(items, 2, 50, 42);
  const std::set<int> first(assignment.begin(), assignment.begin() + 30);
  const std::set<int> second(assignment.begin() + 30, assignment.end());
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(KMeansTest, WrongKFragmentsClusters) {
  // The paper's point: K must be known up front; K=6 on two blobs shatters
  // them into more clusters than there are causes.
  const auto items = TwoBlobs(30, 2);
  const std::vector<int> assignment = KMeansCluster(items, 6, 50, 42);
  EXPECT_GT(CountClusters(assignment), 2);
}

TEST(KMeansTest, DegenerateInputs) {
  EXPECT_TRUE(KMeansCluster({}, 3, 10, 1).empty());
  const std::vector<std::vector<double>> one = {{1.0, 2.0}};
  EXPECT_EQ(KMeansCluster(one, 3, 10, 1), (std::vector<int>{0}));
}

TEST(HierarchicalTest, ThresholdControlsClusterCount) {
  const auto items = TwoBlobs(20, 3);
  // Tiny threshold: everything is its own cluster (or nearly).
  EXPECT_GT(CountClusters(HierarchicalCluster(items, 0.01)), 10);
  // Moderate threshold: exactly the two blobs.
  EXPECT_EQ(CountClusters(HierarchicalCluster(items, 2.0)), 2);
  // Huge threshold: one blob.
  EXPECT_EQ(CountClusters(HierarchicalCluster(items, 100.0)), 1);
}

TEST(SilhouetteTest, PrefersCorrectClustering) {
  const auto items = TwoBlobs(25, 4);
  const std::vector<int> good = HierarchicalCluster(items, 2.0);
  const std::vector<int> bad = KMeansCluster(items, 5, 50, 11);
  EXPECT_GT(SilhouetteScore(items, good), SilhouetteScore(items, bad));
  EXPECT_GT(SilhouetteScore(items, good), 0.8);
}

TEST(SilhouetteTest, SingleClusterScoresZero) {
  const auto items = TwoBlobs(10, 5);
  const std::vector<int> one_cluster(items.size(), 0);
  EXPECT_EQ(SilhouetteScore(items, one_cluster), 0.0);
}

// ---------------------------------------------------------------------------
// New fleet emissions: metadata gCPU, endpoint cost, per-data-type I/O.
// ---------------------------------------------------------------------------

TEST(FleetEmissionsTest, MetadataGcpuSeriesEmitted) {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 50;
  config.call_graph.num_subroutines = 60;
  config.sampling.samples_per_bucket = 200000;
  config.num_annotated_subroutines = 12;
  config.num_annotation_groups = 3;
  config.emit_metadata_gcpu = true;
  config.emit_endpoint_metrics = false;
  config.emit_process_cpu = false;
  config.emit_gcpu = false;
  config.seed = 11;
  ServiceSimulator service(config);
  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(2); t += Minutes(10)) {
    service.Tick(t, db);
  }
  int metadata_series = 0;
  for (const MetricId& id : db.ListMetrics("svc")) {
    if (!id.metadata.empty()) {
      ++metadata_series;
      EXPECT_TRUE(id.metadata.rfind("feature/group", 0) == 0);
    }
  }
  EXPECT_GE(metadata_series, 1);
  EXPECT_LE(metadata_series, 3);
}

TEST(FleetEmissionsTest, EndpointCostSeriesReactToRegression) {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 50;
  config.call_graph.num_subroutines = 40;
  config.emit_endpoint_cost = true;
  config.emit_endpoint_metrics = false;
  config.emit_process_cpu = false;
  config.emit_gcpu = false;
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.traces_per_endpoint_per_tick = 60;
  config.seed = 12;
  ServiceSimulator service(config);

  // Regress the heaviest leaf REACHABLE from endpoint 0's entry (the
  // round-robin entry assignment maps endpoint e to roots[e % num_roots]).
  const CallGraph& graph = service.graph();
  const NodeId entry = graph.roots()[0];
  std::vector<NodeId> stack = {entry};
  std::vector<bool> visited(graph.node_count(), false);
  NodeId leaf = kInvalidNode;
  double best_cost = 0.0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(v)]) {
      continue;
    }
    visited[static_cast<size_t>(v)] = true;
    if (graph.edges(v).empty() && graph.node(v).self_cost > best_cost) {
      best_cost = graph.node(v).self_cost;
      leaf = v;
    }
    for (const CallEdge& edge : graph.edges(v)) {
      stack.push_back(edge.callee);
    }
  }
  ASSERT_NE(leaf, kInvalidNode);
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "svc";
  event.subroutine = graph.node(leaf).name;
  event.start = Hours(4);
  event.magnitude = 4.0;  // 5x the leaf's cost.
  service.ScheduleEvent(event);

  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(8); t += Minutes(10)) {
    service.Tick(t, db);
  }
  const std::vector<MetricId> cost_metrics =
      db.ListMetricsOfKind("svc", MetricKind::kEndpointCost);
  ASSERT_EQ(cost_metrics.size(), 2u);
  // At least one endpoint's cost must rise (the one whose entry reaches the
  // leaf; with a connected random graph usually both).
  bool any_rose = false;
  for (const MetricId& id : cost_metrics) {
    const TimeSeries* series = db.Find(id);
    const double before = Mean(series->ValuesBetween(0, Hours(4)));
    const double after = Mean(series->ValuesBetween(Hours(4) + 1, Hours(8) + 1));
    if (after > before * 1.02) {
      any_rose = true;
    }
  }
  EXPECT_TRUE(any_rose);
}

TEST(FleetEmissionsTest, IoPerDataTypeRegression) {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 100;
  config.call_graph.num_subroutines = 20;
  config.emit_gcpu = false;
  config.emit_process_cpu = false;
  config.emit_endpoint_metrics = false;
  config.io_data_types = {"user", "post", "comment"};
  config.seasonal_load_amplitude = 0.0;
  config.seed = 13;
  ServiceSimulator service(config);

  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "svc";
  event.subroutine = "io/post";  // Target one data type.
  event.start = Hours(3);
  event.magnitude = 0.25;
  service.ScheduleEvent(event);

  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(6); t += Minutes(10)) {
    service.Tick(t, db);
  }
  ASSERT_EQ(db.ListMetricsOfKind("svc", MetricKind::kIoPerDataType).size(), 3u);
  const TimeSeries* post_series = db.Find({"svc", MetricKind::kIoPerDataType, "post", ""});
  const TimeSeries* user_series = db.Find({"svc", MetricKind::kIoPerDataType, "user", ""});
  ASSERT_NE(post_series, nullptr);
  ASSERT_NE(user_series, nullptr);
  const double post_change = Mean(post_series->ValuesBetween(Hours(3) + 1, Hours(6) + 1)) /
                             Mean(post_series->ValuesBetween(0, Hours(3)));
  const double user_change = Mean(user_series->ValuesBetween(Hours(3) + 1, Hours(6) + 1)) /
                             Mean(user_series->ValuesBetween(0, Hours(3)));
  EXPECT_NEAR(post_change, 1.25, 0.05);  // Regressed type.
  EXPECT_NEAR(user_change, 1.00, 0.05);  // Untouched type.
}

}  // namespace
}  // namespace fbdetect
