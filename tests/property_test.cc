// Cross-cutting property sweeps (TEST_P) over the invariants the paper's
// math relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/core/threshold_filter.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/profiling/call_graph.h"
#include "src/profiling/profile.h"
#include "src/stats/descriptive.h"
#include "src/tsa/stl.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Property: sampled gCPU converges to the closed-form reach probability for
// arbitrary random call graphs (the analytic fast path used by the fleet
// simulator is faithful to real sampling).
// ---------------------------------------------------------------------------

class ReachVsSamplingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReachVsSamplingTest, AnalyticMatchesSampled) {
  Rng build_rng(GetParam());
  RandomCallGraphOptions options;
  options.num_subroutines = 80;
  options.max_depth = 5;
  const CallGraph graph = GenerateRandomCallGraph(options, build_rng);
  const std::vector<double> reach = graph.ReachProbabilities();

  Rng sample_rng(GetParam() + 1000);
  ProfileAggregate aggregate;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    aggregate.AddSample(graph.SampleStack(sample_rng));
  }
  // Compare on the heavier nodes where the binomial error bound is tight.
  for (size_t i = 0; i < reach.size(); ++i) {
    if (reach[i] > 0.02) {
      const double sampled = aggregate.Gcpu(static_cast<NodeId>(i));
      const double bound = 5.0 * std::sqrt(reach[i] * (1.0 - reach[i]) / n);
      EXPECT_NEAR(sampled, reach[i], bound + 1e-9)
          << graph.node(static_cast<NodeId>(i)).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachVsSamplingTest, ::testing::Values(1, 7, 42, 1234));

// ---------------------------------------------------------------------------
// Property: the short-term detection stack reports steps above the
// configured threshold and stays silent below it, across threshold settings.
// ---------------------------------------------------------------------------

class ThresholdSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweepTest, DetectsAboveRejectsBelow) {
  const double threshold = GetParam();
  DetectionConfig config;
  config.threshold = threshold;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);

  auto run_with_step = [&](double step) {
    Rng rng(99);
    TimeSeries series;
    const Duration total = config.windows.Total();
    const TimePoint step_at = total - Hours(4);
    for (TimePoint t = 0; t < total; t += Minutes(10)) {
      series.Append(t, rng.Normal(0.05 + (t >= step_at ? step : 0.0), threshold * 0.5));
    }
    const WindowExtract windows = ExtractWindows(series, total, config.windows);
    const auto candidate =
        ChangePointStage(config).Detect({"svc", MetricKind::kGcpu, "s", ""}, windows);
    if (!candidate) {
      return false;
    }
    if (!WentAwayDetector(config).Evaluate(*candidate, 144).keep) {
      return false;
    }
    return PassesThreshold(*candidate, config);
  };

  EXPECT_TRUE(run_with_step(threshold * 3.0)) << "threshold " << threshold;
  EXPECT_FALSE(run_with_step(threshold * 0.1)) << "threshold " << threshold;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweepTest,
                         ::testing::Values(0.00005, 0.0005, 0.005, 0.03));

// ---------------------------------------------------------------------------
// Property: STL reconstruction (seasonal + trend + residual == input) holds
// for every (period, amplitude) combination, and the residual shrinks as the
// signal-to-noise ratio rises.
// ---------------------------------------------------------------------------

struct StlCase {
  size_t period;
  double amplitude;
  double noise;
};

class StlSweepTest : public ::testing::TestWithParam<StlCase> {};

TEST_P(StlSweepTest, ReconstructsAndSeparates) {
  const StlCase c = GetParam();
  Rng rng(c.period * 31 + 7);
  std::vector<double> values;
  for (size_t i = 0; i < c.period * 12; ++i) {
    values.push_back(1.0 +
                     c.amplitude * std::sin(2.0 * M_PI * static_cast<double>(i) / c.period) +
                     rng.Normal(0.0, c.noise));
  }
  const Decomposition stl = StlDecompose(values, c.period);
  ASSERT_TRUE(stl.valid);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_NEAR(stl.seasonal[i] + stl.trend[i] + stl.residual[i], values[i], 1e-9);
  }
  // The residual carries (roughly) only the injected noise, not the seasonal
  // signal: its sd must stay well below the seasonal amplitude.
  const std::span<const double> interior(stl.residual.data() + c.period,
                                         stl.residual.size() - 2 * c.period);
  EXPECT_LT(SampleStdDev(interior), c.amplitude * 0.5 + 2.0 * c.noise);
}

INSTANTIATE_TEST_SUITE_P(Cases, StlSweepTest,
                         ::testing::Values(StlCase{8, 1.0, 0.05}, StlCase{24, 0.5, 0.1},
                                           StlCase{48, 2.0, 0.2}, StlCase{12, 0.2, 0.01}));

// ---------------------------------------------------------------------------
// Property: ShiftSelfCost conserves the SUM OF SELF COSTS exactly, for any
// pair and any amount. (The root-weighted TotalCost is only conserved when
// the two subroutines have equal aggregate path weights — e.g. siblings with
// equal-weight edges — because a subroutine invoked more often contributes
// its self cost once per invocation; the cost-shift detector's
// negligible-ratio tolerance absorbs that difference.)
// ---------------------------------------------------------------------------

class CostShiftInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostShiftInvariantTest, ShiftsPreserveSelfCostSum) {
  Rng rng(GetParam());
  RandomCallGraphOptions options;
  options.num_subroutines = 50;
  CallGraph graph = GenerateRandomCallGraph(options, rng);
  auto self_cost_sum = [&graph]() {
    double sum = 0.0;
    for (size_t i = 0; i < graph.node_count(); ++i) {
      sum += graph.node(static_cast<NodeId>(i)).self_cost;
    }
    return sum;
  };
  const double sum_before = self_cost_sum();
  for (int i = 0; i < 20; ++i) {
    const NodeId from = static_cast<NodeId>(rng.NextUint64(graph.node_count()));
    const NodeId to = static_cast<NodeId>(rng.NextUint64(graph.node_count()));
    graph.ShiftSelfCost(from, to, rng.Uniform(0.0, 0.5));
  }
  EXPECT_NEAR(self_cost_sum(), sum_before, sum_before * 1e-12);
}

TEST(CostShiftInvariantTest, EqualWeightSiblingShiftPreservesTotalCost) {
  CallGraph graph;
  const NodeId root = graph.AddNode({"root", "Main", 1.0, ""});
  const NodeId a = graph.AddNode({"a", "Work", 3.0, ""});
  const NodeId b = graph.AddNode({"b", "Work", 2.0, ""});
  graph.AddEdge(root, a, 1.0);
  graph.AddEdge(root, b, 1.0);  // Equal path weights: total IS conserved.
  const double total_before = graph.TotalCost();
  graph.ShiftSelfCost(a, b, 1.5);
  EXPECT_NEAR(graph.TotalCost(), total_before, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostShiftInvariantTest, ::testing::Values(3, 17, 99));

// ---------------------------------------------------------------------------
// Property: window extraction partitions the covered range — the three
// windows never overlap and jointly cover [as_of - total, as_of).
// ---------------------------------------------------------------------------

class WindowPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowPartitionTest, WindowsPartitionTheRange) {
  const int spec_index = GetParam();
  const std::vector<WindowSpec> specs = {
      {Days(2), Hours(4), Hours(2)},
      {Days(10), Hours(3), 0},
      {Days(1), Hours(1), Hours(12)},
  };
  const WindowSpec spec = specs[static_cast<size_t>(spec_index)];
  TimeSeries series;
  for (TimePoint t = 0; t < spec.Total() + Days(1); t += Minutes(10)) {
    series.Append(t, static_cast<double>(t));
  }
  const TimePoint as_of = spec.Total() + Hours(7);
  const WindowExtract extract = ExtractWindows(series, as_of, spec);
  // Sizes add up to the number of points in [as_of - total, as_of).
  const size_t expected = series.ValuesBetween(as_of - spec.Total(), as_of).size();
  EXPECT_EQ(extract.historical.size() + extract.analysis.size() + extract.extended.size(),
            expected);
  // Boundaries: last historical value < first analysis value (values are the
  // timestamps themselves).
  if (!extract.historical.empty() && !extract.analysis.empty()) {
    EXPECT_LT(extract.historical.back(), extract.analysis.front());
  }
  if (!extract.analysis.empty() && !extract.extended.empty()) {
    EXPECT_LT(extract.analysis.back(), extract.extended.front());
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, WindowPartitionTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace fbdetect
