// Tests for the per-series detection stages: change-point stage, went-away
// detector, seasonality stage, threshold filter, long-term detector, and
// SameRegressionMerger.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/core/change_point_stage.h"
#include "src/core/scan_view.h"
#include "src/core/long_term.h"
#include "src/core/same_regression_merger.h"
#include "src/core/seasonality_stage.h"
#include "src/core/threshold_filter.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);

// Test config: 2-day history, 4h analysis, 2h extended at 10-minute ticks.
DetectionConfig TestConfig() {
  DetectionConfig config;
  config.threshold = 0.001;
  config.windows.historical = Days(2);
  config.windows.analysis = Hours(4);
  config.windows.extended = Hours(2);
  config.rerun_interval = Hours(2);
  return config;
}

// Builds a series from a level function over [0, total).
template <typename Fn>
TimeSeries BuildSeries(Duration total, double noise_sd, uint64_t seed, Fn level) {
  Rng rng(seed);
  TimeSeries series;
  for (TimePoint t = 0; t < total; t += kTick) {
    series.Append(t, level(t) + (noise_sd > 0.0 ? rng.Normal(0.0, noise_sd) : 0.0));
  }
  return series;
}

MetricId GcpuMetric() { return {"svc", MetricKind::kGcpu, "sub_7", ""}; }

// ---------------------------------------------------------------------------
// ChangePointStage.
// ---------------------------------------------------------------------------

TEST(ChangePointStageTest, DetectsStepInAnalysisWindow) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint step_at = total - Hours(4);  // Inside the analysis window.
  const TimeSeries series = BuildSeries(total, 0.001, 1, [&](TimePoint t) {
    return t >= step_at ? 0.060 : 0.050;
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  const auto regression = stage.Detect(GcpuMetric(), windows);
  ASSERT_TRUE(regression.has_value());
  EXPECT_NEAR(static_cast<double>(regression->change_time), static_cast<double>(step_at),
              static_cast<double>(Hours(1)));
  EXPECT_NEAR(regression->delta, 0.010, 0.003);
  EXPECT_GT(regression->relative_delta, 0.1);
  EXPECT_FALSE(regression->long_term);
}

TEST(ChangePointStageTest, NoChangeNoDetection) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimeSeries series =
      BuildSeries(total, 0.001, 2, [](TimePoint) { return 0.05; });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  EXPECT_FALSE(stage.Detect(GcpuMetric(), windows).has_value());
}

TEST(ChangePointStageTest, ImprovementIsNotRegression) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint step_at = total - Hours(4);
  const TimeSeries series = BuildSeries(total, 0.001, 3, [&](TimePoint t) {
    return t >= step_at ? 0.040 : 0.050;  // CPU drops: an improvement.
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  EXPECT_FALSE(stage.Detect(GcpuMetric(), windows).has_value());
}

TEST(ChangePointStageTest, ThroughputDropIsRegression) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint step_at = total - Hours(4);
  const TimeSeries series = BuildSeries(total, 5.0, 4, [&](TimePoint t) {
    return t >= step_at ? 900.0 : 1000.0;
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  const MetricId metric{"svc", MetricKind::kThroughput, "", ""};
  const auto regression = stage.Detect(metric, windows);
  ASSERT_TRUE(regression.has_value());
  // Oriented delta is positive (regression-positive orientation).
  EXPECT_GT(regression->delta, 50.0);
}

TEST(ChangePointStageTest, StepInHistoricalContextRejected) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  // Step 8 hours before the end of history — visible in the context tail but
  // outside the analysis window.
  const TimePoint step_at = total - Hours(4) - Hours(2) - Hours(8);
  const TimeSeries series = BuildSeries(total, 0.0005, 5, [&](TimePoint t) {
    return t >= step_at ? 0.058 : 0.050;
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  EXPECT_FALSE(stage.Detect(GcpuMetric(), windows).has_value());
}

TEST(ChangePointStageTest, InsufficientDataRejected) {
  const DetectionConfig config = TestConfig();
  const TimeSeries series = BuildSeries(Hours(2), 0.001, 6, [](TimePoint) { return 0.05; });
  const WindowExtract windows =
      ExtractWindows(series, Hours(2), config.windows);
  ChangePointStage stage(config);
  EXPECT_FALSE(stage.Detect(GcpuMetric(), windows).has_value());
}

TEST(ChangePointStageTest, UnknownBackendNameAborts) {
  // A misconfigured backend must fail loudly at construction, not silently
  // skip every scan.
  DetectionConfig config = TestConfig();
  config.change_point_backend = "no_such_backend";
  EXPECT_DEATH(ChangePointStage{config}, "FBD_CHECK failed");
}

TEST(ChangePointStageTest, DefaultConfigIsExplicitCusumEm) {
  // The default stage must be indistinguishable from one explicitly
  // configured with "cusum_em" — bit-identical candidate scalars.
  const DetectionConfig default_config = TestConfig();
  DetectionConfig explicit_config = TestConfig();
  explicit_config.change_point_backend = "cusum_em";
  const Duration total = default_config.windows.Total();
  const TimePoint step_at = total - Hours(4);
  const TimeSeries series = BuildSeries(total, 0.001, 8, [&](TimePoint t) {
    return t >= step_at ? 0.058 : 0.050;
  });
  const WindowExtract windows = ExtractWindows(series, total, default_config.windows);
  const auto a = ChangePointStage(default_config).Detect(GcpuMetric(), windows);
  const auto b = ChangePointStage(explicit_config).Detect(GcpuMetric(), windows);
  ASSERT_EQ(a.has_value(), b.has_value());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->change_time, b->change_time);
  EXPECT_EQ(a->delta, b->delta);
  EXPECT_EQ(a->relative_delta, b->relative_delta);
  EXPECT_EQ(a->p_value, b->p_value);
}

TEST(ChangePointStageTest, AlternativeBackendsDetectStepInAnalysisWindow) {
  // Every registered backend, not just the default, must drive the stage end
  // to end on an easy planted step.
  const Duration total = TestConfig().windows.Total();
  const TimePoint step_at = total - Hours(4);
  const TimeSeries series = BuildSeries(total, 0.001, 9, [&](TimePoint t) {
    return t >= step_at ? 0.060 : 0.050;
  });
  for (const char* backend : {"cusum_em", "e_divisive", "pelt", "bocpd"}) {
    DetectionConfig config = TestConfig();
    config.change_point_backend = backend;
    const WindowExtract windows = ExtractWindows(series, total, config.windows);
    ChangePointStage stage(config);
    const auto regression = stage.Detect(GcpuMetric(), windows);
    ASSERT_TRUE(regression.has_value()) << backend;
    EXPECT_NEAR(static_cast<double>(regression->change_time), static_cast<double>(step_at),
                static_cast<double>(Hours(2)))
        << backend;
    EXPECT_NEAR(regression->delta, 0.010, 0.004) << backend;
  }
}

// Property sweep: detectable step magnitudes produce detections with accurate
// change-point localization across noise levels.
struct StepCase {
  double step;
  double noise;
};

class ChangePointSweepTest : public ::testing::TestWithParam<StepCase> {};

TEST_P(ChangePointSweepTest, LocalizesStep) {
  const StepCase c = GetParam();
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint step_at = total - Hours(3);
  const TimeSeries series = BuildSeries(total, c.noise, 7, [&](TimePoint t) {
    return t >= step_at ? 0.05 + c.step : 0.05;
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  ChangePointStage stage(config);
  const auto regression = stage.Detect(GcpuMetric(), windows);
  ASSERT_TRUE(regression.has_value()) << "step=" << c.step << " noise=" << c.noise;
  EXPECT_NEAR(regression->delta, c.step, c.step * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Steps, ChangePointSweepTest,
                         ::testing::Values(StepCase{0.01, 0.001}, StepCase{0.005, 0.001},
                                           StepCase{0.02, 0.005}, StepCase{0.001, 0.0001}));

// ---------------------------------------------------------------------------
// WentAwayDetector.
// ---------------------------------------------------------------------------

// Builds a Regression by running the change-point stage on a constructed
// series (keeps test data realistic).
std::optional<Regression> DetectOn(const TimeSeries& series, const DetectionConfig& config,
                                   MetricId metric = GcpuMetric()) {
  const WindowExtract windows =
      ExtractWindows(series, series.end_time() + kTick, config.windows);
  return ChangePointStage(config).Detect(metric, windows);
}

TEST(WentAwayTest, PersistentStepKept) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint step_at = total - Hours(5);
  const TimeSeries series = BuildSeries(total, 0.001, 8, [&](TimePoint t) {
    return t >= step_at ? 0.060 : 0.050;
  });
  const auto regression = DetectOn(series, config);
  ASSERT_TRUE(regression.has_value());
  const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(*regression, 144);
  EXPECT_TRUE(verdict.keep);
  EXPECT_FALSE(verdict.gone_away);
}

TEST(WentAwayTest, TransientSpikeFiltered) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  // Spike starts inside the analysis window and fully recovers before the
  // series ends (the Figure 1(c) case, oriented).
  const TimePoint spike_start = total - Hours(5);
  const TimePoint spike_end = total - Hours(3);
  const TimeSeries series = BuildSeries(total, 0.001, 9, [&](TimePoint t) {
    return (t >= spike_start && t < spike_end) ? 0.065 : 0.050;
  });
  const auto regression = DetectOn(series, config);
  if (!regression.has_value()) {
    GTEST_SKIP() << "change point not flagged; nothing to filter";
  }
  const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(*regression, 144);
  EXPECT_FALSE(verdict.keep);
  EXPECT_TRUE(verdict.gone_away);
}

TEST(WentAwayTest, Figure7RegressionAtEndDespiteHistoricalSpike) {
  // Fig. 7: history contains a short spike; the real regression starts near
  // the end. The SAX validity rule must ignore the spike's buckets (they hold
  // < 3% of historical points) and keep the terminal regression.
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint spike_start = Hours(10);
  const TimePoint spike_end = Hours(11);  // 1h spike in 2 days of history: ~2%.
  const TimePoint regression_at = total - Hours(5);
  const TimeSeries series = BuildSeries(total, 0.0008, 10, [&](TimePoint t) {
    if (t >= spike_start && t < spike_end) {
      return 0.080;  // Historical spike, higher than the regression level.
    }
    return t >= regression_at ? 0.062 : 0.050;
  });
  const auto regression = DetectOn(series, config);
  ASSERT_TRUE(regression.has_value());
  const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(*regression, 144);
  EXPECT_TRUE(verdict.keep);
}

TEST(WentAwayTest, GradualRampKeptViaLastingTrend) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint ramp_start = total - Hours(6);
  const TimeSeries series = BuildSeries(total, 0.0005, 11, [&](TimePoint t) {
    if (t < ramp_start) {
      return 0.050;
    }
    const double progress =
        static_cast<double>(t - ramp_start) / static_cast<double>(Hours(6));
    return 0.050 + 0.012 * progress;
  });
  const auto regression = DetectOn(series, config);
  ASSERT_TRUE(regression.has_value());
  const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(*regression, 144);
  EXPECT_TRUE(verdict.keep);
  EXPECT_TRUE(verdict.lasting_trend);
}

TEST(WentAwayTest, DecayingSpikeWithRecoveryTailFiltered) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint spike_at = total - Hours(5);
  const TimeSeries series = BuildSeries(total, 0.0005, 12, [&](TimePoint t) {
    if (t < spike_at) {
      return 0.050;
    }
    // Exponential decay back to baseline.
    const double age = static_cast<double>(t - spike_at) / static_cast<double>(Hours(1));
    return 0.050 + 0.02 * std::exp(-age);
  });
  const auto regression = DetectOn(series, config);
  if (!regression.has_value()) {
    GTEST_SKIP() << "change point not flagged";
  }
  const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(*regression, 144);
  EXPECT_FALSE(verdict.keep);
}

TEST(WentAwayTest, EmptyDataRejected) {
  const DetectionConfig config = TestConfig();
  Regression regression;
  const WentAwayVerdict verdict = WentAwayDetector(config).Evaluate(regression, 0);
  EXPECT_FALSE(verdict.keep);
}

// Boundary + robustness cases driven through the zero-copy Evaluate overload,
// where the ScanView and ScanCandidate can be constructed exactly.

// historical | analysis view over `data` with no extended window.
ScanView ManualView(const std::vector<double>& data, size_t historical_size) {
  ScanView view;
  view.full = data;
  view.historical_size = historical_size;
  view.analysis_size = data.size() - historical_size;
  view.extended_size = 0;
  return view;
}

TEST(WentAwayTest, ChangeAtFinalPointGivesSinglePointPostWindow) {
  // change_index == analysis.size() - 1: the post window is exactly one
  // point. Tail mean, percentiles, Mann-Kendall and Theil-Sen all run on that
  // single point; nothing may read past the span or divide by zero.
  const DetectionConfig config = TestConfig();
  Rng rng(20);
  std::vector<double> data;
  for (int i = 0; i < 288; ++i) {
    data.push_back(rng.Normal(0.050, 0.0005));
  }
  for (int i = 0; i < 35; ++i) {
    data.push_back(rng.Normal(0.050, 0.0005));
  }
  data.push_back(0.070);  // The series jumps at its very last point.
  const ScanView view = ManualView(data, 288);
  ScanCandidate candidate;
  candidate.change_index = view.analysis_plus_extended().size() - 1;
  candidate.baseline_mean = 0.050;
  candidate.regressed_mean = 0.070;
  candidate.delta = 0.020;
  candidate.relative_delta = 0.4;
  const WentAwayVerdict verdict =
      WentAwayDetector(config).Evaluate(view, candidate, 144);
  // The single elevated tail point has not recovered toward baseline.
  EXPECT_FALSE(verdict.gone_away);
}

TEST(WentAwayTest, SinglePointPostWindowAtBaselineGoesAway) {
  // Same boundary, but the lone post point sits at the baseline: the
  // recovery test must see it as gone away and the verdict must not keep it.
  const DetectionConfig config = TestConfig();
  Rng rng(21);
  std::vector<double> data;
  for (int i = 0; i < 288 + 35; ++i) {
    data.push_back(rng.Normal(0.050, 0.0005));
  }
  data.push_back(0.050);
  const ScanView view = ManualView(data, 288);
  ScanCandidate candidate;
  candidate.change_index = view.analysis_plus_extended().size() - 1;
  candidate.baseline_mean = 0.050;
  candidate.regressed_mean = 0.050;
  candidate.delta = 0.020;  // Claimed delta never materialized in the tail.
  candidate.relative_delta = 0.4;
  const WentAwayVerdict verdict =
      WentAwayDetector(config).Evaluate(view, candidate, 144);
  EXPECT_TRUE(verdict.gone_away);
  EXPECT_FALSE(verdict.keep);
}

TEST(WentAwayTest, NonFiniteHistoryIsSkippedNotIndexed) {
  // Regression test: historical values used to index
  // hist_counts[Encode(v) - 'a'] unchecked, so a NaN or infinity that
  // survived the sanitizer (sub-threshold fraction, or the gate disabled)
  // could index out of the table. Non-finite points must be skipped — and a
  // persistent step must still be judged on the finite points alone.
  const DetectionConfig config = TestConfig();
  Rng rng(22);
  std::vector<double> data;
  for (int i = 0; i < 288; ++i) {
    if (i % 32 == 0) {
      data.push_back(std::numeric_limits<double>::quiet_NaN());
    } else if (i % 32 == 16) {
      data.push_back(std::numeric_limits<double>::infinity());
    } else {
      data.push_back(rng.Normal(0.050, 0.0005));
    }
  }
  for (int i = 0; i < 36; ++i) {
    data.push_back(rng.Normal(0.062, 0.0005));  // Persistent elevated plateau.
  }
  const ScanView view = ManualView(data, 288);
  ScanCandidate candidate;
  candidate.change_index = 0;
  candidate.baseline_mean = 0.050;
  candidate.regressed_mean = 0.062;
  candidate.delta = 0.012;
  candidate.relative_delta = 0.24;
  const WentAwayVerdict verdict =
      WentAwayDetector(config).Evaluate(view, candidate, 144);
  EXPECT_FALSE(verdict.gone_away);
}

TEST(WentAwayTest, AllNanHistoryProducesNoValidBuckets) {
  // Degenerate extreme of the same bug: with every historical point
  // non-finite there are no valid SAX buckets, so the significance rule has
  // nothing to compare against and must not crash or report significance.
  const DetectionConfig config = TestConfig();
  std::vector<double> data(288, std::numeric_limits<double>::quiet_NaN());
  Rng rng(23);
  for (int i = 0; i < 36; ++i) {
    data.push_back(rng.Normal(0.062, 0.0005));
  }
  const ScanView view = ManualView(data, 288);
  ScanCandidate candidate;
  candidate.change_index = 0;
  candidate.baseline_mean = 0.050;
  candidate.regressed_mean = 0.062;
  candidate.delta = 0.012;
  candidate.relative_delta = 0.24;
  const WentAwayVerdict verdict =
      WentAwayDetector(config).Evaluate(view, candidate, 144);
  EXPECT_FALSE(verdict.significant);
}

// ---------------------------------------------------------------------------
// SeasonalityStage.
// ---------------------------------------------------------------------------

TEST(SeasonalityStageTest, SeasonalPeakFilteredAsFalsePositive) {
  DetectionConfig config = TestConfig();
  config.windows.historical = Days(4);
  const Duration total = config.windows.Total();
  const Duration period = Days(1);
  // Pure diurnal pattern; the analysis window catches the rising flank.
  const TimeSeries series = BuildSeries(total, 0.0005, 13, [&](TimePoint t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t % period) /
                         static_cast<double>(period);
    return 0.050 + 0.010 * std::sin(phase);
  });
  const auto regression = DetectOn(series, config);
  if (!regression.has_value()) {
    GTEST_SKIP() << "seasonal flank did not trigger the change-point stage";
  }
  const SeasonalityVerdict verdict = SeasonalityStage(config).Evaluate(*regression);
  EXPECT_TRUE(verdict.seasonality_present);
  EXPECT_TRUE(verdict.seasonal_filtered);
}

TEST(SeasonalityStageTest, RealStepOnSeasonalSeriesKept) {
  DetectionConfig config = TestConfig();
  config.windows.historical = Days(4);
  const Duration total = config.windows.Total();
  const Duration period = Days(1);
  const TimePoint step_at = total - Hours(5);
  const TimeSeries series = BuildSeries(total, 0.0005, 14, [&](TimePoint t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t % period) /
                         static_cast<double>(period);
    const double seasonal = 0.006 * std::sin(phase);
    return (t >= step_at ? 0.065 : 0.050) + seasonal;
  });
  const auto regression = DetectOn(series, config);
  ASSERT_TRUE(regression.has_value());
  const SeasonalityVerdict verdict = SeasonalityStage(config).Evaluate(*regression);
  EXPECT_FALSE(verdict.seasonal_filtered);
}

TEST(SeasonalityStageTest, NonSeasonalSeriesPassesThrough) {
  const DetectionConfig config = TestConfig();
  const Duration total = config.windows.Total();
  const TimePoint step_at = total - Hours(5);
  const TimeSeries series = BuildSeries(total, 0.001, 15, [&](TimePoint t) {
    return t >= step_at ? 0.060 : 0.050;
  });
  const auto regression = DetectOn(series, config);
  ASSERT_TRUE(regression.has_value());
  const SeasonalityVerdict verdict = SeasonalityStage(config).Evaluate(*regression);
  EXPECT_FALSE(verdict.seasonality_present);
  EXPECT_FALSE(verdict.seasonal_filtered);
}

// ---------------------------------------------------------------------------
// Threshold filter.
// ---------------------------------------------------------------------------

TEST(ThresholdFilterTest, AbsoluteMode) {
  DetectionConfig config;
  config.threshold_mode = ThresholdMode::kAbsolute;
  config.threshold = 0.01;
  Regression regression;
  regression.delta = 0.02;
  EXPECT_TRUE(PassesThreshold(regression, config));
  regression.delta = 0.005;
  EXPECT_FALSE(PassesThreshold(regression, config));
}

TEST(ThresholdFilterTest, RelativeMode) {
  DetectionConfig config;
  config.threshold_mode = ThresholdMode::kRelative;
  config.threshold = 0.05;
  Regression regression;
  regression.delta = 1.0;
  regression.relative_delta = 0.10;
  EXPECT_TRUE(PassesThreshold(regression, config));
  regression.relative_delta = 0.01;
  EXPECT_FALSE(PassesThreshold(regression, config));
}

// ---------------------------------------------------------------------------
// Long-term detector.
// ---------------------------------------------------------------------------

TEST(LongTermTest, DetectsSlowRamp) {
  DetectionConfig config;
  config.threshold = 0.003;
  config.windows.historical = Days(6);
  config.windows.analysis = Days(3);
  config.windows.extended = 0;
  const Duration total = config.windows.Total();
  const TimePoint ramp_start = total - Days(3);
  const TimeSeries series = BuildSeries(total, 0.002, 16, [&](TimePoint t) {
    if (t < ramp_start) {
      return 0.050;
    }
    const double progress =
        static_cast<double>(t - ramp_start) / static_cast<double>(Days(3));
    return 0.050 + 0.010 * progress;
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  LongTermDetector detector(config);
  const auto regression = detector.Detect(GcpuMetric(), windows);
  ASSERT_TRUE(regression.has_value());
  EXPECT_TRUE(regression->long_term);
  EXPECT_GT(regression->delta, 0.003);
}

TEST(LongTermTest, StableSeriesNotDetected) {
  DetectionConfig config;
  config.threshold = 0.003;
  config.windows.historical = Days(6);
  config.windows.analysis = Days(3);
  config.windows.extended = 0;
  const Duration total = config.windows.Total();
  const TimeSeries series = BuildSeries(total, 0.002, 17, [](TimePoint) { return 0.05; });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  LongTermDetector detector(config);
  EXPECT_FALSE(detector.Detect(GcpuMetric(), windows).has_value());
}

TEST(LongTermTest, SeasonalSeriesWithoutTrendNotDetected) {
  DetectionConfig config;
  config.threshold = 0.003;
  config.windows.historical = Days(6);
  config.windows.analysis = Days(3);
  config.windows.extended = 0;
  const Duration total = config.windows.Total();
  const Duration period = Days(1);
  const TimeSeries series = BuildSeries(total, 0.001, 18, [&](TimePoint t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t % period) /
                         static_cast<double>(period);
    return 0.050 + 0.008 * std::sin(phase);
  });
  const WindowExtract windows = ExtractWindows(series, total, config.windows);
  LongTermDetector detector(config);
  EXPECT_FALSE(detector.Detect(GcpuMetric(), windows).has_value());
}

// ---------------------------------------------------------------------------
// SameRegressionMerger.
// ---------------------------------------------------------------------------

TEST(SameRegressionMergerTest, DropsRepeatedChangePoint) {
  SameRegressionMerger merger(Hours(4));
  Regression regression;
  regression.metric = GcpuMetric();
  regression.change_time = Hours(100);
  EXPECT_TRUE(merger.Admit(regression));
  regression.change_time = Hours(100) + Hours(2);  // Same regression, re-run.
  EXPECT_FALSE(merger.Admit(regression));
  regression.change_time = Hours(100) + Hours(10);  // A genuinely new one.
  EXPECT_TRUE(merger.Admit(regression));
}

TEST(SameRegressionMergerTest, DifferentMetricsIndependent) {
  SameRegressionMerger merger(Hours(4));
  Regression a;
  a.metric = GcpuMetric();
  a.change_time = Hours(10);
  Regression b;
  b.metric = {"svc", MetricKind::kGcpu, "other_sub", ""};
  b.change_time = Hours(10);
  EXPECT_TRUE(merger.Admit(a));
  EXPECT_TRUE(merger.Admit(b));
}

TEST(SameRegressionMergerTest, FilterBatch) {
  SameRegressionMerger merger(Hours(4));
  Regression a;
  a.metric = GcpuMetric();
  a.change_time = Hours(10);
  Regression duplicate = a;
  duplicate.change_time = Hours(11);
  const std::vector<Regression> kept = merger.Filter({a, duplicate});
  EXPECT_EQ(kept.size(), 1u);
}

}  // namespace
}  // namespace fbdetect
