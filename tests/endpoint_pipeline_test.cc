// End-to-end detection of the §3 metric families beyond per-subroutine gCPU:
// endpoint-level costs (via end-to-end tracing), metadata-annotated gCPU,
// and per-data-type I/O.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"

namespace fbdetect {
namespace {

PipelineOptions EndpointOptions(double threshold, ThresholdMode mode) {
  PipelineOptions options;
  options.detection.threshold = threshold;
  options.detection.threshold_mode = mode;
  options.detection.windows.historical = Days(2);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(4);
  options.detection.enable_long_term = false;
  return options;
}

TEST(EndpointPipelineTest, MetadataAnnotatedRegressionDetected) {
  FleetSimulator fleet;
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 100;
  config.call_graph.num_subroutines = 80;
  config.sampling.samples_per_bucket = 2000000;
  config.emit_gcpu = false;  // Only the annotated series, to isolate the path.
  config.emit_metadata_gcpu = true;
  config.emit_process_cpu = false;
  config.emit_endpoint_metrics = false;
  config.num_annotated_subroutines = 16;
  config.num_annotation_groups = 4;
  config.num_seasonal_subroutines = 0;
  config.seed = 31;
  ServiceSimulator* service = fleet.AddService(config);

  // Regress the annotated LEAF with the largest gCPU: the regression must
  // stand out against the annotation group's aggregate sampling noise.
  const CallGraph& graph = service->graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  NodeId target = kInvalidNode;
  double best_reach = 0.0;
  for (size_t i = 0; i < graph.node_count(); ++i) {
    if (!graph.node(static_cast<NodeId>(i)).metadata.empty() &&
        graph.edges(static_cast<NodeId>(i)).empty() && reach[i] > best_reach) {
      best_reach = reach[i];
      target = static_cast<NodeId>(i);
    }
  }
  if (target == kInvalidNode) {
    GTEST_SKIP() << "no annotated leaf in this random graph";
  }
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "svc";
  event.subroutine = graph.node(target).name;
  event.start = Days(2) + Hours(8);
  event.magnitude = 3.0;
  fleet.InjectEvent(event);
  fleet.Run(0, Days(3));

  Pipeline pipeline(&fleet.db(), nullptr, nullptr,
                    EndpointOptions(0.0001, ThresholdMode::kAbsolute));
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", Days(2), Days(3));
  bool found_metadata_report = false;
  const std::string expected = graph.node(target).metadata;
  for (const Regression& report : reports) {
    if (report.metric.metadata == expected) {
      found_metadata_report = true;
    }
  }
  EXPECT_TRUE(found_metadata_report)
      << "expected a regression on annotation series " << expected;
}

TEST(EndpointPipelineTest, EndpointCostRegressionDetected) {
  FleetSimulator fleet;
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 100;
  config.call_graph.num_subroutines = 50;
  config.emit_gcpu = false;
  config.emit_process_cpu = false;
  config.emit_endpoint_metrics = false;
  config.emit_endpoint_cost = true;
  config.num_endpoints = 3;
  config.traces_per_endpoint_per_tick = 80;
  config.num_seasonal_subroutines = 0;
  config.seed = 32;
  ServiceSimulator* service = fleet.AddService(config);

  // Regress the heaviest leaf under the first endpoint's entry root.
  const CallGraph& graph = service->graph();
  const NodeId entry = graph.roots()[0];
  std::vector<NodeId> stack = {entry};
  std::vector<bool> visited(graph.node_count(), false);
  NodeId leaf = kInvalidNode;
  double best_cost = 0.0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(v)]) {
      continue;
    }
    visited[static_cast<size_t>(v)] = true;
    if (graph.edges(v).empty() && graph.node(v).self_cost > best_cost) {
      best_cost = graph.node(v).self_cost;
      leaf = v;
    }
    for (const CallEdge& edge : graph.edges(v)) {
      stack.push_back(edge.callee);
    }
  }
  FBD_CHECK(leaf != kInvalidNode);
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "svc";
  event.subroutine = graph.node(leaf).name;
  event.start = Days(2) + Hours(8);
  event.magnitude = 3.0;
  fleet.InjectEvent(event);
  fleet.Run(0, Days(3));

  // Relative threshold: endpoint costs are in arbitrary cost units.
  Pipeline pipeline(&fleet.db(), nullptr, nullptr,
                    EndpointOptions(0.02, ThresholdMode::kRelative));
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", Days(2), Days(3));
  bool endpoint_report = false;
  for (const Regression& report : reports) {
    if (report.metric.kind == MetricKind::kEndpointCost) {
      endpoint_report = true;
      EXPECT_GT(report.relative_delta, 0.02);
    }
  }
  EXPECT_TRUE(endpoint_report);
}

TEST(EndpointPipelineTest, IoPerDataTypeRegressionDetected) {
  FleetSimulator fleet;
  ServiceConfig config;
  config.name = "tao_like";
  config.num_servers = 500;
  config.call_graph.num_subroutines = 20;
  config.emit_gcpu = false;
  config.emit_process_cpu = false;
  config.emit_endpoint_metrics = false;
  config.io_data_types = {"user", "post", "comment", "like"};
  config.seasonal_load_amplitude = 0.03;
  config.seed = 33;
  fleet.AddService(config);

  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "tao_like";
  event.subroutine = "io/comment";
  event.start = Days(2) + Hours(8);
  event.magnitude = 0.20;
  fleet.InjectEvent(event);
  fleet.Run(0, Days(3));

  Pipeline pipeline(&fleet.db(), nullptr, nullptr,
                    EndpointOptions(0.05, ThresholdMode::kRelative));
  const std::vector<Regression> reports = pipeline.RunPeriod("tao_like", Days(2), Days(3));
  bool io_report = false;
  for (const Regression& report : reports) {
    if (report.metric.kind == MetricKind::kIoPerDataType) {
      io_report = true;
      EXPECT_EQ(report.metric.entity, "comment");  // Only the targeted type.
    }
  }
  EXPECT_TRUE(io_report);
}

}  // namespace
}  // namespace fbdetect
