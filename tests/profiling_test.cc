#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/random.h"
#include "src/profiling/call_graph.h"
#include "src/profiling/profile.h"
#include "src/profiling/profiler.h"
#include "src/profiling/pyperf.h"
#include "src/tsdb/database.h"

namespace fbdetect {
namespace {

// A small hand-built graph:  main -> {work, io}; work -> leaf.
struct TinyGraph {
  CallGraph graph;
  NodeId main_id;
  NodeId work;
  NodeId io;
  NodeId leaf;

  TinyGraph() {
    main_id = graph.AddNode({"main", "Main", 1.0, ""});
    work = graph.AddNode({"work", "Worker", 2.0, ""});
    io = graph.AddNode({"io", "Worker", 3.0, ""});
    leaf = graph.AddNode({"leaf", "Worker", 4.0, ""});
    graph.AddEdge(main_id, work, 1.0);
    graph.AddEdge(main_id, io, 1.0);
    graph.AddEdge(work, leaf, 1.0);
  }
};

TEST(CallGraphTest, SubtreeCostsComposeBottomUp) {
  TinyGraph t;
  const std::vector<double>& subtree = t.graph.SubtreeCosts();
  EXPECT_DOUBLE_EQ(subtree[static_cast<size_t>(t.leaf)], 4.0);
  EXPECT_DOUBLE_EQ(subtree[static_cast<size_t>(t.work)], 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(subtree[static_cast<size_t>(t.io)], 3.0);
  EXPECT_DOUBLE_EQ(subtree[static_cast<size_t>(t.main_id)], 1.0 + 6.0 + 3.0);
}

TEST(CallGraphTest, ReachProbabilities) {
  TinyGraph t;
  const std::vector<double> reach = t.graph.ReachProbabilities();
  // Single root: every sample passes through main.
  EXPECT_DOUBLE_EQ(reach[static_cast<size_t>(t.main_id)], 1.0);
  // P(work) = subtree(work)/subtree(main) = 6/10.
  EXPECT_NEAR(reach[static_cast<size_t>(t.work)], 0.6, 1e-12);
  EXPECT_NEAR(reach[static_cast<size_t>(t.io)], 0.3, 1e-12);
  // P(leaf) = P(work) * 4/6.
  EXPECT_NEAR(reach[static_cast<size_t>(t.leaf)], 0.4, 1e-12);
}

TEST(CallGraphTest, SampledGcpuMatchesReach) {
  TinyGraph t;
  Rng rng(1);
  ProfileAggregate aggregate;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    aggregate.AddSample(t.graph.SampleStack(rng));
  }
  const std::vector<double> reach = t.graph.ReachProbabilities();
  for (NodeId id : {t.main_id, t.work, t.io, t.leaf}) {
    EXPECT_NEAR(aggregate.Gcpu(id), reach[static_cast<size_t>(id)], 0.01)
        << t.graph.node(id).name;
  }
}

TEST(CallGraphTest, ScaleSelfCostRaisesReach) {
  TinyGraph t;
  const double before = t.graph.ReachProbabilities()[static_cast<size_t>(t.io)];
  t.graph.ScaleSelfCost(t.io, 2.0);
  const double after = t.graph.ReachProbabilities()[static_cast<size_t>(t.io)];
  EXPECT_GT(after, before);
}

TEST(CallGraphTest, ShiftSelfCostPreservesTotal) {
  TinyGraph t;
  const double total_before = t.graph.TotalCost();
  t.graph.ShiftSelfCost(t.io, t.leaf, 2.0);
  EXPECT_NEAR(t.graph.TotalCost(), total_before, 1e-12);
  EXPECT_DOUBLE_EQ(t.graph.node(t.io).self_cost, 1.0);
  EXPECT_DOUBLE_EQ(t.graph.node(t.leaf).self_cost, 6.0);
}

TEST(CallGraphTest, ShiftClampsAtAvailableCost) {
  TinyGraph t;
  t.graph.ShiftSelfCost(t.io, t.leaf, 100.0);
  EXPECT_DOUBLE_EQ(t.graph.node(t.io).self_cost, 0.0);
  EXPECT_DOUBLE_EQ(t.graph.node(t.leaf).self_cost, 7.0);
}

TEST(CallGraphTest, CallersOfAndClassMembers) {
  TinyGraph t;
  EXPECT_EQ(t.graph.CallersOf(t.leaf), (std::vector<NodeId>{t.work}));
  EXPECT_EQ(t.graph.NodesInClass("Worker").size(), 3u);
  EXPECT_EQ(t.graph.FindByName("io"), t.io);
  EXPECT_EQ(t.graph.FindByName("nope"), kInvalidNode);
}

TEST(CallGraphTest, RandomGraphIsWellFormed) {
  Rng rng(2);
  RandomCallGraphOptions options;
  options.num_subroutines = 300;
  const CallGraph graph = GenerateRandomCallGraph(options, rng);
  EXPECT_EQ(graph.node_count(), 300u);
  EXPECT_FALSE(graph.roots().empty());
  const std::vector<double> reach = graph.ReachProbabilities();
  double root_total = 0.0;
  for (NodeId r : graph.roots()) {
    root_total += reach[static_cast<size_t>(r)];
  }
  EXPECT_NEAR(root_total, 1.0, 1e-9);
  for (double p : reach) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ProfileAggregateTest, GcpuCountsContainment) {
  ProfileAggregate aggregate;
  aggregate.AddSample({0, 1, 2});
  aggregate.AddSample({0, 1});
  aggregate.AddSample({0, 3});
  aggregate.AddSample({0, 1, 2});
  EXPECT_EQ(aggregate.total_samples(), 4u);
  EXPECT_DOUBLE_EQ(aggregate.Gcpu(0), 1.0);
  EXPECT_DOUBLE_EQ(aggregate.Gcpu(1), 0.75);
  EXPECT_DOUBLE_EQ(aggregate.Gcpu(2), 0.5);
  EXPECT_DOUBLE_EQ(aggregate.Gcpu(3), 0.25);
  EXPECT_DOUBLE_EQ(aggregate.Gcpu(99), 0.0);
}

TEST(ProfileAggregateTest, SampleOverlapJaccard) {
  ProfileAggregate aggregate;
  aggregate.AddSample({0, 1});  // Both.
  aggregate.AddSample({0});     // Only 0.
  aggregate.AddSample({1});     // Only 1.
  // |0 and 1| = 1, |0 or 1| = 3.
  EXPECT_NEAR(aggregate.SampleOverlap(0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(aggregate.SampleOverlap(0, 9), 0.0);
}

TEST(ProfileAggregateTest, MergeOffsetsSampleIndices) {
  ProfileAggregate a;
  a.AddSample({0});
  ProfileAggregate b;
  b.AddSample({0, 1});
  a.Merge(b);
  EXPECT_EQ(a.total_samples(), 2u);
  EXPECT_DOUBLE_EQ(a.Gcpu(0), 1.0);
  EXPECT_DOUBLE_EQ(a.Gcpu(1), 0.5);
  EXPECT_NEAR(a.SampleOverlap(0, 1), 0.5, 1e-12);
}

TEST(ProfileAggregateTest, DuplicateFramesCountedOnce) {
  ProfileAggregate aggregate;
  aggregate.AddSample({5, 5, 5});
  EXPECT_EQ(aggregate.CountOf(5), 1u);
}

TEST(SampleBinomialTest, MatchesMoments) {
  Rng rng(3);
  // Large-variance branch (normal approximation).
  double sum = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(SampleBinomial(100000, 0.01, rng));
  }
  EXPECT_NEAR(sum / trials, 1000.0, 5.0);
  // Rare-event branch (Poisson).
  sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(SampleBinomial(1000, 0.001, rng));
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.1);
  // Edge cases.
  EXPECT_EQ(SampleBinomial(0, 0.5, rng), 0u);
  EXPECT_EQ(SampleBinomial(10, 0.0, rng), 0u);
  EXPECT_EQ(SampleBinomial(10, 1.0, rng), 10u);
}

TEST(SamplingProfilerTest, AnalyticBucketTracksReach) {
  TinyGraph t;
  SamplingConfig config;
  config.samples_per_bucket = 1000000;
  SamplingProfiler profiler("svc", config);
  Rng rng(4);
  const std::vector<uint64_t> counts = profiler.AnalyticBucket(t.graph, rng);
  const std::vector<double> reach = t.graph.ReachProbabilities();
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / 1e6, reach[i], 0.005);
  }
}

TEST(SamplingProfilerTest, WriteGcpuBucketPopulatesDatabase) {
  TinyGraph t;
  SamplingConfig config;
  config.samples_per_bucket = 100000;
  SamplingProfiler profiler("svc", config);
  Rng rng(5);
  TimeSeriesDatabase db;
  profiler.WriteGcpuBucket(t.graph, 600, rng, db);
  const MetricId main_metric{"svc", MetricKind::kGcpu, "main", ""};
  ASSERT_NE(db.Find(main_metric), nullptr);
  EXPECT_NEAR(db.Find(main_metric)->values()[0], 1.0, 0.01);
}

// ---------------------------------------------------------------------------
// PyPerf.
// ---------------------------------------------------------------------------

TEST(PyPerfTest, MergesSimpleSnapshot) {
  InterpreterSnapshot snapshot;
  snapshot.native_stack = {
      {NativeFrameKind::kSystem, "_start"},
      {NativeFrameKind::kInterpreterCall, "Py_RunMain"},
      {NativeFrameKind::kPyEvalFrame, "_PyEval_EvalFrameDefault"},
      {NativeFrameKind::kInterpreterCall, "_PyObject_Call"},
      {NativeFrameKind::kPyEvalFrame, "_PyEval_EvalFrameDefault"},
      {NativeFrameKind::kNativeLibrary, "c_lib_foo"},
  };
  snapshot.virtual_call_stack = {{"py_funX", "x.py", 1}, {"py_funZ", "z.py", 2}};
  bool torn = true;
  const std::vector<MergedFrame> merged = MergeStacks(snapshot, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(merged.size(), 4u);  // _start, py_funX, py_funZ, c_lib_foo.
  EXPECT_EQ(merged[0].symbol, "_start");
  EXPECT_FALSE(merged[0].is_python);
  EXPECT_EQ(merged[1].symbol, "py_funX");
  EXPECT_TRUE(merged[1].is_python);
  EXPECT_EQ(merged[2].symbol, "py_funZ");
  EXPECT_EQ(merged[3].symbol, "c_lib_foo");
  EXPECT_FALSE(merged[3].is_python);
}

TEST(PyPerfTest, TornSampleAlignsFromLeaf) {
  InterpreterSnapshot snapshot;
  snapshot.native_stack = {
      {NativeFrameKind::kPyEvalFrame, "_PyEval_EvalFrameDefault"},
      {NativeFrameKind::kPyEvalFrame, "_PyEval_EvalFrameDefault"},
  };
  // Only the innermost VCS frame survived the race.
  snapshot.virtual_call_stack = {{"py_inner", "i.py", 1}};
  bool torn = false;
  const std::vector<MergedFrame> merged = MergeStacks(snapshot, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].symbol, "<unknown-python-frame>");
  EXPECT_EQ(merged[1].symbol, "py_inner");  // Leaf matched to leaf.
}

TEST(PyPerfTest, SimulatedProcessProducesConsistentSnapshots) {
  SimulatedInterpreterProcess::Options options;
  SimulatedInterpreterProcess process(options, 42);
  for (int i = 0; i < 500; ++i) {
    const InterpreterSnapshot snapshot = process.Sample();
    size_t eval_frames = 0;
    for (const NativeFrame& frame : snapshot.native_stack) {
      if (frame.kind == NativeFrameKind::kPyEvalFrame) {
        ++eval_frames;
      }
    }
    EXPECT_EQ(eval_frames, snapshot.virtual_call_stack.size());
    bool torn = true;
    const std::vector<MergedFrame> merged = MergeStacks(snapshot, &torn);
    EXPECT_FALSE(torn);
    // Every Python frame must appear by name in the merged stack, in order.
    size_t python_count = 0;
    for (const MergedFrame& frame : merged) {
      if (frame.is_python) {
        ASSERT_LT(python_count, snapshot.virtual_call_stack.size());
        EXPECT_EQ(frame.symbol, snapshot.virtual_call_stack[python_count].function);
        ++python_count;
      }
      // No interpreter plumbing may leak into the merged stack.
      EXPECT_NE(frame.symbol, "_PyObject_Call");
      EXPECT_NE(frame.symbol, "Py_RunMain");
    }
    EXPECT_EQ(python_count, snapshot.virtual_call_stack.size());
  }
}

}  // namespace
}  // namespace fbdetect
