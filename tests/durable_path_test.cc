// End-to-end acceptance tests for the durable storage tier (DESIGN.md §15):
// the group-commit WAL and the chunk store must truncate torn tails at frame
// granularity, a clean close + reopen must be lossless, chunk-granular
// eviction must serve readback from the memory-mapped chunk file, detection
// output must be byte-identical with the tier off, on, and under an eviction
// budget at scan_threads 1/2/8, a SIGKILL'd writer must recover to a state
// whose detection output matches an uninterrupted run, and the self-hosted
// telemetry loop must persist registry snapshots as ordinary scannable
// series.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <iterator>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/service.h"
#include "src/observe/telemetry.h"
#include "src/observe/telemetry_export.h"
#include "src/observe/telemetry_sink.h"
#include "src/report/report.h"
#include "src/tsdb/chunk_store.h"
#include "src/tsdb/database.h"
#include "src/tsdb/durable_io.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/wal.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Filesystem helpers.
// ---------------------------------------------------------------------------

std::string MakeTempDir(const char* tag) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "/tmp/fbd_durable_%s_XXXXXX", tag);
  const char* dir = mkdtemp(buf);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveTree(const std::string& dir) {
  if (dir.empty()) {
    return;
  }
  if (DIR* d = opendir(dir.c_str())) {
    while (const dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        (void)unlink((dir + "/" + name).c_str());
      }
    }
    closedir(d);
  }
  (void)rmdir(dir.c_str());
}

// RAII cleanup so failures don't leak /tmp directories.
struct ScopedDir {
  std::string path;
  explicit ScopedDir(const char* tag) : path(MakeTempDir(tag)) {}
  ~ScopedDir() { RemoveTree(path); }
};

off_t FileSize(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

void AppendGarbage(const std::string& path, size_t bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  const std::vector<uint8_t> junk(bytes, 0xAB);
  ASSERT_EQ(::write(fd, junk.data(), junk.size()), static_cast<ssize_t>(bytes));
  ::close(fd);
}

void FlipByteAt(const std::string& path, off_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  uint8_t b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
  b ^= 0xFF;
  ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
  ::close(fd);
}

void TruncateBy(const std::string& path, off_t bytes) {
  const off_t size = FileSize(path);
  ASSERT_GE(size, bytes);
  ASSERT_EQ(::truncate(path.c_str(), size - bytes), 0);
}

// ---------------------------------------------------------------------------
// WAL: group commits replay in order; torn tails truncate at frame
// granularity; Rewrite replaces history with the checkpoint.
// ---------------------------------------------------------------------------

struct ReplayedState {
  std::vector<std::string> events;  // Order-sensitive record trace.
  size_t points = 0;

  WriteAheadLog::ReplayHandler Handler() {
    WriteAheadLog::ReplayHandler handler;
    handler.points = [this](const InternedMetricId& id,
                            std::span<const TimePoint> timestamps,
                            std::span<const double> values) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "points(%u,%u) n=%zu t0=%lld v0=%g", id.service,
                    id.entity, timestamps.size(),
                    static_cast<long long>(timestamps.empty() ? -1 : timestamps[0]),
                    values.empty() ? 0.0 : values[0]);
      events.push_back(buf);
      points += timestamps.size();
    };
    handler.drop_before = [this](TimePoint cutoff) {
      events.push_back("drop " + std::to_string(cutoff));
    };
    handler.seal_boundary = [this](TimePoint boundary) {
      events.push_back("seal " + std::to_string(boundary));
    };
    return handler;
  }
};

constexpr InternedMetricId kIdA{1, MetricKind::kGcpu, 2, 0};
constexpr InternedMetricId kIdB{1, MetricKind::kLatency, 3, 0};

TEST(WalGroupCommitTest, ReplayDeliversCommittedRecordsInOrder) {
  const ScopedDir dir("wal");
  const std::string path = dir.path + "/wal.0";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, {}, /*fsync=*/false).ok());
    const TimePoint t1[] = {10, 20};
    const double v1[] = {1.5, 2.5};
    wal.BufferPoints(kIdA, t1, v1);
    wal.BufferDropBefore(5);
    wal.BufferSealBoundary(7);
    ASSERT_TRUE(wal.Commit().ok());  // Frame 1: three records, one write().
    const TimePoint t2[] = {30};
    const double v2[] = {-4.0};
    wal.BufferPoints(kIdB, t2, v2);
    ASSERT_TRUE(wal.Commit().ok());  // Frame 2.
    EXPECT_EQ(wal.stats().group_commits, 2u);
    EXPECT_EQ(wal.pending_bytes(), 0u);
  }
  ReplayedState replayed;
  WriteAheadLog reopened;
  ASSERT_TRUE(reopened.Open(path, replayed.Handler(), false).ok());
  const std::vector<std::string> expected = {
      "points(1,2) n=2 t0=10 v0=1.5",
      "drop 5",
      "seal 7",
      "points(1,3) n=1 t0=30 v0=-4",
  };
  EXPECT_EQ(replayed.events, expected);
  EXPECT_EQ(replayed.points, 3u);
  EXPECT_EQ(reopened.stats().replayed_points, 3u);
  EXPECT_EQ(reopened.stats().truncated_bytes, 0u);
}

TEST(WalGroupCommitTest, TornTailIsTruncatedAtFrameGranularity) {
  const ScopedDir dir("waltorn");
  const std::string path = dir.path + "/wal.0";
  off_t frame1_end = 0;
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, {}, false).ok());
    const TimePoint t1[] = {10, 20};
    const double v1[] = {1.0, 2.0};
    wal.BufferPoints(kIdA, t1, v1);
    ASSERT_TRUE(wal.Commit().ok());
    frame1_end = FileSize(path);
    const TimePoint t2[] = {30, 40};
    const double v2[] = {3.0, 4.0};
    wal.BufferPoints(kIdA, t2, v2);
    ASSERT_TRUE(wal.Commit().ok());
  }
  const off_t full = FileSize(path);

  // Garbage after the last frame (a torn header): dropped, frames intact.
  AppendGarbage(path, 7);
  {
    ReplayedState replayed;
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, replayed.Handler(), false).ok());
    EXPECT_EQ(replayed.points, 4u);
    EXPECT_EQ(wal.stats().truncated_bytes, 7u);
    EXPECT_EQ(FileSize(path), full);  // Truncated back to the clean prefix.

    // The truncated log accepts new commits on the clean prefix.
    const TimePoint t3[] = {50};
    const double v3[] = {5.0};
    wal.BufferPoints(kIdB, t3, v3);
    ASSERT_TRUE(wal.Commit().ok());
  }
  {
    ReplayedState replayed;
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, replayed.Handler(), false).ok());
    EXPECT_EQ(replayed.points, 5u);
  }

  // A flipped byte inside the second frame's payload fails its CRC: recovery
  // keeps frame 1 (and everything before the corruption boundary) only.
  FlipByteAt(path, frame1_end + 13);
  {
    ReplayedState replayed;
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, replayed.Handler(), false).ok());
    EXPECT_EQ(replayed.points, 2u);
    EXPECT_GT(wal.stats().truncated_bytes, 0u);
    EXPECT_EQ(FileSize(path), frame1_end);
  }
}

TEST(WalGroupCommitTest, RewriteReplacesHistoryWithCheckpoint) {
  const ScopedDir dir("walrw");
  const std::string path = dir.path + "/wal.0";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, {}, false).ok());
    for (int i = 0; i < 10; ++i) {
      const TimePoint t[] = {TimePoint{10 * (i + 1)}};
      const double v[] = {static_cast<double>(i)};
      wal.BufferPoints(kIdA, t, v);
      ASSERT_TRUE(wal.Commit().ok());
    }
    const off_t before = FileSize(path);
    wal.BufferDropBefore(40);
    wal.BufferSealBoundary(90);
    const TimePoint tail[] = {90, 100};
    const double tail_v[] = {8.0, 9.0};
    wal.BufferPoints(kIdA, tail, tail_v);
    ASSERT_TRUE(wal.Rewrite().ok());
    EXPECT_EQ(wal.stats().rewrites, 1u);
    EXPECT_LT(FileSize(path), before);
  }
  ReplayedState replayed;
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, replayed.Handler(), false).ok());
  const std::vector<std::string> expected = {
      "drop 40",
      "seal 90",
      "points(1,2) n=2 t0=90 v0=8",
  };
  EXPECT_EQ(replayed.events, expected);
}

// ---------------------------------------------------------------------------
// ChunkStore: append/sync/reopen round trip and torn-tail truncation.
// ---------------------------------------------------------------------------

std::vector<uint8_t> TestPayload(size_t n, uint8_t salt) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<uint8_t>(i * 3 + salt);
  }
  return payload;
}

TEST(ChunkStoreTest, AppendSyncReopenRestoresRecordsAndPayloads) {
  const ScopedDir dir("chunks");
  const std::string path = dir.path + "/chunks.0";
  const std::vector<uint8_t> p1 = TestPayload(100, 1);
  const std::vector<uint8_t> p2 = TestPayload(333, 2);
  uint64_t off1 = 0, off2 = 0;
  {
    ChunkStore store;
    ASSERT_TRUE(store.Open(path, nullptr, /*fsync=*/false).ok());
    ASSERT_TRUE(store.Append(kIdA, p1, /*bit_count=*/800, /*count=*/17,
                             /*first=*/100, /*last=*/200, &off1)
                    .ok());
    ASSERT_TRUE(store.Append(kIdB, p2, 2661, 40, 210, 400, &off2).ok());
    ASSERT_TRUE(store.Sync().ok());
    const std::span<const uint8_t> got = store.Payload(off1, p1.size());
    EXPECT_TRUE(std::equal(p1.begin(), p1.end(), got.begin(), got.end()));
    EXPECT_EQ(store.stats().appends, 2u);
  }
  ChunkStore reopened;
  std::vector<ChunkStore::RestoredChunk> restored;
  ASSERT_TRUE(reopened
                  .Open(path, [&](const ChunkStore::RestoredChunk& c) { restored.push_back(c); },
                        false)
                  .ok());
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].id, kIdA);
  EXPECT_EQ(restored[0].payload_offset, off1);
  EXPECT_EQ(restored[0].payload_len, p1.size());
  EXPECT_EQ(restored[0].bit_count, 800u);
  EXPECT_EQ(restored[0].count, 17u);
  EXPECT_EQ(restored[0].first, 100);
  EXPECT_EQ(restored[0].last, 200);
  EXPECT_EQ(restored[1].id, kIdB);
  const std::span<const uint8_t> got2 = reopened.Payload(off2, p2.size());
  EXPECT_TRUE(std::equal(p2.begin(), p2.end(), got2.begin(), got2.end()));
}

TEST(ChunkStoreTest, TornTailDropsOnlyTheLastRecord) {
  const ScopedDir dir("chunktorn");
  const std::string path = dir.path + "/chunks.0";
  const std::vector<uint8_t> payload = TestPayload(64, 5);
  {
    ChunkStore store;
    ASSERT_TRUE(store.Open(path, nullptr, false).ok());
    uint64_t off = 0;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          store.Append(kIdA, payload, 512, 8, 100 * i, 100 * i + 90, &off).ok());
    }
    ASSERT_TRUE(store.Sync().ok());
  }
  TruncateBy(path, 10);  // Tear the third record.
  {
    ChunkStore store;
    size_t restored = 0;
    ASSERT_TRUE(store.Open(path, [&](const ChunkStore::RestoredChunk&) { ++restored; }, false)
                    .ok());
    EXPECT_EQ(restored, 2u);
    EXPECT_GT(store.stats().truncated_bytes, 0u);

    // The truncated store accepts appends on the clean prefix.
    uint64_t off = 0;
    ASSERT_TRUE(store.Append(kIdB, payload, 512, 8, 300, 390, &off).ok());
    ASSERT_TRUE(store.Sync().ok());
  }
  ChunkStore store;
  size_t restored = 0;
  ASSERT_TRUE(store.Open(path, [&](const ChunkStore::RestoredChunk&) { ++restored; }, false)
                  .ok());
  EXPECT_EQ(restored, 3u);
  EXPECT_EQ(store.stats().truncated_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Database round trip: seal, expire, clean close, reopen — lossless, and
// convergent under repeated reopens.
// ---------------------------------------------------------------------------

TsdbOptions DurableDbOptions(const std::string& dir) {
  TsdbOptions options;
  options.shard_count = 4;
  options.seal_chunk_points = 64;
  options.durable.directory = dir;
  options.durable.fsync = false;  // Logical recovery only; no power-loss claim.
  return options;
}

std::vector<MetricId> RoundTripIds() {
  return {MetricId{"svc", MetricKind::kGcpu, "a", ""},
          MetricId{"svc", MetricKind::kGcpu, "b", "note"},
          MetricId{"svc2", MetricKind::kLatency, "x", ""}};
}

void RoundTripWorkload(TimeSeriesDatabase& db) {
  const std::vector<MetricId> ids = RoundTripIds();
  for (int i = 0; i < 200; ++i) {
    for (size_t s = 0; s < ids.size(); ++s) {
      db.Write(ids[s], 60 * i, static_cast<double>(i) + 0.25 * static_cast<double>(s));
    }
  }
  db.SealBefore(60 * 150);
  for (int i = 200; i < 250; ++i) {
    for (size_t s = 0; s < ids.size(); ++s) {
      db.Write(ids[s], 60 * i, static_cast<double>(i) + 0.25 * static_cast<double>(s));
    }
  }
  db.Expire(60 * 30);
}

void ExpectSameContent(const TimeSeriesDatabase& got, const TimeSeriesDatabase& want) {
  ASSERT_EQ(got.ListMetrics(), want.ListMetrics());
  for (const MetricId& id : want.ListMetrics()) {
    const TimeSeries* g = got.Find(id);
    const TimeSeries* w = want.Find(id);
    ASSERT_NE(g, nullptr) << id.ToString();
    ASSERT_NE(w, nullptr) << id.ToString();
    EXPECT_EQ(g->timestamps(), w->timestamps()) << id.ToString();
    EXPECT_EQ(g->values(), w->values()) << id.ToString();
  }
  EXPECT_EQ(got.total_points(), want.total_points());
}

TEST(DurableDbTest, CleanCloseReopenIsLossless) {
  const ScopedDir dir("roundtrip");
  TimeSeriesDatabase ram;  // Oracle: same workload, no durable tier.
  RoundTripWorkload(ram);
  {
    TimeSeriesDatabase db(DurableDbOptions(dir.path));
    EXPECT_FALSE(ram.durable_stats().enabled);
    EXPECT_TRUE(db.durable_stats().enabled);
    EXPECT_EQ(db.durable_stats().recoveries, 0u);  // Fresh directory.
    RoundTripWorkload(db);
    ExpectSameContent(db, ram);
  }  // Destructor = clean close (SyncDurable).
  {
    TimeSeriesDatabase db(DurableDbOptions(dir.path));
    const TimeSeriesDatabase::DurableStats stats = db.durable_stats();
    EXPECT_EQ(stats.recoveries, 1u);
    EXPECT_GT(stats.recovered_points + stats.recovered_chunks, 0u);
    EXPECT_EQ(stats.recovered_truncated_bytes, 0u);
    EXPECT_EQ(stats.last_seal_boundary, 60 * 150);
    EXPECT_EQ(stats.last_drop_cutoff, 60 * 30);
    ExpectSameContent(db, ram);

    // Keep growing after recovery; reopen again — convergent, still lossless.
    for (int i = 250; i < 300; ++i) {
      db.Write(RoundTripIds()[0], 60 * i, static_cast<double>(i));
      ram.Write(RoundTripIds()[0], 60 * i, static_cast<double>(i));
    }
    db.SealBefore(60 * 280);
    ram.SealBefore(60 * 280);
  }
  TimeSeriesDatabase db(DurableDbOptions(dir.path));
  ExpectSameContent(db, ram);
}

TEST(DurableDbTest, ExpiredPointsDoNotResurrectAcrossReopen) {
  const ScopedDir dir("expire");
  {
    TimeSeriesDatabase db(DurableDbOptions(dir.path));
    const MetricId id{"svc", MetricKind::kGcpu, "a", ""};
    for (int i = 0; i < 200; ++i) {
      db.Write(id, 60 * i, static_cast<double>(i));
    }
    db.SealBefore(60 * 150);  // Chunks now hold points the cutoff will drop.
    db.Expire(60 * 180);
  }
  TimeSeriesDatabase db(DurableDbOptions(dir.path));
  const TimeSeries* series = db.Find(MetricId{"svc", MetricKind::kGcpu, "a", ""});
  ASSERT_NE(series, nullptr);
  // The chunk file still contains superseded records for the dropped range;
  // replaying the retention cutoff must keep them dead.
  EXPECT_EQ(series->start_time(), 60 * 180);
  EXPECT_EQ(series->size(), 20u);
}

// ---------------------------------------------------------------------------
// Chunk-granular eviction: under a resident budget, sealed history moves to
// the mapped chunk file and readback decodes it in place.
// ---------------------------------------------------------------------------

TEST(DurableDbTest, EvictionUnderBudgetServesMappedReadback) {
  const ScopedDir dir("evict");
  TsdbOptions options = DurableDbOptions(dir.path);
  options.durable.resident_sealed_budget_bytes = 1;  // Evict everything durable.
  TimeSeriesDatabase ram;
  TimeSeriesDatabase db(options);
  const MetricId id{"svc", MetricKind::kGcpu, "hot", ""};
  for (int i = 0; i < 5000; ++i) {
    const double value = 10.0 + static_cast<double>(i % 17);
    db.Write(id, 60 * i, value);
    ram.Write(id, 60 * i, value);
  }
  db.SealBefore(60 * 4500);
  ram.SealBefore(60 * 4500);

  const TimeSeriesDatabase::MemoryStats memory = db.memory_stats();
  EXPECT_EQ(memory.resident_sealed_bytes, 0u);  // All sealed chunks evicted.
  EXPECT_GT(memory.mapped_sealed_bytes, 0u);
  EXPECT_EQ(memory.sealed_bytes, memory.mapped_sealed_bytes);
  const TimeSeriesDatabase::DurableStats durable = db.durable_stats();
  EXPECT_GT(durable.chunks_evicted, 0u);
  EXPECT_GT(durable.evicted_bytes, 0u);

  // Readback decodes the mapped payloads and matches the in-RAM oracle.
  TimeSeries scratch;
  TimeSeries ram_scratch;
  const TimeSeries* got = db.SeriesForScan(id, 0, scratch);
  const TimeSeries* want = ram.SeriesForScan(id, 0, ram_scratch);
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(got->timestamps(), want->timestamps());
  EXPECT_EQ(got->values(), want->values());
  EXPECT_GT(db.durable_stats().mapped_readback_decodes, 0u);

  // Retention trimming a non-resident chunk decodes it from the map,
  // re-encodes the keep-suffix resident, and stays correct across reopen.
  db.Expire(60 * 1000);
  ram.Expire(60 * 1000);
  ExpectSameContent(db, ram);
}

TEST(DurableDbTest, EvictedHistorySurvivesReopen) {
  const ScopedDir dir("evictreopen");
  TsdbOptions options = DurableDbOptions(dir.path);
  options.durable.resident_sealed_budget_bytes = 1;
  TimeSeriesDatabase ram;
  const MetricId id{"svc", MetricKind::kGcpu, "hot", ""};
  {
    TimeSeriesDatabase db(options);
    for (int i = 0; i < 3000; ++i) {
      db.Write(id, 60 * i, static_cast<double>(i % 29));
      ram.Write(id, 60 * i, static_cast<double>(i % 29));
    }
    db.SealBefore(60 * 2500);
    ram.SealBefore(60 * 2500);
  }
  TimeSeriesDatabase db(options);
  ExpectSameContent(db, ram);
}

// ---------------------------------------------------------------------------
// Find() materialized-cache budget: bytes are accounted and swept at
// write-phase boundaries when over budget.
// ---------------------------------------------------------------------------

TEST(MaterializedCacheTest, BudgetSweepDropsCachesAtWritePhaseBoundary) {
  TsdbOptions options;
  options.shard_count = 1;
  options.seal_chunk_points = 256;
  options.materialized_budget_bytes = 1024;
  TimeSeriesDatabase db(options);
  const MetricId sealed{"svc", MetricKind::kGcpu, "sealed", ""};
  const MetricId other{"svc", MetricKind::kGcpu, "other", ""};
  for (int i = 0; i < 2000; ++i) {
    db.Write(sealed, 60 * i, static_cast<double>(i));
  }
  db.Write(other, 0, 1.0);
  db.SealBefore(60 * 2000);  // Whole series sealed: Find must materialize.
  EXPECT_EQ(db.memory_stats().materialized_bytes, 0u);

  const TimeSeries* series = db.Find(sealed);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2000u);
  EXPECT_EQ(db.memory_stats().materialized_bytes, 2000u * 16u);

  // Over budget: the next write-phase boundary sweeps every cache.
  db.Write(other, 60, 2.0);
  EXPECT_EQ(db.memory_stats().materialized_bytes, 0u);

  // The cache rebuilds on demand, correct and re-accounted.
  series = db.Find(sealed);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2000u);
  EXPECT_EQ(series->values()[123], 123.0);
  EXPECT_EQ(db.memory_stats().materialized_bytes, 2000u * 16u);
}

TEST(MaterializedCacheTest, UnboundedBudgetNeverSweeps) {
  TsdbOptions options;
  options.shard_count = 1;
  options.seal_chunk_points = 256;  // Budget 0 = unbounded.
  TimeSeriesDatabase db(options);
  const MetricId sealed{"svc", MetricKind::kGcpu, "sealed", ""};
  const MetricId other{"svc", MetricKind::kGcpu, "other", ""};
  for (int i = 0; i < 1000; ++i) {
    db.Write(sealed, 60 * i, static_cast<double>(i));
  }
  db.SealBefore(60 * 1000);
  ASSERT_NE(db.Find(sealed), nullptr);
  EXPECT_EQ(db.memory_stats().materialized_bytes, 1000u * 16u);
  db.Write(other, 0, 1.0);  // Unrelated write: cache intact.
  EXPECT_EQ(db.memory_stats().materialized_bytes, 1000u * 16u);
}

// ---------------------------------------------------------------------------
// Detection byte-identity: disk tier off, on, and under an eviction budget
// must produce identical reports, funnels, quarantine, and tail_hits at
// scan_threads 1/2/8.
// ---------------------------------------------------------------------------

constexpr Duration kTick = Minutes(10);
constexpr TimePoint kFirstRun = Hours(30);
constexpr Duration kRunStep = Hours(3);
constexpr TimePoint kDataEnd = Days(2);

ServiceConfig TierServiceConfig() {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 20;
  config.call_graph.num_subroutines = 16;
  config.sampling.samples_per_bucket = 500000;
  config.sampling.bucket_width = kTick;
  config.tick = kTick;
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.seasonal_load_amplitude = 0.0;
  config.emit_process_cpu = false;
  config.seed = 7;
  return config;
}

PipelineOptions DetectOptions(int scan_threads) {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = kRunStep;
  options.scan_threads = scan_threads;
  return options;
}

std::string DetectableLeaf(const ServiceConfig& config) {
  const ServiceSimulator probe(config);
  const CallGraph& graph = probe.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  for (size_t i = 0; i < graph.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (graph.edges(id).empty() && reach[i] >= 0.003 && reach[i] <= 0.2) {
      return graph.node(id).name;
    }
  }
  return graph.node(0).name;
}

std::string Serialize(const std::vector<Regression>& reports) {
  std::string out;
  for (const Regression& report : reports) {
    out += ToJsonLine(report);
    out += '\n';
  }
  return out;
}

std::string RenderPipelineState(Pipeline& pipeline) {
  std::string out = RenderFunnel(pipeline.short_term_funnel(), pipeline.long_term_funnel(),
                                 /*long_term_enabled=*/true);
  out += RenderQuarantine(pipeline.quarantine_report(), /*max_rows=*/0);
  return out;
}

struct TierRun {
  std::string rendered;
  uint64_t tail_hits = 0;
  uint64_t mapped_decodes = 0;
};

// Interleaved ingest / seal / detect over one deterministic fleet. The seal
// boundary trails as_of by 12h, inside the historical window, so every run
// reads both the raw tail and sealed chunks (resident or mapped).
TierRun RunTierScenario(const TsdbOptions& tsdb, int scan_threads) {
  const ServiceConfig config = TierServiceConfig();
  FleetSimulator fleet(tsdb);
  fleet.AddService(config);
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = config.name;
  event.subroutine = DetectableLeaf(config);
  event.start = Hours(36);
  event.magnitude = 0.5;
  fleet.InjectEvent(event);

  Pipeline pipeline(&fleet.db(), nullptr, nullptr, DetectOptions(scan_threads));
  FleetIngestOptions ingest;
  ingest.threads = 2;
  ingest.flush_points = 1024;

  TierRun result;
  TimePoint ingested = -kTick;
  for (TimePoint as_of = kFirstRun; as_of <= kDataEnd; as_of += kRunStep) {
    fleet.Run(ingested, as_of, ingest);
    ingested = as_of;
    fleet.db().SealBefore(as_of - Hours(12));
    result.rendered += Serialize(pipeline.RunAt(config.name, as_of));
  }
  result.rendered += RenderPipelineState(pipeline);
  result.tail_hits = fleet.db().scan_stats().tail_hits;
  result.mapped_decodes = fleet.db().durable_stats().mapped_readback_decodes;
  return result;
}

TEST(DurableDetectionTest, OutputByteIdenticalAcrossTiersAndThreads) {
  std::vector<TierRun> ram_runs;
  for (const int threads : {1, 2, 8}) {
    const ScopedDir durable_dir("tier_on");
    const ScopedDir budget_dir("tier_budget");

    const TierRun ram = RunTierScenario(TsdbOptions{}, threads);
    TsdbOptions durable;
    durable.durable.directory = durable_dir.path;
    durable.durable.fsync = false;
    const TierRun on = RunTierScenario(durable, threads);
    TsdbOptions budget = durable;
    budget.durable.directory = budget_dir.path;
    budget.durable.resident_sealed_budget_bytes = 1;
    const TierRun evicting = RunTierScenario(budget, threads);

    EXPECT_EQ(on.rendered, ram.rendered) << "scan_threads=" << threads;
    EXPECT_EQ(evicting.rendered, ram.rendered) << "scan_threads=" << threads;
    // The zero-copy tail fast path is untouched by the tier: same boundaries,
    // same tail hits — eviction only changes WHERE sealed decodes read from.
    EXPECT_EQ(on.tail_hits, ram.tail_hits) << "scan_threads=" << threads;
    EXPECT_EQ(evicting.tail_hits, ram.tail_hits) << "scan_threads=" << threads;
    EXPECT_EQ(on.mapped_decodes, 0u);  // No budget pressure: nothing evicted.
    EXPECT_GT(evicting.mapped_decodes, 0u) << "eviction path not exercised";
    ram_runs.push_back(ram);
  }
  EXPECT_EQ(ram_runs[1].rendered, ram_runs[0].rendered);
  EXPECT_EQ(ram_runs[2].rendered, ram_runs[0].rendered);
}

// ---------------------------------------------------------------------------
// Crash recovery: a writer SIGKILL'd on a deterministic marker schedule, then
// reopened, must converge to detection output byte-identical to a run that
// was never interrupted. FBD_DURABLE_KILL_CYCLES (default 3; the chaos CI job
// uses 20) sets how many kill/reopen cycles precede the final complete pass.
// ---------------------------------------------------------------------------

constexpr long kDoneMarker = 1 << 20;

int CrashKillCycles() {
  const char* env = std::getenv("FBD_DURABLE_KILL_CYCLES");
  const int cycles = env != nullptr ? std::atoi(env) : 3;
  return std::max(1, cycles);
}

int CrashSegments() { return std::max(6, CrashKillCycles() + 4); }
Duration CrashSegment() { return Hours(6); }
TimePoint CrashEnd() { return CrashSegments() * CrashSegment(); }

long ReadMarker(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return -1;
  }
  long value = -1;
  if (std::fscanf(f, "%ld", &value) != 1) {
    value = -1;
  }
  std::fclose(f);
  return value;
}

void WriteMarkerAtomic(const std::string& path, long value) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    _exit(41);
  }
  std::fprintf(f, "%ld\n", value);
  std::fclose(f);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    _exit(42);
  }
}

std::unique_ptr<FleetSimulator> BuildCrashReferenceFleet() {
  auto fleet = std::make_unique<FleetSimulator>();
  const ServiceConfig config = TierServiceConfig();
  fleet->AddService(config);
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = config.name;
  event.subroutine = DetectableLeaf(config);
  event.start = CrashEnd() - Hours(10);
  event.magnitude = 0.5;
  fleet->InjectEvent(event);
  fleet->Run(-kTick, CrashEnd());
  return fleet;
}

TsdbOptions CrashDbOptions(const std::string& dir) {
  TsdbOptions options;
  options.shard_count = 4;
  options.seal_chunk_points = 64;
  options.durable.directory = dir;
  // Small group threshold: many auto-commits per segment, so a kill lands
  // between (or inside) real commit frames, not only at segment boundaries.
  options.durable.group_commit_bytes = 4096;
  options.durable.fsync = false;  // Kill-safety, not power-safety: the page
                                  // cache survives process death.
  return options;
}

// Compact description of how two strictly-increasing timestamp vectors
// differ, as collapsed runs — readable even for multi-hundred-point series.
std::string DescribeTimestampDiff(const std::vector<TimePoint>& got,
                                  const std::vector<TimePoint>& want) {
  const auto collapse = [](const std::vector<TimePoint>& ts) {
    std::string out;
    size_t i = 0;
    while (i < ts.size()) {
      size_t j = i;
      while (j + 1 < ts.size() && ts[j + 1] == ts[j] + kTick) {
        ++j;
      }
      if (!out.empty()) {
        out += ", ";
      }
      out += "[" + std::to_string(ts[i]) + ".." + std::to_string(ts[j]) + "]x" +
             std::to_string(j - i + 1);
      i = j + 1;
    }
    return out.empty() ? "(none)" : out;
  };
  std::vector<TimePoint> missing;
  std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                      std::back_inserter(missing));
  std::vector<TimePoint> extra;
  std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                      std::back_inserter(extra));
  return "missing " + collapse(missing) + "; extra " + collapse(extra);
}

// Raw on-disk story of a durable directory, for diagnosing recovery bugs:
// every chunk record and WAL frame, in file order, with symbol names resolved.
void DumpDurableDir(const std::string& dir, int shard_count) {
  std::vector<std::string> names;  // Dense ids; id 0 is the pre-interned "".
  {
    WriteAheadLog log;
    WriteAheadLog::ReplayHandler handler;
    handler.symbol = [&](std::string_view name) { names.emplace_back(name); };
    (void)log.Open(dir + "/symbols.log", handler, false);
  }
  const auto name_of = [&](uint32_t id) -> std::string {
    if (id == 0) {
      return "";
    }
    return id - 1 < names.size() ? names[id - 1] : "?" + std::to_string(id);
  };
  const auto series_of = [&](const InternedMetricId& id) {
    return name_of(id.service) + "/" + name_of(id.entity);
  };
  for (int i = 0; i < shard_count; ++i) {
    const std::string suffix = "." + std::to_string(i);
    std::fprintf(stderr, "== shard %d chunks ==\n", i);
    ChunkStore chunks;
    (void)chunks.Open(
        dir + "/chunks" + suffix,
        [&](const ChunkStore::RestoredChunk& chunk) {
          std::fprintf(stderr, "  chunk %s [%lld..%lld]x%u off=%llu\n",
                       series_of(chunk.id).c_str(),
                       static_cast<long long>(chunk.first),
                       static_cast<long long>(chunk.last), chunk.count,
                       static_cast<unsigned long long>(chunk.payload_offset));
        },
        false);
    std::fprintf(stderr, "== shard %d wal ==\n", i);
    WriteAheadLog wal;
    WriteAheadLog::ReplayHandler handler;
    handler.points = [&](const InternedMetricId& id,
                         std::span<const TimePoint> timestamps,
                         std::span<const double> values) {
      (void)values;
      std::fprintf(stderr, "  pts %s [%lld..%lld]x%zu\n", series_of(id).c_str(),
                   static_cast<long long>(timestamps.front()),
                   static_cast<long long>(timestamps.back()), timestamps.size());
    };
    handler.drop_before = [&](TimePoint cutoff) {
      std::fprintf(stderr, "  drop_before %lld\n", static_cast<long long>(cutoff));
    };
    handler.seal_boundary = [&](TimePoint boundary) {
      std::fprintf(stderr, "  seal_boundary %lld\n",
                   static_cast<long long>(boundary));
    };
    (void)wal.Open(dir + "/wal" + suffix, handler, false);
  }
}

// Re-ingests into `db` whatever suffix of the reference data it is missing,
// segment by segment, sealing and syncing after each. Recovery always yields
// a per-series prefix of the committed appends (whole WAL frames replay in
// append order), so resuming strictly after each series' newest recovered
// point reproduces the uninterrupted database contents exactly — with zero
// duplicate-ingest rejects — no matter where a previous writer was killed.
// `throttle_us` slows ingest (one sleep per series per segment) so a parent
// polling the progress marker can land kills mid-segment, not only at ends.
void IngestSuffixIntoDurable(TimeSeriesDatabase& db, const TimeSeriesDatabase& ref,
                             const std::function<void(int)>& on_segment_durable,
                             unsigned throttle_us = 0) {
  const std::vector<MetricId> ids = ref.ListMetrics();
  std::vector<TimePoint> resume(ids.size(), std::numeric_limits<TimePoint>::min());
  TimePoint progress = std::numeric_limits<TimePoint>::max();
  for (size_t i = 0; i < ids.size(); ++i) {
    const TimeSeries* have = db.Find(ids[i]);
    if (have != nullptr && !have->empty()) {
      resume[i] = have->end_time();
    }
    progress = std::min(progress, resume[i]);
  }
  WriteBatch batch(&db);
  for (int s = 0; s < CrashSegments(); ++s) {
    const TimePoint seg_begin = s * CrashSegment();
    const TimePoint seg_end = (s + 1) * CrashSegment();
    for (size_t i = 0; i < ids.size(); ++i) {
      const TimeSeries* src = ref.Find(ids[i]);
      // Segments are half-open [begin, end), except the last which also takes
      // the final point at exactly CrashEnd().
      const TimePoint hi_time = s + 1 == CrashSegments() ? seg_end + 1 : seg_end;
      const auto [lo, hi] =
          src->SliceIndices(std::max(resume[i] + 1, seg_begin), hi_time);
      for (size_t k = lo; k < hi; ++k) {
        batch.Add(ids[i], src->timestamps()[k], src->values()[k]);
      }
      if (throttle_us != 0) {
        usleep(throttle_us);
      }
    }
    batch.Commit();
    const TimePoint boundary = seg_end - Hours(12);
    if (boundary > 0) {
      db.SealBefore(boundary);
    }
    db.SyncDurable();
    if (seg_end > progress && on_segment_durable) {
      on_segment_durable(s);
    }
  }
}

// Child body; never returns. No gtest in here — a forked child must not run
// test machinery.
[[noreturn]] void RunCrashChild(const std::string& dir, const std::string& marker,
                                const TimeSeriesDatabase& ref) {
  {
    TimeSeriesDatabase db(CrashDbOptions(dir));
    IngestSuffixIntoDurable(
        db, ref, [&marker](int segment) { WriteMarkerAtomic(marker, segment); },
        /*throttle_us=*/1500);
  }  // Clean close before declaring completion.
  WriteMarkerAtomic(marker, kDoneMarker);
  _exit(0);
}

TEST(DurableCrashRecoveryTest, KillAndReopenMatchesUninterruptedRun) {
  const ScopedDir dir("crash");
  const std::string marker = dir.path + "/progress.marker";
  const std::unique_ptr<FleetSimulator> ref = BuildCrashReferenceFleet();
  const int cycles = CrashKillCycles();

  int kills = 0;
  bool done = false;
  while (!done) {
    const long prev = ReadMarker(marker);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      RunCrashChild(dir.path, marker, ref->db());
    }
    if (kills >= cycles) {
      // Kill budget spent: let this child run to completion.
      int status = 0;
      ASSERT_EQ(waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "uninterrupted child failed, status=" << status;
      done = ReadMarker(marker) == kDoneMarker;
      ASSERT_TRUE(done);
      break;
    }
    // Wait for the child to commit at least one new segment, then SIGKILL it
    // — the kill races freely into its next ingest, group commit, or seal.
    bool progressed = false;
    for (int poll = 0; poll < 30000 && !progressed && !done; ++poll) {
      const long now = ReadMarker(marker);
      if (now == kDoneMarker) {
        done = true;
        break;
      }
      progressed = now > prev;
      if (!progressed) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, WNOHANG), 0) << "child died unexpectedly";
        usleep(10000);
      }
    }
    if (done) {
      int status = 0;
      ASSERT_EQ(waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
      break;
    }
    ASSERT_TRUE(progressed) << "child made no durable progress";
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ++kills;
    {
      // Core recovery invariant: whatever the kill point, each recovered
      // series is a strict prefix of the uninterrupted data. The suffix
      // resume in the next child depends on exactly this.
      bool violated = false;
      TimeSeriesDatabase check(CrashDbOptions(dir.path));
      for (const MetricId& id : check.ListMetrics()) {
        const TimeSeries* got = check.Find(id);
        const TimeSeries* want = ref->db().Find(id);
        ASSERT_NE(got, nullptr);
        ASSERT_NE(want, nullptr);
        const bool prefix =
            got->timestamps().size() <= want->timestamps().size() &&
            std::equal(got->timestamps().begin(), got->timestamps().end(),
                       want->timestamps().begin()) &&
            std::equal(got->values().begin(), got->values().end(),
                       want->values().begin());
        EXPECT_TRUE(prefix)
            << "after kill " << kills << ", " << id.ToString()
            << " is not a prefix: "
            << DescribeTimestampDiff(got->timestamps(), want->timestamps());
        violated = violated || !prefix;
      }
      if (violated) {
        DumpDurableDir(dir.path,
                       static_cast<int>(CrashDbOptions(dir.path).shard_count));
        FAIL() << "recovery prefix invariant violated after kill " << kills;
      }
    }
  }
  EXPECT_EQ(kills, cycles) << "data exhausted before the kill schedule; "
                              "raise CrashSegments()";

  // Oracle: the never-interrupted database — same data, same seal schedule.
  for (int s = 0; s < CrashSegments(); ++s) {
    const TimePoint boundary = (s + 1) * CrashSegment() - Hours(12);
    if (boundary > 0) {
      ref->db().SealBefore(boundary);
    }
  }
  {
    // Content identity first: a compact per-series timestamp diff localizes a
    // recovery hole far better than a rendered-report mismatch does.
    TimeSeriesDatabase recovered(CrashDbOptions(dir.path));
    ASSERT_EQ(recovered.ListMetrics(), ref->db().ListMetrics());
    for (const MetricId& id : ref->db().ListMetrics()) {
      const TimeSeries* got = recovered.Find(id);
      const TimeSeries* want = ref->db().Find(id);
      ASSERT_NE(got, nullptr);
      ASSERT_NE(want, nullptr);
      EXPECT_TRUE(got->timestamps() == want->timestamps() &&
                  got->values() == want->values())
          << id.ToString() << ": "
          << DescribeTimestampDiff(got->timestamps(), want->timestamps());
    }
  }

  for (const int threads : {1, 2, 8}) {
    Pipeline oracle(&ref->db(), nullptr, nullptr, DetectOptions(threads));
    std::string oracle_rendered = Serialize(oracle.RunAt("svc", CrashEnd()));
    oracle_rendered += RenderPipelineState(oracle);

    TimeSeriesDatabase recovered(CrashDbOptions(dir.path));
    EXPECT_EQ(recovered.durable_stats().recoveries, 1u);
    EXPECT_GT(recovered.durable_stats().recovered_points +
                  recovered.durable_stats().recovered_chunks,
              0u);
    Pipeline pipeline(&recovered, nullptr, nullptr, DetectOptions(threads));
    std::string rendered = Serialize(pipeline.RunAt("svc", CrashEnd()));
    rendered += RenderPipelineState(pipeline);
    EXPECT_EQ(rendered, oracle_rendered) << "scan_threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Self-hosted telemetry: registry snapshots persist as ordinary series, and
// a seeded regression in the pipeline's own latency series is caught by the
// standard scan.
// ---------------------------------------------------------------------------

TEST(TelemetrySinkTest, CountersAndHistogramDeltasRoundTrip) {
  TimeSeriesDatabase db;
  TelemetrySink sink(&db, "fbdetect.self");
  TelemetryRegistry registry(/*enabled=*/true);
  Counter* runs = registry.GetCounter("pipeline.runs");
  Histogram* wall = registry.GetHistogram("pipeline.run.wall_ns");

  runs->Increment();
  wall->Record(100);
  EXPECT_EQ(sink.Persist(registry, 60), 2u);
  runs->Increment();
  EXPECT_EQ(sink.Persist(registry, 120), 1u);  // No recordings: latency gap.
  wall->Record(200);
  wall->Record(400);
  EXPECT_EQ(sink.Persist(registry, 180), 2u);

  // Counters persist as absolute levels every interval.
  const TimeSeries* counter_series =
      db.Find(MetricId{"fbdetect.self", MetricKind::kApplication, "pipeline.runs", ""});
  ASSERT_NE(counter_series, nullptr);
  EXPECT_EQ(counter_series->timestamps(), (std::vector<TimePoint>{60, 120, 180}));
  EXPECT_EQ(counter_series->values(), (std::vector<double>{1.0, 2.0, 2.0}));

  // Histograms persist per-interval delta means; empty intervals are gaps.
  const TimeSeries* latency_series = db.Find(
      MetricId{"fbdetect.self", MetricKind::kLatency, "pipeline.run.wall_ns.mean", ""});
  ASSERT_NE(latency_series, nullptr);
  EXPECT_EQ(latency_series->timestamps(), (std::vector<TimePoint>{60, 180}));
  EXPECT_EQ(latency_series->values(), (std::vector<double>{100.0, 300.0}));
}

TEST(TelemetrySinkTest, SeededLatencyRegressionIsCaughtByStandardScan) {
  TimeSeriesDatabase db;
  TelemetrySink sink(&db, "fbdetect.self");
  TelemetryRegistry registry(/*enabled=*/true);
  Histogram* scan_wall = registry.GetHistogram("pipeline.scan.wall_ns");

  // Two days of 10-minute snapshots; scan latency steps up 20% at 36h — the
  // kind of self-regression the loop exists to catch.
  int tick = 0;
  for (TimePoint t = kTick; t <= Days(2); t += kTick, ++tick) {
    const uint64_t base = t < Hours(36) ? 10000 : 12000;
    for (int sample = 0; sample < 3; ++sample) {
      scan_wall->Record(base + static_cast<uint64_t>((tick * 3 + sample) % 7) * 20);
    }
    sink.Persist(registry, t);
  }

  Pipeline pipeline(&db, nullptr, nullptr, DetectOptions(/*scan_threads=*/2));
  const std::vector<Regression> reports = pipeline.RunPeriod("fbdetect.self", kFirstRun, Days(2));
  bool caught = false;
  for (const Regression& report : reports) {
    if (report.metric.kind == MetricKind::kLatency &&
        report.metric.entity == "pipeline.scan.wall_ns.mean" &&
        std::llabs(report.change_time - Hours(36)) <= Hours(1)) {
      caught = true;
    }
  }
  EXPECT_TRUE(caught) << "self-hosted latency regression not detected:\n"
                      << Serialize(reports);
}

TEST(PipelineSelfHostTest, RunAtPersistsRegistrySnapshots) {
  FleetSimulator fleet;
  fleet.AddService(TierServiceConfig());
  fleet.Run(-kTick, kFirstRun);

  TimeSeriesDatabase self;
  PipelineOptions options = DetectOptions(/*scan_threads=*/1);
  options.telemetry.enabled = true;
  options.telemetry.self_host_db = &self;
  Pipeline pipeline(&fleet.db(), nullptr, nullptr, options);

  pipeline.RunAt("svc", kFirstRun);
  fleet.Run(kFirstRun, kFirstRun + kRunStep);
  pipeline.RunAt("svc", kFirstRun + kRunStep);

  const std::vector<MetricId> ids = self.ListMetrics("fbdetect.self");
  ASSERT_FALSE(ids.empty());
  const TimeSeries* runs =
      self.Find(MetricId{"fbdetect.self", MetricKind::kApplication, "pipeline.runs", ""});
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->timestamps(), (std::vector<TimePoint>{kFirstRun, kFirstRun + kRunStep}));
  EXPECT_EQ(runs->values(), (std::vector<double>{1.0, 2.0}));
}

TEST(PipelineSelfHostTest, SinkMayTargetTheScannedDatabaseItself) {
  FleetSimulator fleet;
  fleet.AddService(TierServiceConfig());
  fleet.Run(-kTick, kFirstRun);

  PipelineOptions options = DetectOptions(/*scan_threads=*/1);
  options.telemetry.enabled = true;
  options.telemetry.self_host_db = &fleet.db();
  Pipeline pipeline(&fleet.db(), nullptr, nullptr, options);

  pipeline.RunAt("svc", kFirstRun);
  fleet.Run(kFirstRun, kFirstRun + kRunStep);
  pipeline.RunAt("svc", kFirstRun + kRunStep);
  EXPECT_FALSE(fleet.db().ListMetrics("fbdetect.self").empty());
  // And the self series are scannable by the standard pipeline, same DB.
  pipeline.RunAt("fbdetect.self", kFirstRun + kRunStep);
}

TEST(DurableTelemetryTest, RuntimeExportCarriesDiskTierGauges) {
  const ScopedDir dir("gauges");
  TsdbOptions tsdb = DurableDbOptions(dir.path);
  FleetSimulator fleet(tsdb);
  fleet.AddService(TierServiceConfig());
  fleet.Run(-kTick, kFirstRun);
  fleet.db().SealBefore(Hours(18));

  PipelineOptions options = DetectOptions(/*scan_threads=*/2);
  options.telemetry.enabled = true;
  Pipeline pipeline(&fleet.db(), nullptr, nullptr, options);
  pipeline.RunAt("svc", kFirstRun);

  const std::string runtime_json = RenderTelemetryJson(pipeline.telemetry(), true);
  for (const char* gauge :
       {"tsdb.durable.group_commits", "tsdb.durable.chunk_file_bytes",
        "tsdb.durable.chunks_persisted", "tsdb.durable.recoveries",
        "tsdb.memory.resident_sealed_bytes", "tsdb.memory.mapped_sealed_bytes"}) {
    EXPECT_NE(runtime_json.find(gauge), std::string::npos) << gauge;
  }
  // The deterministic export is unchanged by the tier.
  const std::string deterministic_json = RenderTelemetryJson(pipeline.telemetry(), false);
  EXPECT_EQ(deterministic_json.find("tsdb.durable."), std::string::npos);
  EXPECT_EQ(deterministic_json.find("tsdb.memory."), std::string::npos);

  // A RAM-only pipeline registers no durable mirrors at all.
  TimeSeriesDatabase ram;
  ram.Write(MetricId{"svc", MetricKind::kGcpu, "a", ""}, 0, 1.0);
  Pipeline ram_pipeline(&ram, nullptr, nullptr, options);
  ram_pipeline.RunAt("svc", kFirstRun);
  const std::string ram_json = RenderTelemetryJson(ram_pipeline.telemetry(), true);
  EXPECT_EQ(ram_json.find("tsdb.durable."), std::string::npos);
}

// ---------------------------------------------------------------------------
// Durable I/O hardening: Rewrite's rename must be made crash-durable by a
// parent-directory fsync, and injected syscall failures must degrade the
// tier to memory-only — never abort, never stop detection.
// ---------------------------------------------------------------------------

struct ScopedIoFailure {
  ~ScopedIoFailure() { durable_io::ClearFailure(); }
};

TEST(WalGroupCommitTest, RewriteFsyncsTheParentDirectory) {
  const ScopedIoFailure guard;
  const ScopedDir dir("walfsync");
  const std::string path = dir.path + "/wal.0";
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, {}, /*fsync=*/true).ok());
  const TimePoint t[] = {TimePoint{60}};
  const double v[] = {1.0};
  wal.BufferPoints(kIdA, t, v);
  ASSERT_TRUE(wal.Commit().ok());

  durable_io::ClearFailure();  // Reset counters; nothing armed yet.
  wal.BufferDropBefore(30);
  ASSERT_TRUE(wal.Rewrite().ok());
  // Exactly two fsyncs: the rewritten file's frame, then the directory entry
  // — without the latter a crash after the rename can resurrect the old log.
  EXPECT_EQ(durable_io::CallCount(durable_io::Op::kFsync), 2u);
  EXPECT_EQ(durable_io::CallCount(durable_io::Op::kRename), 1u);

  // Regression tripwire: fail the SECOND fsync (the directory one). If the
  // directory fsync were ever dropped, this Rewrite would spuriously
  // succeed.
  durable_io::SetFailure(durable_io::Op::kFsync, 2);
  wal.BufferDropBefore(40);
  EXPECT_FALSE(wal.Rewrite().ok());
  EXPECT_EQ(durable_io::InjectedFailureCount(durable_io::Op::kFsync), 1u);
  durable_io::ClearFailure();

  // The log stays usable after the failed directory fsync (the caller is
  // expected to degrade; the WAL itself tracks the renamed file).
  wal.BufferPoints(kIdA, t, v);
  EXPECT_TRUE(wal.Commit().ok());
}

TEST(DurableDegradationTest, StickyWriteFailureDegradesToMemoryWithoutAbort) {
  const ScopedIoFailure guard;
  const ScopedDir dir("degrade");
  TsdbOptions tsdb;
  tsdb.durable.directory = dir.path;
  tsdb.durable.fsync = false;

  TimeSeriesDatabase db(tsdb);
  const MetricId id{"svc", MetricKind::kLatency, "endpoint", ""};
  // Two days of 10-minute buckets with a 20% step at 36h — detectable even
  // though the durable tier dies partway through the stream.
  int tick = 0;
  for (TimePoint at = kTick; at <= kDataEnd; at += kTick, ++tick) {
    const double base = at < Hours(36) ? 10000.0 : 12000.0;
    db.Write(id, at, base + static_cast<double>(tick % 7) * 20.0);
    if (at == Hours(20)) {
      // The disk dies mid-stream: every write syscall from here on fails.
      durable_io::SetFailure(durable_io::Op::kWrite, 1, /*sticky=*/true);
      db.SealBefore(Hours(12));  // Forces durable traffic into the failure.
    }
  }
  db.SealBefore(Hours(40));
  db.SyncDurable();  // Best effort against the dead disk; must not abort.

  // The tier degraded instead of aborting, and counted why.
  EXPECT_TRUE(db.durable_degraded());
  EXPECT_GT(db.durable_stats().io_errors, 0u);
  EXPECT_GT(durable_io::InjectedFailureCount(durable_io::Op::kWrite), 0u);

  // Detection still runs over the in-memory data and catches the step.
  PipelineOptions options = DetectOptions(/*scan_threads=*/2);
  options.telemetry.enabled = true;
  Pipeline pipeline(&db, nullptr, nullptr, options);
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", kFirstRun, kDataEnd);
  bool caught = false;
  for (const Regression& report : reports) {
    if (report.metric.kind == MetricKind::kLatency &&
        std::llabs(report.change_time - Hours(36)) <= Hours(2)) {
      caught = true;
    }
  }
  EXPECT_TRUE(caught) << "regression lost to durable degradation:\n"
                      << Serialize(reports);

  // The pipeline's runtime telemetry mirrors the degradation, so /metrics
  // surfaces it fleet-wide.
  EXPECT_GT(pipeline.telemetry().GetCounter("tsdb.durable.io_errors")->value(), 0u);
  EXPECT_EQ(pipeline.telemetry().GetCounter("tsdb.durable.degraded")->value(), 1u);
}

}  // namespace
}  // namespace fbdetect
