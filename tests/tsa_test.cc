#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/stats/descriptive.h"
#include "src/tsa/changepoint_backend.h"
#include "src/tsa/cusum.h"
#include "src/tsa/dp_changepoint.h"
#include "src/tsa/e_divisive.h"
#include "src/tsa/em_changepoint.h"
#include "src/tsa/loess.h"
#include "src/tsa/sax.h"
#include "src/tsa/stl.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// SAX.
// ---------------------------------------------------------------------------

TEST(SaxTest, PaperExampleAbcdcba) {
  // §5.2.2: [1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1] with four buckets where 'a'
  // is [1, 2) etc. encodes as "abcdcba". Reference [1, 5) gives those exact
  // bucket edges with 4 buckets... our encoder derives the range from data
  // (min 1.1, max 4.2), so supply an explicit reference spanning [1.0, 5.0).
  const std::vector<double> reference = {1.0, 2.0, 3.0, 4.0, 4.9999};
  SaxConfig config;
  config.num_buckets = 4;
  config.min_bucket_fraction = 0.0;
  const SaxEncoder encoder(reference, config);
  const std::vector<double> series = {1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1};
  EXPECT_EQ(encoder.EncodeSeries(series), "abcdcba");
}

TEST(SaxTest, ValuesOutsideRangeClampToEdgeBuckets) {
  const std::vector<double> reference = {0.0, 10.0};
  SaxConfig config;
  config.num_buckets = 5;
  const SaxEncoder encoder(reference, config);
  EXPECT_EQ(encoder.Encode(-100.0), 'a');
  EXPECT_EQ(encoder.Encode(100.0), 'e');
}

TEST(SaxTest, ConstantReferenceCollapsesToOneBucket) {
  const std::vector<double> reference(10, 3.0);
  const SaxEncoder encoder(reference, SaxConfig{});
  EXPECT_EQ(encoder.Encode(3.0), 'a');
  EXPECT_EQ(encoder.Encode(-5.0), 'a');
  EXPECT_EQ(encoder.num_buckets(), 1);
}

TEST(SaxTest, ValidityRuleFiltersRareBuckets) {
  // 97 points near 0 and 3 outliers near 1: with 3% threshold over 100
  // points, the outlier bucket has exactly 3 (= 3%) -> valid; with a higher
  // threshold it becomes invalid.
  std::vector<double> reference(97, 0.05);
  reference.insert(reference.end(), {0.95, 0.96, 0.97});
  SaxConfig strict;
  strict.num_buckets = 10;
  strict.min_bucket_fraction = 0.05;
  const SaxEncoder strict_encoder(reference, strict);
  EXPECT_FALSE(strict_encoder.IsValidLetter('j'));
  EXPECT_TRUE(strict_encoder.IsValidLetter('a'));

  SaxConfig lenient = strict;
  lenient.min_bucket_fraction = 0.03;
  const SaxEncoder lenient_encoder(reference, lenient);
  EXPECT_TRUE(lenient_encoder.IsValidLetter('j'));
}

TEST(SaxTest, InvalidFraction) {
  std::vector<double> reference(100, 0.0);
  for (int i = 0; i < 50; ++i) {
    reference.push_back(1.0);
  }
  SaxConfig config;
  config.num_buckets = 2;
  config.min_bucket_fraction = 0.03;
  const SaxEncoder encoder(reference, config);
  EXPECT_DOUBLE_EQ(encoder.InvalidFraction("ab"), 0.0);
  EXPECT_DOUBLE_EQ(encoder.InvalidFraction(""), 1.0);
}

TEST(SaxTest, LargestValidLetter) {
  std::vector<double> reference;
  for (int i = 0; i < 100; ++i) {
    reference.push_back(static_cast<double>(i % 10));
  }
  SaxConfig config;
  config.num_buckets = 10;
  const SaxEncoder encoder(reference, config);
  EXPECT_EQ(encoder.LargestValidLetter(), 'j');
}

// Property: encoding is monotone — larger values never map to smaller letters.
class SaxMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(SaxMonotonicityTest, EncodingIsMonotone) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> reference;
  for (int i = 0; i < 200; ++i) {
    reference.push_back(rng.Normal(0.0, 5.0));
  }
  SaxConfig config;
  config.num_buckets = 20;
  const SaxEncoder encoder(reference, config);
  double previous = -100.0;
  for (double v = -100.0; v <= 100.0; v += 0.5) {
    EXPECT_GE(encoder.Encode(v), encoder.Encode(previous));
    previous = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaxMonotonicityTest, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Loess / STL.
// ---------------------------------------------------------------------------

TEST(LoessTest, ReproducesLineExactly) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(2.0 + 0.3 * static_cast<double>(i));
  }
  const std::vector<double> smoothed = LoessSmooth(values, 11);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(smoothed[i], values[i], 1e-9);
  }
}

TEST(LoessTest, SmoothsNoise) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(5.0 + rng.Normal(0.0, 1.0));
  }
  const std::vector<double> smoothed = LoessSmooth(values, 41);
  EXPECT_LT(SampleVariance(smoothed), SampleVariance(values) / 4.0);
}

TEST(LoessTest, HandlesDegenerateInputs) {
  EXPECT_TRUE(LoessSmooth({}, 5).empty());
  EXPECT_EQ(LoessSmooth(std::vector<double>{7.0}, 5), (std::vector<double>{7.0}));
}

TEST(StlTest, ComponentsSumToInput) {
  Rng rng(12);
  std::vector<double> values;
  const size_t period = 24;
  for (size_t i = 0; i < period * 10; ++i) {
    values.push_back(10.0 + 0.01 * static_cast<double>(i) +
                     2.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
                     rng.Normal(0.0, 0.2));
  }
  const Decomposition stl = StlDecompose(values, period);
  ASSERT_TRUE(stl.valid);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(stl.seasonal[i] + stl.trend[i] + stl.residual[i], values[i], 1e-9);
  }
}

TEST(StlTest, RecoversSeasonalAmplitude) {
  std::vector<double> values;
  const size_t period = 12;
  for (size_t i = 0; i < period * 20; ++i) {
    values.push_back(5.0 + 3.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / period));
  }
  const Decomposition stl = StlDecompose(values, period);
  ASSERT_TRUE(stl.valid);
  // Interior seasonal component should reach close to +-3.
  const std::span<const double> interior(stl.seasonal.data() + period * 2,
                                         stl.seasonal.size() - period * 4);
  EXPECT_GT(Max(interior), 2.5);
  EXPECT_LT(Min(interior), -2.5);
  // Residual should be small in the interior.
  const std::span<const double> res(stl.residual.data() + period * 2,
                                    stl.residual.size() - period * 4);
  EXPECT_LT(SampleStdDev(res), 0.5);
}

TEST(StlTest, TooShortSeriesIsInvalid) {
  const std::vector<double> values(10, 1.0);
  const Decomposition stl = StlDecompose(values, 12);
  EXPECT_FALSE(stl.valid);
  // Everything stays in trend.
  EXPECT_EQ(stl.trend, values);
}

TEST(StlTest, TrendFollowsLevelShiftSmoothly) {
  std::vector<double> values;
  const size_t period = 8;
  for (size_t i = 0; i < period * 16; ++i) {
    const double level = i < period * 8 ? 1.0 : 2.0;
    values.push_back(level + 0.3 * std::sin(2.0 * M_PI * static_cast<double>(i) / period));
  }
  const Decomposition stl = StlDecompose(values, period);
  ASSERT_TRUE(stl.valid);
  EXPECT_LT(stl.trend[period * 2], 1.3);
  EXPECT_GT(stl.trend[period * 14], 1.7);
}

TEST(MovingAverageTest, DecomposesSeasonalSeries) {
  std::vector<double> values;
  const size_t period = 6;
  for (size_t i = 0; i < period * 10; ++i) {
    values.push_back(4.0 + std::sin(2.0 * M_PI * static_cast<double>(i) / period));
  }
  const Decomposition ma = MovingAverageDecompose(values, period);
  ASSERT_TRUE(ma.valid);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(ma.seasonal[i] + ma.trend[i] + ma.residual[i], values[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// CUSUM.
// ---------------------------------------------------------------------------

TEST(CusumTest, LocatesCleanStep) {
  std::vector<double> values(100, 1.0);
  for (size_t i = 60; i < 100; ++i) {
    values[i] = 2.0;
  }
  const CusumResult result = CusumLocate(values);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.change_point, 60u);
  EXPECT_DOUBLE_EQ(result.mean_before, 1.0);
  EXPECT_DOUBLE_EQ(result.mean_after, 2.0);
}

TEST(CusumTest, ConstantSeriesNotFound) {
  const std::vector<double> values(50, 3.0);
  EXPECT_FALSE(CusumLocate(values).found);
}

TEST(CusumTest, TooShortNotFound) {
  EXPECT_FALSE(CusumLocate(std::vector<double>{1.0, 2.0, 3.0}, 2).found);
}

TEST(CusumTest, PathEndsNearZero) {
  Rng rng(13);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(5.0, 1.0));
  }
  const std::vector<double> path = CusumPath(values);
  EXPECT_NEAR(path.back(), 0.0, 1e-9);  // Sum of deviations from the mean.
}

// ---------------------------------------------------------------------------
// CUSUM + EM iterative change-point detection.
// ---------------------------------------------------------------------------

struct EmCase {
  double magnitude;
  double noise;
  bool expect_found;
};

class EmChangePointTest : public ::testing::TestWithParam<EmCase> {};

TEST_P(EmChangePointTest, FindsPlantedStepWhenDetectable) {
  const EmCase c = GetParam();
  Rng rng(14);
  std::vector<double> values;
  const size_t n = 200;
  const size_t planted = 120;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(rng.Normal(i < planted ? 1.0 : 1.0 + c.magnitude, c.noise));
  }
  const ChangePoint result = DetectChangePoint(values);
  EXPECT_EQ(result.found, c.expect_found)
      << "magnitude=" << c.magnitude << " noise=" << c.noise;
  if (result.found && c.expect_found) {
    EXPECT_NEAR(static_cast<double>(result.index), static_cast<double>(planted), 8.0);
    EXPECT_GT(result.delta, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, EmChangePointTest,
                         ::testing::Values(EmCase{1.0, 0.1, true}, EmCase{0.5, 0.1, true},
                                           EmCase{0.2, 0.05, true}, EmCase{1.0, 0.5, true},
                                           EmCase{0.0, 0.1, false}));

TEST(EmChangePointTest, RespectsSignificanceLevel) {
  Rng rng(15);
  // Pure noise: across many trials, false positives should be rare at 0.01.
  int false_positives = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> values;
    for (int i = 0; i < 100; ++i) {
      values.push_back(rng.Normal(0.0, 1.0));
    }
    if (DetectChangePoint(values).found) {
      ++false_positives;
    }
  }
  // The EM loop picks the best split, inflating the nominal level; it still
  // must reject the vast majority of pure-noise series.
  EXPECT_LT(false_positives, 30);
}

TEST(EmChangePointTest, ShortSeriesNotFound) {
  const std::vector<double> values = {1.0, 2.0, 1.0};
  EXPECT_FALSE(DetectChangePoint(values).found);
}

TEST(EmChangePointTest, ConvergesWithinBudget) {
  Rng rng(16);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(rng.Normal(i < 150 ? 0.0 : 1.0, 0.3));
  }
  ChangePointConfig config;
  config.max_iterations = 50;
  const ChangePoint result = DetectChangePoint(values, config);
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.iterations_used, 10);  // Should converge fast.
}

TEST(EmChangePointTest, LargeOffsetBaselineKeepsSplit) {
  // Catastrophic-cancellation regression test. SplitRss used the raw
  // Σx² − (Σx)²/n prefix form: at a counter-magnitude baseline offset the
  // two terms agree to ~all 53 bits and their difference is rounding noise,
  // so the EM E-step wandered off the true split (empirically, 29/30 seeds
  // diverged at offset 1e16 with this signal). RSS is shift-invariant, so
  // after centering at the grand mean the detected split must not depend on
  // the offset at all.
  const size_t n = 512;
  const size_t planted = 320;
  const double delta = 5e8;   // Step height.
  const double sigma = 2.5e8; // Noise scale: SNR 2, comfortably detectable.
  Rng rng(941);
  std::vector<double> noise;
  for (size_t i = 0; i < n; ++i) {
    noise.push_back(rng.Normal(0.0, sigma));
  }
  size_t index_at_zero = 0;
  for (const double offset : {0.0, 1e12, 1e16}) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = offset + (i < planted ? 0.0 : delta) + noise[i];
    }
    const ChangePoint result = DetectChangePoint(values);
    ASSERT_TRUE(result.found) << "offset=" << offset;
    if (offset == 0.0) {
      index_at_zero = result.index;
      EXPECT_NEAR(static_cast<double>(result.index), static_cast<double>(planted), 8.0);
    } else {
      // At offset 1e16 the values themselves quantize to ~2-ulp grid, which
      // may tip a near-tie between adjacent splits; allow 1 point of slack.
      EXPECT_NEAR(static_cast<double>(result.index), static_cast<double>(index_at_zero), 1.0)
          << "offset=" << offset;
    }
  }
}

// ---------------------------------------------------------------------------
// DP change-point search.
// ---------------------------------------------------------------------------

TEST(DpChangePointTest, SingleSplitMinimizesVariance) {
  std::vector<double> values(40, 0.0);
  for (size_t i = 25; i < 40; ++i) {
    values[i] = 10.0;
  }
  EXPECT_EQ(BestSingleSplit(values), 25u);
}

TEST(DpChangePointTest, TwoChangePoints) {
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) {
    values.push_back(0.0);
  }
  for (int i = 0; i < 30; ++i) {
    values.push_back(5.0);
  }
  for (int i = 0; i < 30; ++i) {
    values.push_back(-3.0);
  }
  const Segmentation seg = DpSegment(values, 2);
  ASSERT_TRUE(seg.valid);
  ASSERT_EQ(seg.change_points.size(), 2u);
  EXPECT_EQ(seg.change_points[0], 30u);
  EXPECT_EQ(seg.change_points[1], 60u);
  EXPECT_NEAR(seg.total_cost, 0.0, 1e-9);
}

TEST(DpChangePointTest, InfeasibleSegmentationInvalid) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_FALSE(DpSegment(values, 3, 2).valid);
}

TEST(DpChangePointTest, ZeroChangesReturnsWholeSeriesCost) {
  const std::vector<double> values = {1.0, 3.0, 1.0, 3.0};
  const Segmentation seg = DpSegment(values, 0);
  ASSERT_TRUE(seg.valid);
  EXPECT_TRUE(seg.change_points.empty());
  EXPECT_NEAR(seg.total_cost, 4.0, 1e-9);  // Sum of squared deviations from 2.
}

TEST(DpChangePointTest, RespectsMinSegment) {
  std::vector<double> values(20, 0.0);
  values[19] = 100.0;  // Tempting split at 19 violates min_segment=5.
  const Segmentation seg = DpSegment(values, 1, 5);
  ASSERT_TRUE(seg.valid);
  EXPECT_GE(seg.change_points[0], 5u);
  EXPECT_LE(seg.change_points[0], 15u);
}

// ---------------------------------------------------------------------------
// PELT.
// ---------------------------------------------------------------------------

TEST(PeltTest, FindsTwoCleanChanges) {
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) values.push_back(0.0);
  for (int i = 0; i < 30; ++i) values.push_back(5.0);
  for (int i = 0; i < 30; ++i) values.push_back(-3.0);
  const Segmentation seg = PeltSegment(values, 1.0);
  ASSERT_TRUE(seg.valid);
  ASSERT_EQ(seg.change_points.size(), 2u);
  EXPECT_EQ(seg.change_points[0], 30u);
  EXPECT_EQ(seg.change_points[1], 60u);
  EXPECT_NEAR(seg.total_cost, 0.0, 1e-6);
}

TEST(PeltTest, ConstantSeriesHasNoChanges) {
  const std::vector<double> values(50, 3.0);
  const Segmentation seg = PeltSegment(values, 1.0);
  ASSERT_TRUE(seg.valid);
  EXPECT_TRUE(seg.change_points.empty());
}

TEST(PeltTest, LargePenaltySuppressesAllChanges) {
  Rng rng(21);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(i < 50 ? 0.0 : 0.3, 1.0));
  }
  const Segmentation seg = PeltSegment(values, 1e9);
  ASSERT_TRUE(seg.valid);
  EXPECT_TRUE(seg.change_points.empty());
}

TEST(PeltTest, PrunedSearchMatchesExhaustiveDp) {
  // PELT is exact despite pruning: for whatever number of change points it
  // settles on, its (penalty-free) cost must equal the exhaustive DP optimum
  // for that same count. Run over several noisy multi-step series.
  for (const uint64_t seed : {31u, 32u, 33u}) {
    Rng rng(seed);
    std::vector<double> values;
    for (int i = 0; i < 120; ++i) {
      const double level = (i < 40) ? 0.0 : (i < 80 ? 2.0 : -1.0);
      values.push_back(rng.Normal(level, 0.5));
    }
    const double penalty = 2.0 * 0.25 * std::log(120.0);  // BIC-ish, sigma^2 = 0.25.
    const Segmentation pelt = PeltSegment(values, penalty);
    ASSERT_TRUE(pelt.valid) << "seed=" << seed;
    ASSERT_FALSE(pelt.change_points.empty()) << "seed=" << seed;
    const Segmentation dp = DpSegment(values, pelt.change_points.size());
    ASSERT_TRUE(dp.valid) << "seed=" << seed;
    EXPECT_NEAR(pelt.total_cost, dp.total_cost, 1e-6) << "seed=" << seed;
    EXPECT_EQ(pelt.change_points, dp.change_points) << "seed=" << seed;
  }
}

TEST(PeltTest, TooShortSeriesInvalid) {
  EXPECT_FALSE(PeltSegment(std::vector<double>{1.0}, 1.0, 2).valid);
}

// ---------------------------------------------------------------------------
// E-divisive.
// ---------------------------------------------------------------------------

TEST(EDivisiveTest, LocatesCleanStep) {
  Rng rng(41);
  std::vector<double> values;
  const size_t planted = 70;
  for (size_t i = 0; i < 120; ++i) {
    values.push_back(rng.Normal(i < planted ? 0.0 : 1.0, 0.2));
  }
  const EDivisiveResult result = EDivisiveSingleSplit(values);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(static_cast<double>(result.index), static_cast<double>(planted), 4.0);
  EXPECT_GT(result.statistic, 0.0);
}

TEST(EDivisiveTest, DetectsVarianceChangeWithoutMeanShift) {
  // Energy distance reacts to any distributional change; a mean-based
  // detector is blind to this series (both halves have mean 0).
  Rng rng(42);
  std::vector<double> values;
  for (size_t i = 0; i < 200; ++i) {
    values.push_back(rng.Normal(0.0, i < 100 ? 0.1 : 1.5));
  }
  const EDivisiveResult result = EDivisiveSingleSplit(values);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(static_cast<double>(result.index), 100.0, 10.0);
}

TEST(EDivisiveTest, PureNoiseNotSignificant) {
  Rng rng(43);
  std::vector<double> values;
  for (size_t i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(0.0, 1.0));
  }
  const EDivisiveResult result = EDivisiveSingleSplit(values);
  EXPECT_FALSE(result.found);
  EXPECT_GE(result.p_value, 0.01);
}

TEST(EDivisiveTest, ConstantSeriesNotFound) {
  const std::vector<double> values(64, 2.0);
  const EDivisiveResult result = EDivisiveSingleSplit(values);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.index, 0u);
}

TEST(EDivisiveTest, DeterministicAcrossCalls) {
  // The permutation test uses a fixed seed: repeated calls must agree
  // bit-for-bit (the scan path's determinism contract).
  Rng rng(44);
  std::vector<double> values;
  for (size_t i = 0; i < 90; ++i) {
    values.push_back(rng.Normal(i < 45 ? 0.0 : 0.6, 0.3));
  }
  const EDivisiveResult first = EDivisiveSingleSplit(values);
  const EDivisiveResult second = EDivisiveSingleSplit(values);
  EXPECT_EQ(first.found, second.found);
  EXPECT_EQ(first.index, second.index);
  EXPECT_EQ(first.statistic, second.statistic);
  EXPECT_EQ(first.p_value, second.p_value);
}

// ---------------------------------------------------------------------------
// Change-point backend registry.
// ---------------------------------------------------------------------------

constexpr const char* kBuiltinBackends[] = {"bocpd", "cusum_em", "e_divisive", "pelt"};

TEST(ChangePointBackendTest, RegistryProvidesAllBuiltins) {
  const std::vector<std::string> names = ChangePointBackendNames();
  for (const char* builtin : kBuiltinBackends) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << "missing builtin: " << builtin;
    const auto backend = MakeChangePointBackend(builtin);
    ASSERT_NE(backend, nullptr) << builtin;
    EXPECT_EQ(backend->name(), builtin);
  }
}

TEST(ChangePointBackendTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeChangePointBackend("no_such_backend"), nullptr);
  EXPECT_EQ(MakeChangePointBackend(""), nullptr);
}

TEST(ChangePointBackendTest, DuplicateRegistrationRejected) {
  // Built-in names are taken; re-registering must fail and leave the
  // original factory in place.
  const auto factory = +[]() -> std::unique_ptr<ChangePointBackend> { return nullptr; };
  EXPECT_FALSE(RegisterChangePointBackend("cusum_em", factory));
  EXPECT_FALSE(RegisterChangePointBackend("", factory));
  EXPECT_NE(MakeChangePointBackend("cusum_em"), nullptr);
}

TEST(ChangePointBackendTest, CusumEmBackendMatchesDetectChangePoint) {
  // The default backend must be a transparent wrapper: bit-identical output
  // to calling the paper's detector directly (the byte-identical guarantee
  // behind keeping "cusum_em" the default).
  Rng rng(51);
  std::vector<double> values;
  for (size_t i = 0; i < 160; ++i) {
    values.push_back(rng.Normal(i < 90 ? 1.0 : 1.4, 0.2));
  }
  const auto backend = MakeChangePointBackend("cusum_em");
  ASSERT_NE(backend, nullptr);
  const ChangePoint via_backend = backend->Detect(values, ChangePointBackendOptions{});
  const ChangePoint direct = DetectChangePoint(values, ChangePointConfig{});
  EXPECT_EQ(via_backend.found, direct.found);
  EXPECT_EQ(via_backend.index, direct.index);
  EXPECT_EQ(via_backend.mean_before, direct.mean_before);
  EXPECT_EQ(via_backend.mean_after, direct.mean_after);
  EXPECT_EQ(via_backend.delta, direct.delta);
  EXPECT_EQ(via_backend.p_value, direct.p_value);
  EXPECT_EQ(via_backend.iterations_used, direct.iterations_used);
}

class BackendOracleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendOracleTest, FindsPlantedStep) {
  Rng rng(52);
  std::vector<double> values;
  const size_t planted = 120;
  for (size_t i = 0; i < 200; ++i) {
    values.push_back(rng.Normal(i < planted ? 1.0 : 2.0, 0.1));
  }
  const auto backend = MakeChangePointBackend(GetParam());
  ASSERT_NE(backend, nullptr);
  const ChangePoint result = backend->Detect(values, ChangePointBackendOptions{});
  ASSERT_TRUE(result.found) << GetParam();
  EXPECT_NEAR(static_cast<double>(result.index), static_cast<double>(planted), 8.0)
      << GetParam();
  EXPECT_GT(result.delta, 0.0) << GetParam();
  EXPECT_LT(result.p_value, 0.01) << GetParam();
}

TEST_P(BackendOracleTest, ConstantSeriesNotFound) {
  const std::vector<double> values(64, 3.0);
  const auto backend = MakeChangePointBackend(GetParam());
  ASSERT_NE(backend, nullptr);
  EXPECT_FALSE(backend->Detect(values, ChangePointBackendOptions{}).found) << GetParam();
}

TEST_P(BackendOracleTest, DeterministicAcrossCalls) {
  Rng rng(53);
  std::vector<double> values;
  for (size_t i = 0; i < 150; ++i) {
    values.push_back(rng.Normal(i < 80 ? 0.0 : 0.8, 0.25));
  }
  const auto backend = MakeChangePointBackend(GetParam());
  ASSERT_NE(backend, nullptr);
  const ChangePoint first = backend->Detect(values, ChangePointBackendOptions{});
  const ChangePoint second = backend->Detect(values, ChangePointBackendOptions{});
  EXPECT_EQ(first.found, second.found) << GetParam();
  EXPECT_EQ(first.index, second.index) << GetParam();
  EXPECT_EQ(first.mean_before, second.mean_before) << GetParam();
  EXPECT_EQ(first.mean_after, second.mean_after) << GetParam();
  EXPECT_EQ(first.delta, second.delta) << GetParam();
  EXPECT_EQ(first.p_value, second.p_value) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Builtins, BackendOracleTest, ::testing::ValuesIn(kBuiltinBackends));

}  // namespace
}  // namespace fbdetect
