#include <gtest/gtest.h>

#include "src/core/root_cause.h"
#include "src/fleet/change_log.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Table 2: the paper's worked gCPU-attribution example, reproduced exactly.
// ---------------------------------------------------------------------------

std::vector<AttributedSample> Table2Samples() {
  return {
      {{"A", "B", "C"}, 0.01, 0.02},
      {{"B", "E", "F"}, 0.02, 0.03},
      {{"D", "B", "C"}, 0.02, 0.02},
      {{"B", "E", "D"}, 0.04, 0.06},
      {{"G", "B", "D"}, 0.00, 0.01},  // Did not exist before.
  };
}

TEST(GcpuAttributionTest, PaperTable2Example) {
  // Change modifies A and E. R = 0.14 - 0.09 = 0.05; L = 0.11 - 0.07 = 0.04;
  // fraction = 80%.
  const AttributionResult result = GcpuAttribution(Table2Samples(), "B", {"A", "E"});
  EXPECT_NEAR(result.regression_magnitude, 0.05, 1e-12);
  EXPECT_NEAR(result.attributed_magnitude, 0.04, 1e-12);
  EXPECT_NEAR(result.fraction, 0.80, 1e-9);
}

TEST(GcpuAttributionTest, UnrelatedChangeGetsZero) {
  const AttributionResult result = GcpuAttribution(Table2Samples(), "B", {"Z"});
  EXPECT_NEAR(result.fraction, 0.0, 1e-12);
}

TEST(GcpuAttributionTest, ChangeTouchingRegressedItselfGetsFullFraction) {
  const AttributionResult result = GcpuAttribution(Table2Samples(), "B", {"B"});
  EXPECT_NEAR(result.fraction, 1.0, 1e-9);
}

TEST(GcpuAttributionTest, SamplesWithoutRegressedSubroutineIgnored) {
  std::vector<AttributedSample> samples = Table2Samples();
  samples.push_back({{"X", "Y"}, 0.10, 0.90});  // No B: must not affect R.
  const AttributionResult result = GcpuAttribution(samples, "B", {"A", "E"});
  EXPECT_NEAR(result.fraction, 0.80, 1e-9);
}

TEST(GcpuAttributionTest, EmptyInputsSafe) {
  const AttributionResult result = GcpuAttribution({}, "B", {"A"});
  EXPECT_EQ(result.fraction, 0.0);
  EXPECT_EQ(result.regression_magnitude, 0.0);
}

// ---------------------------------------------------------------------------
// RootCauseAnalyzer.
// ---------------------------------------------------------------------------

class FakeCodeInfo : public CodeInfoProvider {
 public:
  bool Exists(const std::string&) const override { return true; }
  std::vector<std::string> CallersOf(const std::string&) const override { return {}; }
  std::string ClassOf(const std::string& subroutine) const override {
    return subroutine.substr(0, 1);  // Class = first letter.
  }
  std::vector<std::string> ClassMembers(const std::string&) const override { return {}; }
  bool IsDescendant(const std::string& ancestor, const std::string& descendant) const override {
    // "parent" invokes "child_*".
    return ancestor == "parent" && descendant.rfind("child", 0) == 0;
  }
};

Regression RegressionIn(const std::string& subroutine, TimePoint change_time) {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, subroutine, ""};
  regression.change_time = change_time;
  regression.detected_at = change_time + Hours(4);
  regression.delta = 0.01;
  return regression;
}

TEST(RootCauseAnalyzerTest, RanksDirectCulpritFirst) {
  ChangeLog log;
  Commit noise;
  noise.service = "svc";
  noise.time = Hours(9);
  noise.title = "Unrelated tweak";
  noise.description = "Changes logging configuration.";
  noise.touched_subroutines = {"logging_util"};
  log.Add(noise);
  Commit culprit;
  culprit.service = "svc";
  culprit.time = Hours(10) - Minutes(30);
  culprit.title = "Add validation to parent";
  culprit.description = "loosening constraints for parent";
  culprit.touched_subroutines = {"parent"};
  const int64_t culprit_id = log.Add(culprit);

  FakeCodeInfo code_info;
  RootCauseAnalyzer analyzer(&log, &code_info, RootCauseConfig{});
  Regression regression = RegressionIn("parent", Hours(10));
  analyzer.Analyze(regression);
  ASSERT_FALSE(regression.root_causes.empty());
  EXPECT_EQ(regression.root_causes[0].commit_id, culprit_id);
  EXPECT_DOUBLE_EQ(regression.root_causes[0].structural_score, 1.0);
}

TEST(RootCauseAnalyzerTest, DownstreamChangeRankedAboveUnrelated) {
  ChangeLog log;
  Commit unrelated;
  unrelated.service = "svc";
  unrelated.time = Hours(9);
  unrelated.title = "Style cleanup";
  unrelated.touched_subroutines = {"formatting"};
  const int64_t unrelated_id = log.Add(unrelated);
  Commit downstream;
  downstream.service = "svc";
  downstream.time = Hours(9) + Minutes(30);
  downstream.title = "Optimize child_worker";
  downstream.touched_subroutines = {"child_worker"};
  const int64_t downstream_id = log.Add(downstream);

  FakeCodeInfo code_info;
  RootCauseAnalyzer analyzer(&log, &code_info, RootCauseConfig{});
  // Regression in `parent`, whose descendants are child_*.
  Regression regression = RegressionIn("parent", Hours(10));
  analyzer.Analyze(regression);
  ASSERT_FALSE(regression.root_causes.empty());
  EXPECT_EQ(regression.root_causes[0].commit_id, downstream_id);
  EXPECT_NE(regression.root_causes[0].commit_id, unrelated_id);
}

TEST(RootCauseAnalyzerTest, SuggestsNothingWithoutConfidentCandidate) {
  ChangeLog log;
  Commit unrelated;
  unrelated.service = "svc";
  unrelated.time = Hours(5);  // Far before the change.
  unrelated.title = "completely different thing";
  unrelated.touched_subroutines = {"elsewhere"};
  log.Add(unrelated);

  FakeCodeInfo code_info;
  RootCauseConfig config;
  config.min_confidence = 0.5;
  RootCauseAnalyzer analyzer(&log, &code_info, config);
  Regression regression = RegressionIn("parent", Hours(10));
  analyzer.Analyze(regression);
  EXPECT_TRUE(regression.root_causes.empty());
}

TEST(RootCauseAnalyzerTest, TextSimilarityRescuesIndirectCulprit) {
  // §5.6's example: no change touches `foo` directly, but one change says
  // "loosening constraints for foo" — text similarity should rank it first.
  ChangeLog log;
  Commit other;
  other.service = "svc";
  other.time = Hours(9);
  other.title = "Bump dependency";
  other.description = "Routine version bump.";
  other.touched_subroutines = {"deps"};
  log.Add(other);
  Commit textual;
  textual.service = "svc";
  textual.time = Hours(9);
  textual.title = "Loosening constraints for foo";
  textual.description = "Allows more requests to hit foo paths.";
  textual.touched_subroutines = {"constraint_checker"};
  const int64_t textual_id = log.Add(textual);

  RootCauseConfig config;
  config.min_confidence = 0.05;
  RootCauseAnalyzer analyzer(&log, nullptr, config);
  Regression regression = RegressionIn("foo", Hours(10));
  analyzer.Analyze(regression);
  ASSERT_FALSE(regression.root_causes.empty());
  EXPECT_EQ(regression.root_causes[0].commit_id, textual_id);
}

TEST(RootCauseAnalyzerTest, QuickCandidatesMatchTouchedSubroutine) {
  ChangeLog log;
  Commit touching;
  touching.service = "svc";
  touching.time = Hours(10) - Minutes(10);
  touching.touched_subroutines = {"target"};
  const int64_t touching_id = log.Add(touching);
  Commit elsewhere;
  elsewhere.service = "svc";
  elsewhere.time = Hours(10) - Minutes(5);
  elsewhere.touched_subroutines = {"other"};
  log.Add(elsewhere);

  RootCauseAnalyzer analyzer(&log, nullptr, RootCauseConfig{});
  const Regression regression = RegressionIn("target", Hours(10));
  const std::vector<int64_t> candidates = analyzer.QuickCandidates(regression);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], touching_id);
}

TEST(RootCauseAnalyzerTest, AtMostThreeSuggestions) {
  ChangeLog log;
  for (int i = 0; i < 6; ++i) {
    Commit commit;
    commit.service = "svc";
    commit.time = Hours(9) + Minutes(i);
    commit.title = "Touch hot_path variant " + std::to_string(i);
    commit.touched_subroutines = {"hot_path"};
    log.Add(commit);
  }
  RootCauseAnalyzer analyzer(&log, nullptr, RootCauseConfig{});
  Regression regression = RegressionIn("hot_path", Hours(10));
  analyzer.Analyze(regression);
  EXPECT_EQ(regression.root_causes.size(), 3u);
}

TEST(RootCauseAnalyzerTest, CommitsAfterChangePointIgnored) {
  ChangeLog log;
  Commit late;
  late.service = "svc";
  late.time = Hours(11);  // After the regression started.
  late.touched_subroutines = {"target"};
  log.Add(late);
  RootCauseAnalyzer analyzer(&log, nullptr, RootCauseConfig{});
  Regression regression = RegressionIn("target", Hours(10));
  analyzer.Analyze(regression);
  EXPECT_TRUE(regression.root_causes.empty());
}

}  // namespace
}  // namespace fbdetect
