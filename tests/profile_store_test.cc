#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/pairwise_dedup.h"
#include "src/profiling/call_graph.h"
#include "src/profiling/profile_store.h"

namespace fbdetect {
namespace {

struct StoreGraph {
  CallGraph graph;
  NodeId root;
  NodeId left;
  NodeId right;

  StoreGraph() {
    root = graph.AddNode({"root", "Main", 1.0, ""});
    left = graph.AddNode({"left", "Work", 2.0, ""});
    right = graph.AddNode({"right", "Work", 2.0, ""});
    graph.AddEdge(root, left, 1.0);
    graph.AddEdge(root, right, 1.0);
  }
};

TEST(ProfileStoreTest, IngestAndGcpu) {
  StoreGraph g;
  ProfileStore store(Hours(1));
  ProfileAggregate aggregate;
  aggregate.AddSample({g.root, g.left});
  aggregate.AddSample({g.root, g.right});
  aggregate.AddSample({g.root});
  store.Ingest("svc", Minutes(10), &g.graph, aggregate);

  EXPECT_EQ(store.bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "root", 0, Hours(1)), 1.0);
  EXPECT_NEAR(store.Gcpu("svc", "left", 0, Hours(1)), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(store.Gcpu("svc", "missing", 0, Hours(1)), 0.0);
  EXPECT_EQ(store.Gcpu("other_svc", "root", 0, Hours(1)), 0.0);
}

TEST(ProfileStoreTest, OverlapMatchesAggregates) {
  StoreGraph g;
  ProfileStore store(Hours(1));
  ProfileAggregate aggregate;
  aggregate.AddSample({g.root, g.left});   // root+left.
  aggregate.AddSample({g.root, g.right});  // root+right.
  store.Ingest("svc", 0, &g.graph, aggregate);
  // root appears in 2 samples, left in 1, shared 1: Jaccard = 1/2.
  EXPECT_NEAR(store.Overlap("svc", "root", "left", 0, Hours(1)), 0.5, 1e-12);
  // left and right never share a sample.
  EXPECT_EQ(store.Overlap("svc", "left", "right", 0, Hours(1)), 0.0);
}

TEST(ProfileStoreTest, TimeRangeSelectsBuckets) {
  StoreGraph g;
  ProfileStore store(Hours(1));
  ProfileAggregate first;
  first.AddSample({g.root, g.left});
  store.Ingest("svc", Minutes(30), &g.graph, first);
  ProfileAggregate second;
  second.AddSample({g.root, g.right});
  store.Ingest("svc", Hours(2), &g.graph, second);

  // Query covering only the second bucket.
  EXPECT_EQ(store.Gcpu("svc", "left", Hours(2), Hours(3)), 0.0);
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "right", Hours(2), Hours(3)), 1.0);
  // Query covering both.
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "left", 0, Hours(3)), 0.5);
}

TEST(ProfileStoreTest, ExpireDropsOldBuckets) {
  StoreGraph g;
  ProfileStore store(Hours(1));
  ProfileAggregate aggregate;
  aggregate.AddSample({g.root});
  store.Ingest("svc", Minutes(10), &g.graph, aggregate);
  store.Ingest("svc", Hours(5), &g.graph, aggregate);
  EXPECT_EQ(store.bucket_count(), 2u);
  store.Expire(Hours(2));
  EXPECT_EQ(store.bucket_count(), 1u);
  EXPECT_EQ(store.Gcpu("svc", "root", 0, Hours(1)), 0.0);
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "root", Hours(5), Hours(6)), 1.0);
}

TEST(ProfileStoreTest, MultiBucketOverlapIsSampleWeighted) {
  StoreGraph g;
  ProfileStore store(Hours(1));
  // Bucket 1: 1 sample, overlap(root,left)=1.
  ProfileAggregate b1;
  b1.AddSample({g.root, g.left});
  store.Ingest("svc", 0, &g.graph, b1);
  // Bucket 2: 3 samples, overlap(root,left)=1/3.
  ProfileAggregate b2;
  b2.AddSample({g.root, g.left});
  b2.AddSample({g.root, g.right});
  b2.AddSample({g.root});
  store.Ingest("svc", Hours(1), &g.graph, b2);
  // Weighted: (1*1 + 3*(1/3)) / 4 = 0.5.
  EXPECT_NEAR(store.Overlap("svc", "root", "left", 0, Hours(2)), 0.5, 1e-12);
}

TEST(ProfileStoreTest, QueryAtEpochIncludesFirstBucket) {
  // Regression test for the first-bucket computation: begin = 0 must select
  // the epoch bucket, and a begin inside the first bucket must too.
  StoreGraph g;
  ProfileStore store(Hours(1));
  ProfileAggregate aggregate;
  aggregate.AddSample({g.root});
  store.Ingest("svc", Minutes(10), &g.graph, aggregate);

  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "root", 0, Hours(1)), 1.0);
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "root", Minutes(5), Hours(1)), 1.0);
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "root", Minutes(59), Hours(1)), 1.0);
}

TEST(ProfileStoreTest, QueryExcludesBucketEndingAtBegin) {
  // Regression test: the old first-bucket arithmetic truncated toward zero,
  // which for begin > bucket_width admitted the bucket ENDING at/before
  // `begin` — mixing one stale bucket into every query. A bucket whose range
  // is [0, 1h) must not satisfy a query over [1h, 2h).
  StoreGraph g;
  ProfileStore store(Hours(1));
  ProfileAggregate stale;
  stale.AddSample({g.root, g.left});
  store.Ingest("svc", Minutes(10), &g.graph, stale);  // Bucket [0, 1h).

  // begin exactly at the boundary and begin just past it: both exclude it.
  EXPECT_EQ(store.Gcpu("svc", "left", Hours(1), Hours(2)), 0.0);
  EXPECT_EQ(store.Gcpu("svc", "left", Hours(1) + 1, Hours(2)), 0.0);
  EXPECT_EQ(store.Overlap("svc", "root", "left", Hours(1), Hours(2)), 0.0);

  // A begin strictly inside the bucket still selects it.
  EXPECT_DOUBLE_EQ(store.Gcpu("svc", "left", Hours(1) - 1, Hours(2)), 1.0);
}

TEST(ProfileStoreTest, FeedsPairwiseDedupOverlapFeature) {
  // Wire the store into PairwiseDedup as the StackOverlapFn and check that
  // sample-sharing subroutines merge even with dissimilar names.
  StoreGraph g;
  auto store = std::make_shared<ProfileStore>(Hours(1));
  ProfileAggregate aggregate;
  for (int i = 0; i < 10; ++i) {
    aggregate.AddSample({g.root, g.left});  // root and left always co-occur.
  }
  store->Ingest("svc", 0, &g.graph, aggregate);

  PairwiseRule rule;
  rule.min_text = 0.99;  // Force the merge decision onto the overlap feature.
  PairwiseDedup dedup(rule, [store](const MetricId& a, const MetricId& b) {
    return store->Overlap(a.service, a.entity, b.entity, 0, Hours(1));
  });

  auto make_regression = [](const std::string& name) {
    Regression regression;
    regression.metric = {"svc", MetricKind::kGcpu, name, ""};
    Rng rng(1);  // Same seed => identical series => Pearson 1.
    for (int i = 0; i < 24; ++i) {
      regression.analysis.push_back(rng.Normal(i < 12 ? 0.05 : 0.06, 0.0005));
      regression.analysis_timestamps.push_back(static_cast<TimePoint>(i) * Minutes(10));
    }
    regression.change_index = 12;
    regression.delta = 0.01;
    return regression;
  };
  dedup.Ingest({make_regression("root")});
  const std::vector<int> new_groups = dedup.Ingest({make_regression("left")});
  EXPECT_TRUE(new_groups.empty());  // Merged through the stored overlap.
  EXPECT_EQ(dedup.groups().size(), 1u);
}

}  // namespace
}  // namespace fbdetect
