// End-to-end acceptance tests for the fault-injection harness and the
// graceful-degradation funnel: the pipeline must survive a fleet with every
// fault kind injected at 10% without aborting, keep detections on untouched
// series byte-identical to a clean run for any scan_threads value, and
// account for every injected fault in the QuarantineReport.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/cost_shift.h"
#include "src/core/pipeline.h"
#include "src/core/sanitizer.h"
#include "src/fleet/fault_injector.h"
#include "src/fleet/fleet.h"
#include "src/fleet/service.h"
#include "src/report/report.h"
#include "src/tsdb/database.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);
// Data covers [0, kDataEnd] on the tick grid (Run starts at -kTick so the
// first point lands exactly on t = 0 and every re-run window is grid-aligned
// with zero missing slots on clean series).
constexpr TimePoint kDataEnd = Days(2);
// Re-runs at 30h, 33h, ..., 48h tile [0, 48h); the final run at 48h10m
// covers the last grid point, so every injected fault lands inside at least
// one inspected window.
constexpr TimePoint kRunBegin = Hours(27);
constexpr TimePoint kFinalRun = kDataEnd + kTick;
constexpr uint64_t kFaultSeed = 11;

ServiceConfig DirtyServiceConfig(const std::string& name) {
  ServiceConfig config;
  config.name = name;
  config.num_servers = 100;
  config.call_graph.num_subroutines = 60;
  config.sampling.samples_per_bucket = 500000;
  config.sampling.bucket_width = kTick;
  config.tick = kTick;
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.seasonal_load_amplitude = 0.0;
  // Process CPU tracks total graph cost, so a gCPU step leaks into it; the
  // clean-subset identity check wants cost regressions confined to series
  // whose fault status the test controls (the gCPU call-graph closure).
  config.emit_process_cpu = false;
  config.seed = 7;
  return config;
}

PipelineOptions DetectOptions(int scan_threads) {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(3);
  options.scan_threads = scan_threads;
  return options;
}

MetricId GcpuId(const std::string& service, const std::string& subroutine) {
  return MetricId{service, MetricKind::kGcpu, subroutine, ""};
}

// All nodes from which `target` is reachable, target included — exactly the
// set of gCPU series a self-cost step on `target` can move.
std::vector<NodeId> InclusiveAncestors(const CallGraph& graph, NodeId target) {
  std::vector<bool> seen(graph.node_count(), false);
  std::vector<NodeId> stack = {target};
  std::vector<NodeId> closure;
  seen[static_cast<size_t>(target)] = true;
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    closure.push_back(node);
    for (const NodeId caller : graph.CallersOf(node)) {
      if (!seen[static_cast<size_t>(caller)]) {
        seen[static_cast<size_t>(caller)] = true;
        stack.push_back(caller);
      }
    }
  }
  return closure;
}

// Leaf subroutines with a detectable reach whose whole inclusive-ancestor
// closure is outside the injector's faultable subset: a step regression on
// one of these moves clean series only, so its detections must be identical
// between the clean and the faulted run.
std::vector<std::string> CleanStepTargets(const ServiceConfig& config,
                                          const FaultInjector& injector, size_t max_targets) {
  const ServiceSimulator probe(config);
  const CallGraph& graph = probe.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  std::vector<std::string> targets;
  for (size_t i = 0; i < graph.node_count() && targets.size() < max_targets; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (!graph.edges(id).empty() || reach[i] < 0.003 || reach[i] > 0.2) {
      continue;
    }
    bool closure_clean = true;
    for (const NodeId node : InclusiveAncestors(graph, id)) {
      if (injector.SeriesSelected(GcpuId(config.name, graph.node(node).name))) {
        closure_clean = false;
        break;
      }
    }
    if (closure_clean) {
      targets.push_back(graph.node(id).name);
    }
  }
  return targets;
}

// Builds one fleet (with optional fault injection) over [0, end], scheduling
// a 50% step regression at 36h on each target subroutine.
std::unique_ptr<FleetSimulator> BuildFleet(const ServiceConfig& config,
                                           const std::vector<std::string>& step_targets,
                                           FaultInjector* injector, TimePoint end,
                                           int threads, size_t flush_points) {
  auto fleet = std::make_unique<FleetSimulator>();
  fleet->AddService(config);
  for (const std::string& target : step_targets) {
    InjectedEvent event;
    event.kind = EventKind::kStepRegression;
    event.service = config.name;
    event.subroutine = target;
    event.start = Hours(36);
    event.magnitude = 0.5;
    fleet->InjectEvent(event);
  }
  FleetIngestOptions options;
  options.threads = threads;
  options.flush_points = flush_points;
  options.fault_injector = injector;
  fleet->Run(-kTick, end, options);
  return fleet;
}

// Content hash over every stored series, in canonical order. Two databases
// with the same fingerprint hold byte-identical points.
uint64_t DbFingerprint(const TimeSeriesDatabase& db) {
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const MetricId& id : db.ListMetrics()) {
    for (const char c : id.ToString()) {
      mix(static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
    const TimeSeries* series = db.Find(id);
    mix(series->size());
    for (size_t i = 0; i < series->size(); ++i) {
      mix(static_cast<uint64_t>(series->timestamps()[i]));
      mix(std::bit_cast<uint64_t>(series->values()[i]));
    }
  }
  return h;
}

std::string Serialize(const std::vector<Regression>& reports) {
  std::string out;
  for (const Regression& report : reports) {
    out += ToJsonLine(report);
    out += '\n';
  }
  return out;
}

// One full detection pass (periodic re-runs + the final grid-covering run);
// returns the pipeline so callers can read funnel / quarantine state.
struct DetectionResult {
  std::vector<Regression> reports;
  std::string rendered;  // reports + funnel + quarantine, for byte comparison.
  QuarantineReport quarantine;
};

DetectionResult RunDetection(const TimeSeriesDatabase& db, const std::string& service,
                             int scan_threads) {
  Pipeline pipeline(&db, nullptr, nullptr, DetectOptions(scan_threads));
  DetectionResult result;
  result.reports = pipeline.RunPeriod(service, kRunBegin, kDataEnd);
  std::vector<Regression> final_run = pipeline.RunAt(service, kFinalRun);
  result.reports.insert(result.reports.end(), final_run.begin(), final_run.end());
  result.quarantine = pipeline.quarantine_report();
  result.rendered = Serialize(result.reports);
  result.rendered += RenderFunnel(pipeline.short_term_funnel(), pipeline.long_term_funnel(),
                                  /*long_term_enabled=*/true);
  result.rendered += RenderQuarantine(result.quarantine, /*max_rows=*/0);
  return result;
}

std::vector<Regression> FilterToCleanSeries(const std::vector<Regression>& reports,
                                            const std::set<MetricId>& faulted) {
  std::vector<Regression> clean;
  for (const Regression& report : reports) {
    if (!faulted.contains(report.metric)) {
      clean.push_back(report);
    }
  }
  return clean;
}

// ---------------------------------------------------------------------------
// Injector determinism: the corrupted database and the fault ledger are pure
// functions of (seed, series, timestamp) — ingest thread count and flush
// cadence must not change a single byte.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, InjectionIsDeterministicAcrossThreadsAndFlushCadence) {
  const FaultInjectorConfig config = FaultInjectorConfig::AllKinds(0.10, kFaultSeed);
  struct Variant {
    int threads;
    size_t flush_points;
  };
  const Variant variants[] = {{1, 4096}, {3, 64}, {2, 1}};

  std::vector<uint64_t> fingerprints;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<TimeSeriesDatabase::IngestStats> stats;
  for (const Variant& variant : variants) {
    auto injector = std::make_unique<FaultInjector>(config);
    FleetSimulator fleet;
    for (const char* name : {"alpha", "beta", "gamma"}) {
      ServiceConfig service = DirtyServiceConfig(name);
      service.call_graph.num_subroutines = 40;
      service.num_servers = 50;
      fleet.AddService(service);
    }
    FleetIngestOptions options;
    options.threads = variant.threads;
    options.flush_points = variant.flush_points;
    options.fault_injector = injector.get();
    fleet.Run(-kTick, Hours(6), options);
    fingerprints.push_back(DbFingerprint(fleet.db()));
    stats.push_back(fleet.db().ingest_stats());
    injectors.push_back(std::move(injector));
  }

  const FaultLedger& reference = injectors[0]->ledger();
  const std::vector<MetricId> faulted = reference.FaultedSeries();
  EXPECT_GT(faulted.size(), 0u);
  for (size_t v = 1; v < injectors.size(); ++v) {
    EXPECT_EQ(fingerprints[v], fingerprints[0]);
    EXPECT_EQ(stats[v].accepted, stats[0].accepted);
    EXPECT_EQ(stats[v].dropped_duplicate, stats[0].dropped_duplicate);
    EXPECT_EQ(stats[v].dropped_out_of_order, stats[0].dropped_out_of_order);
    const FaultLedger& ledger = injectors[v]->ledger();
    EXPECT_EQ(ledger.FaultedSeries(), faulted);
    for (const MetricId& metric : faulted) {
      for (size_t k = 0; k < kFaultKindCount; ++k) {
        const FaultKind kind = static_cast<FaultKind>(k);
        EXPECT_EQ(ledger.Count(metric, kind), reference.Count(metric, kind))
            << metric.ToString() << " kind " << FaultKindName(kind);
      }
    }
  }
}

TEST(FaultInjectorTest, ZeroRatesLeaveTheFleetUntouched) {
  FaultInjector injector(FaultInjectorConfig::AllKinds(0.0, kFaultSeed));
  const ServiceConfig config = DirtyServiceConfig("svc");
  const auto clean = BuildFleet(config, {}, nullptr, Hours(6), 1, 4096);
  const auto faulted = BuildFleet(config, {}, &injector, Hours(6), 1, 4096);
  EXPECT_EQ(DbFingerprint(faulted->db()), DbFingerprint(clean->db()));
  EXPECT_EQ(injector.ledger().total(), 0u);
  EXPECT_EQ(faulted->db().ingest_stats().dropped(), 0u);
}

TEST(FaultInjectorTest, LedgerOnlyNamesSelectedSeries) {
  FaultInjector injector(FaultInjectorConfig::AllKinds(0.10, kFaultSeed));
  const auto fleet = BuildFleet(DirtyServiceConfig("svc"), {}, &injector, Hours(6), 1, 4096);
  const std::vector<MetricId> faulted = injector.ledger().FaultedSeries();
  ASSERT_FALSE(faulted.empty());
  for (const MetricId& metric : faulted) {
    EXPECT_TRUE(injector.SeriesSelected(metric)) << metric.ToString();
  }
}

// ---------------------------------------------------------------------------
// The acceptance run: 10% of every fault kind over the dirty subset.
// ---------------------------------------------------------------------------

TEST(RobustnessPathTest, DirtyFleetSurvivesAndCleanSeriesDetectionsAreIdentical) {
  const ServiceConfig config = DirtyServiceConfig("svc");
  FaultInjector injector(FaultInjectorConfig::AllKinds(0.10, kFaultSeed));
  const std::vector<std::string> targets = CleanStepTargets(config, injector, 2);
  ASSERT_FALSE(targets.empty())
      << "no leaf subroutine with a fault-free ancestor closure; change kFaultSeed";

  const auto clean_fleet = BuildFleet(config, targets, nullptr, kDataEnd, 1, 4096);
  const auto dirty_fleet = BuildFleet(config, targets, &injector, kDataEnd, 2, 512);
  const FaultLedger& ledger = injector.ledger();

  // Every fault kind was actually exercised.
  for (size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_GT(ledger.TotalByKind(static_cast<FaultKind>(k)), 0u)
        << FaultKindName(static_cast<FaultKind>(k));
  }

  // Retransmit faults reconcile exactly with the database's ingest rejects.
  const TimeSeriesDatabase::IngestStats stats = dirty_fleet->db().ingest_stats();
  EXPECT_EQ(stats.dropped_duplicate, ledger.TotalByKind(FaultKind::kDuplicate));
  EXPECT_EQ(stats.dropped_out_of_order, ledger.TotalByKind(FaultKind::kOutOfOrder));

  // The dirty run must complete without an abort or an uncaught exception,
  // at every scan_threads value, with byte-identical output.
  DetectionResult dirty;
  ASSERT_NO_THROW(dirty = RunDetection(dirty_fleet->db(), config.name, 1));
  for (const int threads : {2, 8}) {
    DetectionResult repeat;
    ASSERT_NO_THROW(repeat = RunDetection(dirty_fleet->db(), config.name, threads));
    EXPECT_EQ(repeat.rendered, dirty.rendered) << "scan_threads=" << threads;
  }
  for (const Regression& report : dirty.reports) {
    EXPECT_TRUE(std::isfinite(report.delta)) << report.metric.ToString();
    EXPECT_TRUE(std::isfinite(report.baseline_mean)) << report.metric.ToString();
  }

  // Detections on uncorrupted series are byte-identical to the clean run.
  const DetectionResult clean = RunDetection(clean_fleet->db(), config.name, 1);
  const std::vector<MetricId> faulted_list = ledger.FaultedSeries();
  const std::set<MetricId> faulted(faulted_list.begin(), faulted_list.end());
  const std::vector<Regression> dirty_clean_subset =
      FilterToCleanSeries(dirty.reports, faulted);
  const std::vector<Regression> clean_clean_subset =
      FilterToCleanSeries(clean.reports, faulted);
  EXPECT_EQ(Serialize(dirty_clean_subset), Serialize(clean_clean_subset));
  // Non-vacuous: the injected step regressions on clean subroutines were
  // detected in both runs. The reported representative may be any gCPU
  // series of the (fault-free) ancestor closure, so match on the change
  // time rather than the exact metric.
  bool target_detected = false;
  for (const Regression& report : dirty_clean_subset) {
    target_detected |= report.metric.kind == MetricKind::kGcpu &&
                       std::llabs(report.change_time - Hours(36)) <= Hours(1);
  }
  EXPECT_TRUE(target_detected) << Serialize(dirty_clean_subset);

  // The quarantine report accounts for every injected fault, by series and
  // kind.
  EXPECT_EQ(dirty.quarantine.total_dropped_duplicate(),
            ledger.TotalByKind(FaultKind::kDuplicate));
  EXPECT_EQ(dirty.quarantine.total_dropped_out_of_order(),
            ledger.TotalByKind(FaultKind::kOutOfOrder));
  std::map<MetricId, const QuarantineRecord*> by_metric;
  for (const QuarantineRecord& record : dirty.quarantine.records) {
    by_metric[record.metric] = &record;
  }
  for (const MetricId& metric : faulted_list) {
    const auto it = by_metric.find(metric);
    ASSERT_NE(it, by_metric.end()) << "no quarantine record for " << metric.ToString();
    const QuarantineRecord& record = *it->second;
    const auto count = [&](FaultKind kind) { return ledger.Count(metric, kind); };
    if (count(FaultKind::kNan) + count(FaultKind::kInf) > 0) {
      EXPECT_GT(record.non_finite, 0u) << metric.ToString();
    }
    if (count(FaultKind::kCounterReset) > 0) {
      EXPECT_GT(record.negative, 0u) << metric.ToString();
    }
    if (count(FaultKind::kDrop) + count(FaultKind::kFlap) > 0) {
      EXPECT_TRUE(record.missing > 0 || record.flap_windows > 0) << metric.ToString();
    }
    if (count(FaultKind::kClockSkew) > 0) {
      EXPECT_GT(record.max_skew, 0) << metric.ToString();
    }
    EXPECT_EQ(record.dropped_duplicate, count(FaultKind::kDuplicate)) << metric.ToString();
    EXPECT_EQ(record.dropped_out_of_order, count(FaultKind::kOutOfOrder))
        << metric.ToString();
    if (count(FaultKind::kNan) + count(FaultKind::kInf) + count(FaultKind::kCounterReset) >
        0) {
      EXPECT_GT(record.windows_quarantined, 0u) << metric.ToString();
    }
  }
}

// The chaos-matrix sweep run by CI under ASan/UBSan: every fault rate must
// complete crash-free with finite reports and thread-count-independent
// output.
TEST(RobustnessPathTest, ChaosMatrixCompletesAtEveryRate) {
  const ServiceConfig config = DirtyServiceConfig("svc");
  for (const double rate : {0.01, 0.05, 0.10}) {
    FaultInjector injector(FaultInjectorConfig::AllKinds(rate, kFaultSeed + 1));
    const auto fleet = BuildFleet(config, {}, &injector, kDataEnd, 2, 1024);
    DetectionResult serial;
    ASSERT_NO_THROW(serial = RunDetection(fleet->db(), config.name, 1)) << "rate=" << rate;
    DetectionResult parallel;
    ASSERT_NO_THROW(parallel = RunDetection(fleet->db(), config.name, 2)) << "rate=" << rate;
    EXPECT_EQ(parallel.rendered, serial.rendered) << "rate=" << rate;
    for (const Regression& report : serial.reports) {
      EXPECT_TRUE(std::isfinite(report.delta)) << report.metric.ToString();
    }
    EXPECT_EQ(serial.quarantine.total_dropped_duplicate(),
              injector.ledger().TotalByKind(FaultKind::kDuplicate))
        << "rate=" << rate;
  }
}

// ---------------------------------------------------------------------------
// Funnel-stage exception identity: a throwing user-registered cost-domain
// detector must not abort the run, and the exception's what() must surface
// in the quarantine record and the rendered report (not be swallowed by a
// bare catch).
// ---------------------------------------------------------------------------

class ThrowingDomainDetector : public CostDomainDetector {
 public:
  std::string name() const override { return "throwing_domain"; }
  std::vector<CostDomain> DomainsFor(const Regression&) const override {
    throw std::runtime_error("domain detector hardware fault");
  }
};

TEST(RobustnessPathTest, FunnelExceptionIdentitySurfacesInQuarantine) {
  ServiceConfig config = DirtyServiceConfig("svc");
  config.num_servers = 40;
  config.call_graph.num_subroutines = 30;
  // Zero-rate injector: selects nothing, so every leaf closure is clean.
  FaultInjector none(FaultInjectorConfig::AllKinds(0.0, kFaultSeed));
  const std::vector<std::string> targets = CleanStepTargets(config, none, 1);
  ASSERT_FALSE(targets.empty());
  const auto fleet = BuildFleet(config, targets, nullptr, kDataEnd, 1, 4096);

  Pipeline pipeline(&fleet->db(), nullptr, nullptr, DetectOptions(2));
  pipeline.cost_shift_detector().AddDomainDetector(
      std::make_unique<ThrowingDomainDetector>());
  std::vector<Regression> reports;
  ASSERT_NO_THROW(reports = pipeline.RunPeriod(config.name, kRunBegin, kDataEnd));
  std::vector<Regression> final_run;
  ASSERT_NO_THROW(final_run = pipeline.RunAt(config.name, kFinalRun));
  reports.insert(reports.end(), final_run.begin(), final_run.end());
  // A throwing detector treats its candidate as not-a-shift: the injected
  // step regression is still reported.
  EXPECT_FALSE(reports.empty());

  const QuarantineReport quarantine = pipeline.quarantine_report();
  EXPECT_GT(quarantine.total_exceptions(), 0u);
  bool identity_found = false;
  for (const QuarantineRecord& record : quarantine.records) {
    if (record.last_error == "domain detector hardware fault") {
      identity_found = true;
      EXPECT_GT(record.exceptions, 0u) << record.metric.ToString();
    }
  }
  EXPECT_TRUE(identity_found) << RenderQuarantine(quarantine, /*max_rows=*/0);
  const std::string rendered = RenderQuarantine(quarantine, /*max_rows=*/0);
  EXPECT_NE(rendered.find("last error: domain detector hardware fault"),
            std::string::npos)
      << rendered;
}

// ---------------------------------------------------------------------------
// Sanitizer unit tests: one window, one artifact each.
// ---------------------------------------------------------------------------

constexpr Duration kStep = Minutes(1);

WindowSpec UnitSpec() {
  WindowSpec spec;
  spec.historical = Hours(1);
  spec.analysis = Minutes(30);
  spec.extended = 0;
  return spec;
}

// Grid series over [begin, end) at kStep, with per-point value and keep
// hooks.
template <typename Value, typename Keep>
TimeSeries GridSeries(TimePoint begin, TimePoint end, Value value, Keep keep) {
  TimeSeries series;
  for (TimePoint t = begin; t < end; t += kStep) {
    if (keep(t)) {
      series.Append(t, value(t));
    }
  }
  return series;
}

TimeSeries CleanGrid(TimePoint begin, TimePoint end) {
  return GridSeries(begin, end, [](TimePoint) { return 1.0; },
                    [](TimePoint) { return true; });
}

WindowQuality InspectSeries(const TimeSeries& series, TimePoint as_of,
                            const SanitizerConfig& config = {},
                            MetricKind kind = MetricKind::kGcpu) {
  const Sanitizer sanitizer(config);
  const WindowView view = ExtractWindowView(series, as_of, UnitSpec());
  return sanitizer.Inspect(kind, view, UnitSpec());
}

TEST(SanitizerTest, CleanWindowIsOkWithNoArtifacts) {
  const TimeSeries series = CleanGrid(Minutes(30), Hours(2));
  const WindowQuality quality = InspectSeries(series, Hours(2));
  EXPECT_TRUE(quality.observed);
  EXPECT_EQ(quality.verdict, QualityVerdict::kOk);
  EXPECT_EQ(quality.non_finite, 0u);
  EXPECT_EQ(quality.negative, 0u);
  EXPECT_EQ(quality.missing, 0u);
  EXPECT_EQ(quality.skew, 0);
  EXPECT_FALSE(quality.late_start);
  EXPECT_FALSE(quality.early_end);
}

TEST(SanitizerTest, NonFiniteValuesAreCorrupt) {
  const TimeSeries series = GridSeries(
      Minutes(30), Hours(2),
      [](TimePoint t) {
        return t == Hours(1) ? std::numeric_limits<double>::quiet_NaN() : 1.0;
      },
      [](TimePoint) { return true; });
  const WindowQuality quality = InspectSeries(series, Hours(2));
  EXPECT_EQ(quality.verdict, QualityVerdict::kCorrupt);
  EXPECT_EQ(quality.non_finite, 1u);
  EXPECT_TRUE(Sanitizer(SanitizerConfig{}).ShouldQuarantine(quality.verdict));
}

TEST(SanitizerTest, NegativesCorruptNonNegativeKindsOnly) {
  const TimeSeries series = GridSeries(
      Minutes(30), Hours(2), [](TimePoint t) { return t == Hours(1) ? -3.0 : 1.0; },
      [](TimePoint) { return true; });
  const WindowQuality gcpu = InspectSeries(series, Hours(2), {}, MetricKind::kGcpu);
  EXPECT_EQ(gcpu.verdict, QualityVerdict::kCorrupt);
  EXPECT_EQ(gcpu.negative, 1u);
  // Free-form application metrics may legitimately go negative.
  const WindowQuality app = InspectSeries(series, Hours(2), {}, MetricKind::kApplication);
  EXPECT_EQ(app.verdict, QualityVerdict::kOk);
  EXPECT_EQ(app.negative, 0u);
}

TEST(SanitizerTest, GapsBeyondBudgetAreGappyAndBelowBudgetAreCounted) {
  // Drop every third historical point: 20 of 90 expected samples missing,
  // under the default 25% budget -> flagged, not quarantined.
  const TimeSeries tolerated = GridSeries(
      Minutes(30), Hours(2), [](TimePoint) { return 1.0; },
      [](TimePoint t) { return t >= Minutes(90) || (t / kStep) % 3 != 0; });
  const WindowQuality ok = InspectSeries(tolerated, Hours(2));
  EXPECT_EQ(ok.verdict, QualityVerdict::kOk);
  EXPECT_EQ(ok.missing, 20u);
  EXPECT_FALSE(Sanitizer(SanitizerConfig{}).ShouldQuarantine(ok.verdict));

  // Drop half of the historical window: 30 missing > 22.5 budget -> gappy.
  const TimeSeries gappy = GridSeries(
      Minutes(30), Hours(2), [](TimePoint) { return 1.0; },
      [](TimePoint t) { return t >= Minutes(90) || (t / kStep) % 2 != 0; });
  const WindowQuality bad = InspectSeries(gappy, Hours(2));
  EXPECT_EQ(bad.verdict, QualityVerdict::kGappy);
  EXPECT_EQ(bad.missing, 30u);
  EXPECT_TRUE(Sanitizer(SanitizerConfig{}).ShouldQuarantine(bad.verdict));
}

TEST(SanitizerTest, LateStartIsFlapping) {
  // Series appears 40 minutes into the 60-minute historical window:
  // 20 of 60 expected samples < the 50% coverage floor.
  const TimeSeries series = CleanGrid(Minutes(70), Hours(2));
  const WindowQuality quality = InspectSeries(series, Hours(2));
  EXPECT_EQ(quality.verdict, QualityVerdict::kFlapping);
  EXPECT_TRUE(quality.late_start);
}

TEST(SanitizerTest, EarlyEndIsFlapping) {
  // Series goes dark 10 minutes before as_of (> 2 ticks of slack).
  const TimeSeries series = CleanGrid(Minutes(30), Minutes(110));
  const WindowQuality quality = InspectSeries(series, Hours(2));
  EXPECT_EQ(quality.verdict, QualityVerdict::kFlapping);
  EXPECT_TRUE(quality.early_end);
}

TEST(SanitizerTest, ConstantClockSkewIsToleratedButMeasured) {
  TimeSeries series;
  for (TimePoint t = Minutes(30); t < Hours(2); t += kStep) {
    series.Append(t + 7, 1.0);
  }
  const WindowQuality quality = InspectSeries(series, Hours(2));
  EXPECT_EQ(quality.verdict, QualityVerdict::kOk);
  EXPECT_EQ(quality.skew, 7);
  EXPECT_EQ(quality.missing, 0u);
}

TEST(SanitizerTest, EmptyWindowIsNotObserved) {
  const TimeSeries series = CleanGrid(0, Minutes(10));
  const WindowQuality quality = InspectSeries(series, Hours(12));
  EXPECT_FALSE(quality.observed);
  EXPECT_EQ(quality.verdict, QualityVerdict::kOk);
}

TEST(SanitizerTest, QuarantinePolicyRespectsConfig) {
  SanitizerConfig config;
  config.quarantine_gappy = false;
  const Sanitizer selective(config);
  EXPECT_FALSE(selective.ShouldQuarantine(QualityVerdict::kOk));
  EXPECT_FALSE(selective.ShouldQuarantine(QualityVerdict::kGappy));
  EXPECT_TRUE(selective.ShouldQuarantine(QualityVerdict::kFlapping));
  EXPECT_TRUE(selective.ShouldQuarantine(QualityVerdict::kCorrupt));

  SanitizerConfig disabled;
  disabled.enabled = false;
  EXPECT_FALSE(Sanitizer(disabled).ShouldQuarantine(QualityVerdict::kCorrupt));
}

}  // namespace
}  // namespace fbdetect
