#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/stats/accumulator.h"
#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"
#include "src/stats/fourier.h"
#include "src/stats/hypothesis.h"
#include "src/stats/linreg.h"
#include "src/stats/text.h"
#include "src/stats/trend.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Descriptive statistics.
// ---------------------------------------------------------------------------

TEST(DescriptiveTest, MeanAndVariance) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(values), 4.0);
  EXPECT_NEAR(SampleVariance(values), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, EmptyInputsReturnZero) {
  const std::vector<double> empty;
  EXPECT_EQ(Mean(empty), 0.0);
  EXPECT_EQ(SampleVariance(empty), 0.0);
  EXPECT_EQ(Median(empty), 0.0);
  EXPECT_EQ(Percentile(empty, 90.0), 0.0);
  EXPECT_EQ(MedianAbsoluteDeviation(empty, true), 0.0);
  EXPECT_EQ(Min(empty), 0.0);
  EXPECT_EQ(Max(empty), 0.0);
}

TEST(DescriptiveTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  const std::vector<double> values = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 25.0);
}

TEST(DescriptiveTest, SinglePointPercentile) {
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(Percentile(one, 10.0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(one, 99.0), 42.0);
}

TEST(DescriptiveTest, PercentileIgnoresNonFiniteValues) {
  const std::vector<double> values = {10.0,
                                      std::numeric_limits<double>::quiet_NaN(),
                                      20.0,
                                      std::numeric_limits<double>::infinity(),
                                      30.0,
                                      -std::numeric_limits<double>::infinity(),
                                      40.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 25.0);
  const std::vector<double> all_bad = {std::numeric_limits<double>::quiet_NaN(),
                                       std::numeric_limits<double>::infinity()};
  EXPECT_EQ(Percentile(all_bad, 50.0), 0.0);
}

TEST(DescriptiveTest, MadRobustToOutlier) {
  const std::vector<double> values = {1.0, 1.1, 0.9, 1.05, 0.95, 100.0};
  const double mad = MedianAbsoluteDeviation(values, /*normalized=*/false);
  EXPECT_LT(mad, 0.2);  // The single outlier barely moves the MAD.
  EXPECT_NEAR(MedianAbsoluteDeviation(values, true), mad * 1.4826, 1e-12);
}

TEST(DescriptiveTest, HasNonFinite) {
  EXPECT_FALSE(HasNonFinite(std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(HasNonFinite(std::vector<double>{1.0, std::nan("")}));
  EXPECT_TRUE(HasNonFinite(std::vector<double>{1.0, INFINITY}));
}

// ---------------------------------------------------------------------------
// Welford accumulator.
// ---------------------------------------------------------------------------

TEST(AccumulatorTest, MatchesBatchStatistics) {
  Rng rng(1);
  std::vector<double> values;
  WelfordAccumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    values.push_back(v);
    acc.Add(v);
  }
  EXPECT_NEAR(acc.mean(), Mean(values), 1e-9);
  EXPECT_NEAR(acc.sample_variance(), SampleVariance(values), 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), Min(values));
  EXPECT_DOUBLE_EQ(acc.max(), Max(values));
}

// Property: merging split accumulators equals one accumulator over all data,
// regardless of split point.
class AccumulatorMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(AccumulatorMergeTest, MergeEqualsWhole) {
  const int split = GetParam();
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.Normal(0.0, 5.0));
  }
  WelfordAccumulator whole;
  WelfordAccumulator left;
  WelfordAccumulator right;
  for (int i = 0; i < 200; ++i) {
    whole.Add(values[static_cast<size_t>(i)]);
    (i < split ? left : right).Add(values[static_cast<size_t>(i)]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.sample_variance(), whole.sample_variance(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Splits, AccumulatorMergeTest,
                         ::testing::Values(0, 1, 50, 100, 150, 199, 200));

TEST(AccumulatorTest, NonFiniteInputsAreIgnoredAndTallied) {
  WelfordAccumulator acc;
  acc.Add(1.0);
  acc.Add(std::numeric_limits<double>::quiet_NaN());
  acc.Add(3.0);
  acc.Add(std::numeric_limits<double>::infinity());
  acc.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(acc.count(), 2);
  EXPECT_EQ(acc.ignored_non_finite(), 3);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_TRUE(std::isfinite(acc.sample_variance()));
}

TEST(AccumulatorTest, MergePreservesIgnoredTally) {
  WelfordAccumulator left;
  left.Add(std::numeric_limits<double>::quiet_NaN());
  WelfordAccumulator right;
  right.Add(5.0);
  right.Add(std::numeric_limits<double>::infinity());
  left.Merge(right);
  EXPECT_EQ(left.count(), 1);
  EXPECT_EQ(left.ignored_non_finite(), 2);
  EXPECT_DOUBLE_EQ(left.mean(), 5.0);
  // Merging into a populated accumulator keeps both tallies too.
  WelfordAccumulator other;
  other.Add(7.0);
  other.Add(std::numeric_limits<double>::quiet_NaN());
  left.Merge(other);
  EXPECT_EQ(left.count(), 2);
  EXPECT_EQ(left.ignored_non_finite(), 3);
}

// ---------------------------------------------------------------------------
// Distributions.
// ---------------------------------------------------------------------------

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249979, 1e-5);
}

TEST(DistributionsTest, NormalQuantileRoundTrips) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(DistributionsTest, ChiSquaredKnownValues) {
  // chi2(1): P(X <= 3.841) ~= 0.95; chi2(2): P(X <= 5.991) ~= 0.95.
  EXPECT_NEAR(ChiSquaredCdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredCdf(5.991, 2.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredSurvival(6.635, 1.0), 0.01, 1e-3);
}

TEST(DistributionsTest, StudentTCriticalMatchesTables) {
  // Two-sided alpha=0.05: df=10 -> 2.228, df=30 -> 2.042, df=inf -> 1.960.
  EXPECT_NEAR(StudentTCriticalTwoSided(0.05, 10.0), 2.228, 0.01);
  EXPECT_NEAR(StudentTCriticalTwoSided(0.05, 30.0), 2.042, 0.005);
  EXPECT_NEAR(StudentTCriticalTwoSided(0.05, 1e6), 1.960, 0.001);
  // alpha=0.01, df=20 -> 2.845.
  EXPECT_NEAR(StudentTCriticalTwoSided(0.01, 20.0), 2.845, 0.02);
}

TEST(DistributionsTest, RegularizedGammaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 30.0), 1.0, 1e-10);
}

// ---------------------------------------------------------------------------
// Hypothesis tests.
// ---------------------------------------------------------------------------

TEST(HypothesisTest, WelchDetectsShiftedMeans) {
  Rng rng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.Normal(0.0, 1.0));
    b.push_back(rng.Normal(0.5, 1.0));
  }
  const TTestResult result = WelchTTest(a, b, 0.01);
  EXPECT_TRUE(result.significant);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(HypothesisTest, WelchAcceptsEqualMeans) {
  Rng rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.Normal(1.0, 1.0));
    b.push_back(rng.Normal(1.0, 1.0));
  }
  const TTestResult result = WelchTTest(a, b, 0.01);
  EXPECT_FALSE(result.significant);
}

TEST(HypothesisTest, WelchHandlesTinyGroups) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {2.0, 3.0};
  EXPECT_FALSE(WelchTTest(a, b, 0.05).significant);
}

TEST(HypothesisTest, WelchConstantGroupsDifferentMeans) {
  const std::vector<double> a = {1.0, 1.0, 1.0};
  const std::vector<double> b = {2.0, 2.0, 2.0};
  EXPECT_TRUE(WelchTTest(a, b, 0.05).significant);
}

TEST(HypothesisTest, WelchConstantGroupsRoundingWobbleNotSignificant) {
  // Two constant groups whose levels differ by a ~1e-12 relative wobble:
  // rounding noise, not a regression. The old exact-equality degenerate path
  // called this significant with p = 0. Levels keep >= 3 trailing zero bits
  // in the significand so the 8-term iterative sums (and so the means and
  // variances) are exact and the groups are genuinely zero-variance.
  const double level = 1.0;
  const double wobbled = 1.0 + 0x1p-40;  // ~9.1e-13 relative.
  ASSERT_NE(level, wobbled);
  const std::vector<double> a(8, level);
  const std::vector<double> b(8, wobbled);
  const TTestResult result = WelchTTest(a, b, 0.05);
  EXPECT_FALSE(result.significant);
  EXPECT_EQ(result.p_value, 1.0);
}

TEST(HypothesisTest, WelchConstantGroupsRelativeToleranceScalesWithLevel) {
  // The floor is relative: at a 1e12 level (ns latencies) an 8-ulp gap is
  // ~1e-3 absolute and still must not be significant, while a genuine 1e-6
  // relative step must be. Offsets are multiples of 8 ulps so the constant
  // groups sum exactly (see the wobble test above).
  const double level = 1e12;
  const std::vector<double> a(8, level);
  const std::vector<double> b(8, level + 0x1p-10);  // 8 ulps at this scale.
  EXPECT_FALSE(WelchTTest(a, b, 0.05).significant);
  const std::vector<double> c(8, 1000001000000.0);  // 1e-6 real step.
  EXPECT_TRUE(WelchTTest(a, c, 0.05).significant);
}

TEST(HypothesisTest, LikelihoodRatioPerfectFitOneUlpStepNotSignificant) {
  // Perfect two-segment fit (rss1 == 0) with plateaus 1 ulp apart: the old
  // exact-equality path returned p = 0 for what is float noise.
  // Segment lengths are powers of two so the iterative segment sums (and
  // hence the segment means) are exact and rss1 is exactly zero.
  const double level = 3.0;
  const double wobbled = std::nextafter(level, 4.0);
  std::vector<double> values(16, level);
  for (size_t i = 8; i < values.size(); ++i) {
    values[i] = wobbled;
  }
  const LikelihoodRatioResult result = MeanShiftLikelihoodRatioTest(values, 8, 0.01);
  EXPECT_FALSE(result.significant);
  EXPECT_EQ(result.p_value, 1.0);
}

TEST(HypothesisTest, LikelihoodRatioPerfectFitRealStepStaysSignificant) {
  std::vector<double> values(20, 3.0);
  for (size_t i = 10; i < values.size(); ++i) {
    values[i] = 3.5;
  }
  const LikelihoodRatioResult result = MeanShiftLikelihoodRatioTest(values, 10, 0.01);
  EXPECT_TRUE(result.significant);
  EXPECT_EQ(result.p_value, 0.0);
}

TEST(HypothesisTest, LikelihoodRatioDetectsMeanShift) {
  Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(i < 50 ? 0.0 : 1.0, 0.5));
  }
  const LikelihoodRatioResult result = MeanShiftLikelihoodRatioTest(values, 50, 0.01);
  EXPECT_TRUE(result.significant);
}

TEST(HypothesisTest, LikelihoodRatioAcceptsNoShift) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.Normal(0.0, 0.5));
  }
  const LikelihoodRatioResult result = MeanShiftLikelihoodRatioTest(values, 50, 0.01);
  EXPECT_FALSE(result.significant);
}

TEST(HypothesisTest, LikelihoodRatioRejectsDegenerateSplit) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_FALSE(MeanShiftLikelihoodRatioTest(values, 0, 0.01).significant);
  EXPECT_FALSE(MeanShiftLikelihoodRatioTest(values, 4, 0.01).significant);
}

// Property (Appendix A.2): the smallest detectable shift scales ~ sqrt(1/n).
// With the shift fixed, detection must turn on as n grows.
class DetectionThresholdLawTest : public ::testing::TestWithParam<int> {};

TEST_P(DetectionThresholdLawTest, MoreSamplesDetectSmallerShifts) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(n));
  const double shift = 0.2;  // sigma = 1.
  int detections = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < n; ++i) {
      a.push_back(rng.Normal(0.0, 1.0));
      b.push_back(rng.Normal(shift, 1.0));
    }
    if (WelchTTest(a, b, 0.01).significant) {
      ++detections;
    }
  }
  // Power grows with n: nearly never at n=10, nearly always at n=2000.
  if (n >= 2000) {
    EXPECT_GE(detections, trials - 2);
  }
  if (n <= 10) {
    EXPECT_LE(detections, trials / 3);
  }
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, DetectionThresholdLawTest,
                         ::testing::Values(10, 100, 500, 2000, 5000));

// ---------------------------------------------------------------------------
// Trend statistics.
// ---------------------------------------------------------------------------

TEST(TrendTest, MannKendallDetectsIncreasingTrend) {
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) {
    values.push_back(static_cast<double>(i) * 0.5);
  }
  const MannKendallResult result = MannKendallTest(values, 0.05);
  EXPECT_TRUE(result.significant);
  EXPECT_EQ(result.direction, TrendDirection::kIncreasing);
}

TEST(TrendTest, MannKendallDetectsDecreasingTrend) {
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) {
    values.push_back(-static_cast<double>(i));
  }
  EXPECT_EQ(MannKendallTest(values, 0.05).direction, TrendDirection::kDecreasing);
}

TEST(TrendTest, MannKendallNoTrendOnNoise) {
  Rng rng(6);
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) {
    values.push_back(rng.Normal(0.0, 1.0));
  }
  EXPECT_EQ(MannKendallTest(values, 0.01).direction, TrendDirection::kNone);
}

TEST(TrendTest, MannKendallAllTiesIsNoTrend) {
  const std::vector<double> values(20, 3.0);
  const MannKendallResult result = MannKendallTest(values, 0.05);
  EXPECT_FALSE(result.significant);
  EXPECT_EQ(result.direction, TrendDirection::kNone);
}

TEST(TrendTest, MannKendallShortInputNotSignificant) {
  EXPECT_FALSE(MannKendallTest(std::vector<double>{1.0, 2.0, 3.0}, 0.05).significant);
}

TEST(TheilSenTest, ExactOnPerfectLine) {
  std::vector<double> values;
  for (int i = 0; i < 25; ++i) {
    values.push_back(3.0 + 0.7 * static_cast<double>(i));
  }
  const TheilSenResult result = TheilSenEstimate(values);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.slope, 0.7, 1e-12);
  EXPECT_NEAR(result.intercept, 3.0, 1e-12);
}

// Property: Theil-Sen stays accurate with up to ~25% outliers.
class TheilSenRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(TheilSenRobustnessTest, RobustToOutliers) {
  const int num_outliers = GetParam();
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) {
    values.push_back(1.0 + 0.5 * static_cast<double>(i) + rng.Normal(0.0, 0.05));
  }
  for (int k = 0; k < num_outliers; ++k) {
    values[rng.NextUint64(values.size())] += rng.Uniform(20.0, 50.0);
  }
  const TheilSenResult result = TheilSenEstimate(values);
  EXPECT_NEAR(result.slope, 0.5, 0.1) << "outliers=" << num_outliers;
}

INSTANTIATE_TEST_SUITE_P(OutlierCounts, TheilSenRobustnessTest, ::testing::Values(0, 3, 8, 15));

TEST(TheilSenTest, TooFewPointsInvalid) {
  EXPECT_FALSE(TheilSenEstimate(std::vector<double>{5.0}).valid);
}

// ---------------------------------------------------------------------------
// Correlation / seasonality.
// ---------------------------------------------------------------------------

TEST(CorrelationTest, PearsonPerfectPositive) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(CorrelationTest, PearsonPerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(CorrelationTest, PearsonConstantSeriesIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(CorrelationTest, PearsonWithNonFiniteInputIsZeroNotNan) {
  const std::vector<double> x = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  const std::vector<double> y = {2.0, 4.0, 6.0};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
  const std::vector<double> inf = {1.0, std::numeric_limits<double>::infinity(), 3.0};
  EXPECT_EQ(PearsonCorrelation(inf, y), 0.0);
}

TEST(CorrelationTest, AutocorrelationOfSinePeaksAtPeriod) {
  std::vector<double> values;
  const size_t period = 24;
  for (size_t i = 0; i < 240; ++i) {
    values.push_back(std::sin(2.0 * M_PI * static_cast<double>(i) / period));
  }
  EXPECT_GT(Autocorrelation(values, period), 0.9);
  EXPECT_LT(Autocorrelation(values, period / 2), -0.9);
}

class SeasonalityDetectionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SeasonalityDetectionTest, FindsPlantedPeriod) {
  const size_t period = GetParam();
  Rng rng(8);
  std::vector<double> values;
  for (size_t i = 0; i < period * 12; ++i) {
    values.push_back(std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
                     rng.Normal(0.0, 0.15));
  }
  const SeasonalityEstimate estimate = DetectSeasonality(values, 4, period * 3, 0.3);
  ASSERT_TRUE(estimate.present);
  EXPECT_NEAR(static_cast<double>(estimate.period), static_cast<double>(period),
              static_cast<double>(period) * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Periods, SeasonalityDetectionTest, ::testing::Values(12, 24, 48, 96));

TEST(SeasonalityDetectionTest, NoSeasonalityInWhiteNoise) {
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.Normal(0.0, 1.0));
  }
  EXPECT_FALSE(DetectSeasonality(values, 4, 150, 0.3).present);
}

// ---------------------------------------------------------------------------
// Linear regression and Fourier features.
// ---------------------------------------------------------------------------

TEST(LinRegTest, ExactFitOnLine) {
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) {
    values.push_back(5.0 - 0.25 * static_cast<double>(i));
  }
  const LinearFit fit = FitLine(values);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, -0.25, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-10);
}

TEST(LinRegTest, NoisyLineHasPositiveRmse) {
  Rng rng(10);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i) + rng.Normal(0.0, 2.0));
  }
  const LinearFit fit = FitLine(values);
  EXPECT_GT(fit.rmse, 1.0);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
}

TEST(FourierTest, DominantFrequencyOfSine) {
  std::vector<double> values;
  const size_t n = 128;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(std::sin(2.0 * M_PI * 4.0 * static_cast<double>(i) / n));
  }
  EXPECT_EQ(DominantFrequency(values), 4u);
}

TEST(FourierTest, ConstantSeriesHasNoDominantFrequency) {
  const std::vector<double> values(64, 2.5);
  EXPECT_EQ(DominantFrequency(values), 0u);
}

TEST(FourierTest, MagnitudesVectorHasRequestedLength) {
  const std::vector<double> values = {1.0, 2.0, 1.0, 2.0, 1.0, 2.0};
  EXPECT_EQ(FourierMagnitudes(values, 4).size(), 4u);
  EXPECT_EQ(FourierMagnitudes({}, 4).size(), 4u);
}

// ---------------------------------------------------------------------------
// Text features.
// ---------------------------------------------------------------------------

TEST(TextTest, CosineSimilarityIdenticalIsOne) {
  EXPECT_NEAR(TextCosineSimilarity("FetchUserById", "fetch_user_by_id"), 1.0, 1e-9);
}

TEST(TextTest, CosineSimilarityDisjointIsZero) {
  EXPECT_EQ(TextCosineSimilarity("alpha beta", "gamma delta"), 0.0);
}

TEST(TextTest, CosineSimilarityPartialOverlap) {
  const double similarity = TextCosineSimilarity("tao client fetch", "tao server store");
  EXPECT_GT(similarity, 0.0);
  EXPECT_LT(similarity, 1.0);
}

TEST(TextTest, TfIdfEmbedIsUnitNorm) {
  TfIdfHasher hasher(16);
  hasher.Fit({"service/gcpu/sub_1", "service/gcpu/sub_2", "service/throughput"});
  const std::vector<double> embedding = hasher.Embed("service/gcpu/sub_3");
  double norm = 0.0;
  for (double v : embedding) {
    norm += v * v;
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(TextTest, TfIdfSimilarStringsCloser) {
  TfIdfHasher hasher(32);
  hasher.Fit({"svc/gcpu/sub_10", "svc/gcpu/sub_11", "svc/throughput/endpoint_1"});
  auto dot = [](const std::vector<double>& a, const std::vector<double>& b) {
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      sum += a[i] * b[i];
    }
    return sum;
  };
  const auto base = hasher.Embed("svc/gcpu/sub_10");
  EXPECT_GT(dot(base, hasher.Embed("svc/gcpu/sub_11")),
            dot(base, hasher.Embed("svc/throughput/endpoint_1")));
}

TEST(TextTest, EmptyTermVectorSimilarityIsZero) {
  EXPECT_EQ(CosineSimilarity({}, BuildTermVector({"a"})), 0.0);
}

}  // namespace
}  // namespace fbdetect
