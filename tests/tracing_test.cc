#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/profiling/call_graph.h"
#include "src/tracing/trace.h"
#include "src/tracing/trace_generator.h"

namespace fbdetect {
namespace {

// entry -> {work -> leaf, io}, same shape as the profiling tests.
struct TracedGraph {
  CallGraph graph;
  NodeId entry;
  NodeId work;
  NodeId io;
  NodeId leaf;

  TracedGraph() {
    entry = graph.AddNode({"entry", "Api", 1.0, ""});
    work = graph.AddNode({"work", "Worker", 2.0, ""});
    io = graph.AddNode({"io", "Worker", 3.0, ""});
    leaf = graph.AddNode({"leaf", "Worker", 4.0, ""});
    graph.AddEdge(entry, work, 1.0);
    graph.AddEdge(entry, io, 1.0);
    graph.AddEdge(work, leaf, 1.0);
  }
};

TEST(TraceTest, EndpointCostSumsAllSpans) {
  Trace trace;
  trace.spans = {
      {0, kNoSpan, 0, "entry", 1.0, false},
      {1, 0, 0, "work", 2.0, false},
      {2, 0, 1, "io", 3.0, true},  // Async on another thread.
  };
  EXPECT_DOUBLE_EQ(trace.EndpointCost(), 6.0);
  EXPECT_EQ(trace.ThreadCount(), 2);
  EXPECT_EQ(trace.ChildrenOf(0), (std::vector<SpanId>{1, 2}));
  EXPECT_TRUE(trace.IsWellFormed());
}

TEST(TraceTest, MalformedTraces) {
  Trace empty;
  EXPECT_FALSE(empty.IsWellFormed());
  Trace bad_root;
  bad_root.spans = {{0, 5, 0, "x", 1.0, false}};
  EXPECT_FALSE(bad_root.IsWellFormed());
  Trace forward_parent;
  forward_parent.spans = {{0, kNoSpan, 0, "x", 1.0, false}, {1, 2, 0, "y", 1.0, false}};
  EXPECT_FALSE(forward_parent.IsWellFormed());
}

TEST(TraceGeneratorTest, GeneratesWellFormedTraces) {
  TracedGraph t;
  TraceGenerator generator(&t.graph, {});
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Trace trace = generator.Generate("endpoint_0", t.entry, rng);
    ASSERT_TRUE(trace.IsWellFormed());
    EXPECT_EQ(trace.spans[0].subroutine, "entry");
    EXPECT_EQ(trace.endpoint, "endpoint_0");
  }
}

TEST(TraceGeneratorTest, MeanCostTracksGraphCosts) {
  TracedGraph t;
  TraceGeneratorOptions options;
  options.cost_noise = 0.0;
  TraceGenerator generator(&t.graph, options);
  Rng rng(2);
  // Every edge has weight 1.0 -> every request runs all four subroutines
  // exactly once -> cost is deterministic: 1+2+3+4 = 10.
  const double mean = generator.MeanEndpointCost("e", t.entry, 500, rng);
  EXPECT_NEAR(mean, 10.0, 0.5);
}

TEST(TraceGeneratorTest, RegressionRaisesEndpointCost) {
  TracedGraph t;
  TraceGeneratorOptions options;
  options.cost_noise = 0.05;
  TraceGenerator generator(&t.graph, options);
  Rng rng(3);
  const double before = generator.MeanEndpointCost("e", t.entry, 2000, rng);
  t.graph.ScaleSelfCost(t.leaf, 1.5);  // +50% in leaf.
  const double after = generator.MeanEndpointCost("e", t.entry, 2000, rng);
  EXPECT_NEAR(after - before, 2.0, 0.4);  // leaf 4.0 -> 6.0.
}

TEST(TraceGeneratorTest, AsyncProbabilityControlsThreadFanout) {
  TracedGraph t;
  TraceGeneratorOptions sync_options;
  sync_options.async_probability = 0.0;
  TraceGenerator sync_generator(&t.graph, sync_options);
  TraceGeneratorOptions async_options;
  async_options.async_probability = 1.0;
  TraceGenerator async_generator(&t.graph, async_options);
  Rng rng(4);
  int sync_threads = 0;
  int async_threads = 0;
  for (int i = 0; i < 100; ++i) {
    sync_threads += sync_generator.Generate("e", t.entry, rng).ThreadCount();
    async_threads += async_generator.Generate("e", t.entry, rng).ThreadCount();
  }
  EXPECT_EQ(sync_threads, 100);     // Everything on thread 0.
  EXPECT_GT(async_threads, 300);    // Every child dispatched to a new thread.
}

TEST(TraceGeneratorTest, MaxSpansCapsRunawayTraces) {
  // A wide graph with heavy fan-out must stay within max_spans.
  Rng build_rng(5);
  RandomCallGraphOptions graph_options;
  graph_options.num_subroutines = 200;
  graph_options.max_depth = 6;
  CallGraph graph = GenerateRandomCallGraph(graph_options, build_rng);
  TraceGeneratorOptions options;
  options.max_spans = 64;
  TraceGenerator generator(&graph, options);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const Trace trace = generator.Generate("e", graph.roots()[0], rng);
    EXPECT_LE(trace.spans.size(), 64u);
  }
}

}  // namespace
}  // namespace fbdetect
