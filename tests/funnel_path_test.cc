// Oracle tests for the PR 3 funnel internals: hashed text features, the
// two-pointer AlignedPearson, the flat-buffer SOM, the inverted-index
// PairwiseDedup, and end-to-end funnel determinism across scan_threads.
//
// The `legacy` namespace holds verbatim reconstructions of the pre-change
// implementations (string-materializing grams, hash-map Pearson alignment,
// nested-vector SOM, all-pairs pairwise scan); the new code must reproduce
// their outputs exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/core/fingerprint.h"
#include "src/core/pairwise_dedup.h"
#include "src/core/pipeline.h"
#include "src/core/same_regression_merger.h"
#include "src/core/som.h"
#include "src/core/som_dedup.h"
#include "src/core/workload_config.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/stats/correlation.h"
#include "src/stats/text.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Legacy oracles: the exact pre-change implementations.
// ---------------------------------------------------------------------------
namespace legacy {

uint64_t HashGram(const std::string& gram) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : gram) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::vector<std::string> GramsOf(std::string_view text) {
  std::vector<std::string> grams = CharNgrams(text, 2);
  std::vector<std::string> trigrams = CharNgrams(text, 3);
  grams.insert(grams.end(), trigrams.begin(), trigrams.end());
  return grams;
}

// The string-keyed TF-IDF hasher as it existed before the hashed-gram path.
class TfIdf {
 public:
  explicit TfIdf(size_t dimensions) : dimensions_(dimensions) {}

  void Fit(const std::vector<std::string>& corpus) {
    corpus_size_ = corpus.size();
    document_frequency_.clear();
    for (const std::string& document : corpus) {
      std::unordered_set<std::string> seen;
      for (std::string& gram : GramsOf(document)) {
        seen.insert(std::move(gram));
      }
      for (const std::string& gram : seen) {
        ++document_frequency_[gram];
      }
    }
  }

  std::vector<double> Embed(std::string_view text) const {
    std::vector<double> embedding(dimensions_, 0.0);
    std::unordered_map<std::string, double> counts;
    for (std::string& gram : GramsOf(text)) {
      counts[std::move(gram)] += 1.0;
    }
    for (const auto& [gram, count] : counts) {
      double weight = count;
      if (corpus_size_ > 0) {
        const auto it = document_frequency_.find(gram);
        const double df = it != document_frequency_.end() ? static_cast<double>(it->second) : 0.0;
        weight *= std::log((1.0 + static_cast<double>(corpus_size_)) / (1.0 + df)) + 1.0;
      }
      embedding[HashGram(gram) % dimensions_] += weight;
    }
    double norm = 0.0;
    for (double v : embedding) {
      norm += v * v;
    }
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (double& v : embedding) {
        v /= norm;
      }
    }
    return embedding;
  }

 private:
  size_t dimensions_;
  size_t corpus_size_ = 0;
  std::unordered_map<std::string, size_t> document_frequency_;
};

// Hash-map timestamp alignment + PearsonCorrelation over materialized arrays.
double AlignedPearson(const Regression& a, const Regression& b) {
  if (a.analysis.empty() || b.analysis.empty()) {
    return 0.0;
  }
  std::unordered_map<TimePoint, double> b_by_time;
  const size_t bn = std::min(b.analysis.size(), b.analysis_timestamps.size());
  for (size_t i = 0; i < bn; ++i) {
    b_by_time.emplace(b.analysis_timestamps[i], b.analysis[i]);
  }
  std::vector<double> xs;
  std::vector<double> ys;
  const size_t an = std::min(a.analysis.size(), a.analysis_timestamps.size());
  for (size_t i = 0; i < an; ++i) {
    const auto it = b_by_time.find(a.analysis_timestamps[i]);
    if (it != b_by_time.end()) {
      xs.push_back(a.analysis[i]);
      ys.push_back(it->second);
    }
  }
  if (xs.size() < 8) {
    return 0.0;
  }
  return PearsonCorrelation(xs, ys);
}

// The nested-vector SOM with sequential online training.
class NestedSom {
 public:
  NestedSom(size_t dimensions, int grid, uint64_t seed)
      : dimensions_(dimensions), grid_(std::max(1, grid)) {
    Rng rng(seed);
    cells_.resize(static_cast<size_t>(grid_) * static_cast<size_t>(grid_));
    for (auto& cell : cells_) {
      cell.resize(dimensions_);
      for (double& w : cell) {
        w = rng.Uniform(-0.1, 0.1);
      }
    }
  }

  double Distance2(const std::vector<double>& weights, const std::vector<double>& item) const {
    double d2 = 0.0;
    for (size_t i = 0; i < dimensions_; ++i) {
      const double d = weights[i] - item[i];
      d2 += d * d;
    }
    return d2;
  }

  int BestMatchingUnit(const std::vector<double>& item) const {
    int best = 0;
    double best_d2 = Distance2(cells_[0], item);
    for (size_t c = 1; c < cells_.size(); ++c) {
      const double d2 = Distance2(cells_[c], item);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<int>(c);
      }
    }
    return best;
  }

  void Train(const std::vector<std::vector<double>>& items, const SomTrainConfig& config) {
    if (items.empty()) {
      return;
    }
    Rng rng(config.seed);
    for (auto& cell : cells_) {
      cell = items[rng.NextUint64(items.size())];
    }
    const int epochs = std::max(1, config.epochs);
    const double initial_radius = std::max(1.0, static_cast<double>(grid_) / 2.0);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      const double progress = static_cast<double>(epoch) / static_cast<double>(epochs);
      const double lr = config.initial_learning_rate +
                        (config.final_learning_rate - config.initial_learning_rate) * progress;
      const double radius = std::max(0.5, initial_radius * (1.0 - progress));
      const double radius2 = radius * radius;
      for (const std::vector<double>& item : items) {
        const int bmu = BestMatchingUnit(item);
        const int bmu_row = bmu / grid_;
        const int bmu_col = bmu % grid_;
        for (int row = 0; row < grid_; ++row) {
          for (int col = 0; col < grid_; ++col) {
            const double dr = static_cast<double>(row - bmu_row);
            const double dc = static_cast<double>(col - bmu_col);
            const double grid_d2 = dr * dr + dc * dc;
            if (grid_d2 > radius2) {
              continue;
            }
            const double influence = std::exp(-grid_d2 / (2.0 * radius2));
            std::vector<double>& cell = cells_[static_cast<size_t>(row * grid_ + col)];
            for (size_t i = 0; i < dimensions_; ++i) {
              cell[i] += lr * influence * (item[i] - cell[i]);
            }
          }
        }
      }
    }
  }

  const std::vector<std::vector<double>>& cells() const { return cells_; }

 private:
  size_t dimensions_;
  int grid_;
  std::vector<std::vector<double>> cells_;
};

// The all-pairs pairwise dedup: every candidate scored against every group,
// recomputing text similarity from the metric strings each time.
class PairwiseOracle {
 public:
  explicit PairwiseOracle(PairwiseRule rule = {}, StackOverlapFn overlap = nullptr)
      : rule_(rule), overlap_(std::move(overlap)) {}

  PairwiseScores Score(const Regression& candidate, const RegressionGroup& group) const {
    PairwiseScores scores;
    for (const Regression& member : group.members) {
      scores.pearson = std::max(scores.pearson, legacy::AlignedPearson(candidate, member));
      scores.text = std::max(
          scores.text,
          TextCosineSimilarity(candidate.metric.ToString(), member.metric.ToString()));
      if (overlap_ != nullptr && candidate.metric.kind == MetricKind::kGcpu &&
          member.metric.kind == MetricKind::kGcpu) {
        scores.stack_overlap =
            std::max(scores.stack_overlap, overlap_(candidate.metric, member.metric));
      }
    }
    return scores;
  }

  std::vector<int> Ingest(std::vector<Regression> regressions) {
    std::vector<int> new_groups;
    for (Regression& regression : regressions) {
      int best_group = -1;
      double best_aggregate = 0.0;
      for (size_t g = 0; g < groups_.size(); ++g) {
        const PairwiseScores scores = Score(regression, groups_[g]);
        if (rule_.ShouldMerge(scores) && scores.Aggregate() > best_aggregate) {
          best_aggregate = scores.Aggregate();
          best_group = static_cast<int>(g);
        }
      }
      if (best_group >= 0) {
        groups_[static_cast<size_t>(best_group)].members.push_back(std::move(regression));
        continue;
      }
      RegressionGroup group;
      group.group_id = static_cast<int>(groups_.size());
      group.members.push_back(std::move(regression));
      groups_.push_back(std::move(group));
      new_groups.push_back(groups_.back().group_id);
    }
    return new_groups;
  }

  const std::vector<RegressionGroup>& groups() const { return groups_; }

 private:
  PairwiseRule rule_;
  StackOverlapFn overlap_;
  std::vector<RegressionGroup> groups_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

Regression MakeRegression(const std::string& subroutine, double delta, double baseline,
                          const std::vector<double>& analysis,
                          std::vector<int64_t> causes = {}, size_t timestamp_offset = 0) {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, subroutine, ""};
  regression.change_time = Hours(10);
  regression.change_index = analysis.size() / 2;
  regression.baseline_mean = baseline;
  regression.regressed_mean = baseline + delta;
  regression.delta = delta;
  regression.relative_delta = baseline > 0.0 ? delta / baseline : 0.0;
  regression.analysis = analysis;
  for (size_t i = 0; i < analysis.size(); ++i) {
    regression.analysis_timestamps.push_back(static_cast<TimePoint>(i + timestamp_offset) *
                                             Minutes(10));
  }
  regression.historical.assign(50, baseline);
  regression.candidate_root_causes = std::move(causes);
  return regression;
}

std::vector<double> StepShape(double base, double delta, size_t n, uint64_t seed,
                              double noise = 0.0005) {
  Rng rng(seed);
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) {
    values.push_back((i < n / 2 ? base : base + delta) + rng.Normal(0.0, noise));
  }
  return values;
}

std::vector<std::vector<double>> RandomItems(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> items(n);
  for (auto& item : items) {
    item.resize(dims);
    for (double& v : item) {
      v = rng.Uniform(-1.0, 1.0);
    }
  }
  return items;
}

// ---------------------------------------------------------------------------
// Hashed text features.
// ---------------------------------------------------------------------------

TEST(HashedTextTest, HashGramsOfMatchesLegacyCharNgramHashes) {
  const std::vector<std::string> inputs = {
      "", "a", "ab", "abc", "AB", "TaoClient::fetchUserById",
      "svc/gcpu/sub_17", "aaaa", "x_Y_z", "gcpu|svc|TaoClient_fetch_user|meta/data"};
  for (const std::string& text : inputs) {
    std::map<uint64_t, double> expected;
    for (const std::string& gram : legacy::GramsOf(text)) {
      expected[legacy::HashGram(gram)] += 1.0;
    }
    const HashedGrams grams = HashGramsOf(text);
    // Sorted ascending and distinct.
    for (size_t i = 1; i < grams.size(); ++i) {
      EXPECT_LT(grams[i - 1].hash, grams[i].hash) << text;
    }
    ASSERT_EQ(grams.size(), expected.size()) << text;
    size_t i = 0;
    for (const auto& [hash, count] : expected) {
      EXPECT_EQ(grams[i].hash, hash) << text;
      EXPECT_EQ(grams[i].count, count) << text;
      ++i;
    }
  }
}

TEST(HashedTextTest, TokenVectorCosineBitExactWithTermVectorCosine) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"TaoClient::fetchUserById", "TaoClient::fetchUser"},
      {"alpha_module_run", "zeta_engine_step"},
      {"same_name", "same_name"},
      {"", "something"},
      {"one two two three", "two three three four"},
  };
  for (const auto& [a, b] : pairs) {
    const TokenVector ta = BuildTokenVector(TokenizeIdentifier(a));
    const TokenVector tb = BuildTokenVector(TokenizeIdentifier(b));
    // Counts are small integers, so every dot product / norm is an exact
    // integer-valued double regardless of summation order: bit-exact.
    EXPECT_EQ(CosineSimilarity(ta, tb), TextCosineSimilarity(a, b)) << a << " vs " << b;
  }
}

TEST(HashedTextTest, HashedTfIdfMatchesLegacyStringTfIdf) {
  const std::vector<std::string> corpus = {
      "gcpu|svc|TaoClient_fetch_user|",   "gcpu|svc|TaoClient_fetch_user_by_id|",
      "gcpu|svc|TaoClient_fetch_profile|", "gcpu|svc|zeta_engine_step|",
      "endpoint_cost|svc|api/get_user|",   "gcpu|svc|alpha_module_run|",
      "gcpu|svc|omega|",                   "walltime|svc|api/feed|region/west"};
  constexpr size_t kDims = 8;

  legacy::TfIdf reference(kDims);
  reference.Fit(corpus);

  TfIdfHasher hashed(kDims);
  hashed.Fit(corpus);

  // FitHashed over precomputed gram sets must behave identically to Fit.
  std::vector<HashedGrams> gram_sets;
  for (const std::string& text : corpus) {
    gram_sets.push_back(HashGramsOf(text));
  }
  std::vector<const HashedGrams*> gram_ptrs;
  for (const HashedGrams& grams : gram_sets) {
    gram_ptrs.push_back(&grams);
  }
  TfIdfHasher prehashed(kDims);
  prehashed.FitHashed(gram_ptrs);

  std::vector<double> out(kDims);
  for (size_t d = 0; d < corpus.size(); ++d) {
    const std::vector<double> expected = reference.Embed(corpus[d]);
    const std::vector<double> embedded = hashed.Embed(corpus[d]);
    prehashed.EmbedHashed(gram_sets[d], out);
    ASSERT_EQ(embedded.size(), kDims);
    for (size_t i = 0; i < kDims; ++i) {
      // Same grams, same buckets, same IDF weights; only the accumulation
      // order differs (sorted hashes vs unordered_map iteration).
      EXPECT_NEAR(embedded[i], expected[i], 1e-12) << corpus[d] << " dim " << i;
      // Embed and EmbedHashed walk the identical sorted gram set: bit-exact.
      EXPECT_EQ(out[i], embedded[i]) << corpus[d] << " dim " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// AlignedPearson.
// ---------------------------------------------------------------------------

TEST(AlignedPearsonTest, BitExactWithLegacyHashMapAlignment) {
  const std::vector<double> shape_a = StepShape(0.05, 0.01, 48, 11, 0.002);
  const std::vector<double> shape_b = StepShape(0.05, 0.01, 48, 12, 0.002);

  // Fully aligned windows.
  const Regression a = MakeRegression("a", 0.01, 0.05, shape_a);
  const Regression b = MakeRegression("b", 0.01, 0.05, shape_b);
  EXPECT_EQ(AlignedPearson(a, b), legacy::AlignedPearson(a, b));
  EXPECT_EQ(AlignedPearson(a, a), legacy::AlignedPearson(a, a));

  // Partial overlap: b shifted by 10 ticks.
  const Regression b_shifted = MakeRegression("b", 0.01, 0.05, shape_b, {}, 10);
  EXPECT_EQ(AlignedPearson(a, b_shifted), legacy::AlignedPearson(a, b_shifted));
  EXPECT_EQ(AlignedPearson(b_shifted, a), legacy::AlignedPearson(b_shifted, a));

  // Disjoint windows -> 0 on both paths.
  const Regression b_disjoint = MakeRegression("b", 0.01, 0.05, shape_b, {}, 100);
  EXPECT_EQ(AlignedPearson(a, b_disjoint), 0.0);
  EXPECT_EQ(legacy::AlignedPearson(a, b_disjoint), 0.0);

  // Overlap below 8 points -> 0.
  const Regression b_thin = MakeRegression("b", 0.01, 0.05, shape_b, {}, 43);
  EXPECT_EQ(AlignedPearson(a, b_thin), 0.0);
  EXPECT_EQ(legacy::AlignedPearson(a, b_thin), 0.0);

  // Constant series: still bit-exact with the legacy path (the mean of n
  // equal binary-inexact values is not exactly the value, so the result is a
  // tiny residual, identical on both paths). An exactly-representable
  // constant (0.0) does hit the zero-variance guard.
  const Regression flat = MakeRegression("flat", 0.0, 0.05, std::vector<double>(48, 0.05));
  EXPECT_EQ(AlignedPearson(a, flat), legacy::AlignedPearson(a, flat));
  const Regression zero = MakeRegression("zero", 0.0, 0.0, std::vector<double>(48, 0.0));
  EXPECT_EQ(AlignedPearson(a, zero), legacy::AlignedPearson(a, zero));
  EXPECT_EQ(AlignedPearson(a, zero), 0.0);

  // Irregular (gappy) timestamps on one side: keep every third point of a.
  Regression gappy = a;
  Regression source = a;
  gappy.analysis.clear();
  gappy.analysis_timestamps.clear();
  for (size_t i = 0; i < source.analysis.size(); i += 3) {
    gappy.analysis.push_back(source.analysis[i]);
    gappy.analysis_timestamps.push_back(source.analysis_timestamps[i]);
  }
  EXPECT_EQ(AlignedPearson(gappy, b), legacy::AlignedPearson(gappy, b));

  // Empty analysis -> 0.
  Regression empty = a;
  empty.analysis.clear();
  empty.analysis_timestamps.clear();
  EXPECT_EQ(AlignedPearson(empty, b), 0.0);
}

TEST(AlignedPearsonDeathTest, TruncatedTimestampsFailTheInvariantCheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Regression a = MakeRegression("a", 0.01, 0.05, StepShape(0.05, 0.01, 48, 21));
  const Regression b = MakeRegression("b", 0.01, 0.05, StepShape(0.05, 0.01, 48, 22));
  // Silent truncation used to hide this mismatch; now it must fail loudly.
  a.analysis_timestamps.pop_back();
  EXPECT_DEATH(AlignedPearson(a, b), "FBD_CHECK failed");
  PairwiseDedup dedup;
  EXPECT_DEATH(dedup.Ingest({a}), "FBD_CHECK failed");
}

// ---------------------------------------------------------------------------
// Flat SOM.
// ---------------------------------------------------------------------------

TEST(FlatSomTest, OnlineTrainingMatchesLegacyNestedSom) {
  constexpr size_t kDims = 7;
  constexpr int kGrid = 3;
  constexpr uint64_t kSeed = 99;
  const std::vector<std::vector<double>> items = RandomItems(40, kDims, 5);

  legacy::NestedSom reference(kDims, kGrid, kSeed);
  SelfOrganizingMap som(kDims, kGrid, kSeed);

  // Identical RNG stream in the constructor.
  const std::span<const double> weights = som.weights();
  ASSERT_EQ(weights.size(), reference.cells().size() * kDims);
  for (size_t c = 0; c < reference.cells().size(); ++c) {
    for (size_t i = 0; i < kDims; ++i) {
      EXPECT_EQ(weights[c * kDims + i], reference.cells()[c][i]);
    }
  }

  // Identical training trajectory (same init stream, same update order).
  SomTrainConfig config;
  reference.Train(items, config);
  som.Train(items, config);
  for (size_t c = 0; c < reference.cells().size(); ++c) {
    for (size_t i = 0; i < kDims; ++i) {
      EXPECT_EQ(som.weights()[c * kDims + i], reference.cells()[c][i]) << c << "," << i;
    }
  }
  for (const std::vector<double>& item : items) {
    EXPECT_EQ(som.BestMatchingUnit(item), reference.BestMatchingUnit(item));
  }
}

TEST(FlatSomTest, FlatAndNestedContainersTrainIdentically) {
  constexpr size_t kDims = 5;
  const std::vector<std::vector<double>> items = RandomItems(30, kDims, 17);
  FlatMatrix flat;
  flat.Resize(items.size(), kDims);
  for (size_t r = 0; r < items.size(); ++r) {
    std::copy(items[r].begin(), items[r].end(), flat.mutable_row(r).begin());
  }

  for (const bool batch : {false, true}) {
    SomTrainConfig config;
    config.batch = batch;
    SelfOrganizingMap from_nested(kDims, 3, 42);
    SelfOrganizingMap from_flat(kDims, 3, 42);
    from_nested.Train(items, config);
    from_flat.Train(flat, config);
    ASSERT_EQ(from_nested.weights().size(), from_flat.weights().size());
    for (size_t i = 0; i < from_nested.weights().size(); ++i) {
      EXPECT_EQ(from_nested.weights()[i], from_flat.weights()[i]) << "batch=" << batch;
    }
  }
}

TEST(FlatSomTest, BatchTrainingIdenticalForAnyPoolSize) {
  constexpr size_t kDims = 6;
  const std::vector<std::vector<double>> items = RandomItems(50, kDims, 23);
  FlatMatrix flat;
  flat.Resize(items.size(), kDims);
  for (size_t r = 0; r < items.size(); ++r) {
    std::copy(items[r].begin(), items[r].end(), flat.mutable_row(r).begin());
  }
  SomTrainConfig config;
  config.batch = true;

  SelfOrganizingMap serial(kDims, 3, 7);
  serial.Train(flat, config, nullptr);
  std::vector<int> serial_assign(flat.rows);
  serial.Assign(flat, serial_assign, nullptr);

  for (const size_t workers : {size_t{1}, size_t{7}}) {
    ThreadPool pool(workers);
    SelfOrganizingMap parallel(kDims, 3, 7);
    parallel.Train(flat, config, &pool);
    ASSERT_EQ(parallel.weights().size(), serial.weights().size());
    for (size_t i = 0; i < serial.weights().size(); ++i) {
      EXPECT_EQ(parallel.weights()[i], serial.weights()[i]) << "workers=" << workers;
    }
    std::vector<int> parallel_assign(flat.rows);
    parallel.Assign(flat, parallel_assign, &pool);
    EXPECT_EQ(parallel_assign, serial_assign) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// PairwiseDedup: indexed ingest vs the all-pairs oracle.
// ---------------------------------------------------------------------------

// Three batches mixing correlated shapes, related names, unrelated names, and
// a non-gCPU metric kind.
std::vector<std::vector<Regression>> PairwiseWorkload() {
  std::vector<std::vector<Regression>> batches(3);
  batches[0].push_back(MakeRegression("TaoClient_fetch_user", 0.01, 0.05,
                                      StepShape(0.05, 0.01, 48, 500, 0.0001)));
  batches[0].push_back(MakeRegression("zeta_engine_step", 0.02, 0.06,
                                      StepShape(0.06, 0.02, 48, 501, 0.003)));
  Regression endpoint = MakeRegression("api/get_user", 0.05, 0.2,
                                       StepShape(0.2, 0.05, 48, 502, 0.001));
  endpoint.metric.kind = MetricKind::kEndpointCost;
  batches[0].push_back(endpoint);

  batches[1].push_back(MakeRegression("TaoClient_fetch_user_by_id", 0.01, 0.05,
                                      StepShape(0.05, 0.01, 48, 500, 0.0001)));
  batches[1].push_back(MakeRegression("alpha_module_run", 0.01, 0.05,
                                      StepShape(0.05, 0.01, 48, 503, 0.002)));
  batches[1].push_back(MakeRegression("omega", 0.01, 0.05,
                                      StepShape(0.05, 0.01, 48, 500, 0.0001)));

  batches[2].push_back(MakeRegression("TaoClient_fetch_profile", 0.01, 0.05,
                                      StepShape(0.05, 0.01, 48, 500, 0.0001)));
  batches[2].push_back(MakeRegression("zeta_engine_warmup", 0.02, 0.06,
                                      StepShape(0.06, 0.02, 48, 501, 0.003)));
  Regression endpoint2 = MakeRegression("api/get_user_by_id", 0.05, 0.2,
                                        StepShape(0.2, 0.05, 48, 502, 0.001));
  endpoint2.metric.kind = MetricKind::kEndpointCost;
  batches[2].push_back(endpoint2);
  return batches;
}

void ExpectSameGroups(const std::vector<RegressionGroup>& expected,
                      const std::vector<RegressionGroup>& actual, const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(expected[g].group_id, actual[g].group_id) << label;
    ASSERT_EQ(expected[g].members.size(), actual[g].members.size()) << label << " group " << g;
    for (size_t m = 0; m < expected[g].members.size(); ++m) {
      EXPECT_EQ(expected[g].members[m].metric, actual[g].members[m].metric)
          << label << " group " << g << " member " << m;
    }
  }
}

void RunPairwiseOracleComparison(const PairwiseRule& rule, StackOverlapFn overlap,
                                 const std::string& label) {
  const std::vector<std::vector<Regression>> batches = PairwiseWorkload();

  legacy::PairwiseOracle oracle(rule, overlap);
  PairwiseDedup serial(rule, overlap);
  PairwiseDedup parallel(rule, overlap);
  ThreadPool pool(3);
  const FingerprintConfig fp_config{0, 0, /*som_features=*/false};

  for (const std::vector<Regression>& batch : batches) {
    const std::vector<int> expected_new = oracle.Ingest(batch);
    const std::vector<int> serial_new = serial.Ingest(batch);
    EXPECT_EQ(serial_new, expected_new) << label;

    std::vector<FunnelCandidate> candidates(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      candidates[i].fingerprint = ComputeFingerprint(batch[i], fp_config);
      candidates[i].regression = batch[i];
    }
    const std::vector<int> parallel_new = parallel.Ingest(std::move(candidates), &pool);
    EXPECT_EQ(parallel_new, expected_new) << label;
  }
  ExpectSameGroups(oracle.groups(), serial.groups(), label + " serial");
  ExpectSameGroups(oracle.groups(), parallel.groups(), label + " parallel");
}

TEST(PairwiseIngestTest, TokenIndexPruningMatchesAllPairsOracle) {
  RunPairwiseOracleComparison(PairwiseRule{}, nullptr, "default rule, no overlap");
}

TEST(PairwiseIngestTest, GcpuOverlapClauseMatchesAllPairsOracle) {
  // Symmetric, thread-safe overlap: high for single-token names (alpha_module
  // vs omega share no tokens, so only this clause can merge them).
  StackOverlapFn overlap = [](const MetricId& a, const MetricId& b) {
    return a.entity.find('_') == std::string::npos && b.entity.find('_') == std::string::npos
               ? 0.9
               : 0.1;
  };
  PairwiseRule rule;
  rule.min_text = 0.99;  // Force merges through the overlap clause.
  RunPairwiseOracleComparison(rule, overlap, "overlap clause");
}

TEST(PairwiseIngestTest, NonExclusionaryRuleDisablesPruningAndMatchesOracle) {
  // min_text = 0 means Pearson alone can merge, so the index must not prune:
  // groups sharing no token with the candidate still get scored.
  PairwiseRule rule;
  rule.min_text = 0.0;
  RunPairwiseOracleComparison(rule, nullptr, "non-exclusionary rule");
}

TEST(PairwiseIngestTest, CompatScoreMatchesIngestDecisions) {
  // The public Score (string-recomputing) must agree with the fingerprint
  // path used inside Ingest.
  PairwiseDedup dedup;
  const Regression first = MakeRegression("TaoClient_fetch_user", 0.01, 0.05,
                                          StepShape(0.05, 0.01, 48, 800, 0.0001));
  dedup.Ingest({first});
  const Regression probe = MakeRegression("TaoClient_fetch_user_by_id", 0.01, 0.05,
                                          StepShape(0.05, 0.01, 48, 800, 0.0001));
  const PairwiseScores scores = dedup.Score(probe, dedup.groups()[0]);

  legacy::PairwiseOracle oracle;
  oracle.Ingest({first});
  const PairwiseScores expected = oracle.Score(probe, oracle.groups()[0]);
  EXPECT_EQ(scores.pearson, expected.pearson);
  EXPECT_EQ(scores.text, expected.text);
  EXPECT_EQ(scores.stack_overlap, expected.stack_overlap);
}

// ---------------------------------------------------------------------------
// SameRegressionMerger: fingerprint path vs string path.
// ---------------------------------------------------------------------------

TEST(SameRegressionMergerTest, CandidatePathMatchesRegressionPath) {
  std::vector<Regression> regressions;
  regressions.push_back(MakeRegression("sub_a", 0.01, 0.05, StepShape(0.05, 0.01, 16, 1)));
  regressions.push_back(MakeRegression("sub_a", 0.01, 0.05, StepShape(0.05, 0.01, 16, 2)));
  regressions.push_back(MakeRegression("sub_b", 0.01, 0.05, StepShape(0.05, 0.01, 16, 3)));
  regressions[1].change_time = regressions[0].change_time + Minutes(5);  // Duplicate.
  regressions.push_back(regressions[0]);
  regressions.back().change_time += Days(1);  // Same metric, far-away change.

  SameRegressionMerger by_string(Hours(1));
  const std::vector<Regression> admitted_regressions = by_string.Filter(regressions);

  std::vector<FunnelCandidate> candidates(regressions.size());
  const FingerprintConfig fp_config{4, 8, true};
  for (size_t i = 0; i < regressions.size(); ++i) {
    candidates[i].fingerprint = ComputeFingerprint(regressions[i], fp_config);
    candidates[i].regression = regressions[i];
  }
  SameRegressionMerger by_fingerprint(Hours(1));
  const std::vector<FunnelCandidate> admitted_candidates =
      by_fingerprint.Filter(std::move(candidates));

  ASSERT_EQ(admitted_candidates.size(), admitted_regressions.size());
  for (size_t i = 0; i < admitted_regressions.size(); ++i) {
    EXPECT_EQ(admitted_candidates[i].regression.metric, admitted_regressions[i].metric);
    EXPECT_EQ(admitted_candidates[i].regression.change_time,
              admitted_regressions[i].change_time);
  }
}

// ---------------------------------------------------------------------------
// SOMDedup: candidate path vs regression path.
// ---------------------------------------------------------------------------

TEST(SomDedupFunnelTest, CandidatePathMatchesRegressionPathForAnyPoolSize) {
  std::vector<Regression> regressions;
  for (int i = 0; i < 12; ++i) {
    regressions.push_back(MakeRegression("caller_" + std::to_string(i), 0.01, 0.05,
                                         StepShape(0.05, 0.01, 48, 900 + i), {7}));
  }
  regressions.push_back(MakeRegression("sub_huge", 0.5, 0.2, StepShape(0.2, 0.5, 48, 950), {9}));

  const SomDedup dedup;
  const std::vector<Regression> reference = dedup.Deduplicate(regressions);

  const SomDedupConfig config;
  const FingerprintConfig fp_config{config.fourier_coefficients, config.root_cause_bitmap_dims,
                                    true};
  for (const size_t workers : {size_t{0}, size_t{3}}) {
    std::vector<FunnelCandidate> candidates(regressions.size());
    for (size_t i = 0; i < regressions.size(); ++i) {
      candidates[i].fingerprint = ComputeFingerprint(regressions[i], fp_config);
      candidates[i].regression = regressions[i];
    }
    ThreadPool pool(workers);
    const std::vector<FunnelCandidate> result =
        dedup.Deduplicate(std::move(candidates), workers == 0 ? nullptr : &pool);
    ASSERT_EQ(result.size(), reference.size()) << "workers=" << workers;
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(result[i].regression.metric, reference[i].metric) << "workers=" << workers;
      EXPECT_EQ(result[i].regression.som_cluster, reference[i].som_cluster);
      EXPECT_EQ(result[i].regression.merged_count, reference[i].merged_count);
      EXPECT_EQ(result[i].regression.importance, reference[i].importance);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end funnel determinism.
// ---------------------------------------------------------------------------

// Compact single-service world (same construction as pipeline_test.cc).
struct World {
  FleetSimulator fleet;
  ServiceSimulator* service = nullptr;
  std::string regressed_subroutine;

  static constexpr Duration kDuration = Days(4);

  explicit World(uint64_t seed) {
    ServiceConfig config;
    config.name = "svc";
    config.num_servers = 200;
    config.call_graph.num_subroutines = 80;
    config.sampling.samples_per_bucket = 2000000;
    config.sampling.bucket_width = Minutes(10);
    config.tick = Minutes(10);
    config.num_seasonal_subroutines = 10;
    config.seasonal_mix_amplitude = 0.10;
    config.seed = seed;
    service = fleet.AddService(config);

    const CallGraph& graph = service->graph();
    const std::vector<double> reach = graph.ReachProbabilities();
    std::vector<NodeId> mid;
    for (size_t i = 0; i < reach.size(); ++i) {
      if (reach[i] > 0.003 && reach[i] < 0.10 && graph.edges(static_cast<NodeId>(i)).empty()) {
        mid.push_back(static_cast<NodeId>(i));
      }
    }
    regressed_subroutine = graph.node(mid[0]).name;

    InjectedEvent regression;
    regression.kind = EventKind::kStepRegression;
    regression.service = "svc";
    regression.subroutine = regressed_subroutine;
    regression.start = Days(2) + Hours(13);
    regression.magnitude = 0.4;
    Commit commit;
    commit.time = regression.start - Minutes(20);
    commit.title = "Add extra processing to " + regressed_subroutine;
    commit.description = "Expands validation in " + regressed_subroutine;
    commit.touched_subroutines = {regressed_subroutine};
    fleet.InjectEvent(regression, &commit);

    fleet.Run(0, kDuration);
  }

  PipelineOptions Options() const {
    PipelineOptions options;
    options.detection.threshold = 0.0005;
    options.detection.windows.historical = Days(2);
    options.detection.windows.analysis = Hours(4);
    options.detection.windows.extended = Hours(2);
    options.detection.rerun_interval = Hours(4);
    return options;
  }
};

void ExpectSameFunnel(const FunnelStats& a, const FunnelStats& b, const std::string& label) {
  EXPECT_EQ(a.change_points, b.change_points) << label;
  EXPECT_EQ(a.after_went_away, b.after_went_away) << label;
  EXPECT_EQ(a.after_seasonality, b.after_seasonality) << label;
  EXPECT_EQ(a.after_threshold, b.after_threshold) << label;
  EXPECT_EQ(a.after_same_merger, b.after_same_merger) << label;
  EXPECT_EQ(a.after_som_dedup, b.after_som_dedup) << label;
  EXPECT_EQ(a.after_cost_shift, b.after_cost_shift) << label;
  EXPECT_EQ(a.after_pairwise, b.after_pairwise) << label;
}

TEST(FunnelDeterminismTest, ReportsAndCountersByteIdenticalAcrossScanThreads) {
  World world(6);
  CallGraphCodeInfo code_info(&world.service->graph());

  PipelineOptions options = world.Options();
  options.scan_threads = 1;
  Pipeline reference(&world.fleet.db(), &world.fleet.change_log(), &code_info, options);
  const std::vector<Regression> reference_reports =
      reference.RunPeriod("svc", Days(2), World::kDuration);
  ASSERT_FALSE(reference_reports.empty());

  for (const int threads : {2, 8}) {
    PipelineOptions parallel_options = world.Options();
    parallel_options.scan_threads = threads;
    Pipeline parallel(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                      parallel_options);
    const std::vector<Regression> reports =
        parallel.RunPeriod("svc", Days(2), World::kDuration);
    const std::string label = "scan_threads=" + std::to_string(threads);

    ASSERT_EQ(reports.size(), reference_reports.size()) << label;
    for (size_t i = 0; i < reports.size(); ++i) {
      const Regression& expected = reference_reports[i];
      const Regression& actual = reports[i];
      EXPECT_EQ(actual.metric, expected.metric) << label;
      EXPECT_EQ(actual.long_term, expected.long_term) << label;
      EXPECT_EQ(actual.detected_at, expected.detected_at) << label;
      EXPECT_EQ(actual.change_time, expected.change_time) << label;
      EXPECT_EQ(actual.change_index, expected.change_index) << label;
      EXPECT_EQ(actual.baseline_mean, expected.baseline_mean) << label;
      EXPECT_EQ(actual.regressed_mean, expected.regressed_mean) << label;
      EXPECT_EQ(actual.delta, expected.delta) << label;
      EXPECT_EQ(actual.relative_delta, expected.relative_delta) << label;
      EXPECT_EQ(actual.p_value, expected.p_value) << label;
      EXPECT_EQ(actual.analysis, expected.analysis) << label;
      EXPECT_EQ(actual.analysis_timestamps, expected.analysis_timestamps) << label;
      EXPECT_EQ(actual.candidate_root_causes, expected.candidate_root_causes) << label;
      EXPECT_EQ(actual.importance, expected.importance) << label;
      EXPECT_EQ(actual.som_cluster, expected.som_cluster) << label;
      EXPECT_EQ(actual.merged_count, expected.merged_count) << label;
      ASSERT_EQ(actual.root_causes.size(), expected.root_causes.size()) << label;
      for (size_t c = 0; c < expected.root_causes.size(); ++c) {
        EXPECT_EQ(actual.root_causes[c].commit_id, expected.root_causes[c].commit_id) << label;
        EXPECT_EQ(actual.root_causes[c].score, expected.root_causes[c].score) << label;
      }
    }
    ExpectSameFunnel(reference.short_term_funnel(), parallel.short_term_funnel(),
                     label + " short");
    ExpectSameFunnel(reference.long_term_funnel(), parallel.long_term_funnel(),
                     label + " long");
    ASSERT_EQ(parallel.groups().size(), reference.groups().size()) << label;
    for (size_t g = 0; g < reference.groups().size(); ++g) {
      EXPECT_EQ(parallel.groups()[g].members.size(), reference.groups()[g].members.size())
          << label;
    }
  }
}

}  // namespace
}  // namespace fbdetect
