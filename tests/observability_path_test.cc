// End-to-end acceptance tests for the pipeline's self-observability layer
// (DESIGN.md §12): deterministic counters must be byte-identical for any
// scan_threads value, per-stage attrition counters must reconcile exactly
// with the funnel, survivors, and quarantine totals, and each re-run must
// emit a well-formed trace whose spans cover every Fig. 6 stage. Plus unit
// tests for the registry, histogram, StageTimer, and export formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pipeline.h"
#include "src/fleet/fault_injector.h"
#include "src/fleet/fleet.h"
#include "src/fleet/service.h"
#include "src/observe/telemetry.h"
#include "src/observe/telemetry_export.h"
#include "src/report/report.h"
#include "src/tracing/trace.h"
#include "src/tsdb/database.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// Instrument unit tests.
// ---------------------------------------------------------------------------

TEST(TelemetryHistogramTest, BucketsAreLogSpaced) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything past the covered range lands in the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1), UINT64_MAX);

  Histogram histogram;
  histogram.Record(0);
  histogram.Record(5);
  histogram.Record(5);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 10u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(3), 2u);
}

TEST(TelemetryRegistryTest, HandlesAreStableAndSnapshotsAreNameSorted) {
  TelemetryRegistry registry(/*enabled=*/true);
  Counter* b = registry.GetCounter("b.count");
  Counter* a = registry.GetCounter("a.count", CounterStability::kRuntime);
  Histogram* h = registry.GetHistogram("z.wall_ns");
  EXPECT_EQ(registry.GetCounter("b.count"), b);  // Same name, same handle.
  EXPECT_EQ(registry.GetHistogram("z.wall_ns"), h);
  b->Add(3);
  a->Increment();
  h->Record(100);

  const std::vector<CounterSnapshot> counters = registry.SnapshotCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "a.count");
  EXPECT_EQ(counters[0].value, 1u);
  EXPECT_EQ(counters[0].stability, CounterStability::kRuntime);
  EXPECT_EQ(counters[1].name, "b.count");
  EXPECT_EQ(counters[1].value, 3u);
  const std::vector<HistogramSnapshot> histograms = registry.SnapshotHistograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].name, "z.wall_ns");
  EXPECT_EQ(histograms[0].count, 1u);

  registry.Reset();
  EXPECT_EQ(b->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.counter_count(), 2u);  // Names survive a reset.
}

TEST(TelemetryRegistryTest, ConcurrentRegistrationIsSafeAndConverges) {
  TelemetryRegistry registry(/*enabled=*/true);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 64; ++i) {
        registry.GetCounter("shared.counter." + std::to_string(i % 16))->Increment();
        registry.GetHistogram("shared.histogram")->Record(1);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(registry.counter_count(), 16u);
  EXPECT_EQ(registry.histogram_count(), 1u);
  uint64_t total = 0;
  for (const CounterSnapshot& counter : registry.SnapshotCounters()) {
    total += counter.value;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 64u);
  EXPECT_EQ(registry.GetHistogram("shared.histogram")->count(),
            static_cast<uint64_t>(kThreads) * 64u);
}

TEST(StageTimerTest, RecordsIntoHistogramsAndNullIsFree) {
  Histogram wall;
  Histogram cpu;
  {
    StageTimer timer(&wall, &cpu);
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) {
      sink += static_cast<uint64_t>(i);
    }
  }
  EXPECT_EQ(wall.count(), 1u);
  EXPECT_EQ(cpu.count(), 1u);
  { StageTimer disabled(nullptr, nullptr); }
  EXPECT_EQ(wall.count(), 1u);  // Null timers record nothing anywhere.
}

TEST(TelemetryExportTest, JsonSeparatesDeterministicFromRuntime) {
  TelemetryRegistry registry(/*enabled=*/true);
  registry.GetCounter("stage.in")->Add(7);
  registry.GetCounter("pool.batches", CounterStability::kRuntime)->Add(3);
  registry.GetHistogram("stage.wall_ns")->Record(1000);

  const std::string deterministic = RenderTelemetryJson(registry, /*include_runtime=*/false);
  EXPECT_NE(deterministic.find("\"stage.in\": 7"), std::string::npos) << deterministic;
  EXPECT_EQ(deterministic.find("pool.batches"), std::string::npos) << deterministic;
  EXPECT_EQ(deterministic.find("histograms"), std::string::npos) << deterministic;

  const std::string full = RenderTelemetryJson(registry, /*include_runtime=*/true);
  EXPECT_NE(full.find("\"pool.batches\": 3"), std::string::npos) << full;
  EXPECT_NE(full.find("\"stage.wall_ns\""), std::string::npos) << full;

  const std::string prometheus = RenderTelemetryPrometheus(registry);
  EXPECT_NE(prometheus.find("fbd_stage_in 7"), std::string::npos) << prometheus;
  EXPECT_NE(prometheus.find("fbd_stage_wall_ns_count 1"), std::string::npos) << prometheus;
  EXPECT_NE(prometheus.find("le=\"+Inf\""), std::string::npos) << prometheus;
}

// ---------------------------------------------------------------------------
// Pipeline integration: a small deterministic fleet with injected
// regressions (so the funnel is non-trivially populated) and a pinch of
// faults (so the quarantine counters are exercised).
// ---------------------------------------------------------------------------

constexpr Duration kTick = Minutes(10);
constexpr TimePoint kDataEnd = Days(2);
constexpr TimePoint kRunBegin = Hours(27);

ServiceConfig SmallServiceConfig() {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 30;
  config.call_graph.num_subroutines = 30;
  config.sampling.samples_per_bucket = 500000;
  config.sampling.bucket_width = kTick;
  config.tick = kTick;
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.seasonal_load_amplitude = 0.0;
  config.seed = 7;
  return config;
}

PipelineOptions ObservedOptions(int scan_threads) {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(3);
  options.scan_threads = scan_threads;
  options.telemetry.enabled = true;
  return options;
}

// A fresh fleet per call (the TSDB's tier counters are cumulative, so
// sharing one database across pipelines would skew the mirrors): ingest is
// deterministic, so every fleet built here holds byte-identical data. Two
// step regressions make the funnel non-trivial; a 2% fault rate populates
// the sanitizer/quarantine counters.
std::unique_ptr<FleetSimulator> BuildObservedFleet(FaultInjector* injector) {
  auto fleet = std::make_unique<FleetSimulator>();
  const ServiceConfig config = SmallServiceConfig();
  fleet->AddService(config);
  const ServiceSimulator probe(config);
  int injected = 0;
  for (size_t i = 0; i < probe.graph().node_count() && injected < 2; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (!probe.graph().edges(id).empty()) {
      continue;  // Leaves only: their cost moves their whole ancestor chain.
    }
    InjectedEvent event;
    event.kind = EventKind::kStepRegression;
    event.service = config.name;
    event.subroutine = probe.graph().node(id).name;
    event.start = Hours(36);
    event.magnitude = 0.5;
    fleet->InjectEvent(event);
    ++injected;
  }
  FleetIngestOptions options;
  options.threads = 2;
  options.flush_points = 1024;
  options.fault_injector = injector;
  fleet->Run(-kTick, kDataEnd, options);
  return fleet;
}

struct ObservedRun {
  std::unique_ptr<FleetSimulator> fleet;
  std::unique_ptr<Pipeline> pipeline;
  std::vector<Regression> reports;
};

ObservedRun RunObserved(int scan_threads, bool with_faults) {
  ObservedRun run;
  FaultInjector injector(FaultInjectorConfig::AllKinds(0.02, /*seed=*/11));
  run.fleet = BuildObservedFleet(with_faults ? &injector : nullptr);
  run.pipeline = std::make_unique<Pipeline>(&run.fleet->db(), nullptr, nullptr,
                                            ObservedOptions(scan_threads));
  run.reports = run.pipeline->RunPeriod("svc", kRunBegin, kDataEnd);
  return run;
}

uint64_t CounterValue(const TelemetryRegistry& registry, const std::string& name) {
  for (const CounterSnapshot& counter : registry.SnapshotCounters()) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  ADD_FAILURE() << "counter not registered: " << name;
  return 0;
}

TEST(ObservabilityPathTest, DeterministicCountersAreByteIdenticalAcrossScanThreads) {
  const ObservedRun baseline = RunObserved(1, /*with_faults=*/true);
  const std::string expected =
      RenderTelemetryJson(baseline.pipeline->telemetry(), /*include_runtime=*/false);
  // Non-vacuous: the funnel actually produced reports and scanned series.
  EXPECT_FALSE(baseline.reports.empty());
  EXPECT_GT(CounterValue(baseline.pipeline->telemetry(), "pipeline.scan.series_in"), 0u);
  for (const int threads : {2, 8}) {
    const ObservedRun repeat = RunObserved(threads, /*with_faults=*/true);
    EXPECT_EQ(RenderTelemetryJson(repeat.pipeline->telemetry(), /*include_runtime=*/false),
              expected)
        << "scan_threads=" << threads;
  }
}

TEST(ObservabilityPathTest, AttritionCountersReconcileExactly) {
  const ObservedRun run = RunObserved(2, /*with_faults=*/true);
  const TelemetryRegistry& registry = run.pipeline->telemetry();
  const auto value = [&registry](const char* name) { return CounterValue(registry, name); };

  // Scan accounting: every series entering a re-run is classified exactly
  // once — no data, decode failure, quarantined, or scanned by stage 1.
  EXPECT_EQ(value("pipeline.scan.series_in"),
            value("pipeline.scan.series_no_data") +
                value("pipeline.scan.series_decode_failures") +
                value("pipeline.scan.windows_quarantined") +
                value("pipeline.stage.change_point.in"));

  // Stage N's output is exactly stage N+1's input, down the short-term path.
  EXPECT_EQ(value("pipeline.stage.change_point.out"), value("pipeline.stage.went_away.in"));
  EXPECT_EQ(value("pipeline.stage.went_away.out"), value("pipeline.stage.seasonality.in"));
  EXPECT_EQ(value("pipeline.stage.seasonality.out"), value("pipeline.stage.threshold.in"));

  // Both paths' survivors meet at the fingerprint stage.
  EXPECT_EQ(value("pipeline.stage.fingerprint.in"),
            value("pipeline.stage.threshold.out") + value("pipeline.stage.long_term.out"));

  // The funnel chain, through to the reported regressions.
  EXPECT_EQ(value("pipeline.stage.fingerprint.out"),
            value("pipeline.stage.same_regression_merger.in"));
  EXPECT_EQ(value("pipeline.stage.same_regression_merger.out"),
            value("pipeline.stage.som_dedup.in"));
  EXPECT_EQ(value("pipeline.stage.som_dedup.out"), value("pipeline.stage.cost_shift.in"));
  EXPECT_EQ(value("pipeline.stage.cost_shift.out"), value("pipeline.stage.pairwise_dedup.in"));
  EXPECT_EQ(value("pipeline.stage.pairwise_dedup.out"), value("pipeline.reported"));
  EXPECT_EQ(value("pipeline.reported"), static_cast<uint64_t>(run.reports.size()));

  // Telemetry agrees with the pre-existing FunnelStats rows.
  const FunnelStats& short_funnel = run.pipeline->short_term_funnel();
  EXPECT_EQ(value("pipeline.stage.change_point.out"), short_funnel.change_points);
  EXPECT_EQ(value("pipeline.stage.went_away.out"), short_funnel.after_went_away);
  EXPECT_EQ(value("pipeline.stage.seasonality.out"), short_funnel.after_seasonality);
  EXPECT_EQ(value("pipeline.stage.threshold.out"), short_funnel.after_threshold);

  // Quarantine totals reconcile with the report: every quarantined window in
  // the report came from the sanitizer gate, a decode failure, or an
  // isolated detector exception.
  const QuarantineReport quarantine = run.pipeline->quarantine_report();
  EXPECT_EQ(quarantine.total_windows_quarantined(),
            value("pipeline.scan.windows_quarantined") +
                value("pipeline.scan.series_decode_failures") +
                value("pipeline.scan.detector_exceptions"));
  EXPECT_GT(value("pipeline.scan.windows_quarantined"), 0u);  // Faults landed.

  // Sanitizer verdicts partition the inspected windows.
  EXPECT_EQ(value("pipeline.sanitizer.verdict_ok") + value("pipeline.sanitizer.verdict_gappy") +
                value("pipeline.sanitizer.verdict_flapping") +
                value("pipeline.sanitizer.verdict_corrupt"),
            value("pipeline.scan.series_in") - value("pipeline.scan.series_no_data") -
                value("pipeline.scan.series_decode_failures"));
}

TEST(ObservabilityPathTest, TracesCoverEveryFunnelStage) {
  const ObservedRun run = RunObserved(2, /*with_faults=*/false);
  const std::vector<Trace>& traces = run.pipeline->run_traces();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces.size(), CounterValue(run.pipeline->telemetry(), "pipeline.runs"));

  const char* kExpectedStages[] = {
      "pipeline.stage.change_point", "pipeline.stage.went_away",
      "pipeline.stage.seasonality",  "pipeline.stage.threshold",
      "pipeline.stage.long_term",    "pipeline.stage.fingerprint",
      "pipeline.stage.same_regression_merger", "pipeline.stage.som_dedup",
      "pipeline.stage.cost_shift",   "pipeline.stage.pairwise_dedup",
      "pipeline.stage.root_cause"};
  for (const Trace& trace : traces) {
    EXPECT_TRUE(trace.IsWellFormed());
    EXPECT_EQ(trace.endpoint, "svc");
    ASSERT_GE(trace.spans.size(), 2u);
    EXPECT_EQ(trace.spans[0].subroutine, "pipeline.run");
    EXPECT_EQ(trace.spans[1].subroutine, "pipeline.scan");
    EXPECT_EQ(trace.spans[1].parent, 0);
    std::set<std::string> names;
    for (const Span& span : trace.spans) {
      names.insert(span.subroutine);
      EXPECT_GE(span.self_cost, 0.0);
    }
    for (const char* stage : kExpectedStages) {
      EXPECT_TRUE(names.contains(stage)) << "missing stage span: " << stage;
    }
    // Scan sub-stages hang off the scan span; funnel stages off the root.
    for (const Span& span : trace.spans) {
      if (span.subroutine == "pipeline.stage.change_point" ||
          span.subroutine == "pipeline.stage.long_term") {
        EXPECT_EQ(span.parent, 1);
      }
      if (span.subroutine == "pipeline.stage.pairwise_dedup") {
        EXPECT_EQ(span.parent, 0);
      }
    }
  }

  // The trace buffer respects its cap.
  EXPECT_LE(traces.size(), run.pipeline->options().telemetry.max_traces);
}

TEST(ObservabilityPathTest, TelemetryIsOffByDefaultAndCostsNothing) {
  FaultInjector injector(FaultInjectorConfig::AllKinds(0.02, /*seed=*/11));
  const auto fleet = BuildObservedFleet(nullptr);
  PipelineOptions options = ObservedOptions(2);
  options.telemetry.enabled = false;  // The default; spelled out for clarity.
  Pipeline pipeline(&fleet->db(), nullptr, nullptr, options);
  EXPECT_FALSE(pipeline.telemetry().enabled());
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", kRunBegin, kDataEnd);
  // No instruments registered, no traces recorded, no export content.
  EXPECT_EQ(pipeline.telemetry().counter_count(), 0u);
  EXPECT_EQ(pipeline.telemetry().histogram_count(), 0u);
  EXPECT_TRUE(pipeline.run_traces().empty());
  const std::string json = RenderTelemetryJson(pipeline.telemetry(), /*include_runtime=*/true);
  EXPECT_EQ(json.find("pipeline."), std::string::npos) << json;
}

TEST(ObservabilityPathTest, DetectionResultsAreIdenticalWithTelemetryOnAndOff) {
  const auto fleet_on = BuildObservedFleet(nullptr);
  const auto fleet_off = BuildObservedFleet(nullptr);
  PipelineOptions on = ObservedOptions(2);
  PipelineOptions off = ObservedOptions(2);
  off.telemetry.enabled = false;
  Pipeline with_telemetry(&fleet_on->db(), nullptr, nullptr, on);
  Pipeline without_telemetry(&fleet_off->db(), nullptr, nullptr, off);
  const std::vector<Regression> observed = with_telemetry.RunPeriod("svc", kRunBegin, kDataEnd);
  const std::vector<Regression> plain = without_telemetry.RunPeriod("svc", kRunBegin, kDataEnd);
  ASSERT_EQ(observed.size(), plain.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_EQ(ToJsonLine(observed[i]), ToJsonLine(plain[i]));
  }
}

TEST(ObservabilityPathTest, RenderTelemetryListsCountersAndHistograms) {
  const ObservedRun run = RunObserved(1, /*with_faults=*/false);
  const std::string rendered = RenderTelemetry(run.pipeline->telemetry());
  EXPECT_NE(rendered.find("telemetry:"), std::string::npos);
  EXPECT_NE(rendered.find("pipeline.scan.series_in"), std::string::npos);
  EXPECT_NE(rendered.find("pool.batches"), std::string::npos);
  EXPECT_NE(rendered.find("pipeline.run.wall_ns"), std::string::npos);
}

}  // namespace
}  // namespace fbdetect
