// Tests for the zero-copy scan path: WindowView extraction vs the copying
// reference, the FFT-based autocorrelation vs the direct implementation, the
// persistent ThreadPool, the database generation counter behind the
// pipeline's metric-list cache, and — the load-bearing property — that
// scan_threads does not change pipeline output at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/stats/correlation.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

TimeSeries MakeSeries(TimePoint start, Duration step, const std::vector<double>& values) {
  TimeSeries series;
  TimePoint t = start;
  for (double v : values) {
    series.Append(t, v);
    t += step;
  }
  return series;
}

// ---------------------------------------------------------------------------
// WindowView vs ExtractWindows: the span form must select exactly the same
// elements and boundaries as the copying form, on the normal case and on
// every truncation edge case.
// ---------------------------------------------------------------------------

void ExpectViewMatchesExtract(const TimeSeries& series, TimePoint as_of,
                              const WindowSpec& spec) {
  const WindowExtract extract = ExtractWindows(series, as_of, spec);
  const WindowView view = ExtractWindowView(series, as_of, spec);

  ASSERT_EQ(view.historical.size(), extract.historical.size());
  ASSERT_EQ(view.analysis.size(), extract.analysis.size());
  ASSERT_EQ(view.extended.size(), extract.extended.size());
  ASSERT_EQ(view.analysis_plus_extended.size(), extract.analysis_plus_extended.size());
  ASSERT_EQ(view.full.size(),
            extract.historical.size() + extract.analysis_plus_extended.size());
  ASSERT_EQ(view.analysis_timestamps.size(), extract.analysis_timestamps.size());

  for (size_t i = 0; i < extract.historical.size(); ++i) {
    EXPECT_EQ(view.historical[i], extract.historical[i]) << "historical[" << i << "]";
  }
  for (size_t i = 0; i < extract.analysis.size(); ++i) {
    EXPECT_EQ(view.analysis[i], extract.analysis[i]) << "analysis[" << i << "]";
  }
  for (size_t i = 0; i < extract.extended.size(); ++i) {
    EXPECT_EQ(view.extended[i], extract.extended[i]) << "extended[" << i << "]";
  }
  for (size_t i = 0; i < extract.analysis_plus_extended.size(); ++i) {
    EXPECT_EQ(view.analysis_plus_extended[i], extract.analysis_plus_extended[i]);
    EXPECT_EQ(view.full[extract.historical.size() + i],
              extract.analysis_plus_extended[i]);
  }
  for (size_t i = 0; i < extract.historical.size(); ++i) {
    EXPECT_EQ(view.full[i], extract.historical[i]);
  }
  for (size_t i = 0; i < extract.analysis_timestamps.size(); ++i) {
    EXPECT_EQ(view.analysis_timestamps[i], extract.analysis_timestamps[i]);
  }
  EXPECT_EQ(view.historical_begin, extract.historical_begin);
  EXPECT_EQ(view.analysis_begin, extract.analysis_begin);
  EXPECT_EQ(view.extended_begin, extract.extended_begin);
  EXPECT_EQ(view.as_of, extract.as_of);
  EXPECT_EQ(view.HasEnoughData(1, 1), extract.HasEnoughData(1, 1));
}

WindowSpec SmallSpec() {
  WindowSpec spec;
  spec.historical = 70;
  spec.analysis = 20;
  spec.extended = 10;
  return spec;
}

TEST(WindowViewTest, MatchesExtractOnFullSeries) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i) * 0.5);
  }
  const TimeSeries series = MakeSeries(0, 1, values);
  ExpectViewMatchesExtract(series, 100, SmallSpec());
}

TEST(WindowViewTest, MatchesExtractWithEmptyExtendedWindow) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  const TimeSeries series = MakeSeries(0, 1, values);
  WindowSpec spec = SmallSpec();
  spec.extended = 0;  // N/A rows in Table 1.
  ExpectViewMatchesExtract(series, 100, spec);

  const WindowView view = ExtractWindowView(series, 100, spec);
  EXPECT_TRUE(view.extended.empty());
  EXPECT_EQ(view.analysis_plus_extended.size(), view.analysis.size());
}

TEST(WindowViewTest, MatchesExtractWhenSeriesShorterThanHistorical) {
  // Only 25 points: the historical window is partially (here: entirely)
  // before the series start.
  const TimeSeries series = MakeSeries(75, 1, std::vector<double>(25, 1.5));
  ExpectViewMatchesExtract(series, 100, SmallSpec());

  const WindowView view = ExtractWindowView(series, 100, SmallSpec());
  EXPECT_TRUE(view.historical.empty());
  EXPECT_FALSE(view.analysis.empty());
}

TEST(WindowViewTest, MatchesExtractWhenAsOfBeforeSeriesStart) {
  const TimeSeries series = MakeSeries(500, 1, {1.0, 2.0, 3.0});
  ExpectViewMatchesExtract(series, 100, SmallSpec());

  const WindowView view = ExtractWindowView(series, 100, SmallSpec());
  EXPECT_TRUE(view.full.empty());
  EXPECT_TRUE(view.analysis_timestamps.empty());
}

TEST(WindowViewTest, MatchesExtractWhenAsOfMidSeries) {
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(std::sin(static_cast<double>(i) / 7.0));
  }
  const TimeSeries series = MakeSeries(0, 1, values);
  ExpectViewMatchesExtract(series, 150, SmallSpec());
}

TEST(WindowViewTest, SpansAliasSeriesStorage) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  const TimeSeries series = MakeSeries(0, 1, values);
  const WindowView view = ExtractWindowView(series, 100, SmallSpec());
  // Zero-copy means the spans point INTO the series' storage.
  EXPECT_EQ(view.full.data(), series.value_span().data());
  EXPECT_EQ(view.analysis.data(), view.full.data() + view.historical.size());
}

// ---------------------------------------------------------------------------
// FFT autocorrelation vs the direct reference.
// ---------------------------------------------------------------------------

TEST(FftAcfTest, MatchesBruteForceOnRandomSeries) {
  Rng rng(7);
  for (size_t n : {64u, 100u, 255u, 1024u}) {
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      values.push_back(rng.Normal(5.0, 2.0));
    }
    const size_t max_lag = n / 2;
    const std::vector<double> fft = AutocorrelationFunction(values, max_lag);
    const std::vector<double> direct = AutocorrelationFunctionBruteForce(values, max_lag);
    ASSERT_EQ(fft.size(), direct.size()) << "n=" << n;
    for (size_t lag = 0; lag < fft.size(); ++lag) {
      EXPECT_NEAR(fft[lag], direct[lag], 1e-9) << "n=" << n << " lag=" << (lag + 1);
    }
  }
}

TEST(FftAcfTest, MatchesBruteForceOnSeasonalSeries) {
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(10.0 + 3.0 * std::sin(2.0 * M_PI * i / 24.0));
  }
  const std::vector<double> fft = AutocorrelationFunction(values, 200);
  const std::vector<double> direct = AutocorrelationFunctionBruteForce(values, 200);
  ASSERT_EQ(fft.size(), direct.size());
  for (size_t lag = 0; lag < fft.size(); ++lag) {
    EXPECT_NEAR(fft[lag], direct[lag], 1e-9) << "lag=" << (lag + 1);
  }
  // The period must be clearly visible at lag 24.
  EXPECT_GT(fft[23], 0.9);
}

TEST(FftAcfTest, ConstantSeriesYieldsZeros) {
  const std::vector<double> values(128, 3.0);
  for (double acf : AutocorrelationFunction(values, 64)) {
    EXPECT_EQ(acf, 0.0);
  }
  for (double acf : AutocorrelationFunctionBruteForce(values, 64)) {
    EXPECT_EQ(acf, 0.0);
  }
}

TEST(FftAcfTest, SeasonalityDetectionUnchangedByFastPath) {
  // DetectSeasonality must reach the same (present, period) decision whether
  // the series is below or above the FFT dispatch size.
  for (int period : {12, 24, 48}) {
    std::vector<double> values;
    for (int i = 0; i < 480; ++i) {
      values.push_back(5.0 + 2.0 * std::sin(2.0 * M_PI * i / period));
    }
    const SeasonalityEstimate estimate =
        DetectSeasonality(values, 4, values.size() / 3, 0.5);
    EXPECT_TRUE(estimate.present) << "period=" << period;
    EXPECT_EQ(estimate.period, static_cast<size_t>(period));
  }
}

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> counts(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(10, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 55u) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsSerially) {
  ThreadPool pool(0);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyBatchIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// ---------------------------------------------------------------------------
// Database generation counter (backs the pipeline's metric-list cache).
// ---------------------------------------------------------------------------

TEST(DatabaseGenerationTest, BumpsOnEveryMutation) {
  TimeSeriesDatabase db;
  const uint64_t g0 = db.generation();
  db.Write({"svc", MetricKind::kCpu, "", ""}, 10, 0.5);
  const uint64_t g1 = db.generation();
  EXPECT_GT(g1, g0);
  db.WriteSeries({"svc", MetricKind::kGcpu, "sub", ""}, MakeSeries(0, 10, {1.0, 2.0}));
  const uint64_t g2 = db.generation();
  EXPECT_GT(g2, g1);
  db.Expire(5);
  EXPECT_GT(db.generation(), g2);
}

TEST(DatabaseGenerationTest, StableAcrossReads) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kCpu, "", ""};
  db.Write(id, 10, 0.5);
  const uint64_t g = db.generation();
  (void)db.Find(id);
  (void)db.ListMetrics("svc");
  EXPECT_EQ(db.generation(), g);
}

// ---------------------------------------------------------------------------
// Scan-thread determinism on a seeded fleet scenario: every scan_threads
// value must produce IDENTICAL reports and funnel counts. EXPECT_EQ on the
// doubles on purpose — the guarantee is bit-identity, not approximation.
// ---------------------------------------------------------------------------

struct SmallWorld {
  FleetSimulator fleet;
  ServiceSimulator* service = nullptr;

  static constexpr Duration kDuration = Days(3);

  explicit SmallWorld(uint64_t seed) {
    ServiceConfig config;
    config.name = "svc";
    config.num_servers = 100;
    config.call_graph.num_subroutines = 40;
    config.sampling.samples_per_bucket = 1000000;
    config.sampling.bucket_width = Minutes(10);
    config.tick = Minutes(10);
    config.num_seasonal_subroutines = 6;
    config.seasonal_mix_amplitude = 0.10;
    config.seed = seed;
    service = fleet.AddService(config);

    InjectedEvent regression;
    regression.kind = EventKind::kStepRegression;
    regression.service = "svc";
    regression.subroutine = service->graph().node(5).name;
    regression.start = Days(1) + Hours(13);
    regression.magnitude = 0.5;
    fleet.InjectEvent(regression);

    InjectedEvent transient;
    transient.kind = EventKind::kTransientIssue;
    transient.transient_kind = TransientKind::kLoadSpike;
    transient.service = "svc";
    transient.start = Days(2) + Hours(2);
    transient.duration = Hours(1);
    transient.magnitude = 0.3;
    fleet.InjectEvent(transient);

    fleet.Run(0, kDuration);
  }

  PipelineOptions Options(int scan_threads) const {
    PipelineOptions options;
    options.detection.threshold = 0.0005;
    options.detection.windows.historical = Days(1);
    options.detection.windows.analysis = Hours(4);
    options.detection.windows.extended = Hours(2);
    options.detection.rerun_interval = Hours(4);
    options.scan_threads = scan_threads;
    return options;
  }
};

void ExpectIdenticalReports(const std::vector<Regression>& a,
                            const std::vector<Regression>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metric, b[i].metric) << "report " << i;
    EXPECT_EQ(a[i].long_term, b[i].long_term) << "report " << i;
    EXPECT_EQ(a[i].detected_at, b[i].detected_at) << "report " << i;
    EXPECT_EQ(a[i].change_time, b[i].change_time) << "report " << i;
    EXPECT_EQ(a[i].change_index, b[i].change_index) << "report " << i;
    EXPECT_EQ(a[i].p_value, b[i].p_value) << "report " << i;
    EXPECT_EQ(a[i].baseline_mean, b[i].baseline_mean) << "report " << i;
    EXPECT_EQ(a[i].regressed_mean, b[i].regressed_mean) << "report " << i;
    EXPECT_EQ(a[i].delta, b[i].delta) << "report " << i;
    EXPECT_EQ(a[i].relative_delta, b[i].relative_delta) << "report " << i;
    EXPECT_EQ(a[i].historical, b[i].historical) << "report " << i;
    EXPECT_EQ(a[i].analysis, b[i].analysis) << "report " << i;
  }
}

void ExpectIdenticalFunnels(const FunnelStats& a, const FunnelStats& b) {
  EXPECT_EQ(a.change_points, b.change_points);
  EXPECT_EQ(a.after_went_away, b.after_went_away);
  EXPECT_EQ(a.after_seasonality, b.after_seasonality);
  EXPECT_EQ(a.after_threshold, b.after_threshold);
  EXPECT_EQ(a.after_same_merger, b.after_same_merger);
  EXPECT_EQ(a.after_som_dedup, b.after_som_dedup);
  EXPECT_EQ(a.after_cost_shift, b.after_cost_shift);
  EXPECT_EQ(a.after_pairwise, b.after_pairwise);
}

TEST(ScanDeterminismTest, ThreadCountDoesNotChangeOutput) {
  SmallWorld world(11);

  std::vector<std::vector<Regression>> reports;
  std::vector<FunnelStats> short_funnels;
  std::vector<FunnelStats> long_funnels;
  for (int threads : {1, 2, 8}) {
    Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), nullptr,
                      world.Options(threads));
    reports.push_back(pipeline.RunPeriod("svc", Days(1), SmallWorld::kDuration));
    short_funnels.push_back(pipeline.short_term_funnel());
    long_funnels.push_back(pipeline.long_term_funnel());
  }

  // Something must actually be flowing through the funnel for the comparison
  // to mean anything.
  ASSERT_GT(short_funnels[0].change_points, 0u);

  for (size_t i = 1; i < reports.size(); ++i) {
    ExpectIdenticalReports(reports[0], reports[i]);
    ExpectIdenticalFunnels(short_funnels[0], short_funnels[i]);
    ExpectIdenticalFunnels(long_funnels[0], long_funnels[i]);
  }
}

}  // namespace
}  // namespace fbdetect
