#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "src/common/random.h"
#include "src/fleet/change_log.h"
#include "src/fleet/events.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/fleet/service.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

ServiceConfig SmallServiceConfig(const std::string& name) {
  ServiceConfig config;
  config.name = name;
  config.num_servers = 100;
  config.call_graph.num_subroutines = 60;
  config.sampling.samples_per_bucket = 500000;
  config.sampling.bucket_width = Minutes(10);
  config.tick = Minutes(10);
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.seasonal_load_amplitude = 0.0;
  config.seed = 7;
  return config;
}

TEST(ChangeLogTest, AddFindAndQuery) {
  ChangeLog log;
  Commit c1;
  c1.service = "svc";
  c1.time = 100;
  c1.title = "first";
  const int64_t id1 = log.Add(c1);
  Commit c2;
  c2.service = "other";
  c2.time = 200;
  const int64_t id2 = log.Add(c2);

  EXPECT_EQ(log.Find(id1)->title, "first");
  EXPECT_EQ(log.Find(999), nullptr);
  EXPECT_EQ(log.Find(-1), nullptr);
  EXPECT_EQ(log.CommitsBetween("svc", 0, 300).size(), 1u);
  EXPECT_EQ(log.CommitsBetween("", 0, 300).size(), 2u);
  EXPECT_TRUE(log.CommitsBetween("svc", 150, 300).empty());
  (void)id2;
}

TEST(EventNamesTest, AllNamed) {
  EXPECT_STREQ(EventKindName(EventKind::kCostShift), "cost_shift");
  EXPECT_STREQ(TransientKindName(TransientKind::kCanaryTest), "canary_test");
}

TEST(ServiceSimulatorTest, EmitsAllMetricFamilies) {
  ServiceConfig config = SmallServiceConfig("svc");
  ServiceSimulator service(config);
  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(2); t += Minutes(10)) {
    service.Tick(t, db);
  }
  EXPECT_FALSE(db.ListMetricsOfKind("svc", MetricKind::kGcpu).empty());
  EXPECT_FALSE(db.ListMetricsOfKind("svc", MetricKind::kCpu).empty());
  EXPECT_FALSE(db.ListMetricsOfKind("svc", MetricKind::kThroughput).empty());
  EXPECT_FALSE(db.ListMetricsOfKind("svc", MetricKind::kLatency).empty());
  EXPECT_FALSE(db.ListMetricsOfKind("svc", MetricKind::kErrorRate).empty());
}

TEST(ServiceSimulatorTest, StepRegressionRaisesSubroutineGcpu) {
  ServiceConfig config = SmallServiceConfig("svc");
  ServiceSimulator service(config);
  // Pick a LEAF subroutine with measurable expected gCPU: for a leaf,
  // self cost == subtree cost, so a +50% self-cost regression moves its
  // inclusive gCPU by nearly +50% (child-dominated interior nodes dilute
  // the effect).
  const CallGraph& graph = service.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  NodeId target = kInvalidNode;
  for (size_t i = 0; i < reach.size(); ++i) {
    if (reach[i] > 0.005 && reach[i] < 0.5 &&
        graph.edges(static_cast<NodeId>(i)).empty()) {
      target = static_cast<NodeId>(i);
      break;
    }
  }
  ASSERT_NE(target, kInvalidNode);
  const std::string name = graph.node(target).name;

  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "svc";
  event.subroutine = name;
  event.start = Hours(5);
  event.magnitude = 0.5;
  service.ScheduleEvent(event);

  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(10); t += Minutes(10)) {
    service.Tick(t, db);
  }
  const MetricId metric{"svc", MetricKind::kGcpu, name, ""};
  const TimeSeries* series = db.Find(metric);
  ASSERT_NE(series, nullptr);
  const std::vector<double> before = series->ValuesBetween(0, Hours(5));
  const std::vector<double> after = series->ValuesBetween(Hours(5) + 1, Hours(10) + 1);
  ASSERT_FALSE(before.empty());
  ASSERT_FALSE(after.empty());
  EXPECT_GT(Mean(after), Mean(before) * 1.05);
}

TEST(ServiceSimulatorTest, CostShiftPreservesClassTotal) {
  ServiceConfig config = SmallServiceConfig("svc");
  config.call_graph.num_classes = 6;  // Few classes => same-class leaf pairs exist.
  ServiceSimulator service(config);
  const CallGraph& graph = service.graph();
  // Find two same-class LEAF subroutines with self cost (leaf-to-leaf shifts
  // keep the total graph cost exactly constant). Group leaves by class.
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::unordered_map<std::string, NodeId> first_leaf_in_class;
  for (size_t i = 0; i < graph.node_count() && to == kInvalidNode; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (!graph.edges(id).empty() || graph.node(id).self_cost <= 0.01) {
      continue;
    }
    const auto [it, inserted] = first_leaf_in_class.emplace(graph.node(id).class_name, id);
    if (!inserted) {
      from = it->second;
      to = id;
    }
  }
  ASSERT_NE(to, kInvalidNode) << "random graph lacks a same-class leaf pair";

  InjectedEvent event;
  event.kind = EventKind::kCostShift;
  event.service = "svc";
  event.shift_source = graph.node(from).name;
  event.subroutine = graph.node(to).name;
  event.start = Hours(3);
  event.magnitude = 0.8;
  service.ScheduleEvent(event);

  const double total_before = graph.TotalCost();
  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(6); t += Minutes(10)) {
    service.Tick(t, db);
  }
  // Leaf self-cost shifts do not change total graph cost.
  EXPECT_NEAR(service.graph().TotalCost(), total_before, total_before * 0.01);
}

TEST(ServiceSimulatorTest, TransientThroughputDipRecovers) {
  ServiceConfig config = SmallServiceConfig("svc");
  config.emit_gcpu = false;  // Speed: only service-level metrics.
  ServiceSimulator service(config);

  InjectedEvent event;
  event.kind = EventKind::kTransientIssue;
  event.transient_kind = TransientKind::kServerFailure;
  event.service = "svc";
  event.start = Hours(4);
  event.duration = Hours(1);
  event.magnitude = 0.3;
  service.ScheduleEvent(event);

  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(8); t += Minutes(10)) {
    service.Tick(t, db);
  }
  const MetricId metric{"svc", MetricKind::kThroughput, "", ""};
  const TimeSeries* series = db.Find(metric);
  ASSERT_NE(series, nullptr);
  const double before = Mean(series->ValuesBetween(0, Hours(4)));
  const double during = Mean(series->ValuesBetween(Hours(4) + 1, Hours(5) + 1));
  const double after = Mean(series->ValuesBetween(Hours(6), Hours(8) + 1));
  EXPECT_LT(during, before * 0.85);   // Dip.
  EXPECT_GT(after, before * 0.95);    // Recovery.
}

TEST(ServiceSimulatorTest, GradualRegressionRampsUp) {
  ServiceConfig config = SmallServiceConfig("svc");
  ServiceSimulator service(config);
  const CallGraph& graph = service.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  NodeId target = kInvalidNode;
  for (size_t i = 0; i < reach.size(); ++i) {
    if (reach[i] > 0.02 && reach[i] < 0.5) {
      target = static_cast<NodeId>(i);
      break;
    }
  }
  ASSERT_NE(target, kInvalidNode);

  InjectedEvent event;
  event.kind = EventKind::kGradualRegression;
  event.service = "svc";
  event.subroutine = graph.node(target).name;
  event.start = Hours(2);
  event.ramp = Hours(6);
  event.magnitude = 0.6;
  service.ScheduleEvent(event);

  const double base = service.ExpectedGcpu(event.subroutine);
  TimeSeriesDatabase db;
  for (TimePoint t = Minutes(10); t <= Hours(4); t += Minutes(10)) {
    service.Tick(t, db);
  }
  const double mid = service.ExpectedGcpu(event.subroutine);
  for (TimePoint t = Hours(4) + Minutes(10); t <= Hours(10); t += Minutes(10)) {
    service.Tick(t, db);
  }
  const double full = service.ExpectedGcpu(event.subroutine);
  EXPECT_GT(mid, base);
  EXPECT_GT(full, mid);
}

TEST(FleetSimulatorTest, InjectEventRecordsGroundTruthAndCommit) {
  FleetSimulator fleet;
  fleet.AddService(SmallServiceConfig("svc"));

  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "svc";
  event.subroutine = "sub_0";
  event.start = Hours(1);
  event.magnitude = 0.2;
  Commit commit;
  commit.time = Hours(1) - Minutes(5);
  commit.title = "change sub_0";
  commit.touched_subroutines = {"sub_0"};
  const int64_t event_id = fleet.InjectEvent(event, &commit);

  EXPECT_EQ(event_id, 0);
  ASSERT_EQ(fleet.ground_truth().size(), 1u);
  EXPECT_GE(fleet.ground_truth()[0].commit_id, 0);
  EXPECT_EQ(fleet.change_log().size(), 1u);
}

TEST(FleetSimulatorTest, RunPopulatesDatabase) {
  FleetSimulator fleet;
  ServiceConfig config = SmallServiceConfig("svc");
  config.emit_gcpu = false;
  fleet.AddService(config);
  fleet.Run(0, Hours(2));
  EXPECT_GT(fleet.db().total_points(), 0u);
}

TEST(ScenarioTest, GeneratesConfiguredEventMix) {
  FleetSimulator fleet;
  ScenarioOptions options;
  options.num_subroutines = 80;
  options.duration = Days(4);
  options.num_step_regressions = 3;
  options.num_gradual_regressions = 1;
  options.num_cost_shifts = 2;
  options.num_transients = 5;
  options.num_seasonal_shifts = 1;
  options.num_background_commits = 20;
  const Scenario scenario = GenerateScenario(fleet, options);
  ASSERT_NE(scenario.service, nullptr);

  int steps = 0;
  int graduals = 0;
  int shifts = 0;
  int transients = 0;
  int seasonal = 0;
  for (const InjectedEvent& event : fleet.ground_truth()) {
    switch (event.kind) {
      case EventKind::kStepRegression:
        ++steps;
        EXPECT_GE(event.commit_id, 0);  // Culprit commit exists.
        break;
      case EventKind::kGradualRegression:
        ++graduals;
        break;
      case EventKind::kCostShift:
        ++shifts;
        EXPECT_FALSE(event.shift_source.empty());
        break;
      case EventKind::kTransientIssue:
        ++transients;
        EXPECT_GT(event.duration, 0);
        break;
      case EventKind::kSeasonalShift:
        ++seasonal;
        break;
    }
  }
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(graduals, 1);
  EXPECT_EQ(shifts, 2);
  EXPECT_EQ(transients, 5);
  EXPECT_EQ(seasonal, 1);
  // Background + culprit commits, time-ordered.
  EXPECT_GE(fleet.change_log().size(), 20u);
  const auto& commits = fleet.change_log().commits();
  for (size_t i = 1; i < commits.size(); ++i) {
    EXPECT_LE(commits[i - 1].time, commits[i].time);
  }
}

TEST(FeasibilitySimTest, FleetAverageNoiseShrinksWithServers) {
  Rng rng(21);
  FleetAverageOptions small;
  small.groups[0].num_servers = 500;
  small.groups[1].num_servers = 500;
  FleetAverageOptions large = small;
  large.groups[0].num_servers = 500000;
  large.groups[1].num_servers = 500000;
  const std::vector<double> noisy = SimulateFleetAverage(small, rng);
  const std::vector<double> smooth = SimulateFleetAverage(large, rng);
  EXPECT_GT(SampleVariance(std::span<const double>(noisy).subspan(0, 100)),
            SampleVariance(std::span<const double>(smooth).subspan(0, 100)) * 10.0);
}

TEST(FeasibilitySimTest, SingleServerSeriesStatistics) {
  Rng rng(22);
  const std::vector<double> series = SimulateSingleServerSeries(2000, 0.00005, rng);
  EXPECT_EQ(series.size(), 2000u);
  EXPECT_NEAR(Mean(series), 0.5, 0.02);
  for (double v : series) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace fbdetect
