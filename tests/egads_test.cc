#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/random.h"
#include "src/egads/egads.h"

namespace fbdetect {
namespace {

struct EgadsData {
  std::vector<double> historical;
  std::vector<double> shifted;     // Big obvious regression.
  std::vector<double> unchanged;   // Same distribution as history.
};

EgadsData MakeData(uint64_t seed, double shift) {
  EgadsData data;
  Rng rng(seed);
  for (int i = 0; i < 500; ++i) {
    data.historical.push_back(rng.Normal(1.0, 0.05));
  }
  for (int i = 0; i < 50; ++i) {
    data.shifted.push_back(rng.Normal(1.0 + shift, 0.05));
    data.unchanged.push_back(rng.Normal(1.0, 0.05));
  }
  return data;
}

class EgadsDetectorTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<EgadsDetector> detector() const {
    auto detectors = MakeEgadsDetectors();
    return std::move(detectors[static_cast<size_t>(GetParam())]);
  }
};

TEST_P(EgadsDetectorTest, DetectsLargeShiftAtHighSensitivity) {
  const EgadsData data = MakeData(1, 0.5);  // 10-sigma shift.
  EXPECT_TRUE(detector()->IsAnomalous(data.historical, data.shifted, 0.9));
}

TEST_P(EgadsDetectorTest, AcceptsUnchangedSeriesAtLowSensitivity) {
  const EgadsData data = MakeData(2, 0.0);
  EXPECT_FALSE(detector()->IsAnomalous(data.historical, data.unchanged, 0.1));
}

TEST_P(EgadsDetectorTest, MissesTinyShiftAtLowSensitivity) {
  const EgadsData data = MakeData(3, 0.005);  // 0.1-sigma shift: invisible.
  EXPECT_FALSE(detector()->IsAnomalous(data.historical, data.shifted, 0.05));
}

TEST_P(EgadsDetectorTest, ShortInputsSafe) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_FALSE(detector()->IsAnomalous(tiny, tiny, 0.5));
  EXPECT_FALSE(detector()->IsAnomalous({}, {}, 0.5));
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, EgadsDetectorTest, ::testing::Values(0, 1, 2));

TEST_P(EgadsDetectorTest, SensitivityIsMonotone) {
  // All three detectors' rules are monotone in sensitivity: once a series is
  // flagged at sensitivity s, it stays flagged at every higher sensitivity.
  const EgadsData data = MakeData(4, 0.2);
  const auto d = detector();
  bool flagged_before = false;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const bool flagged = d->IsAnomalous(data.historical, data.shifted, s);
    if (flagged_before) {
      EXPECT_TRUE(flagged) << d->name() << " regressed at sensitivity " << s;
    }
    flagged_before = flagged_before || flagged;
  }
}

TEST(EgadsTest, SensitivityIsMonotoneForKSigma) {
  // If a detector flags a series at sensitivity s, it should still flag it at
  // any higher sensitivity (verified for K-Sigma whose rule is monotone).
  const EgadsData data = MakeData(4, 0.2);
  KSigmaDetector detector;
  bool flagged_before = false;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const bool flagged = detector.IsAnomalous(data.historical, data.shifted, s);
    if (flagged_before) {
      EXPECT_TRUE(flagged) << "sensitivity " << s;
    }
    flagged_before = flagged_before || flagged;
  }
  EXPECT_TRUE(flagged_before);
}

TEST(EgadsTest, TransientIssueTripsKSigmaAtModerateSensitivity) {
  // The Fig. 1(c) weakness: a transient dip inside the analysis window makes
  // EGADS-style detectors flag a false positive when tuned sensitively.
  Rng rng(5);
  std::vector<double> historical;
  for (int i = 0; i < 500; ++i) {
    historical.push_back(rng.Normal(100.0, 2.0));
  }
  std::vector<double> analysis;
  for (int i = 0; i < 60; ++i) {
    // 20-point dip, then recovery — a transient, not a regression.
    analysis.push_back(rng.Normal(i >= 20 && i < 40 ? 70.0 : 100.0, 2.0));
  }
  KSigmaDetector detector;
  EXPECT_TRUE(detector.IsAnomalous(historical, analysis, 0.85));
}

// Regression tests for the K-Sigma degenerate-variance path: a constant
// history has sd == 0, and the old fallback flagged any analysis window
// whose mean differed from the constant by even one ulp.
TEST(EgadsTest, ConstantHistoryIgnoresFloatRoundingNoise) {
  const std::vector<double> historical(512, 1.0);
  std::vector<double> analysis;
  for (int i = 0; i < 50; ++i) {
    // 1-ulp jitter around the constant level: pure rounding noise.
    analysis.push_back(i % 2 == 0 ? 1.0 : std::nextafter(1.0, 2.0));
  }
  KSigmaDetector detector;
  for (const double s : {0.1, 0.5, 0.9}) {
    EXPECT_FALSE(detector.IsAnomalous(historical, analysis, s)) << "sensitivity " << s;
  }
}

TEST(EgadsTest, ConstantHistoryAndIdenticalAnalysisIsNotAnomalous) {
  const std::vector<double> historical(512, 3.5);
  const std::vector<double> analysis(50, 3.5);
  KSigmaDetector detector;
  EXPECT_FALSE(detector.IsAnomalous(historical, analysis, 0.95));
}

TEST(EgadsTest, ConstantHistoryStillCatchesRealShift) {
  const std::vector<double> historical(512, 1.0);
  const std::vector<double> analysis(50, 1.5);  // A genuine 50% step.
  KSigmaDetector detector;
  EXPECT_TRUE(detector.IsAnomalous(historical, analysis, 0.5));
}

TEST(EgadsTest, ConstantHistorySensitivityStaysMonotone) {
  // The MAD fallback must preserve the monotonicity contract too.
  const std::vector<double> historical(512, 1.0);
  std::vector<double> analysis;
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    analysis.push_back(rng.Normal(1.02, 0.005));  // Small but real elevation.
  }
  KSigmaDetector detector;
  bool flagged_before = false;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const bool flagged = detector.IsAnomalous(historical, analysis, s);
    if (flagged_before) {
      EXPECT_TRUE(flagged) << "sensitivity " << s;
    }
    flagged_before = flagged_before || flagged;
  }
}

TEST(EgadsTest, DetectorNames) {
  const auto detectors = MakeEgadsDetectors();
  ASSERT_EQ(detectors.size(), 3u);
  EXPECT_EQ(detectors[0]->name(), "adaptive kernel density");
  EXPECT_EQ(detectors[1]->name(), "extreme low density");
  EXPECT_EQ(detectors[2]->name(), "K-Sigma");
}

}  // namespace
}  // namespace fbdetect
