// Failure injection and degenerate-input robustness across the stack: the
// detectors must never crash, hang, or emit spurious reports when fed
// constant series, corrupt (NaN/inf) data, single points, or services whose
// series appear/disappear mid-window.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "src/common/random.h"
#include "src/core/pipeline.h"
#include "src/stats/text.h"
#include "src/tsa/em_changepoint.h"
#include "src/tsa/loess.h"
#include "src/tsa/sax.h"
#include "src/tsa/stl.h"
#include "src/tsdb/database.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);

PipelineOptions SmallOptions() {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(4);
  return options;
}

void WriteSeries(TimeSeriesDatabase& db, const MetricId& id, Duration total,
                 const std::function<double(TimePoint)>& value) {
  for (TimePoint t = 0; t < total; t += kTick) {
    db.Write(id, t, value(t));
  }
}

TEST(RobustnessTest, ConstantSeriesProducesNoReports) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kGcpu, "sub", ""};
  WriteSeries(db, id, Days(2), [](TimePoint) { return 0.05; });
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  EXPECT_TRUE(pipeline.RunPeriod("svc", Days(1), Days(2)).empty());
}

TEST(RobustnessTest, NanInSeriesIsSkippedNotCrashed) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kGcpu, "sub", ""};
  WriteSeries(db, id, Days(2), [](TimePoint t) {
    if (t == Days(1) + Hours(1)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return t >= Days(1) ? 0.06 : 0.05;
  });
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  // Must not crash; runs whose windows contain the NaN skip the series.
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", Days(1), Days(2));
  for (const Regression& report : reports) {
    EXPECT_FALSE(std::isnan(report.delta));
  }
}

TEST(RobustnessTest, InfInSeriesIsSkipped) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kCpu, "", ""};
  WriteSeries(db, id, Days(2), [](TimePoint t) {
    return t == Days(1) ? std::numeric_limits<double>::infinity() : 0.5;
  });
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", Days(1), Days(2));
  for (const Regression& report : reports) {
    EXPECT_TRUE(std::isfinite(report.delta));
  }
}

TEST(RobustnessTest, SparseSingletonSeries) {
  TimeSeriesDatabase db;
  db.Write({"svc", MetricKind::kGcpu, "one_point", ""}, Days(1), 0.05);
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  EXPECT_TRUE(pipeline.RunPeriod("svc", Days(1), Days(2)).empty());
}

TEST(RobustnessTest, ServiceAppearingMidWindow) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kGcpu, "late_arrival", ""};
  // Data only exists for the last six hours: not enough history.
  Rng rng(1);
  for (TimePoint t = Days(2) - Hours(6); t < Days(2); t += kTick) {
    db.Write(id, t, rng.Normal(0.05, 0.001));
  }
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  EXPECT_TRUE(pipeline.RunPeriod("svc", Days(1), Days(2)).empty());
}

TEST(RobustnessTest, SeriesDisappearingMidPeriod) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kGcpu, "vanisher", ""};
  Rng rng(2);
  // Data stops at day 1.5; re-runs after that see a stale (but valid) tail.
  for (TimePoint t = 0; t < Days(1) + Hours(12); t += kTick) {
    db.Write(id, t, rng.Normal(0.05, 0.001));
  }
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  const std::vector<Regression> reports = pipeline.RunPeriod("svc", Days(1), Days(2));
  EXPECT_TRUE(reports.empty());
}

TEST(RobustnessTest, WindowsBeforeSeriesStartAreEmpty) {
  TimeSeries series;
  series.Append(Days(10), 1.0);
  WindowSpec spec;
  const WindowExtract extract = ExtractWindows(series, Days(1), spec);
  EXPECT_TRUE(extract.historical.empty());
  EXPECT_TRUE(extract.analysis.empty());
  EXPECT_TRUE(extract.extended.empty());
}

// --- Degenerate inputs to the TSA primitives ---

TEST(RobustnessTest, EmChangePointOnIdenticalValues) {
  const std::vector<double> constant(64, 2.0);
  EXPECT_FALSE(DetectChangePoint(constant).found);
}

TEST(RobustnessTest, EmChangePointOnTwoValues) {
  EXPECT_FALSE(DetectChangePoint(std::vector<double>{1.0, 2.0}).found);
}

TEST(RobustnessTest, LoessSpanLargerThanSeries) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::vector<double> smoothed = LoessSmooth(values, 100);
  EXPECT_EQ(smoothed.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(smoothed[i], values[i], 1e-9);  // Linear data: exact.
  }
}

TEST(RobustnessTest, StlPeriodTooLargeFallsBack) {
  const std::vector<double> values(20, 1.0);
  const Decomposition stl = StlDecompose(values, 15);  // Needs 2 periods.
  EXPECT_FALSE(stl.valid);
  EXPECT_EQ(stl.trend, values);
}

TEST(RobustnessTest, SaxEmptyReference) {
  const SaxEncoder encoder(std::vector<double>{}, SaxConfig{});
  EXPECT_EQ(encoder.Encode(5.0), 'a');
  EXPECT_TRUE(encoder.valid_letters().empty());
  EXPECT_DOUBLE_EQ(encoder.InvalidFraction("abc"), 1.0);
}

TEST(RobustnessTest, TfIdfWithoutFitStillEmbeds) {
  TfIdfHasher hasher(8);
  const std::vector<double> embedding = hasher.Embed("anything");
  double norm = 0.0;
  for (double v : embedding) {
    norm += v * v;
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(RobustnessTest, PipelineRerunsAreIdempotentOnStaleData) {
  // Running the pipeline twice over the same period must not double-report:
  // SameRegressionMerger state persists within a pipeline instance.
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kGcpu, "sub", ""};
  Rng rng(3);
  WriteSeries(db, id, Days(2), [&rng](TimePoint t) {
    return rng.Normal(t >= Days(1) + Hours(6) ? 0.06 : 0.05, 0.001);
  });
  Pipeline pipeline(&db, nullptr, nullptr, SmallOptions());
  const size_t first = pipeline.RunPeriod("svc", Days(1), Days(2)).size();
  const size_t second = pipeline.RunPeriod("svc", Days(1), Days(2)).size();
  EXPECT_GE(first, 1u);
  EXPECT_EQ(second, 0u);
}

}  // namespace
}  // namespace fbdetect
