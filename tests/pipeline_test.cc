// End-to-end integration tests: fleet simulator -> profiler -> TSDB ->
// full Fig. 6 pipeline, scored against injected ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "src/common/check.h"
#include "src/core/pipeline.h"
#include "src/core/workload_config.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"

namespace fbdetect {
namespace {

// A compact single-service world with one planted regression, one cost
// shift, and one transient. Small enough to run in seconds.
struct World {
  FleetSimulator fleet;
  ServiceSimulator* service = nullptr;
  std::string regressed_subroutine;
  std::string shift_target;
  std::string shift_source;
  TimePoint regression_at = 0;
  int64_t culprit_commit = -1;

  // 4 days of data at 10-minute ticks.
  static constexpr Duration kDuration = Days(4);

  explicit World(uint64_t seed, double regression_magnitude = 0.4) {
    ServiceConfig config;
    config.name = "svc";
    config.num_servers = 200;
    config.call_graph.num_subroutines = 80;
    config.sampling.samples_per_bucket = 2000000;
    config.sampling.bucket_width = Minutes(10);
    config.tick = Minutes(10);
    config.num_seasonal_subroutines = 10;
    config.seasonal_mix_amplitude = 0.10;
    config.seed = seed;
    service = fleet.AddService(config);

    // Targets: mid-weight LEAF subroutines (self cost == subtree cost, so
    // injected relative changes translate 1:1 into gCPU changes).
    const CallGraph& graph = service->graph();
    const std::vector<double> reach = graph.ReachProbabilities();
    std::vector<NodeId> mid;
    for (size_t i = 0; i < reach.size(); ++i) {
      if (reach[i] > 0.003 && reach[i] < 0.10 &&
          graph.edges(static_cast<NodeId>(i)).empty()) {
        mid.push_back(static_cast<NodeId>(i));
      }
    }
    FBD_CHECK(mid.size() >= 3);
    regressed_subroutine = graph.node(mid[0]).name;
    shift_target = graph.node(mid[1]).name;
    shift_source = graph.node(mid[2]).name;

    regression_at = Days(2) + Hours(13);

    // True regression with a culprit commit.
    InjectedEvent regression;
    regression.kind = EventKind::kStepRegression;
    regression.service = "svc";
    regression.subroutine = regressed_subroutine;
    regression.start = regression_at;
    regression.magnitude = regression_magnitude;
    Commit commit;
    commit.time = regression_at - Minutes(20);
    commit.title = "Add extra processing to " + regressed_subroutine;
    commit.description = "Expands validation in " + regressed_subroutine;
    commit.touched_subroutines = {regressed_subroutine};
    fleet.InjectEvent(regression, &commit);
    culprit_commit = fleet.ground_truth().back().commit_id;

    // Cost shift (same time frame, different subroutines).
    InjectedEvent shift;
    shift.kind = EventKind::kCostShift;
    shift.service = "svc";
    shift.subroutine = shift_target;
    shift.shift_source = shift_source;
    shift.start = Days(2) + Hours(20);
    shift.magnitude = 0.8;
    Commit shift_commit;
    shift_commit.time = shift.start - Minutes(20);
    shift_commit.title = "Refactor " + shift_source;
    shift_commit.description = "Moves code from " + shift_source + " to " + shift_target;
    shift_commit.touched_subroutines = {shift_source, shift_target};
    fleet.InjectEvent(shift, &shift_commit);

    // Transient load spike.
    InjectedEvent transient;
    transient.kind = EventKind::kTransientIssue;
    transient.transient_kind = TransientKind::kLoadSpike;
    transient.service = "svc";
    transient.start = Days(3) + Hours(2);
    transient.duration = Hours(1);
    transient.magnitude = 0.3;
    fleet.InjectEvent(transient);

    fleet.Run(0, kDuration);
  }

  PipelineOptions Options() const {
    PipelineOptions options;
    options.detection.threshold = 0.0005;
    options.detection.windows.historical = Days(2);
    options.detection.windows.analysis = Hours(4);
    options.detection.windows.extended = Hours(2);
    options.detection.rerun_interval = Hours(4);
    return options;
  }
};

TEST(PipelineIntegrationTest, DetectsInjectedRegressionWithRootCause) {
  World world(1);
  CallGraphCodeInfo code_info(&world.service->graph());
  Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                    world.Options());
  const std::vector<Regression> reports =
      pipeline.RunPeriod("svc", Days(2), World::kDuration);

  // The injected regression must be among the reports.
  const Regression* hit = nullptr;
  for (const Regression& report : reports) {
    if (report.metric.entity == world.regressed_subroutine) {
      hit = &report;
      break;
    }
  }
  ASSERT_NE(hit, nullptr) << "injected regression was not reported";
  EXPECT_NEAR(static_cast<double>(hit->change_time),
              static_cast<double>(world.regression_at), static_cast<double>(Hours(3)));
  // Root cause: the culprit commit should rank in the top three.
  bool culprit_found = false;
  for (const RankedCause& cause : hit->root_causes) {
    if (cause.commit_id == world.culprit_commit) {
      culprit_found = true;
    }
  }
  EXPECT_TRUE(culprit_found);
}

TEST(PipelineIntegrationTest, FunnelMonotonicallyDecreases) {
  World world(2);
  CallGraphCodeInfo code_info(&world.service->graph());
  Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                    world.Options());
  pipeline.RunPeriod("svc", Days(2), World::kDuration);

  const FunnelStats& funnel = pipeline.short_term_funnel();
  EXPECT_GT(funnel.change_points, 0u);
  EXPECT_LE(funnel.after_went_away, funnel.change_points);
  EXPECT_LE(funnel.after_seasonality, funnel.after_went_away);
  EXPECT_LE(funnel.after_threshold, funnel.after_seasonality);
  EXPECT_LE(funnel.after_same_merger, funnel.after_threshold);
  EXPECT_LE(funnel.after_som_dedup, funnel.after_same_merger);
  EXPECT_LE(funnel.after_cost_shift, funnel.after_som_dedup);
  EXPECT_LE(funnel.after_pairwise, funnel.after_cost_shift);
}

TEST(PipelineIntegrationTest, WentAwayFiltersTransients) {
  World world(3);
  CallGraphCodeInfo code_info(&world.service->graph());
  Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                    world.Options());
  pipeline.RunPeriod("svc", Days(2), World::kDuration);
  const FunnelStats& funnel = pipeline.short_term_funnel();
  // The went-away detector is the paper's workhorse: it must filter a large
  // share of raw change points (99.7% in production; the synthetic world is
  // cleaner, so require at least half).
  ASSERT_GT(funnel.change_points, 0u);
  EXPECT_LT(static_cast<double>(funnel.after_went_away),
            0.5 * static_cast<double>(funnel.change_points));
}

TEST(PipelineIntegrationTest, ReportsAreDeduplicated) {
  World world(4);
  CallGraphCodeInfo code_info(&world.service->graph());
  Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                    world.Options());
  const std::vector<Regression> reports =
      pipeline.RunPeriod("svc", Days(2), World::kDuration);
  // No two reports may target the same subroutine at (nearly) the same time.
  for (size_t i = 0; i < reports.size(); ++i) {
    for (size_t j = i + 1; j < reports.size(); ++j) {
      if (reports[i].metric == reports[j].metric) {
        EXPECT_GT(std::llabs(static_cast<long long>(reports[i].change_time -
                                                    reports[j].change_time)),
                  static_cast<long long>(Hours(4)));
      }
    }
  }
}

TEST(PipelineIntegrationTest, RunWithoutChangeLogStillDetects) {
  World world(5);
  Pipeline pipeline(&world.fleet.db(), nullptr, nullptr, world.Options());
  const std::vector<Regression> reports =
      pipeline.RunPeriod("svc", Days(2), World::kDuration);
  bool found = false;
  for (const Regression& report : reports) {
    if (report.metric.entity == world.regressed_subroutine) {
      found = true;
      EXPECT_TRUE(report.root_causes.empty());  // No change log, no causes.
    }
  }
  EXPECT_TRUE(found);
}

TEST(PipelineIntegrationTest, EmptyServiceYieldsNothing) {
  TimeSeriesDatabase db;
  PipelineOptions options;
  Pipeline pipeline(&db, nullptr, nullptr, options);
  EXPECT_TRUE(pipeline.RunAt("ghost", Days(1)).empty());
  EXPECT_EQ(pipeline.short_term_funnel().change_points, 0u);
}

TEST(PipelineIntegrationTest, ParallelScanMatchesSerial) {
  World world(6);
  CallGraphCodeInfo code_info(&world.service->graph());

  PipelineOptions serial_options = world.Options();
  serial_options.scan_threads = 1;
  Pipeline serial(&world.fleet.db(), &world.fleet.change_log(), &code_info, serial_options);
  const std::vector<Regression> serial_reports =
      serial.RunPeriod("svc", Days(2), World::kDuration);

  PipelineOptions parallel_options = world.Options();
  parallel_options.scan_threads = 4;
  Pipeline parallel(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                    parallel_options);
  const std::vector<Regression> parallel_reports =
      parallel.RunPeriod("svc", Days(2), World::kDuration);

  ASSERT_EQ(serial_reports.size(), parallel_reports.size());
  for (size_t i = 0; i < serial_reports.size(); ++i) {
    EXPECT_EQ(serial_reports[i].metric, parallel_reports[i].metric);
    EXPECT_EQ(serial_reports[i].change_time, parallel_reports[i].change_time);
    EXPECT_DOUBLE_EQ(serial_reports[i].delta, parallel_reports[i].delta);
  }
  EXPECT_EQ(serial.short_term_funnel().change_points,
            parallel.short_term_funnel().change_points);
  EXPECT_EQ(serial.short_term_funnel().after_pairwise,
            parallel.short_term_funnel().after_pairwise);
  EXPECT_EQ(serial.long_term_funnel().change_points,
            parallel.long_term_funnel().change_points);
}

TEST(PipelineIntegrationTest, DefaultBackendMatchesExplicitCusumEmAcrossThreadCounts) {
  // The backend registry must not perturb the default path: a pipeline left
  // on the default backend and one explicitly configured with "cusum_em"
  // produce byte-identical reports, at every scan-thread count.
  World world(7);
  CallGraphCodeInfo code_info(&world.service->graph());

  PipelineOptions default_options = world.Options();
  default_options.scan_threads = 1;
  Pipeline default_pipeline(&world.fleet.db(), &world.fleet.change_log(), &code_info,
                            default_options);
  const std::vector<Regression> baseline =
      default_pipeline.RunPeriod("svc", Days(2), World::kDuration);
  EXPECT_FALSE(baseline.empty());

  for (const int threads : {1, 2, 8}) {
    PipelineOptions options = world.Options();
    options.scan_threads = threads;
    options.detection.change_point_backend = "cusum_em";
    Pipeline pipeline(&world.fleet.db(), &world.fleet.change_log(), &code_info, options);
    const std::vector<Regression> reports =
        pipeline.RunPeriod("svc", Days(2), World::kDuration);
    ASSERT_EQ(reports.size(), baseline.size()) << "threads=" << threads;
    for (size_t i = 0; i < reports.size(); ++i) {
      EXPECT_EQ(reports[i].metric, baseline[i].metric) << "threads=" << threads;
      EXPECT_EQ(reports[i].change_time, baseline[i].change_time) << "threads=" << threads;
      // Bitwise equality, not EXPECT_DOUBLE_EQ: the guarantee is identity.
      EXPECT_EQ(reports[i].delta, baseline[i].delta) << "threads=" << threads;
      EXPECT_EQ(reports[i].p_value, baseline[i].p_value) << "threads=" << threads;
    }
    EXPECT_EQ(pipeline.short_term_funnel().change_points,
              default_pipeline.short_term_funnel().change_points)
        << "threads=" << threads;
  }
}

TEST(WorkloadConfigTest, AllTwelveTable1Presets) {
  const std::vector<DetectionConfig> configs = AllTable1Configs();
  ASSERT_EQ(configs.size(), 12u);
  // Spot-check the paper's values.
  EXPECT_EQ(configs[0].name, "FrontFaaS (large)");
  EXPECT_DOUBLE_EQ(configs[0].threshold, 0.03);
  EXPECT_EQ(configs[0].rerun_interval, Minutes(30));
  EXPECT_EQ(configs[0].windows.historical, Days(10));
  EXPECT_EQ(configs[0].windows.analysis, Hours(3));
  EXPECT_EQ(configs[0].windows.extended, 0);

  EXPECT_EQ(configs[1].name, "FrontFaaS (small)");
  EXPECT_DOUBLE_EQ(configs[1].threshold, 0.00005);  // 0.005% absolute.
  EXPECT_EQ(configs[1].windows.extended, Hours(6));

  EXPECT_EQ(configs[8].name, "Invoicer (short)");
  EXPECT_DOUBLE_EQ(configs[8].threshold, 0.005);  // 0.5%.
  EXPECT_EQ(configs[8].windows.historical, Days(14));

  EXPECT_EQ(configs[9].threshold_mode, ThresholdMode::kRelative);
  EXPECT_DOUBLE_EQ(configs[9].threshold, 0.05);  // 5% relative.
  EXPECT_EQ(configs[11].name, "CT-demand");
  EXPECT_EQ(configs[11].windows.extended, 0);

  for (const DetectionConfig& config : configs) {
    EXPECT_GT(config.threshold, 0.0) << config.name;
    EXPECT_GT(config.rerun_interval, 0) << config.name;
    EXPECT_GT(config.windows.historical, config.windows.analysis) << config.name;
  }
}

}  // namespace
}  // namespace fbdetect
