#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"

namespace fbdetect {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ClippedNormalStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.ClippedNormal(0.5, 10.0, 0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, BoundedUintRespectsBound) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextUint64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values reachable.
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Poisson(4.5);
  }
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int v = rng.Poisson(500.0);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(41);
  parent_copy.Fork();
  EXPECT_NE(child.NextUint64(), parent.NextUint64());
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(53);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(StringsTest, SplitStringDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a//b/c/", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitString("", '/').empty());
  EXPECT_TRUE(SplitString("///", '/').empty());
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"only"}, "-"), "only");
}

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC-123"), "abc-123");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("endpoint_12", "endpoint_"));
  EXPECT_FALSE(StartsWith("end", "endpoint_"));
}

TEST(StringsTest, TokenizeIdentifierHandlesCamelAndSnake) {
  EXPECT_EQ(TokenizeIdentifier("TaoClient::fetchUserById"),
            (std::vector<std::string>{"tao", "client", "fetch", "user", "by", "id"}));
  EXPECT_EQ(TokenizeIdentifier("my_snake_case"),
            (std::vector<std::string>{"my", "snake", "case"}));
  EXPECT_TRUE(TokenizeIdentifier("").empty());
  EXPECT_TRUE(TokenizeIdentifier("___").empty());
}

TEST(StringsTest, CharNgrams) {
  EXPECT_EQ(CharNgrams("abcd", 2), (std::vector<std::string>{"ab", "bc", "cd"}));
  EXPECT_EQ(CharNgrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(CharNgrams("", 2).empty());
}

TEST(SimTimeTest, DurationHelpers) {
  EXPECT_EQ(Minutes(90), 90 * 60);
  EXPECT_EQ(Hours(2), 7200);
  EXPECT_EQ(Days(1), kDay);
  EXPECT_EQ(kWeek, 7 * kDay);
}

TEST(StatusTest, OkByDefaultAndErrorCarriesCodeAndMessage) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status error = Status::DataLoss("chunk truncated");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
  EXPECT_EQ(error.ToString(), "DATA_LOSS: chunk truncated");
}

Status PropagateIfError(const Status& status, bool& reached_end) {
  FBD_RETURN_IF_ERROR(status);
  reached_end = true;
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroShortCircuits) {
  bool reached_end = false;
  EXPECT_TRUE(PropagateIfError(Status::Ok(), reached_end).ok());
  EXPECT_TRUE(reached_end);
  reached_end = false;
  const Status propagated =
      PropagateIfError(Status::OutOfOrder("stale point"), reached_end);
  EXPECT_EQ(propagated.code(), StatusCode::kOutOfOrder);
  EXPECT_FALSE(reached_end);
}

TEST(ThreadPoolTest, TaskExceptionRethrownAtJoinAndBatchStillCompletes) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](size_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // Tasks are independent: every other index still ran (no abandoned work,
  // no deadlocked workers).
  EXPECT_EQ(completed.load(), 63);
  // The pool is not poisoned: the next batch runs normally.
  std::atomic<int> second{0};
  pool.ParallelFor(32, [&](size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 32);
}

TEST(ThreadPoolTest, EveryTaskThrowingStillJoinsWithOneException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(16, [](size_t) { throw std::runtime_error("all bad"); }),
      std::runtime_error);
  std::atomic<int> after{0};
  pool.ParallelFor(8, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolTest, WorkerlessPoolHasSameExceptionContract) {
  ThreadPool pool(0);
  int completed = 0;
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("serial boom");
                                  }
                                  ++completed;
                                }),
               std::runtime_error);
  EXPECT_EQ(completed, 7);
}

}  // namespace
}  // namespace fbdetect
