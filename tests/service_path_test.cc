// End-to-end tests for the overload-safe service mode (DESIGN.md §16).
//
// Units first — the coupling pieces the server's robustness contract rests
// on (BoundedQueue cost accounting, TokenBucket admission, the incremental
// HTTP parser, the wire codecs, the load generators) — then in-process
// integration: a real ServiceServer on an ephemeral port, driven over real
// sockets by HttpClient, asserting
//   * ack-after-commit ingest for both wire forms,
//   * exact shed accounting (offered == admitted + shed) under a 4x slam,
//   * bounded queue depth regardless of offered load,
//   * /run output byte-identical to an offline pipeline over the same
//     admitted bodies, at scan_threads 1/2/8,
//   * drain-under-load losslessness across a durable reopen: every acked
//     point survives, by construction of the drain checkpoint.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/core/pipeline.h"
#include "src/fleet/events.h"
#include "src/fleet/service.h"
#include "src/report/report.h"
#include "src/service/admission.h"
#include "src/service/bounded_queue.h"
#include "src/service/client.h"
#include "src/service/http.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/service/workload.h"
#include "src/tsdb/database.h"

namespace fbdetect {
namespace {

std::string MakeTempDir(const std::string& tag) {
  std::string templ = "/tmp/fbd_service_" + tag + "_XXXXXX";
  char* made = ::mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

void RemoveTree(const std::string& path) {
  const std::string command = "rm -rf '" + path + "'";
  [[maybe_unused]] const int rc = std::system(command.c_str());
}

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) : path(MakeTempDir(tag)) {}
  ~ScopedDir() { RemoveTree(path); }
  std::string path;
};

// ---------------------------------------------------------------------------
// BoundedQueue: the cost-accounted coupling element between stages.
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, TryPushRespectsCostCapacity) {
  BoundedQueue<int> queue(100);
  EXPECT_TRUE(queue.TryPush(1, 60));
  EXPECT_TRUE(queue.TryPush(2, 40));  // Exactly full.
  EXPECT_FALSE(queue.TryPush(3, 1));  // Over by one point.
  EXPECT_EQ(queue.cost(), 100u);

  int out = 0;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.cost(), 40u);
  EXPECT_TRUE(queue.TryPush(3, 60));  // Fits again.
}

TEST(BoundedQueueTest, OversizedItemTransitsEmptyQueue) {
  BoundedQueue<int> queue(10);
  // An item larger than the whole capacity must still transit when the
  // queue is empty, or it could never be processed at all.
  EXPECT_TRUE(queue.TryPush(1, 1000));
  EXPECT_FALSE(queue.TryPush(2, 1));  // But nothing rides behind it.
  int out = 0;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_TRUE(queue.TryPush(2, 1));
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerMakesRoom) {
  BoundedQueue<int> queue(10);
  ASSERT_TRUE(queue.TryPush(1, 10));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2, 10));  // Blocks: queue is at capacity.
    pushed.store(true);
  });
  // The producer cannot complete until we pop; give it a moment to park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenStops) {
  BoundedQueue<int> queue(100);
  ASSERT_TRUE(queue.TryPush(7, 1));
  ASSERT_TRUE(queue.TryPush(8, 1));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(9, 1));  // Producers rejected after close.
  EXPECT_FALSE(queue.Push(9, 1));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // Consumers still drain what is queued.
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));  // Closed and empty: clean shutdown signal.
}

TEST(BoundedQueueTest, MaxCostObservedTracksHighWater) {
  BoundedQueue<int> queue(100);
  ASSERT_TRUE(queue.TryPush(1, 30));
  ASSERT_TRUE(queue.TryPush(2, 50));  // Peak: 80.
  int out = 0;
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_TRUE(queue.TryPush(3, 10));
  EXPECT_EQ(queue.max_cost_observed(), 80u);
  EXPECT_EQ(queue.cost(), 10u);
}

// ---------------------------------------------------------------------------
// TokenBucket: points-denominated admission with a caller-supplied clock.
// ---------------------------------------------------------------------------

constexpr uint64_t kSecond = 1'000'000'000ull;

TEST(TokenBucketTest, DebitsAndRefillsAgainstCallerClock) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/1000);
  EXPECT_TRUE(bucket.Admit(600, kSecond));
  EXPECT_TRUE(bucket.Admit(400, kSecond));  // Bucket now empty.
  EXPECT_FALSE(bucket.Admit(1, kSecond));
  // Half a second refills half the rate.
  EXPECT_TRUE(bucket.Admit(500, kSecond + kSecond / 2));
  EXPECT_FALSE(bucket.Admit(1, kSecond + kSecond / 2));
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/100);
  EXPECT_TRUE(bucket.Admit(100, kSecond));
  // An hour idle refills only to the burst depth, never beyond.
  EXPECT_FALSE(bucket.Admit(101, 3600 * kSecond));
  EXPECT_TRUE(bucket.Admit(100, 3600 * kSecond));
}

TEST(TokenBucketTest, RefundRestoresUnusedDebit) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/1000);
  EXPECT_TRUE(bucket.Admit(1000, kSecond));
  EXPECT_FALSE(bucket.Admit(1000, kSecond));
  // The request was shed downstream (full parse queue): the debit returns.
  bucket.Refund(1000);
  EXPECT_TRUE(bucket.Admit(1000, kSecond));
  // Refund clamps at burst — it cannot mint tokens.
  bucket.Refund(50'000);
  EXPECT_FALSE(bucket.Admit(1001, kSecond));
}

TEST(TokenBucketTest, ZeroRateAdmitsEverything) {
  TokenBucket bucket(/*rate=*/0, /*burst=*/0);
  EXPECT_TRUE(bucket.Admit(1ull << 40, kSecond));
  EXPECT_TRUE(bucket.Admit(1ull << 40, kSecond));
}

// ---------------------------------------------------------------------------
// HttpParser: incremental parse, pipelining, and hardened failure statuses.
// ---------------------------------------------------------------------------

TEST(HttpParserTest, ByteAtATimeRequestParses) {
  const std::string raw =
      "POST /ingest?x=1 HTTP/1.1\r\nHost: h\r\nContent-Type: text/plain\r\n"
      "Content-Length: 5\r\n\r\nhello";
  HttpParser parser;
  HttpParser::Result result = HttpParser::Result::kNeedMore;
  for (size_t i = 0; i < raw.size(); ++i) {
    result = parser.Feed(raw.data() + i, 1);
    if (i + 1 < raw.size()) {
      ASSERT_EQ(result, HttpParser::Result::kNeedMore) << "at byte " << i;
    }
  }
  ASSERT_EQ(result, HttpParser::Result::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().target, "/ingest?x=1");
  EXPECT_EQ(parser.request().body, "hello");
  EXPECT_EQ(parser.request().Header("content-type"), "text/plain");
  EXPECT_EQ(HttpPath(parser.request().target), "/ingest");
  EXPECT_EQ(HttpQueryParam(parser.request().target, "x"), "1");
  EXPECT_EQ(HttpQueryParam(parser.request().target, "missing"), "");
}

TEST(HttpParserTest, PipelinedRequestsCarryAcrossReset) {
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
  HttpParser parser;
  ASSERT_EQ(parser.Feed(two.data(), two.size()), HttpParser::Result::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  // The second request was already buffered; Continue() parses it without
  // any new bytes from the socket.
  ASSERT_EQ(parser.Continue(), HttpParser::Result::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().body, "ok");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, HardenedFailureStatuses) {
  struct Case {
    const char* raw;
    int status;
  };
  const Case cases[] = {
      {"GET /x HTTP/2\r\n\r\n", 505},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400},
      {"bogus-line-without-spaces\r\n\r\n", 400},
      {"GET relative-target HTTP/1.1\r\n\r\n", 400},
  };
  for (const Case& c : cases) {
    HttpParser parser;
    EXPECT_EQ(parser.Feed(c.raw, std::strlen(c.raw)), HttpParser::Result::kError);
    EXPECT_EQ(parser.error_status(), c.status) << c.raw;
  }

  HttpParser::Limits tiny;
  tiny.max_header_bytes = 64;
  tiny.max_body_bytes = 8;
  HttpParser small(tiny);
  const std::string big_headers =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(256, 'a') + "\r\n\r\n";
  EXPECT_EQ(small.Feed(big_headers.data(), big_headers.size()),
            HttpParser::Result::kError);
  EXPECT_EQ(small.error_status(), 431);

  HttpParser small_body(tiny);
  const std::string big_body = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
  EXPECT_EQ(small_body.Feed(big_body.data(), big_body.size()),
            HttpParser::Result::kError);
  EXPECT_EQ(small_body.error_status(), 413);
}

// ---------------------------------------------------------------------------
// Wire codecs: round trips, the admission peek, and strict rejection.
// ---------------------------------------------------------------------------

WireBatch SampleBatch() {
  WireBatch batch;
  WireSeries a;
  a.id = {"svc", MetricKind::kGcpu, "sub/alpha", "feature/g1"};
  a.timestamps = {600, 1200, 1800};
  a.values = {0.25, 0.5, 0.75};
  WireSeries b;
  b.id = {"svc", MetricKind::kLatency, "endpoint0", ""};
  b.timestamps = {600};
  b.values = {42.0};
  batch.total_points = 4;
  batch.series = {std::move(a), std::move(b)};
  return batch;
}

TEST(WireFormatTest, BinaryRoundTripAndPeekAgree) {
  const WireBatch batch = SampleBatch();
  std::string encoded;
  EncodeWireBatch(batch, encoded);

  const std::span<const uint8_t> span(
      reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size());
  uint32_t peeked = 0;
  ASSERT_TRUE(PeekWirePoints(span, &peeked).ok());
  EXPECT_EQ(peeked, 4u);

  WireBatch decoded;
  ASSERT_TRUE(ParseWireBatch(span, &decoded).ok());
  ASSERT_EQ(decoded.series.size(), 2u);
  EXPECT_EQ(decoded.total_points, 4u);
  EXPECT_EQ(decoded.series[0].id.service, "svc");
  EXPECT_EQ(decoded.series[0].id.kind, MetricKind::kGcpu);
  EXPECT_EQ(decoded.series[0].id.entity, "sub/alpha");
  EXPECT_EQ(decoded.series[0].id.metadata, "feature/g1");
  EXPECT_EQ(decoded.series[0].timestamps, (std::vector<TimePoint>{600, 1200, 1800}));
  EXPECT_EQ(decoded.series[0].values, (std::vector<double>{0.25, 0.5, 0.75}));
  EXPECT_EQ(decoded.series[1].id.entity, "endpoint0");
}

TEST(WireFormatTest, RejectsMalformedBinary) {
  std::string encoded;
  EncodeWireBatch(SampleBatch(), encoded);
  const auto as_span = [](const std::string& s) {
    return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()),
                                    s.size());
  };
  WireBatch out;
  uint32_t peeked = 0;

  // Truncated header: even the peek must refuse.
  std::string short_header = encoded.substr(0, kWireHeaderBytes - 1);
  EXPECT_FALSE(PeekWirePoints(as_span(short_header), &peeked).ok());
  EXPECT_FALSE(ParseWireBatch(as_span(short_header), &out).ok());

  // Bad magic.
  std::string bad_magic = encoded;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(PeekWirePoints(as_span(bad_magic), &peeked).ok());
  EXPECT_FALSE(ParseWireBatch(as_span(bad_magic), &out).ok());

  // Truncated payload: header parses, body must not.
  std::string truncated = encoded.substr(0, encoded.size() - 7);
  EXPECT_FALSE(ParseWireBatch(as_span(truncated), &out).ok());

  // Trailing garbage after a complete batch.
  std::string padded = encoded + "x";
  EXPECT_FALSE(ParseWireBatch(as_span(padded), &out).ok());

  // Header total_points disagreeing with the per-series sum.
  std::string lying = encoded;
  uint32_t wrong = 5;
  std::memcpy(lying.data() + 4, &wrong, sizeof(wrong));
  EXPECT_FALSE(ParseWireBatch(as_span(lying), &out).ok());

  // Absurd declared count: rejected before any allocation of that size.
  std::string huge = encoded;
  const uint32_t absurd = kWireMaxPoints + 1;
  std::memcpy(huge.data() + 4, &absurd, sizeof(absurd));
  EXPECT_FALSE(PeekWirePoints(as_span(huge), &peeked).ok());
}

TEST(WireFormatTest, TextRoundTripMatchesCount) {
  const std::string body =
      "# comment\n"
      "\n"
      "svc|gcpu|sub/alpha|feature/g1|600|0.25\n"
      "svc|gcpu|sub/alpha|feature/g1|1200|0.5\n"
      "svc|latency|endpoint0||600|42\n";
  EXPECT_EQ(CountTextPoints(body), 3u);
  WireBatch batch;
  ASSERT_TRUE(ParseTextBatch(body, &batch).ok());
  EXPECT_EQ(batch.total_points, 3u);
  ASSERT_EQ(batch.series.size(), 2u);
  EXPECT_EQ(batch.series[0].id.metadata, "feature/g1");
  EXPECT_EQ(batch.series[1].values[0], 42.0);

  WireBatch bad;
  EXPECT_FALSE(ParseTextBatch("svc|no_such_kind|e||1|2\n", &bad).ok());
  EXPECT_FALSE(ParseTextBatch("svc|gcpu|e||not_a_ts|2\n", &bad).ok());
  EXPECT_FALSE(ParseTextBatch("too|few\n", &bad).ok());
}

// ---------------------------------------------------------------------------
// Load generators.
// ---------------------------------------------------------------------------

TEST(WorkloadTest, SyntheticBodiesParseAndAdvance) {
  SyntheticWorkload workload("svc", /*series_count=*/4, /*points_per_series=*/8,
                             /*start=*/1000, /*step=*/60);
  std::string body;
  const uint32_t points = workload.NextBody(body);
  EXPECT_EQ(points, 32u);
  EXPECT_EQ(workload.points_per_batch(), 32u);

  WireBatch batch;
  ASSERT_TRUE(ParseWireBatch(
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(body.data()), body.size()),
                  &batch)
                  .ok());
  EXPECT_EQ(batch.total_points, 32u);
  ASSERT_EQ(batch.series.size(), 4u);
  EXPECT_EQ(batch.series[0].timestamps.front(), 1000);

  // The next batch starts where the previous ended: timestamps never repeat.
  std::string body2;
  workload.NextBody(body2);
  WireBatch batch2;
  ASSERT_TRUE(ParseWireBatch(
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(body2.data()), body2.size()),
                  &batch2)
                  .ok());
  EXPECT_EQ(batch2.series[0].timestamps.front(), 1000 + 8 * 60);
}

TEST(WorkloadTest, WireWorkloadDeterministicAcrossInstances) {
  WireWorkloadOptions options;
  options.service.name = "svc";
  options.service.num_servers = 10;
  options.service.call_graph.num_subroutines = 8;
  options.service.seed = 11;
  WireWorkload one(options);
  WireWorkload two(options);
  for (int tick = 0; tick < 3; ++tick) {
    uint32_t points_one = 0;
    uint32_t points_two = 0;
    const std::string body_one = one.NextBody(&points_one);
    const std::string body_two = two.NextBody(&points_two);
    EXPECT_EQ(body_one, body_two) << "tick " << tick;
    EXPECT_EQ(points_one, points_two);
    EXPECT_GT(points_one, 0u);
  }
}

// ---------------------------------------------------------------------------
// In-process server harness.
// ---------------------------------------------------------------------------

struct ServerHarness {
  ServerHarness(TsdbOptions tsdb, PipelineOptions pipeline_options,
                ServiceOptions service)
      : db(std::make_unique<TimeSeriesDatabase>(tsdb)),
        pipeline(std::make_unique<Pipeline>(db.get(), nullptr, nullptr,
                                            pipeline_options)),
        server(std::make_unique<ServiceServer>(db.get(), pipeline.get(),
                                               std::move(service))) {
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.message();
    loop = std::thread([this] { drained = server->Run(); });
  }

  ~ServerHarness() {
    if (loop.joinable()) {
      server->Stop();
      loop.join();
    }
  }

  // Graceful SIGTERM path (BeginDrain is exactly what the signal handler
  // calls); returns Run()'s verdict.
  bool Drain() {
    server->BeginDrain();
    loop.join();
    return drained;
  }

  void StopHard() {
    server->Stop();
    loop.join();
  }

  uint16_t port() const { return server->port(); }

  std::unique_ptr<TimeSeriesDatabase> db;
  std::unique_ptr<Pipeline> pipeline;
  std::unique_ptr<ServiceServer> server;
  std::thread loop;
  bool drained = false;
};

PipelineOptions ServicePipelineOptions(int scan_threads = 1) {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.scan_threads = scan_threads;
  options.telemetry.enabled = true;
  return options;
}

Status PostIngest(HttpClient& client, const std::string& body, bool binary,
                  HttpResponse* response) {
  return client.Post("/ingest",
                     binary ? "application/x-fbdetect" : "text/plain", body,
                     response);
}

// ---------------------------------------------------------------------------
// Basic end-to-end: both wire forms ack after commit; stats & immediate
// endpoints tell the truth.
// ---------------------------------------------------------------------------

TEST(ServiceServerTest, TextAndBinaryIngestEndToEnd) {
  ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(), ServiceOptions{});
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  HttpResponse response;
  ASSERT_TRUE(PostIngest(client,
                         "svc|gcpu|sub/alpha||600|0.25\n"
                         "svc|gcpu|sub/alpha||1200|0.5\n",
                         /*binary=*/false, &response)
                  .ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"status\":\"ok\",\"points\":2}");

  std::string encoded;
  EncodeWireBatch(SampleBatch(), encoded);
  ASSERT_TRUE(PostIngest(client, encoded, /*binary=*/true, &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"status\":\"ok\",\"points\":4}");

  // An empty batch is a valid no-op, acked immediately.
  ASSERT_TRUE(PostIngest(client, "# nothing\n", /*binary=*/false, &response).ok());
  EXPECT_EQ(response.status, 200);

  // A garbage binary body is admitted (the header peek is all the front door
  // sees) and then rejected by the parse stage with 400.
  std::string garbage = encoded;
  garbage.resize(garbage.size() - 3);
  ASSERT_TRUE(PostIngest(client, garbage, /*binary=*/true, &response).ok());
  EXPECT_EQ(response.status, 400);

  // The ack already implies the commit happened; stats must agree exactly.
  ASSERT_TRUE(client.Get("/stats", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"offered_requests\":4"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"admitted_requests\":4"), std::string::npos);
  EXPECT_NE(response.body.find("\"acked_points\":6"), std::string::npos);
  EXPECT_NE(response.body.find("\"malformed\":1"), std::string::npos);
  EXPECT_NE(response.body.find("\"shed_admission\":0"), std::string::npos);

  const ServiceServer::Stats stats = harness.server->stats();
  EXPECT_EQ(stats.offered_requests, stats.admitted_requests + stats.shed());
  EXPECT_EQ(stats.acked_points, 6u);
  EXPECT_GE(stats.commits, 1u);

  harness.StopHard();
  // The committed points are really in the database.
  const TimeSeries* series =
      harness.db->Find(MetricId{"svc", MetricKind::kGcpu, "sub/alpha", ""});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
}

TEST(ServiceServerTest, ImmediateEndpointsAndErrors) {
  ServiceOptions service;
  service.admit_points_per_sec = 12345;
  ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(), service);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  HttpResponse response;
  ASSERT_TRUE(client.Get("/healthz", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"degraded\":false"), std::string::npos);

  ASSERT_TRUE(client.Get("/config", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("12345"), std::string::npos) << response.body;

  // Ingest one point so the telemetry mirrors have something to say.
  ASSERT_TRUE(PostIngest(client, "svc|gcpu|s||600|1\n", false, &response).ok());
  EXPECT_EQ(response.status, 200);

  ASSERT_TRUE(client.Get("/metrics", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("service_offered_requests"), std::string::npos)
      << response.body.substr(0, 512);

  ASSERT_TRUE(client.Get("/telemetry", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("service.offered_requests"), std::string::npos);

  ASSERT_TRUE(client.Get("/quarantine", &response).ok());
  EXPECT_EQ(response.status, 200);

  ASSERT_TRUE(client.Get("/nothing_here", &response).ok());
  EXPECT_EQ(response.status, 404);

  // /run parameter validation.
  ASSERT_TRUE(client.Post("/run", "", "", &response).ok());
  EXPECT_EQ(response.status, 400);
  ASSERT_TRUE(client.Post("/run?service=svc&as_of=bogus", "", "", &response).ok());
  EXPECT_EQ(response.status, 400);
  ASSERT_TRUE(client.Post("/run?service=svc&as_of=600", "", "", &response).ok());
  EXPECT_EQ(response.status, 200);
}

// ---------------------------------------------------------------------------
// Slow-client defense: a stalled request is evicted at its deadline.
// ---------------------------------------------------------------------------

TEST(ServiceServerTest, SlowClientIsEvicted) {
  ServiceOptions service;
  service.request_timeout_ms = 100;
  ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(), service);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Half a request, then silence: the deadline starts at the first byte.
  const char partial[] = "POST /ingest HTTP/1.1\r\nContent-Le";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);

  // The server must close the connection; a healthy client on the side is
  // untouched.
  char byte = 0;
  ssize_t got = -1;
  for (int i = 0; i < 100; ++i) {
    got = ::recv(fd, &byte, 1, MSG_DONTWAIT);
    if (got == 0) {
      break;  // Orderly close from the server.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(got, 0);
  ::close(fd);

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  HttpResponse response;
  ASSERT_TRUE(client.Get("/healthz", &response).ok());
  EXPECT_EQ(response.status, 200);

  EXPECT_EQ(harness.server->stats().evicted_slow_clients, 1u);
}

// ---------------------------------------------------------------------------
// Overload sweep: 0.5x / 1x / 4x the admission budget, at scan_threads
// 1 / 2 / 8. Conservation (offered == admitted + shed) must hold exactly;
// queue depth stays bounded; the 4x leg must actually shed.
// ---------------------------------------------------------------------------

struct OverloadLeg {
  uint64_t admit_rate;   // Points/sec; 0 = unlimited.
  uint64_t admit_burst;  // Bucket depth.
  bool expect_shed;
};

TEST(ServiceServerTest, OverloadSweepConservationAndQueueBounds) {
  constexpr int kSeriesCount = 128;
  constexpr int kPointsPerSeries = 32;  // 4096 points per batch.
  constexpr int kBatches = 200;
  constexpr uint64_t kBatchPoints = kSeriesCount * kPointsPerSeries;

  // 200 batches x 4096 pts = 819,200 points offered as fast as the loopback
  // allows. The 4x leg's bucket covers at most burst + rate * elapsed; even
  // a pathological 60s run admits < 310k points, so shedding is guaranteed.
  const OverloadLeg legs[] = {
      {0, 0, false},            // 0.5x-equivalent: unlimited, nothing sheds.
      {4'000'000, 819'200, false},  // 1x: the burst covers the whole offer.
      {5'000, 4'096, true},     // 4x+: the bucket cannot keep up.
  };

  for (const int scan_threads : {1, 2, 8}) {
    for (const OverloadLeg& leg : legs) {
      ServiceOptions service;
      service.admit_points_per_sec = leg.admit_rate;
      service.admit_burst_points = leg.admit_burst;
      service.parse_high_watermark_points = 4 * kBatchPoints;
      service.parse_low_watermark_points = kBatchPoints;
      service.ingest_queue_points = 2 * kBatchPoints;
      service.parse_threads = 2;
      service.flush_points = 8 * kBatchPoints;
      ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(scan_threads),
                            service);

      SyntheticWorkload workload("svc", kSeriesCount, kPointsPerSeries,
                                 /*start=*/600, /*step=*/60);
      HttpClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
      uint64_t ok_responses = 0;
      uint64_t shed_responses = 0;
      uint64_t acked_points = 0;
      std::string body;
      for (int i = 0; i < kBatches; ++i) {
        const uint32_t points = workload.NextBody(body);
        HttpResponse response;
        ASSERT_TRUE(PostIngest(client, body, /*binary=*/true, &response).ok());
        if (response.status == 200) {
          ++ok_responses;
          acked_points += points;
        } else {
          ASSERT_TRUE(response.status == 429 || response.status == 503)
              << response.status;
          ++shed_responses;
        }
      }

      // A detection run against the live database must succeed mid-overload.
      HttpResponse run_response;
      ASSERT_TRUE(client.Post("/run?service=svc&as_of=600", "", "", &run_response)
                      .ok());
      EXPECT_EQ(run_response.status, 200);

      harness.StopHard();
      const ServiceServer::Stats stats = harness.server->stats();

      // Exact conservation: every offered request is accounted once.
      EXPECT_EQ(stats.offered_requests, static_cast<uint64_t>(kBatches));
      EXPECT_EQ(stats.offered_requests, stats.admitted_requests + stats.shed());
      EXPECT_EQ(stats.admitted_requests, ok_responses);
      EXPECT_EQ(stats.shed(), shed_responses);
      // Ack-after-commit: what the client saw acked is what was committed.
      EXPECT_EQ(stats.acked_points, acked_points);
      EXPECT_EQ(stats.admitted_points, acked_points);

      // Queue depth stayed within the configured bounds throughout.
      EXPECT_LE(stats.parse_queue_peak_points,
                service.parse_high_watermark_points);
      EXPECT_LE(stats.ingest_queue_peak_points,
                std::max<uint64_t>(service.ingest_queue_points, kBatchPoints));

      if (leg.expect_shed) {
        EXPECT_GT(stats.shed(), 0u)
            << "4x leg failed to shed (scan_threads=" << scan_threads << ")";
        EXPECT_GT(stats.admitted_requests, 0u);  // Burst admits at least one.
      } else {
        EXPECT_EQ(stats.shed(), 0u)
            << "under-capacity leg shed load (scan_threads=" << scan_threads
            << ")";
      }
    }
  }
}

// Backpressure (503 via the parse-queue watermark) needs concurrent
// producers: each connection has at most one request in flight, so eight
// hammering clients against a two-batch watermark overrun the queue.
TEST(ServiceServerTest, WatermarkBackpressureSheds503) {
  constexpr int kSeriesCount = 128;
  constexpr int kPointsPerSeries = 128;  // 16384 points per batch.
  constexpr uint64_t kBatchPoints = kSeriesCount * kPointsPerSeries;
  constexpr int kClients = 8;
  constexpr int kBatchesPerClient = 100;
  constexpr int kMaxRounds = 5;

  ServiceOptions service;
  service.parse_high_watermark_points = 2 * kBatchPoints;
  service.parse_low_watermark_points = kBatchPoints;
  service.ingest_queue_points = kBatchPoints;
  service.parse_threads = 1;
  service.flush_points = 64 * kBatchPoints;  // Stage, don't commit per batch.
  ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(), service);

  uint64_t total_ok = 0;
  uint64_t total_shed = 0;
  std::atomic<uint64_t> transport_errors{0};
  for (int round = 0; round < kMaxRounds; ++round) {
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> shed{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, round] {
        SyntheticWorkload workload(
            "svc" + std::to_string(c), kSeriesCount, kPointsPerSeries,
            /*start=*/600 + round * 1'000'000, /*step=*/60);
        HttpClient client;
        if (!client.Connect("127.0.0.1", harness.port()).ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        std::string body;
        for (int i = 0; i < kBatchesPerClient; ++i) {
          workload.NextBody(body);
          HttpResponse response;
          if (!PostIngest(client, body, /*binary=*/true, &response).ok()) {
            transport_errors.fetch_add(1);
            return;
          }
          if (response.status == 200) {
            ok.fetch_add(1);
          } else {
            shed.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    total_ok += ok.load();
    total_shed += shed.load();
    if (shed.load() > 0) {
      break;
    }
  }

  harness.StopHard();
  const ServiceServer::Stats stats = harness.server->stats();
  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(stats.offered_requests, total_ok + total_shed);
  EXPECT_EQ(stats.offered_requests, stats.admitted_requests + stats.shed());
  EXPECT_EQ(stats.admitted_requests, total_ok);
  EXPECT_GT(stats.shed_backpressure, 0u);
  EXPECT_EQ(stats.shed_admission, 0u);  // No token bucket in this leg.
  // The watermark bound held even with eight producers slamming.
  EXPECT_LE(stats.parse_queue_peak_points, service.parse_high_watermark_points);
}

// ---------------------------------------------------------------------------
// Detection byte-identity: /run over live-ingested data must equal an
// offline pipeline fed the same admitted bodies, at scan_threads 1/2/8,
// including with fault-injected (duplicated / reordered / garbage) wire
// data riding along.
// ---------------------------------------------------------------------------

ServiceConfig DetectableServiceConfig() {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 20;
  config.call_graph.num_subroutines = 16;
  config.sampling.samples_per_bucket = 500000;
  config.sampling.bucket_width = Minutes(10);
  config.tick = Minutes(10);
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.seasonal_load_amplitude = 0.0;
  config.emit_process_cpu = false;
  config.seed = 7;
  return config;
}

// A leaf subroutine with enough (but not dominating) gCPU share to carry a
// detectable step regression.
std::string DetectableLeaf(const ServiceConfig& config) {
  const ServiceSimulator probe(config);
  const CallGraph& graph = probe.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  for (size_t i = 0; i < graph.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (graph.edges(id).empty() && reach[i] >= 0.003 && reach[i] <= 0.2) {
      return graph.node(id).name;
    }
  }
  return graph.node(0).name;
}

std::string Serialize(const std::vector<Regression>& reports) {
  std::string out;
  for (const Regression& report : reports) {
    out += ToJsonLine(report);
    out += '\n';
  }
  return out;
}

// Builds the wire stream once: fleet ticks with an injected step regression
// at 36h, fault-injected so duplicates/reorders/garbage ride along.
std::vector<std::string> DetectableBodies(TimePoint end) {
  WireWorkloadOptions options;
  options.service = DetectableServiceConfig();
  options.inject_faults = true;
  options.start = 0;

  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = options.service.name;
  event.subroutine = DetectableLeaf(options.service);
  event.start = Hours(36);
  event.magnitude = 0.5;

  WireWorkload workload(options);
  workload.ScheduleEvent(event);
  std::vector<std::string> bodies;
  while (workload.next_tick() <= end) {
    bodies.push_back(workload.NextBody());
  }
  return bodies;
}

// The injected step lands at 36h; with a 4h analysis window these as-of
// points straddle it, so at least one run must fire.
const std::vector<TimePoint> kRunAsOfs = {Hours(37), Hours(39)};

std::string OfflineRunOutput(const std::vector<std::string>& bodies,
                             const std::string& service_name,
                             const std::vector<TimePoint>& as_ofs) {
  TimeSeriesDatabase db((TsdbOptions()));
  WriteBatch batch(&db);
  for (const std::string& body : bodies) {
    WireBatch wire;
    const Status parsed = ParseWireBatch(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(body.data()),
                                 body.size()),
        &wire);
    EXPECT_TRUE(parsed.ok());
    for (const WireSeries& series : wire.series) {
      const InternedMetricId id = db.Intern(series.id);
      for (size_t i = 0; i < series.timestamps.size(); ++i) {
        batch.Add(id, series.timestamps[i], series.values[i]);
      }
    }
    batch.Commit();
  }
  Pipeline pipeline(&db, nullptr, nullptr, ServicePipelineOptions(1));
  std::string out;
  for (const TimePoint as_of : as_ofs) {
    out += Serialize(pipeline.RunAt(service_name, as_of));
  }
  return out;
}

TEST(ServiceServerTest, RunOutputByteIdenticalToOfflineAcrossScanThreads) {
  const std::vector<std::string> bodies = DetectableBodies(Hours(39));
  ASSERT_GT(bodies.size(), 200u);

  const std::string offline = OfflineRunOutput(bodies, "svc", kRunAsOfs);
  ASSERT_FALSE(offline.empty())
      << "the injected regression produced no offline detections";

  for (const int scan_threads : {1, 2, 8}) {
    ServiceOptions service;
    service.flush_points = 16 * 1024;
    ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(scan_threads),
                          service);
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
    for (const std::string& body : bodies) {
      HttpResponse response;
      ASSERT_TRUE(PostIngest(client, body, /*binary=*/true, &response).ok());
      ASSERT_EQ(response.status, 200);  // Unlimited admission: all land.
    }
    std::string live;
    for (const TimePoint as_of : kRunAsOfs) {
      HttpResponse run_response;
      ASSERT_TRUE(client
                      .Post("/run?service=svc&as_of=" + std::to_string(as_of),
                            "", "", &run_response)
                      .ok());
      ASSERT_EQ(run_response.status, 200);
      live += run_response.body;
    }
    EXPECT_EQ(live, offline) << "scan_threads=" << scan_threads;
    harness.StopHard();
  }
}

// Same identity under overload: only the ACKED prefix of the stream exists
// server-side, and the offline pipeline fed exactly those bodies agrees.
TEST(ServiceServerTest, RunOutputMatchesOfflineOnAckedSubsetUnderOverload) {
  const std::vector<std::string> bodies = DetectableBodies(Hours(39));

  // Size the bucket from the stream itself: the burst covers any single
  // batch (so admission is possible), while the refill rate cannot cover the
  // whole offer even on an absurdly slow box — the acked subset is a strict,
  // shed-dependent selection of the stream.
  uint64_t max_body_points = 0;
  uint64_t total_points = 0;
  for (const std::string& body : bodies) {
    uint32_t points = 0;
    ASSERT_TRUE(PeekWirePoints(
                    std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(body.data()),
                        body.size()),
                    &points)
                    .ok());
    max_body_points = std::max<uint64_t>(max_body_points, points);
    total_points += points;
  }
  ServiceOptions service;
  service.admit_points_per_sec =
      std::max<uint64_t>(1, total_points / 120);  // ~2 min to refill it all.
  service.admit_burst_points = 2 * max_body_points;
  service.flush_points = 16 * 1024;
  ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(1), service);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  std::vector<std::string> acked;
  uint64_t shed = 0;
  for (const std::string& body : bodies) {
    HttpResponse response;
    ASSERT_TRUE(PostIngest(client, body, /*binary=*/true, &response).ok());
    if (response.status == 200) {
      acked.push_back(body);
    } else {
      ASSERT_EQ(response.status, 429);
      ++shed;
    }
  }
  ASSERT_GT(shed, 0u) << "overload leg admitted everything";
  ASSERT_GT(acked.size(), 0u);

  std::string live;
  for (const TimePoint as_of : kRunAsOfs) {
    HttpResponse run_response;
    ASSERT_TRUE(client
                    .Post("/run?service=svc&as_of=" + std::to_string(as_of), "",
                          "", &run_response)
                    .ok());
    ASSERT_EQ(run_response.status, 200);
    live += run_response.body;
  }
  EXPECT_EQ(live, OfflineRunOutput(acked, "svc", kRunAsOfs));

  const ServiceServer::Stats stats = harness.server->stats();
  EXPECT_EQ(stats.offered_requests, stats.admitted_requests + stats.shed());
  EXPECT_EQ(stats.admitted_requests, acked.size());
}

// ---------------------------------------------------------------------------
// Graceful drain: under live load, BeginDrain (the SIGTERM path) stops
// admission, flushes every admitted batch, checkpoints, and exits clean;
// a durable reopen holds every acked point.
// ---------------------------------------------------------------------------

TEST(ServiceServerTest, DrainUnderLoadIsLosslessAcrossDurableReopen) {
  const ScopedDir dir("drain");
  constexpr int kSeriesCount = 32;
  constexpr int kPointsPerSeries = 16;

  TsdbOptions tsdb;
  tsdb.durable.directory = dir.path;
  tsdb.durable.fsync = false;

  ServiceOptions service;
  service.flush_points = 8 * 1024;  // Several batches stage per commit.
  service.drain_deadline_ms = 30'000;

  uint64_t client_acked_points = 0;
  uint64_t drain_rejected = 0;
  {
    ServerHarness harness(tsdb, ServicePipelineOptions(), service);

    std::atomic<bool> drain_now{false};
    std::atomic<uint64_t> acked_points{0};
    std::atomic<uint64_t> rejected{0};
    std::thread sender([&] {
      SyntheticWorkload workload("svc", kSeriesCount, kPointsPerSeries,
                                 /*start=*/600, /*step=*/60);
      HttpClient client;
      if (!client.Connect("127.0.0.1", harness.port()).ok()) {
        return;
      }
      std::string body;
      for (int i = 0; i < 2000; ++i) {
        const uint32_t points = workload.NextBody(body);
        HttpResponse response;
        if (!PostIngest(client, body, /*binary=*/true, &response).ok()) {
          return;  // Connection torn down post-drain: expected.
        }
        if (response.status == 200) {
          acked_points.fetch_add(points);
        } else {
          rejected.fetch_add(1);
          if (response.status == 503) {
            return;  // Draining: stop offering.
          }
        }
        if (i == 50) {
          drain_now.store(true);  // Signal mid-stream, acks in flight.
        }
      }
      drain_now.store(true);
    });

    while (!drain_now.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(harness.Drain()) << "drain missed its deadline";
    sender.join();

    const ServiceServer::Stats stats = harness.server->stats();
    client_acked_points = acked_points.load();
    drain_rejected = rejected.load();
    // Every point the client saw acked was committed AND checkpointed:
    // drain acks only after commit, checkpoints only after the stages idle.
    EXPECT_EQ(stats.acked_points, client_acked_points);
    EXPECT_EQ(stats.offered_requests, stats.admitted_requests + stats.shed());
    EXPECT_GE(stats.seals, 1u);  // The drain checkpoint ran.
    EXPECT_GT(client_acked_points, 0u);
  }

  // Cold reopen from the durable directory: the acked points are all there.
  TimeSeriesDatabase reopened(tsdb);
  uint64_t recovered_points = 0;
  for (int s = 0; s < kSeriesCount; ++s) {
    const MetricId id{"svc", MetricKind::kApplication,
                      "synthetic_" + std::to_string(s), ""};
    const TimeSeries* series = reopened.Find(id);
    if (series != nullptr) {
      recovered_points += series->size();
    }
  }
  EXPECT_EQ(recovered_points, client_acked_points)
      << "acked points lost (or invented) across the drain + reopen "
      << "(rejected in-flight: " << drain_rejected << ")";
}

// The /drain admin endpoint triggers the same path remotely: 202, then the
// event loop exits with a clean verdict and new ingest sheds with 503.
TEST(ServiceServerTest, DrainEndpointStopsAdmissionAndExitsClean) {
  ServerHarness harness(TsdbOptions{}, ServicePipelineOptions(), ServiceOptions{});
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  HttpResponse response;
  ASSERT_TRUE(PostIngest(client, "svc|gcpu|s||600|1\n", false, &response).ok());
  ASSERT_EQ(response.status, 200);

  ASSERT_TRUE(client.Post("/drain", "", "", &response).ok());
  EXPECT_EQ(response.status, 202);

  // Ingest offered after the drain began is shed (or the socket is already
  // closed by the exiting loop — both are valid shutdown observations).
  const Status late = PostIngest(client, "svc|gcpu|s||660|1\n", false, &response);
  if (late.ok()) {
    EXPECT_EQ(response.status, 503);
  }

  harness.loop.join();
  EXPECT_TRUE(harness.drained);
  EXPECT_TRUE(harness.server->drained());
}

// /seal checkpoints on demand; the boundary lands in the durable tier.
TEST(ServiceServerTest, SealEndpointCheckpointsDurableTier) {
  const ScopedDir dir("seal");
  TsdbOptions tsdb;
  tsdb.durable.directory = dir.path;
  tsdb.durable.fsync = false;

  uint64_t acked = 0;
  {
    ServerHarness harness(tsdb, ServicePipelineOptions(), ServiceOptions{});
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
    HttpResponse response;
    for (int i = 0; i < 8; ++i) {
      const std::string line =
          "svc|gcpu|s||" + std::to_string(600 + 60 * i) + "|1.5\n";
      ASSERT_TRUE(PostIngest(client, line, false, &response).ok());
      ASSERT_EQ(response.status, 200);
      ++acked;
    }
    ASSERT_TRUE(client.Post("/seal", "", "", &response).ok());
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"sealed_before\""), std::string::npos)
        << response.body;
    EXPECT_GE(harness.server->stats().seals, 1u);
    harness.StopHard();
  }

  TimeSeriesDatabase reopened(tsdb);
  const TimeSeries* series =
      reopened.Find(MetricId{"svc", MetricKind::kGcpu, "s", ""});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), acked);
}

}  // namespace
}  // namespace fbdetect
