#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/report/report.h"

namespace fbdetect {
namespace {

Regression SampleRegression() {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, "hot_path", ""};
  regression.change_time = Hours(100);
  regression.detected_at = Hours(104);
  regression.baseline_mean = 0.010;
  regression.regressed_mean = 0.012;
  regression.delta = 0.002;
  regression.relative_delta = 0.2;
  regression.p_value = 0.001;
  regression.merged_count = 3;
  regression.analysis = {0.01, 0.01, 0.012, 0.012};
  regression.root_causes = {{42, 0.9, 1.0, 0.5, 0.8}, {7, 0.3, 0.0, 0.4, 0.2}};
  return regression;
}

TEST(ReportTest, TicketContainsKeyFields) {
  ChangeLog log;
  Commit commit;
  commit.service = "svc";
  commit.time = Hours(99);
  commit.title = "Change the hot path";
  for (int i = 0; i < 43; ++i) {
    Commit filler;
    filler.service = "svc";
    filler.time = Hours(99);
    filler.title = i == 42 ? "Change the hot path" : "filler";
    log.Add(filler);
  }
  const std::string ticket = RenderTicket(SampleRegression(), &log);
  EXPECT_NE(ticket.find("svc/gcpu/hot_path"), std::string::npos);
  EXPECT_NE(ticket.find("+0.002"), std::string::npos);
  EXPECT_NE(ticket.find("+20.00%"), std::string::npos);
  EXPECT_NE(ticket.find("commit 42"), std::string::npos);
  EXPECT_NE(ticket.find("Change the hot path"), std::string::npos);
  EXPECT_NE(ticket.find("3 deduplicated"), std::string::npos);
}

TEST(ReportTest, TicketWithoutChangeLogOrCauses) {
  Regression regression = SampleRegression();
  regression.root_causes.clear();
  const std::string ticket = RenderTicket(regression, nullptr);
  EXPECT_NE(ticket.find("no confident candidate"), std::string::npos);
}

TEST(ReportTest, MaxCausesRespected) {
  ReportOptions options;
  options.max_causes = 1;
  const std::string ticket = RenderTicket(SampleRegression(), nullptr, options);
  EXPECT_NE(ticket.find("commit 42"), std::string::npos);
  EXPECT_EQ(ticket.find("commit 7"), std::string::npos);
}

TEST(ReportTest, JsonLineIsWellFormedish) {
  const std::string json = ToJsonLine(SampleRegression());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metric\":\"svc/gcpu/hot_path\""), std::string::npos);
  EXPECT_NE(json.find("\"long_term\":false"), std::string::npos);
  EXPECT_NE(json.find("\"root_causes\":[{\"commit\":42"), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  for (char c : json) {
    depth += (c == '{' || c == '[') ? 1 : 0;
    depth -= (c == '}' || c == ']') ? 1 : 0;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ReportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(ReportTest, FunnelRendering) {
  FunnelStats short_term;
  short_term.change_points = 1000;
  short_term.after_went_away = 100;
  short_term.after_seasonality = 80;
  short_term.after_threshold = 40;
  short_term.after_same_merger = 20;
  short_term.after_som_dedup = 10;
  short_term.after_cost_shift = 8;
  short_term.after_pairwise = 4;
  FunnelStats long_term;
  const std::string text = RenderFunnel(short_term, long_term, /*long_term_enabled=*/false);
  EXPECT_NE(text.find("1/10.0"), std::string::npos);   // went-away row.
  EXPECT_NE(text.find("1/250.0"), std::string::npos);  // pairwise row.
  EXPECT_EQ(text.find("long-term path"), std::string::npos);
}

TEST(ReportTest, QuarantineRenderingListsTotalsAndPerSeriesRows) {
  QuarantineRecord dirty;
  dirty.metric = {"svc", MetricKind::kGcpu, "dirty_sub", ""};
  dirty.worst = QualityVerdict::kCorrupt;
  dirty.windows_quarantined = 4;
  dirty.non_finite = 9;
  dirty.negative = 1;
  dirty.missing = 3;
  dirty.max_skew = 7;
  dirty.dropped_duplicate = 2;
  dirty.dropped_out_of_order = 5;
  QuarantineRecord flappy;
  flappy.metric = {"svc", MetricKind::kGcpu, "flappy_sub", ""};
  flappy.worst = QualityVerdict::kFlapping;
  flappy.flap_windows = 2;
  flappy.decode_failures = 1;
  flappy.exceptions = 1;
  QuarantineReport report;
  report.records = {dirty, flappy};

  const std::string text = RenderQuarantine(report);
  EXPECT_NE(text.find("dirty series"), std::string::npos);
  EXPECT_NE(text.find("windows quarantined"), std::string::npos);
  EXPECT_NE(text.find("decode failures"), std::string::npos);
  EXPECT_NE(text.find("dirty_sub"), std::string::npos);
  EXPECT_NE(text.find("flappy_sub"), std::string::npos);
  EXPECT_NE(text.find("[corrupt]"), std::string::npos);
  EXPECT_NE(text.find("[flapping]"), std::string::npos);
  EXPECT_NE(text.find("nonfinite=9"), std::string::npos);
  EXPECT_NE(text.find("skew=7s"), std::string::npos);
  EXPECT_NE(text.find("dup=2"), std::string::npos);
  EXPECT_NE(text.find("ooo=5"), std::string::npos);
}

TEST(ReportTest, QuarantineRenderingTruncatesAtMaxRows) {
  QuarantineReport report;
  for (int i = 0; i < 3; ++i) {
    QuarantineRecord record;
    record.metric = {"svc", MetricKind::kGcpu, "sub_" + std::to_string(i), ""};
    record.worst = QualityVerdict::kGappy;
    record.windows_quarantined = 1;
    report.records.push_back(record);
  }
  const std::string text = RenderQuarantine(report, /*max_rows=*/1);
  EXPECT_NE(text.find("sub_0"), std::string::npos);
  EXPECT_EQ(text.find("sub_1"), std::string::npos);
  EXPECT_NE(text.find("... 2 more series"), std::string::npos);
  // max_rows = 0 disables truncation.
  const std::string full = RenderQuarantine(report, /*max_rows=*/0);
  EXPECT_NE(full.find("sub_2"), std::string::npos);
  EXPECT_EQ(full.find("more series"), std::string::npos);
}

}  // namespace
}  // namespace fbdetect
