// End-to-end acceptance tests for the incremental streaming scan (DESIGN
// §14): generation-gated re-runs must be byte-identical to the batch oracle
// whenever every series is dirty at a run (the interleaved-ingest steady
// state), whole-run short-circuits must provably do zero scan work, the
// incremental ListMetrics cache must refresh only moved shards, and the
// streaming per-point state must raise early-warning alerts at ingest time.
// Plus unit tests for the three streaming primitives (RollingMoments,
// OnlineCusum, BocpdState).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sim_time.h"
#include "src/core/detector_state.h"
#include "src/core/pipeline.h"
#include "src/fleet/fault_injector.h"
#include "src/fleet/fleet.h"
#include "src/fleet/service.h"
#include "src/observe/telemetry.h"
#include "src/report/report.h"
#include "src/stats/accumulator.h"
#include "src/tsa/bocpd.h"
#include "src/tsa/cusum.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {
namespace {

constexpr Duration kTick = Minutes(10);
constexpr TimePoint kDataEnd = Days(2);
// Re-runs at 30h, 33h, ..., 48h. Every run is preceded by a fresh ingest
// segment, so every series is dirty at every run — the regime in which the
// gated scan guarantees byte-identity with the batch oracle.
constexpr TimePoint kFirstRun = Hours(30);
constexpr Duration kRunStep = Hours(3);
constexpr uint64_t kFaultSeed = 11;

ServiceConfig ConvergenceServiceConfig() {
  ServiceConfig config;
  config.name = "svc";
  config.num_servers = 30;
  config.call_graph.num_subroutines = 24;
  config.sampling.samples_per_bucket = 500000;
  config.sampling.bucket_width = kTick;
  config.tick = kTick;
  config.num_endpoints = 2;
  config.num_seasonal_subroutines = 0;
  config.seasonal_load_amplitude = 0.0;
  config.emit_process_cpu = false;
  config.seed = 7;
  return config;
}

PipelineOptions DetectOptions(int scan_threads, ScanMode mode) {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = kRunStep;
  options.scan_threads = scan_threads;
  options.scan_mode = mode;
  return options;
}

// A leaf subroutine with a detectable reach: a step regression on it moves
// enough gCPU mass to clear the detection threshold.
std::string DetectableLeaf(const ServiceConfig& config) {
  const ServiceSimulator probe(config);
  const CallGraph& graph = probe.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  for (size_t i = 0; i < graph.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (graph.edges(id).empty() && reach[i] >= 0.003 && reach[i] <= 0.2) {
      return graph.node(id).name;
    }
  }
  return graph.node(0).name;
}

std::string Serialize(const std::vector<Regression>& reports) {
  std::string out;
  for (const Regression& report : reports) {
    out += ToJsonLine(report);
    out += '\n';
  }
  return out;
}

std::string RenderPipelineState(Pipeline& pipeline) {
  std::string out = RenderFunnel(pipeline.short_term_funnel(), pipeline.long_term_funnel(),
                                 /*long_term_enabled=*/true);
  out += RenderQuarantine(pipeline.quarantine_report(), /*max_rows=*/0);
  return out;
}

uint64_t CounterValue(const TelemetryRegistry& registry, const std::string& name) {
  for (const CounterSnapshot& counter : registry.SnapshotCounters()) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Convergence: interleaved ingest/detect, streaming (or gated) vs the batch
// oracle over the same database. Each re-run follows a fresh ingest segment,
// so every series is dirty at every run and the gated contract guarantees
// byte-identical survivors, funnels, and quarantine reports.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  std::vector<Regression> batch_reports;
  std::string batch_rendered;      // All reports + funnel + quarantine.
  std::string incremental_rendered;
  uint64_t alerts_raised = 0;
};

ScenarioResult RunInterleavedScenario(double magnitude, double fault_rate,
                                      int scan_threads, ScanMode mode) {
  const ServiceConfig config = ConvergenceServiceConfig();

  std::unique_ptr<FaultInjector> injector;
  if (fault_rate > 0.0) {
    FaultInjectorConfig fault_config = FaultInjectorConfig::AllKinds(fault_rate, kFaultSeed);
    // Keep flap epochs much shorter than one ingest segment: a series that
    // goes completely dark for a whole segment is legitimately clean at the
    // next run (its verdict replays), which would exercise the documented
    // as-of approximation instead of the byte-identity regime under test.
    fault_config.flap_epoch = Minutes(30);
    injector = std::make_unique<FaultInjector>(fault_config);
  }

  FleetSimulator fleet;
  fleet.AddService(config);
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = config.name;
  event.subroutine = DetectableLeaf(config);
  event.start = Hours(36);
  event.magnitude = magnitude;
  fleet.InjectEvent(event);

  Pipeline batch(&fleet.db(), nullptr, nullptr, DetectOptions(scan_threads, ScanMode::kBatch));
  Pipeline incremental(&fleet.db(), nullptr, nullptr, DetectOptions(scan_threads, mode));
  EXPECT_EQ(batch.detector_store(), nullptr);
  EXPECT_NE(incremental.detector_store(), nullptr);
  if (mode == ScanMode::kStreaming) {
    fleet.db().SetAppendObserver(incremental.detector_store());
  }

  FleetIngestOptions ingest;
  ingest.threads = 2;
  ingest.flush_points = 1024;
  ingest.fault_injector = injector.get();

  ScenarioResult result;
  std::string batch_reports_rendered;
  std::string incremental_reports_rendered;
  TimePoint ingested = -kTick;
  for (TimePoint as_of = kFirstRun; as_of <= kDataEnd; as_of += kRunStep) {
    fleet.Run(ingested, as_of, ingest);
    ingested = as_of;
    const std::vector<Regression> batch_run = batch.RunAt(config.name, as_of);
    const std::vector<Regression> incremental_run = incremental.RunAt(config.name, as_of);
    const std::string batch_serialized = Serialize(batch_run);
    const std::string incremental_serialized = Serialize(incremental_run);
    EXPECT_EQ(incremental_serialized, batch_serialized)
        << "as_of=" << as_of << " magnitude=" << magnitude << " fault_rate=" << fault_rate
        << " scan_threads=" << scan_threads;
    batch_reports_rendered += batch_serialized;
    incremental_reports_rendered += incremental_serialized;
    result.batch_reports.insert(result.batch_reports.end(), batch_run.begin(),
                                batch_run.end());
  }
  fleet.db().SetAppendObserver(nullptr);

  result.batch_rendered = batch_reports_rendered + RenderPipelineState(batch);
  result.incremental_rendered = incremental_reports_rendered + RenderPipelineState(incremental);
  if (incremental.detector_store() != nullptr) {
    result.alerts_raised = incremental.detector_store()->alerts_raised();
  }
  return result;
}

bool StepDetectedNear(const std::vector<Regression>& reports, TimePoint start) {
  for (const Regression& report : reports) {
    if (report.metric.kind == MetricKind::kGcpu &&
        std::llabs(report.change_time - start) <= Hours(1)) {
      return true;
    }
  }
  return false;
}

TEST(StreamingConvergenceTest, MagnitudeSweepMatchesBatchOracle) {
  for (const double magnitude : {0.5, 0.05, 0.005}) {
    const ScenarioResult result =
        RunInterleavedScenario(magnitude, /*fault_rate=*/0.0, /*scan_threads=*/2,
                               ScanMode::kStreaming);
    EXPECT_EQ(result.incremental_rendered, result.batch_rendered)
        << "magnitude=" << magnitude;
    if (magnitude == 0.5) {
      EXPECT_TRUE(StepDetectedNear(result.batch_reports, Hours(36)))
          << Serialize(result.batch_reports);
    }
  }
}

TEST(StreamingConvergenceTest, FaultRateSweepMatchesBatchOracle) {
  for (const double rate : {0.05, 0.10}) {
    const ScenarioResult result = RunInterleavedScenario(
        /*magnitude=*/0.5, rate, /*scan_threads=*/2, ScanMode::kStreaming);
    EXPECT_EQ(result.incremental_rendered, result.batch_rendered) << "fault_rate=" << rate;
  }
}

TEST(StreamingConvergenceTest, ThreadCountSweepIsByteIdentical) {
  std::vector<ScenarioResult> results;
  for (const int threads : {1, 8}) {
    results.push_back(RunInterleavedScenario(/*magnitude=*/0.5, /*fault_rate=*/0.0,
                                             threads, ScanMode::kStreaming));
    EXPECT_EQ(results.back().incremental_rendered, results.back().batch_rendered)
        << "scan_threads=" << threads;
  }
  // The whole fleet build is deterministic, so the streaming output must also
  // agree across scan_threads values (1 vs 8), not just with its own oracle.
  EXPECT_EQ(results[1].incremental_rendered, results[0].incremental_rendered);
}

TEST(StreamingConvergenceTest, GatedModeMatchesBatchOracle) {
  const ScenarioResult result = RunInterleavedScenario(
      /*magnitude=*/0.5, /*fault_rate=*/0.0, /*scan_threads=*/2, ScanMode::kGated);
  EXPECT_EQ(result.incremental_rendered, result.batch_rendered);
  EXPECT_EQ(result.alerts_raised, 0u);  // Gated mode keeps no per-point state.
}

// ---------------------------------------------------------------------------
// Generation gating telemetry: whole-run short-circuits and per-series
// dirty/clean accounting.
// ---------------------------------------------------------------------------

ServiceConfig SmallServiceConfig() {
  ServiceConfig config = ConvergenceServiceConfig();
  config.num_servers = 20;
  config.call_graph.num_subroutines = 16;
  return config;
}

PipelineOptions GatedTelemetryOptions() {
  PipelineOptions options = DetectOptions(/*scan_threads=*/1, ScanMode::kGated);
  options.telemetry.enabled = true;
  return options;
}

TEST(GatedScanTest, UnchangedGenerationShortCircuitsTheRunWithZeroScanWork) {
  FleetSimulator fleet;
  fleet.AddService(SmallServiceConfig());
  fleet.Run(-kTick, kFirstRun);

  Pipeline pipeline(&fleet.db(), nullptr, nullptr, GatedTelemetryOptions());
  pipeline.RunAt("svc", kFirstRun);
  const TelemetryRegistry& registry = pipeline.telemetry();
  const uint64_t series = CounterValue(registry, "pipeline.scan.series_in");
  EXPECT_GT(series, 0u);
  EXPECT_EQ(series, fleet.db().ListMetrics("svc").size());
  // First sight of every series: all dirty, nothing cached or skipped.
  EXPECT_EQ(CounterValue(registry, kCounterScanDirty), series);
  EXPECT_EQ(CounterValue(registry, kCounterScanCacheHit), 0u);
  EXPECT_EQ(CounterValue(registry, kCounterScanClean), 0u);
  EXPECT_EQ(CounterValue(registry, kCounterRunShortCircuits), 0u);

  // No ingest since the last run: the whole re-run is skipped. Zero scan
  // work, proven by telemetry — series_in and dirty do not move at all.
  const std::vector<Regression> rerun = pipeline.RunAt("svc", kFirstRun + kRunStep);
  EXPECT_TRUE(rerun.empty());
  EXPECT_EQ(CounterValue(registry, "pipeline.scan.series_in"), series);
  EXPECT_EQ(CounterValue(registry, kCounterScanDirty), series);
  EXPECT_EQ(CounterValue(registry, kCounterScanCacheHit), 0u);
  EXPECT_EQ(CounterValue(registry, kCounterScanClean), series);
  EXPECT_EQ(CounterValue(registry, kCounterRunShortCircuits), 1u);
  EXPECT_EQ(CounterValue(registry, "pipeline.runs"), 2u);

  // RunPeriod over an unchanged database short-circuits every contained run.
  const std::vector<Regression> period =
      pipeline.RunPeriod("svc", kFirstRun, kFirstRun + 3 * kRunStep);
  EXPECT_TRUE(period.empty());
  EXPECT_EQ(CounterValue(registry, "pipeline.scan.series_in"), series);
  EXPECT_EQ(CounterValue(registry, kCounterRunShortCircuits), 4u);
}

TEST(GatedScanTest, SingleDirtySeriesReevaluatesOnlyThatSeries) {
  FleetSimulator fleet;
  fleet.AddService(SmallServiceConfig());
  fleet.Run(-kTick, kFirstRun);

  Pipeline pipeline(&fleet.db(), nullptr, nullptr, GatedTelemetryOptions());
  pipeline.RunAt("svc", kFirstRun);
  const TelemetryRegistry& registry = pipeline.telemetry();
  const uint64_t series = CounterValue(registry, "pipeline.scan.series_in");
  ASSERT_GT(series, 1u);

  // One point on one series: exactly that series re-evaluates; every other
  // series replays its cached verdict (and the per-series events keep the
  // series_in reconciliation exact: series_in delta == dirty + cache_hit).
  const MetricId touched = fleet.db().ListMetrics("svc").front();
  fleet.db().Write(touched, kFirstRun + 60, 1.0);
  pipeline.RunAt("svc", kFirstRun + kRunStep);
  EXPECT_EQ(CounterValue(registry, "pipeline.scan.series_in"), 2 * series);
  EXPECT_EQ(CounterValue(registry, kCounterScanDirty), series + 1);
  EXPECT_EQ(CounterValue(registry, kCounterScanCacheHit), series - 1);
  EXPECT_EQ(CounterValue(registry, kCounterScanClean), series - 1);
  EXPECT_EQ(CounterValue(registry, kCounterRunShortCircuits), 0u);
}

// ---------------------------------------------------------------------------
// Incremental ListMetrics cache: a miss refreshes only the shards whose
// generation moved, observable through scan_stats().
// ---------------------------------------------------------------------------

TEST(TsdbListCacheTest, MissRefreshesOnlyMovedShards) {
  TimeSeriesDatabase db;
  for (int i = 0; i < 64; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "sub%02d", i);
    db.Write(MetricId{"svc", MetricKind::kGcpu, name, ""}, 0, 1.0);
  }

  // Cold miss: every shard's slice is built once.
  const TimeSeriesDatabase::ScanStats cold_before = db.scan_stats();
  const std::vector<MetricId> all = db.ListMetrics("svc");
  EXPECT_EQ(all.size(), 64u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  const TimeSeriesDatabase::ScanStats cold_after = db.scan_stats();
  EXPECT_EQ(cold_after.list_cache_misses, cold_before.list_cache_misses + 1);
  EXPECT_EQ(cold_after.list_cache_shard_refreshes,
            cold_before.list_cache_shard_refreshes + db.shard_count());

  // Hit: no generation moved, no shard re-enumerated.
  EXPECT_EQ(db.ListMetrics("svc"), all);
  const TimeSeriesDatabase::ScanStats hit = db.scan_stats();
  EXPECT_EQ(hit.list_cache_hits, cold_after.list_cache_hits + 1);
  EXPECT_EQ(hit.list_cache_shard_refreshes, cold_after.list_cache_shard_refreshes);

  // A point on an existing series moves exactly one shard: the next miss
  // refreshes one slice, and the merged listing is unchanged.
  db.Write(all.front(), 1, 2.0);
  EXPECT_EQ(db.ListMetrics("svc"), all);
  const TimeSeriesDatabase::ScanStats warm = db.scan_stats();
  EXPECT_EQ(warm.list_cache_misses, hit.list_cache_misses + 1);
  EXPECT_EQ(warm.list_cache_shard_refreshes, hit.list_cache_shard_refreshes + 1);

  // A brand-new series also touches one shard, and the merge inserts it at
  // its canonical position.
  const MetricId extra{"svc", MetricKind::kGcpu, "aaa-extra", ""};
  db.Write(extra, 0, 1.0);
  std::vector<MetricId> expected = all;
  expected.insert(std::upper_bound(expected.begin(), expected.end(), extra), extra);
  EXPECT_EQ(db.ListMetrics("svc"), expected);
  const TimeSeriesDatabase::ScanStats fresh = db.scan_stats();
  EXPECT_EQ(fresh.list_cache_misses, warm.list_cache_misses + 1);
  EXPECT_EQ(fresh.list_cache_shard_refreshes, warm.list_cache_shard_refreshes + 1);
}

// ---------------------------------------------------------------------------
// Streaming early warnings: the per-point state raises an alert at ingest
// time, well before the next periodic re-run would have seen the series.
// ---------------------------------------------------------------------------

TEST(StreamingAlertTest, StepRaisesOneAlertAtTheIngestOfTheFirstShiftedPoint) {
  TimeSeriesDatabase db;
  DetectorStateStore store(DetectorStateStore::Mode::kStreaming);
  db.SetAppendObserver(&store);

  const MetricId id{"svc", MetricKind::kGcpu, "hot", ""};
  constexpr Duration kStep = Minutes(1);
  TimePoint t = 0;
  for (int i = 0; i < 100; ++i, t += kStep) {
    db.Write(id, t, 10.0);
  }
  EXPECT_EQ(store.alerts_raised(), 0u);  // A flat baseline never alerts.
  EXPECT_EQ(store.series_count(), 1u);

  const TimePoint step_at = t;
  for (int i = 0; i < 20; ++i, t += kStep) {
    db.Write(id, t, 12.0);
  }
  // The CUSUM fires on the very first shifted point, and the alert latches:
  // one alert per incident, not one per post-change point.
  EXPECT_EQ(store.alerts_raised(), 1u);
  std::vector<StreamingAlert> alerts = store.DrainAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].triggered_at, step_at);
  EXPECT_EQ(alerts[0].direction, 1);
  EXPECT_NEAR(alerts[0].baseline_mean, 10.0, 1e-9);
  EXPECT_GT(alerts[0].rolling_mean, 10.0);
  EXPECT_TRUE(store.DrainAlerts().empty());
  EXPECT_EQ(store.alerts_raised(), 1u);  // Monotonic, not reset by draining.

  const DetectorState* state = store.FindState(*db.TryIntern(id));
  ASSERT_NE(state, nullptr);
  db.SetAppendObserver(nullptr);
}

// ---------------------------------------------------------------------------
// RollingMoments: sliding-window Welford vs a naive two-pass oracle.
// ---------------------------------------------------------------------------

TEST(RollingMomentsTest, MatchesNaiveWindowedOracle) {
  constexpr int64_t kWindow = 100;
  RollingMoments rolling(kWindow);
  std::deque<std::pair<int64_t, double>> window;
  uint64_t rng = 1;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };

  int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    t += 1 + static_cast<int64_t>(next() % 7);  // Irregular, non-decreasing.
    const double value = static_cast<double>(next() % 1000) / 100.0;
    rolling.Add(t, value);
    window.emplace_back(t, value);
    while (window.front().first <= t - kWindow) {
      window.pop_front();
    }

    double mean = 0.0;
    for (const auto& [unused, v] : window) {
      mean += v;
    }
    mean /= static_cast<double>(window.size());
    double m2 = 0.0;
    for (const auto& [unused, v] : window) {
      m2 += (v - mean) * (v - mean);
    }
    const double variance =
        window.size() < 2 ? 0.0 : m2 / static_cast<double>(window.size() - 1);

    ASSERT_EQ(rolling.count(), static_cast<int64_t>(window.size())) << "i=" << i;
    ASSERT_NEAR(rolling.mean(), mean, 1e-9 * std::max(1.0, std::fabs(mean)))
        << "i=" << i;
    ASSERT_NEAR(rolling.sample_variance(), variance, 1e-7) << "i=" << i;
  }
}

TEST(RollingMomentsTest, NonFinitePointsOccupyWindowSlotsButNotMoments) {
  RollingMoments rolling(10);
  rolling.Add(0, 1.0);
  rolling.Add(1, std::numeric_limits<double>::quiet_NaN());
  rolling.Add(2, 3.0);
  EXPECT_EQ(rolling.count(), 2);
  EXPECT_EQ(rolling.ignored_non_finite(), 1);
  EXPECT_NEAR(rolling.mean(), 2.0, 1e-12);

  // Everything ages out; the NaN's eviction rebalances the ignored tally.
  rolling.Add(20, 5.0);
  EXPECT_EQ(rolling.count(), 1);
  EXPECT_EQ(rolling.ignored_non_finite(), 0);
  EXPECT_NEAR(rolling.mean(), 5.0, 1e-12);
  EXPECT_EQ(rolling.sample_variance(), 0.0);
}

// ---------------------------------------------------------------------------
// OnlineCusum: the KSigma lesson (constant history must not trigger on a
// 1-ulp wiggle) plus directional step detection and alarm reset.
// ---------------------------------------------------------------------------

TEST(OnlineCusumTest, ConstantBaselinePlusUlpWiggleNeverTriggers) {
  OnlineCusum cusum;
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(cusum.Observe(1.0));
  }
  EXPECT_TRUE(cusum.baseline_frozen());
  EXPECT_FALSE(cusum.Observe(std::numeric_limits<double>::quiet_NaN()));
  const double wiggle = std::nextafter(1.0, 2.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(cusum.Observe(wiggle));
  }
  EXPECT_FALSE(cusum.triggered());
  EXPECT_EQ(cusum.direction(), 0);
}

TEST(OnlineCusumTest, StepTriggersOnceWithDirectionAndResetKeepsBaseline) {
  OnlineCusum cusum;
  for (int i = 0; i < 64; ++i) {
    cusum.Observe(1.0);
  }
  EXPECT_TRUE(cusum.Observe(1.1));  // Newly triggered on the first shifted point.
  EXPECT_TRUE(cusum.triggered());
  EXPECT_EQ(cusum.direction(), 1);
  EXPECT_FALSE(cusum.Observe(1.1));  // Latched: no re-trigger while alarmed.

  // Reset clears the alarm but keeps the frozen baseline, so a downward
  // shift against the ORIGINAL mean is still caught.
  cusum.Reset();
  EXPECT_FALSE(cusum.triggered());
  EXPECT_TRUE(cusum.baseline_frozen());
  EXPECT_NEAR(cusum.baseline_mean(), 1.0, 1e-12);
  EXPECT_TRUE(cusum.Observe(0.9));
  EXPECT_EQ(cusum.direction(), -1);
}

// ---------------------------------------------------------------------------
// BocpdState: run-length posterior mechanics.
// ---------------------------------------------------------------------------

TEST(BocpdTest, RunLengthPosteriorCollapsesAfterAStep) {
  BocpdState bocpd;
  uint64_t rng = 99;
  const auto noise = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((rng >> 33) % 1000) / 1000.0 - 0.5;
  };
  for (int i = 0; i < 200; ++i) {
    bocpd.Observe(noise());
  }
  EXPECT_EQ(bocpd.observations(), 200);
  // Long stable history: the MAP run length sits in (or near) the sticky cap
  // bucket and little mass lies on recent change points.
  EXPECT_GT(bocpd.map_run_length(), 32);
  EXPECT_LT(bocpd.change_probability(8), 0.5);

  for (int i = 0; i < 5; ++i) {
    bocpd.Observe(8.0 + noise());
  }
  EXPECT_LE(bocpd.map_run_length(), 8);
  EXPECT_GT(bocpd.change_probability(8), 0.8);
}

TEST(BocpdTest, NonFiniteObservationsAreIgnored) {
  BocpdState bocpd;
  bocpd.Observe(1.0);
  bocpd.Observe(std::numeric_limits<double>::infinity());
  bocpd.Observe(std::numeric_limits<double>::quiet_NaN());
  bocpd.Observe(1.0);
  EXPECT_EQ(bocpd.observations(), 2);
  EXPECT_EQ(bocpd.ignored_non_finite(), 2);
}

}  // namespace
}  // namespace fbdetect
