// Tests for the sharded, interned, Gorilla-backed ingestion path: the
// SymbolTable, InternedMetricId round trips, WriteBatch semantics, the
// TieredSeries seal/materialize invariants, SeriesForScan's zero-copy
// guarantees, and — the load-bearing properties — that ingest thread count
// and compression tiering do not change database content or pipeline output
// at all.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/symbol_table.h"
#include "src/tsdb/tiered_series.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// SymbolTable.
// ---------------------------------------------------------------------------

TEST(SymbolTableTest, EmptyStringIsPreInterned) {
  SymbolTable table;
  EXPECT_EQ(table.Intern(""), SymbolTable::kEmptySymbol);
  EXPECT_EQ(table.Name(SymbolTable::kEmptySymbol), "");
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, InternIsIdempotentAndDense) {
  SymbolTable table;
  const uint32_t a = table.Intern("alpha");
  const uint32_t b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Intern("beta"), b);
  EXPECT_EQ(table.size(), 3u);  // "", "alpha", "beta".
  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Name(b), "beta");
}

TEST(SymbolTableTest, FindNeverCreates) {
  SymbolTable table;
  EXPECT_FALSE(table.Find("ghost").has_value());
  EXPECT_EQ(table.size(), 1u);
  const uint32_t symbol = table.Intern("real");
  ASSERT_TRUE(table.Find("real").has_value());
  EXPECT_EQ(*table.Find("real"), symbol);
}

TEST(SymbolTableTest, NameReferencesStableAcrossGrowth) {
  SymbolTable table;
  const std::string* first = &table.Name(table.Intern("first"));
  for (int i = 0; i < 10000; ++i) {
    table.Intern("filler_" + std::to_string(i));
  }
  EXPECT_EQ(first, &table.Name(1));  // Same object, not just same content.
  EXPECT_EQ(*first, "first");
}

TEST(SymbolTableTest, ConcurrentInternAgreesOnSymbols) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<uint32_t>> seen(kThreads, std::vector<uint32_t>(kNames));
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kNames; ++i) {
        seen[static_cast<size_t>(w)][static_cast<size_t>(i)] =
            table.Intern("name_" + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(seen[static_cast<size_t>(w)], seen[0]);
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kNames) + 1);
}

// ---------------------------------------------------------------------------
// Interned identity round trips.
// ---------------------------------------------------------------------------

TEST(InternedMetricIdTest, InternResolveRoundTrip) {
  TimeSeriesDatabase db;
  const MetricId id{"ads", MetricKind::kGcpu, "compute_bid", "feature/group1"};
  const InternedMetricId interned = db.Intern(id);
  EXPECT_EQ(db.Resolve(interned), id);

  const MetricId bare{"ads", MetricKind::kCpu, "", ""};
  EXPECT_EQ(db.Resolve(db.Intern(bare)), bare);
  // Empty components map to the pre-interned empty symbol.
  EXPECT_EQ(db.Intern(bare).entity, SymbolTable::kEmptySymbol);
}

TEST(InternedMetricIdTest, DistinguishesAllComponents) {
  TimeSeriesDatabase db;
  const InternedMetricId base = db.Intern({"svc", MetricKind::kGcpu, "sub", "meta"});
  EXPECT_NE(db.Intern({"other", MetricKind::kGcpu, "sub", "meta"}), base);
  EXPECT_NE(db.Intern({"svc", MetricKind::kCpu, "sub", "meta"}), base);
  EXPECT_NE(db.Intern({"svc", MetricKind::kGcpu, "other", "meta"}), base);
  EXPECT_NE(db.Intern({"svc", MetricKind::kGcpu, "sub", "other"}), base);
  EXPECT_EQ(db.Intern({"svc", MetricKind::kGcpu, "sub", "meta"}), base);
}

// ---------------------------------------------------------------------------
// Sharded database: string and interned paths agree; shard count is
// invisible to readers.
// ---------------------------------------------------------------------------

TEST(ShardedDatabaseTest, InternedAndStringPathsAgree) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kThroughput, "endpoint_0", ""};
  const InternedMetricId interned = db.Intern(id);
  db.Write(id, 10, 1.0);
  db.Write(interned, 20, 2.0);
  ASSERT_NE(db.Find(id), nullptr);
  EXPECT_EQ(db.Find(id), db.Find(interned));
  EXPECT_EQ(db.Find(id)->size(), 2u);
  EXPECT_TRUE(db.Contains(id));
  EXPECT_TRUE(db.Contains(interned));
  // Lookups for identities never interned return absent without creating
  // symbols.
  EXPECT_EQ(db.Find(MetricId{"ghost", MetricKind::kCpu, "", ""}), nullptr);
  EXPECT_FALSE(db.Contains(MetricId{"ghost", MetricKind::kCpu, "", ""}));
}

TEST(ShardedDatabaseTest, ShardCountInvisibleToReaders) {
  TsdbOptions unsharded;
  unsharded.shard_count = 1;
  TsdbOptions sharded;
  sharded.shard_count = 16;
  TimeSeriesDatabase a(unsharded);
  TimeSeriesDatabase b(sharded);
  Rng rng(3);
  for (int s = 0; s < 4; ++s) {
    for (int e = 0; e < 8; ++e) {
      const MetricId id{"svc_" + std::to_string(s), MetricKind::kGcpu,
                        "sub_" + std::to_string(e), ""};
      for (TimePoint t = 0; t < 50; ++t) {
        const double value = rng.NextDouble();
        a.Write(id, t * 600 + 600, value);
        b.Write(id, t * 600 + 600, value);
      }
    }
  }
  EXPECT_EQ(a.metric_count(), b.metric_count());
  EXPECT_EQ(a.total_points(), b.total_points());
  const std::vector<MetricId> ids_a = a.ListMetrics();
  ASSERT_EQ(ids_a, b.ListMetrics());
  for (const MetricId& id : ids_a) {
    ASSERT_NE(a.Find(id), nullptr);
    ASSERT_NE(b.Find(id), nullptr);
    EXPECT_EQ(a.Find(id)->timestamps(), b.Find(id)->timestamps());
    EXPECT_EQ(a.Find(id)->values(), b.Find(id)->values());
  }
  EXPECT_EQ(a.ListMetrics("svc_2"), b.ListMetrics("svc_2"));
  EXPECT_EQ(a.ListMetricsOfKind("svc_2", MetricKind::kGcpu),
            b.ListMetricsOfKind("svc_2", MetricKind::kGcpu));
}

TEST(ShardedDatabaseTest, ListMetricsCacheInvalidatesOnWrite) {
  TimeSeriesDatabase db;
  db.Write({"svc", MetricKind::kCpu, "", ""}, 10, 0.5);
  EXPECT_EQ(db.ListMetrics("svc").size(), 1u);
  // Second call hits the cache (no way to observe directly, but it must not
  // serve stale data after a write creates a new metric).
  EXPECT_EQ(db.ListMetrics("svc").size(), 1u);
  db.Write({"svc", MetricKind::kThroughput, "", ""}, 10, 1.0);
  EXPECT_EQ(db.ListMetrics("svc").size(), 2u);
  db.Expire(100);  // Drops everything.
  EXPECT_TRUE(db.ListMetrics("svc").empty());
  EXPECT_EQ(db.metric_count(), 0u);
}

// ---------------------------------------------------------------------------
// WriteBatch.
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, StagedPointsInvisibleUntilCommit) {
  TimeSeriesDatabase db;
  WriteBatch batch(&db);
  const MetricId id{"svc", MetricKind::kCpu, "", ""};
  batch.Add(id, 10, 0.5);
  batch.Add(id, 20, 0.6);
  EXPECT_EQ(batch.point_count(), 2u);
  EXPECT_FALSE(db.Contains(id));
  EXPECT_EQ(db.total_points(), 0u);
  batch.Commit();
  EXPECT_TRUE(batch.empty());
  ASSERT_NE(db.Find(id), nullptr);
  EXPECT_EQ(db.Find(id)->size(), 2u);
  EXPECT_EQ(db.Find(id)->values()[1], 0.6);
}

TEST(WriteBatchTest, BatchedContentMatchesPointwiseWrites) {
  TimeSeriesDatabase pointwise;
  TimeSeriesDatabase batched;
  WriteBatch batch(&batched);
  Rng rng(5);
  for (TimePoint t = 600; t <= 600 * 40; t += 600) {
    for (int m = 0; m < 10; ++m) {
      const MetricId id{"svc", MetricKind::kGcpu, "sub_" + std::to_string(m), ""};
      const double value = rng.NextDouble();
      pointwise.Write(id, t, value);
      batch.Add(id, t, value);
    }
    if (t % (600 * 7) == 0) {
      batch.Commit();  // Flush at an uneven cadence on purpose.
    }
  }
  batch.Commit();
  ASSERT_EQ(pointwise.ListMetrics(), batched.ListMetrics());
  for (const MetricId& id : pointwise.ListMetrics()) {
    EXPECT_EQ(pointwise.Find(id)->timestamps(), batched.Find(id)->timestamps());
    EXPECT_EQ(pointwise.Find(id)->values(), batched.Find(id)->values());
  }
}

TEST(WriteBatchTest, CommitBumpsGeneration) {
  TimeSeriesDatabase db;
  const uint64_t g0 = db.generation();
  WriteBatch batch(&db);
  batch.Add(MetricId{"svc", MetricKind::kCpu, "", ""}, 10, 0.5);
  EXPECT_EQ(db.generation(), g0);  // Staging is not a mutation.
  batch.Commit();
  EXPECT_GT(db.generation(), g0);
  const uint64_t g1 = db.generation();
  batch.Commit();  // Empty commit: no mutation, no bump.
  EXPECT_EQ(db.generation(), g1);
}

// ---------------------------------------------------------------------------
// TieredSeries: sealing is content-preserving and compresses.
// ---------------------------------------------------------------------------

TimeSeries SmoothSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  TimeSeries series;
  for (size_t i = 0; i < n; ++i) {
    series.Append(static_cast<TimePoint>(i) * 600, rng.Normal(0.05, 0.001));
  }
  return series;
}

void ExpectSameSeries(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.timestamps(), b.timestamps());
  EXPECT_EQ(a.values(), b.values());
}

TEST(TieredSeriesTest, SealPreservesContentBitExactly) {
  const TimeSeries reference = SmoothSeries(3000, 7);
  TieredSeries tiered(256);
  for (size_t i = 0; i < reference.size(); ++i) {
    tiered.Append(reference.timestamps()[i], reference.values()[i]);
  }
  EXPECT_EQ(tiered.sealed_points(), 0u);
  tiered.SealBefore(2000 * 600);
  EXPECT_EQ(tiered.sealed_points(), 2000u);
  EXPECT_EQ(tiered.tail().size(), 1000u);
  EXPECT_EQ(tiered.size(), reference.size());
  EXPECT_GT(tiered.chunk_count(), 1u);  // 2000 points at 256/chunk.

  TimeSeries materialized;
  tiered.MaterializeAll(materialized);
  ExpectSameSeries(materialized, reference);
}

TEST(TieredSeriesTest, SealedHistoryCompresses) {
  TieredSeries tiered(1024);
  const TimeSeries reference = SmoothSeries(5000, 11);
  for (size_t i = 0; i < reference.size(); ++i) {
    tiered.Append(reference.timestamps()[i], reference.values()[i]);
  }
  tiered.SealBefore(reference.end_time() + 1);  // Seal everything.
  EXPECT_EQ(tiered.tail().size(), 0u);
  // Raw storage is 16 bytes/point; the acceptance bar for the tiered store
  // is >= 2x reduction even on full-precision noisy values.
  EXPECT_LT(static_cast<double>(tiered.sealed_bytes()),
            0.5 * 16.0 * static_cast<double>(tiered.sealed_points()));
}

TEST(TieredSeriesTest, TailCoversAndAppendAfterSeal) {
  TieredSeries tiered(128);
  for (TimePoint t = 600; t <= 600 * 100; t += 600) {
    tiered.Append(t, 1.0);
  }
  tiered.SealBefore(600 * 50);
  EXPECT_FALSE(tiered.TailCovers(600 * 49));  // Sealed history overlaps.
  EXPECT_TRUE(tiered.TailCovers(600 * 50));   // Sealed last is 49*600.
  tiered.Append(600 * 101, 2.0);  // Appends keep working after sealing.
  EXPECT_EQ(tiered.size(), 101u);

  TimeSeries out;
  tiered.MaterializeFrom(600 * 200, out);  // Range beyond data: tail only.
  EXPECT_EQ(out.size(), tiered.tail().size());
}

TEST(TieredSeriesTest, DropBeforeAcrossChunks) {
  const TimeSeries reference = SmoothSeries(1000, 13);
  TieredSeries tiered(100);
  for (size_t i = 0; i < reference.size(); ++i) {
    tiered.Append(reference.timestamps()[i], reference.values()[i]);
  }
  tiered.SealBefore(900 * 600);

  // Cutoff in the middle of the 4th chunk: 3 whole chunks dropped, the
  // straddling chunk re-encoded, everything at/after the cutoff intact.
  const TimePoint cutoff = 350 * 600;
  tiered.DropBefore(cutoff);
  TimeSeries materialized;
  tiered.MaterializeAll(materialized);
  TimeSeries expected = reference;
  expected.DropBefore(cutoff);
  ExpectSameSeries(materialized, expected);
  EXPECT_EQ(tiered.size(), expected.size());

  // Cutoff beyond the sealed history: only the tail remains.
  tiered.DropBefore(950 * 600);
  EXPECT_EQ(tiered.sealed_points(), 0u);
  EXPECT_EQ(tiered.size(), 50u);
}

// ---------------------------------------------------------------------------
// SeriesForScan: zero-copy on the raw tail, decode-to-scratch over sealed
// history, Find materialization.
// ---------------------------------------------------------------------------

TEST(SeriesForScanTest, TailOnlySeriesIsZeroCopy) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kCpu, "", ""};
  for (TimePoint t = 600; t <= 600 * 100; t += 600) {
    db.Write(id, t, 0.5);
  }
  TimeSeries scratch;
  const TimeSeries* series = db.SeriesForScan(id, 600 * 50, scratch);
  ASSERT_NE(series, nullptr);
  EXPECT_NE(series, &scratch);            // No decode happened...
  EXPECT_EQ(series, db.Find(id));         // ...it is the stored series itself.
  EXPECT_TRUE(scratch.empty());
}

TEST(SeriesForScanTest, SealedHistoryDecodesIntoScratch) {
  TsdbOptions options;
  options.seal_chunk_points = 64;
  TimeSeriesDatabase db(options);
  const MetricId id{"svc", MetricKind::kGcpu, "sub", ""};
  const TimeSeries reference = SmoothSeries(500, 17);
  for (size_t i = 0; i < reference.size(); ++i) {
    db.Write(id, reference.timestamps()[i], reference.values()[i]);
  }
  db.SealBefore(400 * 600);

  // Scan range entirely inside the raw tail: still zero-copy.
  TimeSeries scratch;
  const TimeSeries* tail_scan = db.SeriesForScan(id, 400 * 600, scratch);
  ASSERT_NE(tail_scan, nullptr);
  EXPECT_NE(tail_scan, &scratch);
  EXPECT_EQ(tail_scan->size(), 100u);

  // Scan range reaching into sealed history: decoded into the scratch
  // buffer, never later than `begin`, bit-exact.
  const TimePoint begin = 200 * 600;
  const TimeSeries* deep_scan = db.SeriesForScan(id, begin, scratch);
  ASSERT_EQ(deep_scan, &scratch);
  ASSERT_GT(scratch.size(), 0u);
  EXPECT_LE(scratch.start_time(), begin);
  EXPECT_EQ(scratch.end_time(), reference.end_time());
  const auto [first, last] = scratch.SliceIndices(begin, reference.end_time() + 1);
  const auto [ref_first, ref_last] =
      reference.SliceIndices(begin, reference.end_time() + 1);
  ASSERT_EQ(last - first, ref_last - ref_first);
  for (size_t i = 0; i < last - first; ++i) {
    EXPECT_EQ(scratch.timestamps()[first + i], reference.timestamps()[ref_first + i]);
    EXPECT_EQ(scratch.values()[first + i], reference.values()[ref_first + i]);
  }
}

TEST(SeriesForScanTest, FindMaterializesSealedSeries) {
  TsdbOptions options;
  options.seal_chunk_points = 64;
  TimeSeriesDatabase db(options);
  const MetricId id{"svc", MetricKind::kGcpu, "sub", ""};
  const TimeSeries reference = SmoothSeries(300, 19);
  for (size_t i = 0; i < reference.size(); ++i) {
    db.Write(id, reference.timestamps()[i], reference.values()[i]);
  }
  db.SealBefore(250 * 600);
  const TimeSeries* found = db.Find(id);
  ASSERT_NE(found, nullptr);
  ExpectSameSeries(*found, reference);
  EXPECT_EQ(db.Find(id), found);  // Cached: same object on repeat lookups.

  // Mutations invalidate the materialized cache.
  db.Write(id, reference.end_time() + 600, 42.0);
  const TimeSeries* refound = db.Find(id);
  ASSERT_NE(refound, nullptr);
  EXPECT_EQ(refound->size(), reference.size() + 1);
  EXPECT_EQ(refound->values().back(), 42.0);
}

TEST(SeriesForScanTest, MemoryStatsTrackTiers) {
  TsdbOptions options;
  options.seal_chunk_points = 128;
  TimeSeriesDatabase db(options);
  const MetricId id{"svc", MetricKind::kCpu, "", ""};
  for (TimePoint t = 600; t <= 600 * 400; t += 600) {
    db.Write(id, t, 0.5);
  }
  TimeSeriesDatabase::MemoryStats before = db.memory_stats();
  EXPECT_EQ(before.raw_points, 400u);
  EXPECT_EQ(before.sealed_points, 0u);
  db.SealBefore(600 * 300);
  TimeSeriesDatabase::MemoryStats after = db.memory_stats();
  EXPECT_EQ(after.raw_points, 101u);
  EXPECT_EQ(after.sealed_points, 299u);
  EXPECT_GT(after.sealed_bytes, 0u);
  EXPECT_LT(after.sealed_bytes, after.sealed_raw_bytes());
}

// ---------------------------------------------------------------------------
// Parallel fleet ingestion: thread count and batching must not change
// database content or pipeline output. EXPECT_EQ on doubles on purpose —
// the guarantee is bit-identity.
// ---------------------------------------------------------------------------

constexpr Duration kWorldDuration = Days(2);

std::unique_ptr<FleetSimulator> BuildWorld(const TsdbOptions& tsdb_options) {
  auto fleet = std::make_unique<FleetSimulator>(tsdb_options);
  for (int s = 0; s < 3; ++s) {
    ServiceConfig config;
    config.name = "svc_" + std::to_string(s);
    config.num_servers = 50;
    config.call_graph.num_subroutines = 30;
    config.sampling.samples_per_bucket = 1000000;
    config.sampling.bucket_width = Minutes(10);
    config.tick = Minutes(10);
    config.num_seasonal_subroutines = 4;
    config.seasonal_mix_amplitude = 0.10;
    config.seed = 100 + static_cast<uint64_t>(s);
    ServiceSimulator* service = fleet->AddService(config);

    InjectedEvent regression;
    regression.kind = EventKind::kStepRegression;
    regression.service = config.name;
    regression.subroutine = service->graph().node(5).name;
    regression.start = Days(1) + Hours(3);
    regression.magnitude = 0.5;
    fleet->InjectEvent(regression);
  }
  return fleet;
}

void ExpectIdenticalDatabases(const TimeSeriesDatabase& a, const TimeSeriesDatabase& b) {
  ASSERT_EQ(a.metric_count(), b.metric_count());
  ASSERT_EQ(a.total_points(), b.total_points());
  const std::vector<MetricId> ids = a.ListMetrics();
  ASSERT_EQ(ids, b.ListMetrics());
  for (const MetricId& id : ids) {
    const TimeSeries* series_a = a.Find(id);
    const TimeSeries* series_b = b.Find(id);
    ASSERT_NE(series_a, nullptr) << id.ToString();
    ASSERT_NE(series_b, nullptr) << id.ToString();
    EXPECT_EQ(series_a->timestamps(), series_b->timestamps()) << id.ToString();
    EXPECT_EQ(series_a->values(), series_b->values()) << id.ToString();
  }
}

TEST(ParallelIngestTest, ThreadCountDoesNotChangeDatabaseContent) {
  std::unique_ptr<FleetSimulator> reference = BuildWorld(TsdbOptions{});
  reference->Run(0, kWorldDuration);  // Serial, default batching.

  for (int threads : {2, 8}) {
    std::unique_ptr<FleetSimulator> fleet = BuildWorld(TsdbOptions{});
    FleetIngestOptions options;
    options.threads = threads;
    options.flush_points = 512;  // Different flush cadence on purpose.
    fleet->Run(0, kWorldDuration, options);
    ExpectIdenticalDatabases(reference->db(), fleet->db());
  }
}

PipelineOptions WorldPipelineOptions() {
  PipelineOptions options;
  options.detection.threshold = 0.0005;
  options.detection.windows.historical = Days(1);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(4);
  options.scan_threads = 2;
  return options;
}

void ExpectIdenticalReports(const std::vector<Regression>& a,
                            const std::vector<Regression>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metric, b[i].metric) << "report " << i;
    EXPECT_EQ(a[i].long_term, b[i].long_term) << "report " << i;
    EXPECT_EQ(a[i].detected_at, b[i].detected_at) << "report " << i;
    EXPECT_EQ(a[i].change_time, b[i].change_time) << "report " << i;
    EXPECT_EQ(a[i].p_value, b[i].p_value) << "report " << i;
    EXPECT_EQ(a[i].baseline_mean, b[i].baseline_mean) << "report " << i;
    EXPECT_EQ(a[i].regressed_mean, b[i].regressed_mean) << "report " << i;
    EXPECT_EQ(a[i].delta, b[i].delta) << "report " << i;
    EXPECT_EQ(a[i].historical, b[i].historical) << "report " << i;
    EXPECT_EQ(a[i].analysis, b[i].analysis) << "report " << i;
  }
}

TEST(ParallelIngestTest, PipelineOutputIdenticalAcrossIngestThreads) {
  std::vector<std::vector<Regression>> reports;
  for (int threads : {1, 2, 8}) {
    std::unique_ptr<FleetSimulator> fleet = BuildWorld(TsdbOptions{});
    FleetIngestOptions options;
    options.threads = threads;
    fleet->Run(0, kWorldDuration, options);
    Pipeline pipeline(&fleet->db(), &fleet->change_log(), nullptr,
                      WorldPipelineOptions());
    reports.push_back(pipeline.RunPeriod("svc_0", Days(1), kWorldDuration));
  }
  ASSERT_FALSE(reports[0].empty());  // The injected regression must surface.
  for (size_t i = 1; i < reports.size(); ++i) {
    ExpectIdenticalReports(reports[0], reports[i]);
  }
}

TEST(ParallelIngestTest, PipelineOutputIdenticalWithTieringOnAndOff) {
  // Raw database vs one whose first day is sealed into Gorilla chunks: the
  // decode-to-scratch scan path must reproduce the raw output bit-for-bit.
  std::unique_ptr<FleetSimulator> raw = BuildWorld(TsdbOptions{});
  raw->Run(0, kWorldDuration);
  std::unique_ptr<FleetSimulator> tiered = BuildWorld(TsdbOptions{});
  tiered->Run(0, kWorldDuration);
  tiered->db().SealBefore(Days(1) + Hours(6));
  ASSERT_GT(tiered->db().memory_stats().sealed_points, 0u);

  Pipeline raw_pipeline(&raw->db(), &raw->change_log(), nullptr, WorldPipelineOptions());
  Pipeline tiered_pipeline(&tiered->db(), &tiered->change_log(), nullptr,
                           WorldPipelineOptions());
  const std::vector<Regression> raw_reports =
      raw_pipeline.RunPeriod("svc_0", Days(1), kWorldDuration);
  const std::vector<Regression> tiered_reports =
      tiered_pipeline.RunPeriod("svc_0", Days(1), kWorldDuration);
  ASSERT_FALSE(raw_reports.empty());
  ExpectIdenticalReports(raw_reports, tiered_reports);
}

}  // namespace
}  // namespace fbdetect
