#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/window.h"

namespace fbdetect {
namespace {

TimeSeries MakeSeries(TimePoint start, Duration step, const std::vector<double>& values) {
  TimeSeries series;
  TimePoint t = start;
  for (double v : values) {
    series.Append(t, v);
    t += step;
  }
  return series;
}

TEST(MetricIdTest, ToStringFormats) {
  MetricId id{"svc", MetricKind::kGcpu, "foo", ""};
  EXPECT_EQ(id.ToString(), "svc/gcpu/foo");
  id.metadata = "user/vip";
  EXPECT_EQ(id.ToString(), "svc/gcpu/foo@user/vip");
  MetricId service_level{"svc", MetricKind::kCpu, "", ""};
  EXPECT_EQ(service_level.ToString(), "svc/cpu");
}

TEST(MetricIdTest, EqualityAndHash) {
  const MetricId a{"svc", MetricKind::kGcpu, "foo", ""};
  const MetricId b{"svc", MetricKind::kGcpu, "foo", ""};
  const MetricId c{"svc", MetricKind::kGcpu, "bar", ""};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const MetricIdHash hash;
  EXPECT_EQ(hash(a), hash(b));
}

TEST(MetricIdTest, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(MetricKind::kApplication); ++k) {
    EXPECT_STRNE(MetricKindName(static_cast<MetricKind>(k)), "unknown");
  }
}

TEST(TimeSeriesTest, AppendAndAccess) {
  const TimeSeries series = MakeSeries(100, 10, {1.0, 2.0, 3.0});
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.start_time(), 100);
  EXPECT_EQ(series.end_time(), 120);
}

TEST(TimeSeriesTest, SliceHalfOpenInterval) {
  const TimeSeries series = MakeSeries(0, 10, {0.0, 1.0, 2.0, 3.0, 4.0});
  const TimeSeries slice = series.Slice(10, 40);
  EXPECT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice.values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TimeSeriesTest, ValuesBetweenEmptyRange) {
  const TimeSeries series = MakeSeries(0, 10, {1.0, 2.0});
  EXPECT_TRUE(series.ValuesBetween(100, 200).empty());
  EXPECT_TRUE(series.ValuesBetween(5, 5).empty());
}

TEST(TimeSeriesTest, ResampleAverages) {
  const TimeSeries series = MakeSeries(0, 10, {1.0, 3.0, 5.0, 7.0});
  const TimeSeries resampled = series.Resample(20);
  ASSERT_EQ(resampled.size(), 2u);
  EXPECT_DOUBLE_EQ(resampled.values()[0], 2.0);
  EXPECT_DOUBLE_EQ(resampled.values()[1], 6.0);
}

TEST(TimeSeriesTest, DropBefore) {
  TimeSeries series = MakeSeries(0, 10, {1.0, 2.0, 3.0, 4.0});
  series.DropBefore(20);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.start_time(), 20);
}

TEST(WindowTest, ExtractSplitsCorrectly) {
  // 100 points at 1s resolution, as_of = 100.
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  const TimeSeries series = MakeSeries(0, 1, values);
  WindowSpec spec;
  spec.historical = 70;
  spec.analysis = 20;
  spec.extended = 10;
  const WindowExtract extract = ExtractWindows(series, 100, spec);
  EXPECT_EQ(extract.historical.size(), 70u);
  EXPECT_EQ(extract.analysis.size(), 20u);
  EXPECT_EQ(extract.extended.size(), 10u);
  EXPECT_DOUBLE_EQ(extract.historical.front(), 0.0);
  EXPECT_DOUBLE_EQ(extract.analysis.front(), 70.0);
  EXPECT_DOUBLE_EQ(extract.extended.front(), 90.0);
  EXPECT_EQ(extract.analysis_plus_extended.size(), 30u);
  EXPECT_EQ(extract.analysis_timestamps.size(), 30u);
  EXPECT_EQ(extract.analysis_timestamps.front(), 70);
}

TEST(WindowTest, PartialDataYieldsShortWindows) {
  const TimeSeries series = MakeSeries(90, 1, {1.0, 2.0, 3.0});
  WindowSpec spec;
  spec.historical = 50;
  spec.analysis = 10;
  const WindowExtract extract = ExtractWindows(series, 100, spec);
  EXPECT_TRUE(extract.historical.empty());
  EXPECT_EQ(extract.analysis.size(), 3u);
  EXPECT_FALSE(extract.HasEnoughData(1, 1));
  EXPECT_TRUE(extract.HasEnoughData(0, 2));
}

TEST(DatabaseTest, WriteAndFind) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kCpu, "", ""};
  db.Write(id, 10, 0.5);
  db.Write(id, 20, 0.6);
  const TimeSeries* series = db.Find(id);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
  EXPECT_EQ(db.Find(MetricId{"other", MetricKind::kCpu, "", ""}), nullptr);
}

TEST(DatabaseTest, ListMetricsFiltersAndSorts) {
  TimeSeriesDatabase db;
  db.Write({"b_svc", MetricKind::kCpu, "", ""}, 1, 0.1);
  db.Write({"a_svc", MetricKind::kGcpu, "sub_2", ""}, 1, 0.1);
  db.Write({"a_svc", MetricKind::kGcpu, "sub_1", ""}, 1, 0.1);
  db.Write({"a_svc", MetricKind::kThroughput, "", ""}, 1, 0.1);

  const std::vector<MetricId> all = db.ListMetrics();
  EXPECT_EQ(all.size(), 4u);
  const std::vector<MetricId> a_only = db.ListMetrics("a_svc");
  EXPECT_EQ(a_only.size(), 3u);
  // Deterministic lexicographic order.
  EXPECT_EQ(a_only[0].entity, "sub_1");
  EXPECT_EQ(a_only[1].entity, "sub_2");

  const std::vector<MetricId> gcpu = db.ListMetricsOfKind("a_svc", MetricKind::kGcpu);
  EXPECT_EQ(gcpu.size(), 2u);
}

TEST(DatabaseTest, WriteSeriesBulkAndAppend) {
  TimeSeriesDatabase db;
  const MetricId id{"svc", MetricKind::kLatency, "e", ""};
  db.WriteSeries(id, MakeSeries(0, 10, {1.0, 2.0}));
  db.WriteSeries(id, MakeSeries(20, 10, {3.0}));
  EXPECT_EQ(db.Find(id)->size(), 3u);
}

TEST(DatabaseTest, ExpireDropsOldPointsAndEmptyMetrics) {
  TimeSeriesDatabase db;
  const MetricId keep{"svc", MetricKind::kCpu, "", ""};
  const MetricId drop{"svc", MetricKind::kMemory, "", ""};
  db.WriteSeries(keep, MakeSeries(0, 10, {1.0, 2.0, 3.0}));
  db.WriteSeries(drop, MakeSeries(0, 10, {1.0}));
  db.Expire(15);  // Keeps only points with t >= 15: {20} of `keep`.
  EXPECT_EQ(db.metric_count(), 1u);
  EXPECT_EQ(db.Find(keep)->size(), 1u);
  EXPECT_EQ(db.total_points(), 1u);
}

}  // namespace
}  // namespace fbdetect
