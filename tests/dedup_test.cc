// Tests for SOM, SOMDedup, PairwiseDedup, and the cost-shift detector.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/random.h"
#include "src/core/cost_shift.h"
#include "src/core/pairwise_dedup.h"
#include "src/core/som.h"
#include "src/core/som_dedup.h"
#include "src/tsdb/database.h"

namespace fbdetect {
namespace {

// ---------------------------------------------------------------------------
// SOM.
// ---------------------------------------------------------------------------

class SomGridSizeTest : public ::testing::TestWithParam<std::pair<size_t, int>> {};

TEST_P(SomGridSizeTest, FollowsFourthRootRule) {
  const auto [n, expected] = GetParam();
  EXPECT_EQ(SomGridSize(n), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SomGridSizeTest,
                         ::testing::Values(std::pair<size_t, int>{0, 1},
                                           std::pair<size_t, int>{1, 1},
                                           std::pair<size_t, int>{16, 2},
                                           std::pair<size_t, int>{81, 3},
                                           std::pair<size_t, int>{100, 4},
                                           std::pair<size_t, int>{10000, 10}));

TEST(SomTest, SeparatesTwoBlobs) {
  Rng rng(1);
  std::vector<std::vector<double>> items;
  for (int i = 0; i < 40; ++i) {
    items.push_back({rng.Normal(0.0, 0.1), rng.Normal(0.0, 0.1)});
  }
  for (int i = 0; i < 40; ++i) {
    items.push_back({rng.Normal(5.0, 0.1), rng.Normal(5.0, 0.1)});
  }
  SelfOrganizingMap som(2, 3, 99);
  som.Train(items, {});
  const std::vector<int> assignment = som.Assign(items);
  std::set<int> blob_a(assignment.begin(), assignment.begin() + 40);
  std::set<int> blob_b(assignment.begin() + 40, assignment.end());
  // The two blobs must not share any cell.
  for (int cell : blob_a) {
    EXPECT_EQ(blob_b.count(cell), 0u);
  }
}

TEST(SomTest, IdenticalItemsShareCell) {
  std::vector<std::vector<double>> items(10, std::vector<double>{1.0, 2.0, 3.0});
  SelfOrganizingMap som(3, 2, 5);
  som.Train(items, {});
  const std::vector<int> assignment = som.Assign(items);
  for (int cell : assignment) {
    EXPECT_EQ(cell, assignment[0]);
  }
}

// ---------------------------------------------------------------------------
// SOMDedup.
// ---------------------------------------------------------------------------

Regression MakeRegression(const std::string& subroutine, double delta, double baseline,
                          const std::vector<double>& analysis,
                          std::vector<int64_t> causes = {}) {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, subroutine, ""};
  regression.change_time = Hours(10);
  regression.change_index = analysis.size() / 2;
  regression.baseline_mean = baseline;
  regression.regressed_mean = baseline + delta;
  regression.delta = delta;
  regression.relative_delta = baseline > 0.0 ? delta / baseline : 0.0;
  regression.analysis = analysis;
  for (size_t i = 0; i < analysis.size(); ++i) {
    regression.analysis_timestamps.push_back(static_cast<TimePoint>(i) * Minutes(10));
  }
  regression.historical.assign(50, baseline);
  regression.candidate_root_causes = std::move(causes);
  return regression;
}

std::vector<double> StepShape(double base, double delta, size_t n, uint64_t seed,
                              double noise = 0.0005) {
  Rng rng(seed);
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) {
    values.push_back((i < n / 2 ? base : base + delta) + rng.Normal(0.0, noise));
  }
  return values;
}

TEST(SomDedupTest, MergesSameShapeSameCauseRegressions) {
  // Ten callers of the same regressed subroutine: same change point, same
  // root-cause candidate, near-identical shapes -> expect heavy merging.
  std::vector<Regression> regressions;
  for (int i = 0; i < 10; ++i) {
    regressions.push_back(MakeRegression("caller_" + std::to_string(i), 0.01, 0.05,
                                         StepShape(0.05, 0.01, 48, 100 + i), {7}));
  }
  const SomDedup dedup;
  const std::vector<Regression> representatives = dedup.Deduplicate(regressions);
  EXPECT_LT(representatives.size(), regressions.size() / 2);
  size_t merged_total = 0;
  for (const Regression& representative : representatives) {
    merged_total += representative.merged_count;
  }
  EXPECT_EQ(merged_total, regressions.size());
}

TEST(SomDedupTest, KeepsDistinctRegressionsApart) {
  std::vector<Regression> regressions;
  // Two very different cohorts: tiny gCPU steps vs a big throughput-style one.
  for (int i = 0; i < 5; ++i) {
    regressions.push_back(MakeRegression("sub_a" + std::to_string(i), 0.002, 0.03,
                                         StepShape(0.03, 0.002, 48, 200 + i), {1}));
  }
  Regression big = MakeRegression("sub_huge", 0.5, 0.2, StepShape(0.2, 0.5, 48, 300), {9});
  big.metric.kind = MetricKind::kEndpointCost;
  regressions.push_back(big);
  const SomDedup dedup;
  const std::vector<Regression> representatives = dedup.Deduplicate(regressions);
  bool found_big = false;
  for (const Regression& representative : representatives) {
    if (representative.metric.entity == "sub_huge") {
      found_big = true;
    }
  }
  EXPECT_TRUE(found_big);  // The outlier must survive as its own cluster.
}

TEST(SomDedupTest, RepresentativeHasHighestImportance) {
  // Same cluster shape; one member has a much larger absolute delta.
  std::vector<Regression> regressions;
  for (int i = 0; i < 6; ++i) {
    regressions.push_back(MakeRegression("sub_" + std::to_string(i), 0.01, 0.05,
                                         StepShape(0.05, 0.01, 48, 400), {3}));
  }
  regressions.push_back(MakeRegression("sub_heavy", 0.012, 0.05,
                                       StepShape(0.05, 0.012, 48, 400), {3}));
  const SomDedup dedup;
  const std::vector<Regression> representatives = dedup.Deduplicate(regressions);
  for (const Regression& representative : representatives) {
    if (representative.merged_count > 1) {
      // Within any merged cluster the representative's importance is maximal
      // by construction; sanity-check it is positive.
      EXPECT_GT(representative.importance, 0.0);
    }
  }
}

TEST(SomDedupTest, ImportanceScoreWeights) {
  const SomDedup dedup;
  Regression regression = MakeRegression("sub", 0.01, 0.05, StepShape(0.05, 0.01, 16, 1), {5});
  // Normalized: rel = 1, abs = 1, popularity = 0.05, root cause found = 1.
  const double score =
      dedup.ImportanceScore(regression, std::fabs(regression.delta),
                            std::fabs(regression.relative_delta));
  EXPECT_NEAR(score, 0.2 * 1.0 + 0.6 * 1.0 + 0.1 * 0.95 + 0.1 * 1.0, 1e-9);
}

TEST(SomDedupTest, EmptyAndSingletonInputs) {
  const SomDedup dedup;
  EXPECT_TRUE(dedup.Deduplicate({}).empty());
  const std::vector<Regression> one =
      dedup.Deduplicate({MakeRegression("s", 0.01, 0.05, StepShape(0.05, 0.01, 16, 2))});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].som_cluster, 0);
}

// ---------------------------------------------------------------------------
// PairwiseDedup.
// ---------------------------------------------------------------------------

TEST(PairwiseDedupTest, MergesCorrelatedSimilarlyNamedRegressions) {
  PairwiseDedup dedup;
  Regression first = MakeRegression("TaoClient_fetch_user", 0.01, 0.05,
                                    StepShape(0.05, 0.01, 48, 500, 0.0001));
  // Same shape (same seed => identical noise), closely related name.
  Regression second = MakeRegression("TaoClient_fetch_user_by_id", 0.01, 0.05,
                                     StepShape(0.05, 0.01, 48, 500, 0.0001));
  const std::vector<int> first_new = dedup.Ingest({first});
  EXPECT_EQ(first_new.size(), 1u);
  const std::vector<int> second_new = dedup.Ingest({second});
  EXPECT_TRUE(second_new.empty());  // Merged into the existing group.
  EXPECT_EQ(dedup.groups().size(), 1u);
  EXPECT_EQ(dedup.groups()[0].members.size(), 2u);
}

TEST(PairwiseDedupTest, KeepsUncorrelatedApart) {
  PairwiseDedup dedup;
  Regression first = MakeRegression("alpha_module_run", 0.01, 0.05,
                                    StepShape(0.05, 0.01, 48, 600, 0.002));
  Rng rng(601);
  std::vector<double> reversed;
  for (size_t i = 0; i < 48; ++i) {
    reversed.push_back((i < 24 ? 0.08 : 0.05) + rng.Normal(0.0, 0.002));  // Opposite step.
  }
  Regression second = MakeRegression("zeta_engine_step", 0.01, 0.06, reversed);
  dedup.Ingest({first});
  const std::vector<int> new_groups = dedup.Ingest({second});
  EXPECT_EQ(new_groups.size(), 1u);
  EXPECT_EQ(dedup.groups().size(), 2u);
}

TEST(PairwiseDedupTest, StackOverlapEnablesMergeOfDissimilarNames) {
  PairwiseRule rule;
  rule.min_text = 0.99;  // Make text matching impossible for these names.
  PairwiseDedup dedup(rule, [](const MetricId&, const MetricId&) { return 0.9; });
  Regression first = MakeRegression("alpha", 0.01, 0.05,
                                    StepShape(0.05, 0.01, 48, 700, 0.0001));
  Regression second = MakeRegression("omega", 0.01, 0.05,
                                     StepShape(0.05, 0.01, 48, 700, 0.0001));
  dedup.Ingest({first});
  const std::vector<int> new_groups = dedup.Ingest({second});
  EXPECT_TRUE(new_groups.empty());  // Overlap carried the merge.
}

TEST(PairwiseDedupTest, ScoreExposesFeatureValues) {
  PairwiseDedup dedup;
  Regression first = MakeRegression("svc_sub", 0.01, 0.05,
                                    StepShape(0.05, 0.01, 48, 800, 0.0001));
  dedup.Ingest({first});
  Regression probe = MakeRegression("svc_sub", 0.01, 0.05,
                                    StepShape(0.05, 0.01, 48, 800, 0.0001));
  const PairwiseScores scores = dedup.Score(probe, dedup.groups()[0]);
  EXPECT_GT(scores.pearson, 0.95);
  EXPECT_GT(scores.text, 0.95);
}

// ---------------------------------------------------------------------------
// Cost-shift detector.
// ---------------------------------------------------------------------------

// Fake code info with one class of three subroutines and a caller.
class FakeCodeInfo : public CodeInfoProvider {
 public:
  bool Exists(const std::string& subroutine) const override {
    return subroutine == "caller" || subroutine == "method_a" || subroutine == "method_b" ||
           subroutine == "method_c";
  }
  std::vector<std::string> CallersOf(const std::string& subroutine) const override {
    if (subroutine == "method_a" || subroutine == "method_b" || subroutine == "method_c") {
      return {"caller"};
    }
    return {};
  }
  std::string ClassOf(const std::string& subroutine) const override {
    if (subroutine == "caller") {
      return "Caller";
    }
    return Exists(subroutine) ? "Widget" : "";
  }
  std::vector<std::string> ClassMembers(const std::string& class_name) const override {
    if (class_name == "Widget") {
      return {"method_a", "method_b", "method_c"};
    }
    return {};
  }
  bool IsDescendant(const std::string&, const std::string&) const override { return false; }
};

// Writes a gCPU series with a step at `step_at`.
void WriteStepSeries(TimeSeriesDatabase& db, const std::string& subroutine, double before,
                     double after, TimePoint step_at, TimePoint end) {
  const MetricId id{"svc", MetricKind::kGcpu, subroutine, ""};
  for (TimePoint t = 0; t < end; t += Minutes(10)) {
    db.Write(id, t, t < step_at ? before : after);
  }
}

Regression ShiftCandidate(const std::string& subroutine, double delta, double baseline,
                          TimePoint change, TimePoint detected) {
  Regression regression;
  regression.metric = {"svc", MetricKind::kGcpu, subroutine, ""};
  regression.change_time = change;
  regression.detected_at = detected;
  regression.baseline_mean = baseline;
  regression.delta = delta;
  regression.relative_delta = delta / baseline;
  return regression;
}

TEST(CostShiftTest, ClassDomainCatchesPureShift) {
  TimeSeriesDatabase db;
  const TimePoint step = Hours(10);
  const TimePoint end = Hours(20);
  // method_a gains exactly what method_b loses; method_c unchanged.
  WriteStepSeries(db, "method_a", 0.010, 0.018, step, end);
  WriteStepSeries(db, "method_b", 0.012, 0.004, step, end);
  WriteStepSeries(db, "method_c", 0.005, 0.005, step, end);

  FakeCodeInfo code_info;
  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<ClassDomainDetector>(&code_info));

  const Regression regression = ShiftCandidate("method_a", 0.008, 0.010, step, end);
  const CostShiftVerdict verdict = detector.Evaluate(regression);
  EXPECT_TRUE(verdict.is_cost_shift);
  EXPECT_EQ(verdict.domain, "enclosing_class:class/Widget");
}

TEST(CostShiftTest, RealRegressionNotFlagged) {
  TimeSeriesDatabase db;
  const TimePoint step = Hours(10);
  const TimePoint end = Hours(20);
  // method_a gains cost; nothing compensates -> the class total rises too.
  WriteStepSeries(db, "method_a", 0.010, 0.018, step, end);
  WriteStepSeries(db, "method_b", 0.012, 0.012, step, end);
  WriteStepSeries(db, "method_c", 0.005, 0.005, step, end);

  FakeCodeInfo code_info;
  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<ClassDomainDetector>(&code_info));

  const Regression regression = ShiftCandidate("method_a", 0.008, 0.010, step, end);
  EXPECT_FALSE(detector.Evaluate(regression).is_cost_shift);
}

TEST(CostShiftTest, CallerDomainCatchesShiftAmongCallees) {
  TimeSeriesDatabase db;
  const TimePoint step = Hours(10);
  const TimePoint end = Hours(20);
  WriteStepSeries(db, "method_a", 0.010, 0.018, step, end);
  // The caller's own (inclusive) gCPU is flat: the shift happened below it.
  WriteStepSeries(db, "caller", 0.040, 0.040, step, end);

  FakeCodeInfo code_info;
  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<CallerDomainDetector>(&code_info));

  const Regression regression = ShiftCandidate("method_a", 0.008, 0.010, step, end);
  const CostShiftVerdict verdict = detector.Evaluate(regression);
  EXPECT_TRUE(verdict.is_cost_shift);
  EXPECT_EQ(verdict.domain, "upstream_caller:callers_of/method_a");
}

TEST(CostShiftTest, HugeDomainExcluded) {
  TimeSeriesDatabase db;
  const TimePoint step = Hours(10);
  const TimePoint end = Hours(20);
  WriteStepSeries(db, "method_a", 0.0001, 0.0002, step, end);
  // Caller at 20% gCPU — 2000x the regression delta of 0.0001: excluded by
  // check 2 even though it is flat.
  WriteStepSeries(db, "caller", 0.20, 0.20, step, end);

  FakeCodeInfo code_info;
  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<CallerDomainDetector>(&code_info));

  const Regression regression = ShiftCandidate("method_a", 0.0001, 0.0001, step, end);
  EXPECT_FALSE(detector.Evaluate(regression).is_cost_shift);
}

TEST(CostShiftTest, NewDomainNotACostShift) {
  TimeSeriesDatabase db;
  const TimePoint step = Hours(10);
  const TimePoint end = Hours(20);
  WriteStepSeries(db, "method_a", 0.010, 0.018, step, end);
  // method_b's series only exists AFTER the change: the domain is new.
  const MetricId b_id{"svc", MetricKind::kGcpu, "method_b", ""};
  for (TimePoint t = step; t < end; t += Minutes(10)) {
    db.Write(b_id, t, 0.001);
  }
  WriteStepSeries(db, "method_c", 0.005, 0.0, step, end);

  FakeCodeInfo code_info;
  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<ClassDomainDetector>(&code_info));

  const Regression regression = ShiftCandidate("method_a", 0.008, 0.010, step, end);
  EXPECT_FALSE(detector.Evaluate(regression).is_cost_shift);
}

TEST(CostShiftTest, CommitDomainGroupsTouchedSubroutines) {
  TimeSeriesDatabase db;
  const TimePoint step = Hours(10);
  const TimePoint end = Hours(20);
  WriteStepSeries(db, "method_a", 0.010, 0.018, step, end);
  WriteStepSeries(db, "method_b", 0.012, 0.004, step, end);

  ChangeLog log;
  Commit commit;
  commit.service = "svc";
  commit.time = step - Minutes(30);
  commit.title = "refactor";
  commit.touched_subroutines = {"method_a", "method_b"};
  log.Add(commit);

  CostShiftDetector detector(&db, CostShiftConfig{});
  detector.AddDomainDetector(std::make_unique<CommitDomainDetector>(&log, Days(1)));

  const Regression regression = ShiftCandidate("method_a", 0.008, 0.010, step, end);
  const CostShiftVerdict verdict = detector.Evaluate(regression);
  EXPECT_TRUE(verdict.is_cost_shift);
}

}  // namespace
}  // namespace fbdetect
