// EGADS-style anomaly-detection baselines (Laptev et al., KDD '15) for the
// Fig. 8 comparison. Three detectors matching the algorithms named in the
// figure, each with a single `sensitivity` knob in [0, 1] (0 = most
// permissive, 1 = most aggressive) that the bench sweeps to trace the
// FP/FN trade-off curve:
//   1. adaptive kernel density — scores a point by its Gaussian-kernel
//      density under the historical distribution with a data-adaptive
//      bandwidth (Silverman's rule); low density = anomaly;
//   2. extreme low density — like (1) but with a fixed small bandwidth and a
//      threshold on the raw density (flags only far-out points);
//   3. K-Sigma — |x - mean| > K * stddev of the history.
// A window is flagged as a regression when the fraction of anomalous points
// in the analysis window exceeds a detector-specific minimum.
#ifndef FBDETECT_SRC_EGADS_EGADS_H_
#define FBDETECT_SRC_EGADS_EGADS_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fbdetect {

class EgadsDetector {
 public:
  virtual ~EgadsDetector() = default;
  virtual std::string name() const = 0;

  // True when `analysis` looks anomalous (regressed) against `historical`.
  // `sensitivity` in [0, 1].
  virtual bool IsAnomalous(std::span<const double> historical,
                           std::span<const double> analysis, double sensitivity) const = 0;
};

class AdaptiveKernelDensityDetector : public EgadsDetector {
 public:
  std::string name() const override { return "adaptive kernel density"; }
  bool IsAnomalous(std::span<const double> historical, std::span<const double> analysis,
                   double sensitivity) const override;
};

class ExtremeLowDensityDetector : public EgadsDetector {
 public:
  std::string name() const override { return "extreme low density"; }
  bool IsAnomalous(std::span<const double> historical, std::span<const double> analysis,
                   double sensitivity) const override;
};

class KSigmaDetector : public EgadsDetector {
 public:
  std::string name() const override { return "K-Sigma"; }
  bool IsAnomalous(std::span<const double> historical, std::span<const double> analysis,
                   double sensitivity) const override;
};

// All three, in Fig. 8 order.
std::vector<std::unique_ptr<EgadsDetector>> MakeEgadsDetectors();

}  // namespace fbdetect

#endif  // FBDETECT_SRC_EGADS_EGADS_H_
