#include "src/egads/egads.h"

#include <algorithm>
#include <cmath>

#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

// Gaussian-kernel density of `x` under `data` with bandwidth `h`.
double KernelDensity(std::span<const double> data, double x, double h) {
  if (data.empty() || h <= 0.0) {
    return 0.0;
  }
  const double norm = 1.0 / (static_cast<double>(data.size()) * h * std::sqrt(2.0 * M_PI));
  double density = 0.0;
  for (double v : data) {
    const double u = (x - v) / h;
    density += std::exp(-0.5 * u * u);
  }
  return density * norm;
}

// Silverman's rule-of-thumb bandwidth.
double SilvermanBandwidth(std::span<const double> data) {
  const double sd = SampleStdDev(data);
  const double n = static_cast<double>(std::max<size_t>(data.size(), 1));
  const double h = 1.06 * sd * std::pow(n, -0.2);
  return h > 0.0 ? h : 1e-9;
}

// Fraction of analysis points classified anomalous by `point_is_anomalous`.
template <typename Fn>
double AnomalousFraction(std::span<const double> analysis, Fn point_is_anomalous) {
  if (analysis.empty()) {
    return 0.0;
  }
  size_t count = 0;
  for (double v : analysis) {
    if (point_is_anomalous(v)) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(analysis.size());
}

}  // namespace

bool AdaptiveKernelDensityDetector::IsAnomalous(std::span<const double> historical,
                                                std::span<const double> analysis,
                                                double sensitivity) const {
  if (historical.size() < 8 || analysis.empty()) {
    return false;
  }
  const double h = SilvermanBandwidth(historical);
  // Density threshold: the `q`-quantile of the historical points' own
  // densities; higher sensitivity -> higher quantile -> more anomalies.
  std::vector<double> self_density;
  self_density.reserve(historical.size());
  for (double v : historical) {
    self_density.push_back(KernelDensity(historical, v, h));
  }
  const double quantile = 1.0 + 19.0 * sensitivity;  // P1 .. P20.
  const double threshold = Percentile(self_density, quantile);
  const double min_fraction = 0.5 - 0.35 * sensitivity;
  return AnomalousFraction(analysis, [&](double v) {
           return KernelDensity(historical, v, h) < threshold;
         }) >= min_fraction;
}

bool ExtremeLowDensityDetector::IsAnomalous(std::span<const double> historical,
                                            std::span<const double> analysis,
                                            double sensitivity) const {
  if (historical.size() < 8 || analysis.empty()) {
    return false;
  }
  // Fixed narrow bandwidth: only points far outside the support score low.
  const double h = SilvermanBandwidth(historical) * 0.35;
  const double base = KernelDensity(historical, Median(historical), h);
  if (base <= 0.0) {
    return false;
  }
  // Density below `frac` of the central density counts as extreme-low.
  const double frac = 0.001 + 0.25 * sensitivity;
  const double min_fraction = 0.6 - 0.45 * sensitivity;
  return AnomalousFraction(analysis, [&](double v) {
           return KernelDensity(historical, v, h) < frac * base;
         }) >= min_fraction;
}

bool KSigmaDetector::IsAnomalous(std::span<const double> historical,
                                 std::span<const double> analysis, double sensitivity) const {
  if (historical.size() < 8 || analysis.empty()) {
    return false;
  }
  const double mean = Mean(historical);
  const double sd = SampleStdDev(historical);
  // K from 6 (permissive) down to 1 (aggressive).
  const double k = 6.0 - 5.0 * sensitivity;
  const double min_fraction = 0.5 - 0.4 * sensitivity;
  if (sd <= 0.0) {
    // Degenerate (constant) history has no scale of its own; exact mean
    // equality here flagged near-constant series on 1-ulp float noise. Use
    // the analysis window's own robust spread (normalized MAD) as the
    // yardstick instead, floored at a relative tolerance of the constant
    // level so rounding jitter around `mean` can never trip the k-band.
    const double mad = MedianAbsoluteDeviation(analysis, /*normalized=*/true);
    const double tolerance_floor = 1e-9 * std::max(std::fabs(mean), 1.0);
    const double spread = std::max(mad, tolerance_floor);
    return AnomalousFraction(analysis, [&](double v) {
             return std::fabs(v - mean) > k * spread;
           }) >= min_fraction;
  }
  return AnomalousFraction(analysis, [&](double v) {
           return std::fabs(v - mean) > k * sd;
         }) >= min_fraction;
}

std::vector<std::unique_ptr<EgadsDetector>> MakeEgadsDetectors() {
  std::vector<std::unique_ptr<EgadsDetector>> detectors;
  detectors.push_back(std::make_unique<AdaptiveKernelDensityDetector>());
  detectors.push_back(std::make_unique<ExtremeLowDensityDetector>());
  detectors.push_back(std::make_unique<KSigmaDetector>());
  return detectors;
}

}  // namespace fbdetect
