// Pluggable change-point detection backends (DESIGN.md §17).
//
// FBDetect's §5.2.1 CUSUM+EM detector is one point in a wide design space:
// Hunter (MongoDB) ships E-divisive means, BIPeC a PELT+Bayesian hybrid, and
// BOCPD powers several streaming detectors. This seam makes the scan stage's
// detector a named, interchangeable component so backends can be compared on
// identical data by the bake-off harness (bench_detector_bakeoff) and new
// detectors can be added without touching the pipeline.
//
// Contract for every backend:
//   - Detect() is const and thread-safe: the scan stage calls one instance
//     concurrently from every scan worker. All per-call state lives on the
//     stack.
//   - Deterministic: identical (values, options) must return identical
//     results, bit for bit, on every call — stochastic machinery (e.g. the
//     E-divisive permutation test) must use fixed seeds. This is what keeps
//     pipeline output byte-identical across scan_threads and repeat runs.
//   - The returned ChangePoint follows the §5.2.1 semantics the pipeline
//     expects: `index` is the first post-change element, `delta` the
//     after-minus-before mean difference on the oriented series, `found`
//     only when the change is significant at options.significance_level.
//   - Backends are single-change-point: multi-change engines (PELT) reduce
//     to the strongest single split before validation.
//
// The registry maps names to factories. Built-ins:
//   "cusum_em"   — the paper's CUSUM-initialized EM split + likelihood-ratio
//                  validation (the default; byte-identical to the historical
//                  hard-wired path).
//   "e_divisive" — energy-distance bisection with permutation significance.
//   "pelt"       — pruned exact linear-time penalized segmentation, reduced
//                  to its strongest split, likelihood-ratio validated.
//   "bocpd"      — offline adapter over the streaming BocpdState run-length
//                  posterior, likelihood-ratio validated.
#ifndef FBDETECT_SRC_TSA_CHANGEPOINT_BACKEND_H_
#define FBDETECT_SRC_TSA_CHANGEPOINT_BACKEND_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/tsa/em_changepoint.h"

namespace fbdetect {

// Per-call options shared by every backend, plus the knobs specific to each
// built-in. One flat struct (rather than per-backend option types) keeps the
// stage-side plumbing backend-agnostic: DetectionConfig fills the common
// fields and leaves backend specifics at their defaults unless a workload
// overrides them.
struct ChangePointBackendOptions {
  // Common.
  size_t min_segment = 4;            // Minimum points on each side of a split.
  double significance_level = 0.01;  // Validation level for `found`.

  // cusum_em.
  int max_em_iterations = 20;

  // e_divisive.
  int e_divisive_permutations = 199;
  uint64_t e_divisive_seed = 0x0fbde71f5ULL;

  // pelt. Penalty is penalty_factor * sigma_hat^2 * log n, with sigma_hat a
  // robust (first-difference MAD) noise-scale estimate; factor 2 is the BIC
  // choice for a mean-shift parameter.
  double pelt_penalty_factor = 2.0;

  // bocpd (offline adapter).
  double bocpd_hazard = 1.0 / 256.0;
  int bocpd_max_run_length = 64;
  // Posterior mass on "a change happened within the last min_segment points"
  // required before a candidate is localized.
  double bocpd_change_mass = 0.5;
};

class ChangePointBackend {
 public:
  virtual ~ChangePointBackend() = default;

  // Registry name ("cusum_em", ...). Stable across versions.
  virtual std::string_view name() const = 0;

  // Finds and validates the strongest single change point. Must be
  // deterministic and safe to call concurrently (see contract above).
  virtual ChangePoint Detect(std::span<const double> values,
                             const ChangePointBackendOptions& options) const = 0;
};

using ChangePointBackendFactory = std::unique_ptr<ChangePointBackend> (*)();

// Registers a backend under `name`. Returns false (and registers nothing)
// when the name is already taken. Built-ins are registered on first registry
// use; external callers may add their own before building pipelines.
bool RegisterChangePointBackend(std::string_view name, ChangePointBackendFactory factory);

// Creates the backend registered under `name`, or nullptr when unknown.
std::unique_ptr<ChangePointBackend> MakeChangePointBackend(std::string_view name);

// All registered names, sorted. Always includes the four built-ins.
std::vector<std::string> ChangePointBackendNames();

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_CHANGEPOINT_BACKEND_H_
