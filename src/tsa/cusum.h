// CUSUM-based change-point localization (§5.2.1).
//
// The cumulative-sum statistic S_t = Σ_{i<=t} (x_i - x̄) peaks (in absolute
// value) at the most likely mean-shift point. CusumLocate returns that point
// plus the before/after means; the iterative CUSUM+EM detector builds on it.
#ifndef FBDETECT_SRC_TSA_CUSUM_H_
#define FBDETECT_SRC_TSA_CUSUM_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fbdetect {

struct CusumResult {
  bool found = false;
  size_t change_point = 0;  // Index of the first post-change element.
  double mean_before = 0.0;
  double mean_after = 0.0;
  double max_cusum = 0.0;  // |S| at the peak, a magnitude-times-duration score.
};

// Locates the single strongest mean-shift candidate. Requires at least
// `min_segment` points on each side (default 2); returns found=false when the
// series is too short or constant.
CusumResult CusumLocate(std::span<const double> values, size_t min_segment = 2);

// The raw CUSUM path S_1..S_n (useful for tests and visual harnesses).
std::vector<double> CusumPath(std::span<const double> values);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_CUSUM_H_
