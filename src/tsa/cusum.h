// CUSUM-based change-point localization (§5.2.1).
//
// The cumulative-sum statistic S_t = Σ_{i<=t} (x_i - x̄) peaks (in absolute
// value) at the most likely mean-shift point. CusumLocate returns that point
// plus the before/after means; the iterative CUSUM+EM detector builds on it.
//
// OnlineCusum is the sequential (Page's test) form used by the streaming
// detector state: it freezes a baseline mean/sd from the first
// `baseline_points` samples, then maintains the two one-sided statistics
// g⁺/g⁻ in O(1) per observation and signals when either exceeds h·σ.
#ifndef FBDETECT_SRC_TSA_CUSUM_H_
#define FBDETECT_SRC_TSA_CUSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/stats/accumulator.h"

namespace fbdetect {

struct CusumResult {
  bool found = false;
  size_t change_point = 0;  // Index of the first post-change element.
  double mean_before = 0.0;
  double mean_after = 0.0;
  double max_cusum = 0.0;  // |S| at the peak, a magnitude-times-duration score.
};

// Locates the single strongest mean-shift candidate. Requires at least
// `min_segment` points on each side (default 2); returns found=false when the
// series is too short or constant.
CusumResult CusumLocate(std::span<const double> values, size_t min_segment = 2);

// The raw CUSUM path S_1..S_n (useful for tests and visual harnesses).
std::vector<double> CusumPath(std::span<const double> values);

// Sequential two-sided CUSUM (Page's test) with a frozen baseline.
//
// The first `baseline_points` finite samples estimate the in-control mean
// and sd with a Welford accumulator; after that the baseline is frozen and
// every Observe updates
//   g⁺ = max(0, g⁺ + (x - μ - k·σ))
//   g⁻ = max(0, g⁻ - (x - μ + k·σ))
// in O(1). triggered() flips when either statistic exceeds h·σ and stays
// set until Reset (the streaming scan resets after each emitted candidate).
// The sd is floored at a relative tolerance of the baseline mean so
// constant histories cannot produce a zero-width band (the KSigma lesson:
// a 1-ulp wiggle after a constant baseline must not trigger).
class OnlineCusum {
 public:
  struct Config {
    int64_t baseline_points = 64;  // Samples used to freeze the baseline.
    double drift_sigma = 0.5;      // k: slack per point, in baseline sds.
    double threshold_sigma = 6.0;  // h: decision threshold, in baseline sds.
  };

  OnlineCusum() = default;
  explicit OnlineCusum(const Config& config) : config_(config) {}

  // Feeds one observation. Non-finite values are ignored. Returns true if
  // this observation newly triggered the alarm.
  bool Observe(double value);

  bool baseline_frozen() const { return frozen_; }
  bool triggered() const { return triggered_; }
  // Signed direction of the alarm: +1 shift up, -1 shift down, 0 untriggered.
  int direction() const { return direction_; }
  double positive_statistic() const { return g_pos_; }
  double negative_statistic() const { return g_neg_; }
  double baseline_mean() const { return mean_; }
  double baseline_sd() const { return sd_; }

  // Clears the alarm and the running statistics but keeps the frozen
  // baseline (re-estimating it from post-change data would mask the shift).
  void Reset();

 private:
  Config config_;
  WelfordAccumulator baseline_;
  bool frozen_ = false;
  bool triggered_ = false;
  int direction_ = 0;
  double mean_ = 0.0;
  double sd_ = 0.0;
  double g_pos_ = 0.0;
  double g_neg_ = 0.0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_CUSUM_H_
