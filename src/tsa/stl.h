// Seasonal-Trend decomposition using Loess (STL), Cleveland et al. 1990,
// used by the seasonality detector (§5.2.3) and the long-term detector
// (§5.3). Also provides the moving-average decomposition the paper evaluated
// as an alternative and rejected.
#ifndef FBDETECT_SRC_TSA_STL_H_
#define FBDETECT_SRC_TSA_STL_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fbdetect {

struct Decomposition {
  std::vector<double> seasonal;
  std::vector<double> trend;
  std::vector<double> residual;
  bool valid = false;

  // trend[i] + residual[i] — what the seasonality detector compares medians
  // over after removing seasonality.
  std::vector<double> Deseasonalized() const;
};

struct StlConfig {
  int inner_iterations = 2;
  int outer_iterations = 1;      // Robustness passes; 1 = plain STL.
  size_t seasonal_span = 7;      // Loess span for cycle-subseries smoothing.
  size_t trend_span = 0;         // 0 = derive from period (next odd >= 1.5*period).
  size_t lowpass_span = 0;       // 0 = derive from period.
};

// Decomposes `values` with seasonal period `period` (>= 2, and the series
// must contain at least two full periods; otherwise returns valid=false with
// all signal assigned to trend=input).
Decomposition StlDecompose(std::span<const double> values, size_t period,
                           const StlConfig& config = {});

// Classical moving-average decomposition: centered MA of width `period` as
// trend, per-phase means of the detrended series as seasonality. The paper
// found this inferior to STL (too sensitive to sudden changes); it is kept as
// the comparison baseline.
Decomposition MovingAverageDecompose(std::span<const double> values, size_t period);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_STL_H_
