// E-divisive single change-point detection (Matteson & James 2014), the
// detector family used by MongoDB's Hunter for CI performance regressions.
//
// The statistic is the sample energy distance between the two candidate
// segments: for a split at t with X = values[0, t) and Y = values[t, n),
//
//   E(X, Y) = 2/(mn) ΣΣ|x_i - y_j|
//             - 1/C(m,2) Σ_{i<k}|x_i - x_k| - 1/C(n,2) Σ_{j<l}|y_j - y_l|
//   Q(t)    = (mn / (m+n)) * E(X, Y)
//
// which is zero in distribution-equality and positive under any
// distributional change (not just mean shifts). The best split maximizes
// Q(t); significance comes from a permutation test: the observed maximum is
// ranked against the maxima of deterministic reshuffles of the series, so
// the p-value is exact, distribution-free, and reproducible bit-for-bit for
// a fixed seed. The scan is O(n^2) via incremental cross/within-sum updates
// as the split advances; each permutation costs another O(n^2).
#ifndef FBDETECT_SRC_TSA_E_DIVISIVE_H_
#define FBDETECT_SRC_TSA_E_DIVISIVE_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace fbdetect {

struct EDivisiveConfig {
  size_t min_segment = 4;            // Minimum points on each side of the split.
  double significance_level = 0.01;  // Permutation-test level.
  // Number of permutations R; the attainable p-value floor is 1/(R+1), so R
  // must satisfy 1/(R+1) < significance_level for detection to be possible.
  int permutations = 199;
  // Fixed seed for the permutation shuffles: repeated calls on the same data
  // return identical results (the determinism contract of the scan path).
  uint64_t seed = 0x0fbde71f5ULL;
};

struct EDivisiveResult {
  bool found = false;    // Significant at the configured level.
  size_t index = 0;      // First element of the post-change segment.
  double statistic = 0;  // Q at the best split.
  double p_value = 1.0;  // Permutation p-value, floored at 1/(R+1).
};

// Locates and tests the single best energy-distance split. Returns
// found=false when the series is too short, constant, or the permutation
// test does not reject. Deterministic for fixed (values, config).
EDivisiveResult EDivisiveSingleSplit(std::span<const double> values,
                                     const EDivisiveConfig& config = {});

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_E_DIVISIVE_H_
