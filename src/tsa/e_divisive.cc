#include "src/tsa/e_divisive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/random.h"

namespace fbdetect {
namespace {

// Max of Q(t) over admissible splits, computed in O(n^2) by sliding the
// split left-to-right and updating the between/within absolute-difference
// sums incrementally as each point changes sides. Returns 0 when no
// admissible split exists or the series is constant.
double MaxEnergySplit(std::span<const double> values, size_t min_segment, size_t* best_index) {
  const size_t n = values.size();
  if (best_index != nullptr) {
    *best_index = 0;
  }
  if (n < 2 * min_segment) {
    return 0.0;
  }

  // Total pairwise |x_i - x_j| via the sorted-order identity
  //   Σ_{i<j} |x_i - x_j| = Σ_i (2i - n + 1) * x_(i)
  // (O(n log n), exact up to rounding).
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double total_pairs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_pairs += (2.0 * static_cast<double>(i) - static_cast<double>(n) + 1.0) * sorted[i];
  }

  // Split state at t = 1: X = {values[0]}, Y = the rest.
  double within_x = 0.0;
  double between = 0.0;
  for (size_t j = 1; j < n; ++j) {
    between += std::fabs(values[0] - values[j]);
  }
  double within_y = total_pairs - between;

  double best_q = 0.0;
  for (size_t t = 1; t + min_segment <= n; ++t) {
    if (t >= min_segment) {
      const double m = static_cast<double>(t);
      const double k = static_cast<double>(n - t);
      const double energy = 2.0 * between / (m * k) - 2.0 * within_x / (m * (m - 1.0)) -
                            2.0 * within_y / (k * (k - 1.0));
      const double q = (m * k / (m + k)) * energy;
      if (q > best_q) {
        best_q = q;
        if (best_index != nullptr) {
          *best_index = t;
        }
      }
    }
    // Advance: values[t] moves from Y to X.
    const double v = values[t];
    double sum_x = 0.0;
    for (size_t i = 0; i < t; ++i) {
      sum_x += std::fabs(v - values[i]);
    }
    double sum_y = 0.0;
    for (size_t j = t + 1; j < n; ++j) {
      sum_y += std::fabs(v - values[j]);
    }
    within_x += sum_x;
    within_y -= sum_y;
    between += sum_y - sum_x;
  }
  return best_q;
}

}  // namespace

EDivisiveResult EDivisiveSingleSplit(std::span<const double> values,
                                     const EDivisiveConfig& config) {
  EDivisiveResult result;
  const size_t n = values.size();
  const size_t min_segment = std::max<size_t>(config.min_segment, 2);
  if (n < 2 * min_segment) {
    return result;
  }

  size_t best_index = 0;
  const double observed = MaxEnergySplit(values, min_segment, &best_index);
  if (!(observed > 0.0) || best_index == 0) {
    return result;  // Constant (all distances zero) or no admissible split.
  }
  result.index = best_index;
  result.statistic = observed;

  // Permutation test with a sequential early stop: once the exceedance count
  // can no longer produce p < alpha, further permutations cannot change the
  // verdict and only refine an already-insignificant p. The stop rule
  // depends only on the deterministic shuffle sequence, so results stay
  // bit-for-bit reproducible.
  const int permutations = std::max(config.permutations, 1);
  const int reject_count = static_cast<int>(
      std::ceil(config.significance_level * static_cast<double>(permutations + 1)));
  Rng rng(config.seed);
  std::vector<double> shuffled(values.begin(), values.end());
  int exceedances = 0;
  int performed = 0;
  for (int r = 0; r < permutations; ++r) {
    for (size_t i = n - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(rng.NextUint64(static_cast<uint64_t>(i + 1)));
      std::swap(shuffled[i], shuffled[j]);
    }
    ++performed;
    if (MaxEnergySplit(shuffled, min_segment, nullptr) >= observed) {
      ++exceedances;
      if (exceedances >= reject_count) {
        break;  // p >= alpha is already certain.
      }
    }
  }
  result.p_value = (1.0 + static_cast<double>(exceedances)) /
                   (1.0 + static_cast<double>(performed));
  result.found = result.p_value < config.significance_level;
  return result;
}

}  // namespace fbdetect
