// Loess (locally weighted linear regression) smoother — the building block of
// STL (§5.2.3). Tricube kernel over a sliding neighborhood of `span` points,
// degree-1 local fits, evaluated at every index.
#ifndef FBDETECT_SRC_TSA_LOESS_H_
#define FBDETECT_SRC_TSA_LOESS_H_

#include <span>
#include <vector>

namespace fbdetect {

// Smooths `values` with a loess window of `span` points (clamped to
// [2, n]). Returns a series of the same length. An empty input returns an
// empty vector.
std::vector<double> LoessSmooth(std::span<const double> values, size_t span);

// Loess evaluated with optional per-point robustness weights (used by STL's
// outer loop). `robustness` must be empty or the same length as `values`.
std::vector<double> LoessSmoothWeighted(std::span<const double> values, size_t span,
                                        std::span<const double> robustness);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_LOESS_H_
