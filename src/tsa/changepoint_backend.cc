#include "src/tsa/changepoint_backend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/stats/hypothesis.h"
#include "src/tsa/bocpd.h"
#include "src/tsa/dp_changepoint.h"
#include "src/tsa/e_divisive.h"

namespace fbdetect {
namespace {

// Fills the segment-mean fields of a ChangePoint once a split is fixed.
void FillSegmentMeans(std::span<const double> values, size_t split, ChangePoint* cp) {
  cp->index = split;
  cp->mean_before = Mean(values.subspan(0, split));
  cp->mean_after = Mean(values.subspan(split));
  cp->delta = cp->mean_after - cp->mean_before;
}

// Validates a candidate split with the §5.2.1 likelihood-ratio test and
// fills the result. Shared by the backends that localize first and test
// second (pelt, bocpd).
ChangePoint ValidateSplit(std::span<const double> values, size_t split,
                          const ChangePointBackendOptions& options) {
  ChangePoint cp;
  const size_t n = values.size();
  if (split < options.min_segment || split + options.min_segment > n) {
    return cp;
  }
  const LikelihoodRatioResult lr =
      MeanShiftLikelihoodRatioTest(values, split, options.significance_level);
  FillSegmentMeans(values, split, &cp);
  cp.p_value = lr.p_value;
  cp.found = lr.significant;
  return cp;
}

// Robust noise-scale estimate from first differences: for a piecewise-
// constant signal with noise sigma, diffs are ~N(0, 2 sigma^2) except at the
// (few) change points, which the median absolute value shrugs off.
// 0.67448975 is the normal quartile that makes MAD consistent for sigma.
double RobustNoiseSigma(std::span<const double> values) {
  if (values.size() < 3) {
    return 0.0;
  }
  std::vector<double> abs_diffs;
  abs_diffs.reserve(values.size() - 1);
  for (size_t i = 1; i < values.size(); ++i) {
    abs_diffs.push_back(std::fabs(values[i] - values[i - 1]));
  }
  const size_t mid = abs_diffs.size() / 2;
  std::nth_element(abs_diffs.begin(), abs_diffs.begin() + mid, abs_diffs.end());
  const double mad = abs_diffs[mid];
  return mad / (0.6744897501960817 * std::sqrt(2.0));
}

// Two-segment RSS of a split, used to rank PELT's change points when it
// reports more than one. Centered at the grand mean (the SplitRss lesson).
double TwoSegmentRss(std::span<const double> values, size_t split) {
  const double grand_mean = Mean(values);
  double sum_b = 0.0, sq_b = 0.0, sum_a = 0.0, sq_a = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double c = values[i] - grand_mean;
    if (i < split) {
      sum_b += c;
      sq_b += c * c;
    } else {
      sum_a += c;
      sq_a += c * c;
    }
  }
  const double nb = static_cast<double>(split);
  const double na = static_cast<double>(values.size() - split);
  const double rss_b = std::max(0.0, sq_b - sum_b * sum_b / nb);
  const double rss_a = std::max(0.0, sq_a - sum_a * sum_a / na);
  return rss_b + rss_a;
}

class CusumEmBackend final : public ChangePointBackend {
 public:
  std::string_view name() const override { return "cusum_em"; }

  ChangePoint Detect(std::span<const double> values,
                     const ChangePointBackendOptions& options) const override {
    ChangePointConfig config;
    config.min_segment = options.min_segment;
    config.max_iterations = options.max_em_iterations;
    config.significance_level = options.significance_level;
    return DetectChangePoint(values, config);
  }
};

class EDivisiveBackend final : public ChangePointBackend {
 public:
  std::string_view name() const override { return "e_divisive"; }

  ChangePoint Detect(std::span<const double> values,
                     const ChangePointBackendOptions& options) const override {
    EDivisiveConfig config;
    config.min_segment = options.min_segment;
    config.significance_level = options.significance_level;
    config.permutations = options.e_divisive_permutations;
    config.seed = options.e_divisive_seed;
    const EDivisiveResult ed = EDivisiveSingleSplit(values, config);
    ChangePoint cp;
    if (ed.index == 0) {
      return cp;
    }
    FillSegmentMeans(values, ed.index, &cp);
    cp.p_value = ed.p_value;
    cp.found = ed.found;
    return cp;
  }
};

class PeltBackend final : public ChangePointBackend {
 public:
  std::string_view name() const override { return "pelt"; }

  ChangePoint Detect(std::span<const double> values,
                     const ChangePointBackendOptions& options) const override {
    ChangePoint cp;
    const size_t n = values.size();
    if (n < 2 * options.min_segment) {
      return cp;
    }
    // With a zero noise estimate (constant or perfectly-stepped data) the
    // penalty vanishes and PELT over-segments; the strongest-split reduction
    // and the likelihood-ratio test below still arbitrate correctly.
    const double sigma = RobustNoiseSigma(values);
    const double penalty = options.pelt_penalty_factor * sigma * sigma *
                           std::log(static_cast<double>(n));
    const Segmentation seg = PeltSegment(values, penalty, options.min_segment);
    if (!seg.valid || seg.change_points.empty()) {
      return cp;
    }
    // Reduce to the strongest split: the change point that best explains the
    // series as exactly two segments.
    size_t best_split = 0;
    double best_rss = std::numeric_limits<double>::infinity();
    for (const size_t split : seg.change_points) {
      if (split < options.min_segment || split + options.min_segment > n) {
        continue;
      }
      const double rss = TwoSegmentRss(values, split);
      if (rss < best_rss) {
        best_rss = rss;
        best_split = split;
      }
    }
    if (best_split == 0) {
      return cp;
    }
    return ValidateSplit(values, best_split, options);
  }
};

class BocpdBackend final : public ChangePointBackend {
 public:
  std::string_view name() const override { return "bocpd"; }

  ChangePoint Detect(std::span<const double> values,
                     const ChangePointBackendOptions& options) const override {
    ChangePoint cp;
    const size_t n = values.size();
    if (n < 2 * options.min_segment) {
      return cp;
    }
    BocpdState::Config config;
    config.hazard = options.bocpd_hazard;
    config.max_run_length = options.bocpd_max_run_length;
    BocpdState state(config);
    // Replay the series through the streaming posterior and keep the moment
    // it was most convinced a change just happened; the MAP run length at
    // that moment localizes the change.
    const int within = static_cast<int>(options.min_segment);
    double best_mass = 0.0;
    size_t best_split = 0;
    for (size_t i = 0; i < n; ++i) {
      state.Observe(values[i]);
      if (i + 1 < 2 * options.min_segment) {
        continue;  // Let the standardizer and posterior warm up.
      }
      const double mass = state.change_probability(within);
      if (mass > best_mass) {
        best_mass = mass;
        const size_t run = static_cast<size_t>(std::max(state.map_run_length(), 0));
        best_split = (run < i + 1) ? i + 1 - run : 0;
      }
    }
    if (best_mass < options.bocpd_change_mass || best_split == 0) {
      return cp;
    }
    const size_t split = std::clamp(best_split, options.min_segment, n - options.min_segment);
    return ValidateSplit(values, split, options);
  }
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, ChangePointBackendFactory, std::less<>> factories;
};

// Function-local static with built-ins installed up front: no static-init-
// order hazard, and the built-ins are present on every first use regardless
// of which translation unit touches the registry first.
Registry& GetRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry;
    r->factories.emplace("cusum_em",
                         +[]() -> std::unique_ptr<ChangePointBackend> {
                           return std::make_unique<CusumEmBackend>();
                         });
    r->factories.emplace("e_divisive",
                         +[]() -> std::unique_ptr<ChangePointBackend> {
                           return std::make_unique<EDivisiveBackend>();
                         });
    r->factories.emplace("pelt",
                         +[]() -> std::unique_ptr<ChangePointBackend> {
                           return std::make_unique<PeltBackend>();
                         });
    r->factories.emplace("bocpd",
                         +[]() -> std::unique_ptr<ChangePointBackend> {
                           return std::make_unique<BocpdBackend>();
                         });
    return r;
  }();
  return *registry;
}

}  // namespace

bool RegisterChangePointBackend(std::string_view name, ChangePointBackendFactory factory) {
  if (name.empty() || factory == nullptr) {
    return false;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.factories.emplace(std::string(name), factory).second;
}

std::unique_ptr<ChangePointBackend> MakeChangePointBackend(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.factories.find(name);
  return it == registry.factories.end() ? nullptr : it->second();
}

std::vector<std::string> ChangePointBackendNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, factory] : registry.factories) {
    names.push_back(name);
  }
  return names;
}

}  // namespace fbdetect
