// Symbolic Aggregate approXimation (SAX), §5.2.2.
//
// SAX discretizes a real-valued series into a string: the value range is
// split into N equal-width buckets, each mapped to a letter ('a' is the
// lowest bucket). The paper's configuration is N=20 buckets with a validity
// rule: a bucket (letter) is "valid" only if it holds at least X% (default
// 3%) of the data points — this makes the representation robust to outliers.
//
// The went-away detector compares SAX strings of different windows against
// the valid-letter alphabet of a reference window to decide whether two
// anomalies share a cause.
#ifndef FBDETECT_SRC_TSA_SAX_H_
#define FBDETECT_SRC_TSA_SAX_H_

#include <span>
#include <string>
#include <vector>

namespace fbdetect {

struct SaxConfig {
  int num_buckets = 20;            // N in the paper.
  double min_bucket_fraction = 0.03;  // X% validity threshold.
};

class SaxEncoder {
 public:
  // Builds the bucket boundaries from a reference span (usually the full
  // window being analyzed): equal-width buckets over [min, max]. A constant
  // reference yields a single-bucket encoder that maps everything to 'a'.
  SaxEncoder(std::span<const double> reference, const SaxConfig& config);

  // Letter for one value. Values outside the reference range clamp to the
  // first/last bucket.
  char Encode(double value) const;

  // SAX string for a span of values.
  std::string EncodeSeries(std::span<const double> values) const;

  // Letters whose bucket contains >= min_bucket_fraction of the reference
  // points, in ascending bucket order.
  const std::vector<char>& valid_letters() const { return valid_letters_; }

  // True if `letter` is valid for the reference distribution.
  bool IsValidLetter(char letter) const;

  // Largest (highest-bucket) valid letter; '\0' when no bucket is valid.
  char LargestValidLetter() const;

  // Lower bound of the bucket for `letter`.
  double BucketLowerBound(char letter) const;

  double range_min() const { return range_min_; }
  double range_max() const { return range_max_; }
  int num_buckets() const { return config_.num_buckets; }

  // Fraction of `encoded` whose letters are NOT valid for this encoder's
  // reference distribution. 1.0 for an empty string.
  double InvalidFraction(const std::string& encoded) const;

 private:
  int BucketIndex(double value) const;

  SaxConfig config_;
  double range_min_ = 0.0;
  double range_max_ = 0.0;
  double bucket_width_ = 0.0;
  std::vector<char> valid_letters_;
  std::vector<bool> letter_valid_;  // Indexed by bucket.
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_SAX_H_
