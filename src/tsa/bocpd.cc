#include "src/tsa/bocpd.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fbdetect {

BocpdState::BocpdState(const Config& config) : config_(config) {
  if (config_.max_run_length < 1) {
    config_.max_run_length = 1;
  }
  config_.hazard = std::clamp(config_.hazard, 1e-12, 1.0 - 1e-12);
  const size_t buckets = static_cast<size_t>(config_.max_run_length) + 1;
  mass_.assign(buckets, 0.0);
  params_.assign(buckets,
                 RunParams{config_.mu0, config_.kappa0, config_.alpha0,
                           config_.beta0});
  next_mass_.assign(buckets, 0.0);
  next_params_ = params_;
  mass_[0] = 1.0;  // Before any data the run has length zero, certainly.
}

double BocpdState::LogPredictive(const RunParams& params, double value) const {
  // Posterior predictive of the Normal-Gamma model: Student-t with
  // nu = 2*alpha, location mu, scale^2 = beta*(kappa+1)/(alpha*kappa).
  const double nu = 2.0 * params.alpha;
  const double scale2 =
      params.beta * (params.kappa + 1.0) / (params.alpha * params.kappa);
  const double z2 = (value - params.mu) * (value - params.mu) / scale2;
  return std::lgamma(0.5 * (nu + 1.0)) - std::lgamma(0.5 * nu) -
         0.5 * std::log(nu * M_PI * scale2) -
         0.5 * (nu + 1.0) * std::log1p(z2 / nu);
}

BocpdState::RunParams BocpdState::PosteriorUpdate(const RunParams& params,
                                                  double value) {
  RunParams next;
  next.kappa = params.kappa + 1.0;
  next.mu = (params.kappa * params.mu + value) / next.kappa;
  next.alpha = params.alpha + 0.5;
  next.beta = params.beta + params.kappa * (value - params.mu) *
                                (value - params.mu) / (2.0 * next.kappa);
  return next;
}

void BocpdState::Observe(double value) {
  if (!std::isfinite(value)) {
    ++ignored_non_finite_;
    return;
  }
  standardizer_.Add(value);
  const double sd = std::sqrt(standardizer_.sample_variance());
  const double floor = 1e-9 * std::max(1.0, std::fabs(standardizer_.mean()));
  const double x = (value - standardizer_.mean()) / std::max(sd, floor);

  const size_t buckets = mass_.size();
  const size_t cap = buckets - 1;
  const RunParams prior{config_.mu0, config_.kappa0, config_.alpha0,
                        config_.beta0};

  // weight[i] ∝ mass[i] * predictive(x | run i), computed in log space and
  // shifted by the max so the exponentials stay in range even when every
  // bucket finds x surprising. weight_ is member scratch (no per-point
  // allocation).
  weight_.assign(buckets, 0.0);
  double max_joint = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < buckets; ++i) {
    if (mass_[i] > 0.0) {
      weight_[i] = std::log(mass_[i]) + LogPredictive(params_[i], x);
      max_joint = std::max(max_joint, weight_[i]);
    } else {
      weight_[i] = -std::numeric_limits<double>::infinity();
    }
  }
  if (!std::isfinite(max_joint)) {
    // Degenerate posterior (should not happen); restart from a fresh run.
    std::fill(mass_.begin(), mass_.end(), 0.0);
    mass_[0] = 1.0;
    std::fill(params_.begin(), params_.end(), prior);
    ++observations_;
    return;
  }
  for (size_t i = 0; i < buckets; ++i) {
    weight_[i] =
        std::isfinite(weight_[i]) ? std::exp(weight_[i] - max_joint) : 0.0;
  }

  // growth[i+1] = weight[i]*(1-h); change mass pools into bucket 0; run
  // lengths past the cap fold into the sticky cap bucket.
  std::fill(next_mass_.begin(), next_mass_.end(), 0.0);
  double change = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    if (weight_[i] <= 0.0) {
      continue;
    }
    change += weight_[i] * config_.hazard;
    next_mass_[std::min(i + 1, cap)] += weight_[i] * (1.0 - config_.hazard);
  }
  next_mass_[0] += change;

  // Parameter propagation: bucket i+1 inherits the posterior update of
  // bucket i; bucket 0 restarts from the prior; the sticky cap bucket is a
  // mass-weighted blend of the two runs that land there (an approximation —
  // exact tracking would need unbounded buckets).
  next_params_[0] = prior;
  for (size_t i = 0; i + 1 < cap; ++i) {
    next_params_[i + 1] = PosteriorUpdate(params_[i], x);
  }
  if (cap >= 1) {
    const RunParams from_below = PosteriorUpdate(params_[cap - 1], x);
    const RunParams stayed = PosteriorUpdate(params_[cap], x);
    const double wb = weight_[cap - 1] * (1.0 - config_.hazard);
    const double ws = weight_[cap] * (1.0 - config_.hazard);
    if (wb + ws > 0.0) {
      const double f = wb / (wb + ws);
      next_params_[cap] = RunParams{
          f * from_below.mu + (1.0 - f) * stayed.mu,
          f * from_below.kappa + (1.0 - f) * stayed.kappa,
          f * from_below.alpha + (1.0 - f) * stayed.alpha,
          f * from_below.beta + (1.0 - f) * stayed.beta,
      };
    } else {
      next_params_[cap] = stayed;
    }
  }

  double total = 0.0;
  for (double m : next_mass_) {
    total += m;
  }
  for (size_t i = 0; i < buckets; ++i) {
    mass_[i] = next_mass_[i] / total;
  }
  params_.swap(next_params_);
  ++observations_;
}

int BocpdState::map_run_length() const {
  size_t best = 0;
  for (size_t i = 1; i < mass_.size(); ++i) {
    if (mass_[i] > mass_[best]) {
      best = i;
    }
  }
  return static_cast<int>(best);
}

double BocpdState::change_probability(int within) const {
  if (within <= 0) {
    return 0.0;
  }
  const size_t limit = std::min(static_cast<size_t>(within), mass_.size());
  double total = 0.0;
  for (size_t i = 0; i < limit; ++i) {
    total += mass_[i];
  }
  return std::min(total, 1.0);
}

}  // namespace fbdetect
