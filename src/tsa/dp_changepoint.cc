#include "src/tsa/dp_changepoint.h"

#include <algorithm>
#include <limits>

namespace fbdetect {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Precomputed prefix sums for O(1) segment cost: cost of [lo, hi) under a
// constant-mean model is sq - sum^2 / len. Values are centered at the grand
// mean first — segment costs are shift-invariant, and the centered form
// avoids the catastrophic cancellation the raw Σx² − (Σx)²/n suffers on
// large-offset data (the SplitRss lesson in em_changepoint.cc).
struct Prefix {
  std::vector<double> sum;
  std::vector<double> sq;

  explicit Prefix(std::span<const double> values)
      : sum(values.size() + 1, 0.0), sq(values.size() + 1, 0.0) {
    double total = 0.0;
    for (double v : values) {
      total += v;
    }
    const double grand_mean =
        values.empty() ? 0.0 : total / static_cast<double>(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      const double centered = values[i] - grand_mean;
      sum[i + 1] = sum[i] + centered;
      sq[i + 1] = sq[i] + centered * centered;
    }
  }

  double SegmentCost(size_t lo, size_t hi) const {
    const double len = static_cast<double>(hi - lo);
    if (len <= 0.0) {
      return 0.0;
    }
    const double s = sum[hi] - sum[lo];
    const double q = sq[hi] - sq[lo];
    const double cost = q - s * s / len;
    return cost < 0.0 ? 0.0 : cost;  // Clamp rounding noise.
  }
};

}  // namespace

Segmentation DpSegment(std::span<const double> values, size_t num_changes, size_t min_segment) {
  Segmentation result;
  const size_t n = values.size();
  if (min_segment < 1) {
    min_segment = 1;
  }
  const size_t num_segments = num_changes + 1;
  if (n < num_segments * min_segment || num_changes == 0) {
    if (num_changes == 0 && n >= min_segment) {
      const Prefix prefix(values);
      result.total_cost = prefix.SegmentCost(0, n);
      result.valid = true;
    }
    return result;
  }

  const Prefix prefix(values);
  // dp[k][t] = min cost of covering [0, t) with k+1 segments.
  // parent[k][t] = split producing that optimum.
  std::vector<std::vector<double>> dp(num_segments, std::vector<double>(n + 1, kInfinity));
  std::vector<std::vector<size_t>> parent(num_segments, std::vector<size_t>(n + 1, 0));
  for (size_t t = min_segment; t <= n; ++t) {
    dp[0][t] = prefix.SegmentCost(0, t);
  }
  for (size_t k = 1; k < num_segments; ++k) {
    for (size_t t = (k + 1) * min_segment; t <= n; ++t) {
      for (size_t s = k * min_segment; s + min_segment <= t; ++s) {
        if (dp[k - 1][s] == kInfinity) {
          continue;
        }
        const double cost = dp[k - 1][s] + prefix.SegmentCost(s, t);
        if (cost < dp[k][t]) {
          dp[k][t] = cost;
          parent[k][t] = s;
        }
      }
    }
  }
  if (dp[num_segments - 1][n] == kInfinity) {
    return result;
  }
  result.total_cost = dp[num_segments - 1][n];
  result.change_points.resize(num_changes);
  size_t t = n;
  for (size_t k = num_segments - 1; k >= 1; --k) {
    t = parent[k][t];
    result.change_points[k - 1] = t;
  }
  result.valid = true;
  return result;
}

size_t BestSingleSplit(std::span<const double> values, size_t min_segment) {
  const Segmentation seg = DpSegment(values, 1, min_segment);
  return seg.valid ? seg.change_points[0] : 0;
}

Segmentation PeltSegment(std::span<const double> values, double penalty, size_t min_segment) {
  Segmentation result;
  const size_t n = values.size();
  if (min_segment < 1) {
    min_segment = 1;
  }
  if (n < min_segment) {
    return result;
  }
  if (penalty < 0.0) {
    penalty = 0.0;
  }
  const Prefix prefix(values);

  // F[t] = min cost of segmenting [0, t) including one penalty per change
  // point; last[t] = the change position achieving it (0 = no change).
  // Candidates hold the admissible last-change positions; the L2 cost is
  // additive with K = 0, so a candidate s with F[s] + C(s, t) > F[t] can
  // never beat splitting at t later and is pruned for good.
  std::vector<double> f(n + 1, kInfinity);
  std::vector<size_t> last(n + 1, 0);
  f[0] = -penalty;  // Cancels the penalty charged for the "first change" at 0.
  std::vector<size_t> candidates;
  std::vector<size_t> survivors;
  candidates.push_back(0);
  for (size_t t = min_segment; t <= n; ++t) {
    double best = kInfinity;
    size_t best_s = 0;
    for (const size_t s : candidates) {
      if (t < s + min_segment) {
        continue;
      }
      const double cost = f[s] + prefix.SegmentCost(s, t) + penalty;
      if (cost < best) {
        best = cost;
        best_s = s;
      }
    }
    f[t] = best;
    last[t] = best_s;
    // Prune, then admit t as a future last-change position.
    survivors.clear();
    for (const size_t s : candidates) {
      if (t < s + min_segment || f[s] + prefix.SegmentCost(s, t) <= f[t]) {
        survivors.push_back(s);
      }
    }
    candidates.swap(survivors);
    candidates.push_back(t);
  }

  result.valid = true;
  for (size_t t = n; t > 0 && last[t] > 0; t = last[t]) {
    result.change_points.push_back(last[t]);
  }
  std::reverse(result.change_points.begin(), result.change_points.end());
  result.total_cost =
      f[n] - penalty * static_cast<double>(result.change_points.size() + 1) + penalty;
  return result;
}

}  // namespace fbdetect
