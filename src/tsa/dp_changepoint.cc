#include "src/tsa/dp_changepoint.h"

#include <limits>

namespace fbdetect {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Precomputed prefix sums for O(1) segment cost: cost of [lo, hi) under a
// constant-mean model is sq - sum^2 / len.
struct Prefix {
  std::vector<double> sum;
  std::vector<double> sq;

  explicit Prefix(std::span<const double> values)
      : sum(values.size() + 1, 0.0), sq(values.size() + 1, 0.0) {
    for (size_t i = 0; i < values.size(); ++i) {
      sum[i + 1] = sum[i] + values[i];
      sq[i + 1] = sq[i] + values[i] * values[i];
    }
  }

  double SegmentCost(size_t lo, size_t hi) const {
    const double len = static_cast<double>(hi - lo);
    if (len <= 0.0) {
      return 0.0;
    }
    const double s = sum[hi] - sum[lo];
    const double q = sq[hi] - sq[lo];
    const double cost = q - s * s / len;
    return cost < 0.0 ? 0.0 : cost;  // Clamp rounding noise.
  }
};

}  // namespace

Segmentation DpSegment(std::span<const double> values, size_t num_changes, size_t min_segment) {
  Segmentation result;
  const size_t n = values.size();
  if (min_segment < 1) {
    min_segment = 1;
  }
  const size_t num_segments = num_changes + 1;
  if (n < num_segments * min_segment || num_changes == 0) {
    if (num_changes == 0 && n >= min_segment) {
      const Prefix prefix(values);
      result.total_cost = prefix.SegmentCost(0, n);
      result.valid = true;
    }
    return result;
  }

  const Prefix prefix(values);
  // dp[k][t] = min cost of covering [0, t) with k+1 segments.
  // parent[k][t] = split producing that optimum.
  std::vector<std::vector<double>> dp(num_segments, std::vector<double>(n + 1, kInfinity));
  std::vector<std::vector<size_t>> parent(num_segments, std::vector<size_t>(n + 1, 0));
  for (size_t t = min_segment; t <= n; ++t) {
    dp[0][t] = prefix.SegmentCost(0, t);
  }
  for (size_t k = 1; k < num_segments; ++k) {
    for (size_t t = (k + 1) * min_segment; t <= n; ++t) {
      for (size_t s = k * min_segment; s + min_segment <= t; ++s) {
        if (dp[k - 1][s] == kInfinity) {
          continue;
        }
        const double cost = dp[k - 1][s] + prefix.SegmentCost(s, t);
        if (cost < dp[k][t]) {
          dp[k][t] = cost;
          parent[k][t] = s;
        }
      }
    }
  }
  if (dp[num_segments - 1][n] == kInfinity) {
    return result;
  }
  result.total_cost = dp[num_segments - 1][n];
  result.change_points.resize(num_changes);
  size_t t = n;
  for (size_t k = num_segments - 1; k >= 1; --k) {
    t = parent[k][t];
    result.change_points[k - 1] = t;
  }
  result.valid = true;
  return result;
}

size_t BestSingleSplit(std::span<const double> values, size_t min_segment) {
  const Segmentation seg = DpSegment(values, 1, min_segment);
  return seg.valid ? seg.change_points[0] : 0;
}

}  // namespace fbdetect
