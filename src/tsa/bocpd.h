// Bayesian Online Changepoint Detection (Adams & MacKay 2007).
//
// BocpdState maintains a truncated posterior over the current run length
// (time since the last change point) under a constant hazard and a
// Normal-Gamma conjugate model per run, updated in O(max_run_length) per
// observation with no window re-extraction. The streaming detector state
// (src/core/detector_state.h) uses it as an early-warning signal: a high
// probability of a short run length means the series recently changed.
//
// Inputs are standardized against a running Welford estimate of the whole
// history before entering the conjugate machinery, so the Student-t
// predictive densities stay in a numerically safe range regardless of the
// series' raw scale.
#ifndef FBDETECT_SRC_TSA_BOCPD_H_
#define FBDETECT_SRC_TSA_BOCPD_H_

#include <cstdint>
#include <vector>

#include "src/stats/accumulator.h"

namespace fbdetect {

class BocpdState {
 public:
  struct Config {
    double hazard = 1.0 / 256.0;  // Per-step change probability.
    int max_run_length = 64;      // Posterior truncation cap (sticky bucket).
    // Normal-Gamma prior over the per-run mean/precision (standardized
    // units, so the defaults are deliberately uninformative near N(0,1)).
    double mu0 = 0.0;
    double kappa0 = 1.0;
    double alpha0 = 1.0;
    double beta0 = 1.0;
  };

  BocpdState() : BocpdState(Config{}) {}
  explicit BocpdState(const Config& config);

  // Feeds one observation and advances the run-length posterior.
  // Non-finite values are ignored (counted in ignored_non_finite()).
  void Observe(double value);

  int64_t observations() const { return observations_; }
  int64_t ignored_non_finite() const { return ignored_non_finite_; }

  // Maximum-a-posteriori run length. Run lengths >= max_run_length are
  // collapsed into the cap bucket and reported as max_run_length.
  int map_run_length() const;

  // P(run length < within): posterior mass on a change within the last
  // `within` observations. The early-warning trigger in the streaming scan
  // is change_probability(k) > p for small k.
  double change_probability(int within) const;

 private:
  struct RunParams {
    double mu;
    double kappa;
    double alpha;
    double beta;
  };

  double LogPredictive(const RunParams& params, double value) const;
  static RunParams PosteriorUpdate(const RunParams& params, double value);

  Config config_;
  int64_t observations_ = 0;
  int64_t ignored_non_finite_ = 0;
  WelfordAccumulator standardizer_;
  // mass_[i] = P(run length == i), i in [0, max_run_length]; the last
  // bucket is sticky (holds all mass for run lengths >= cap).
  std::vector<double> mass_;
  std::vector<RunParams> params_;
  // Scratch reused across Observe calls to avoid per-point allocation.
  std::vector<double> weight_;
  std::vector<double> next_mass_;
  std::vector<RunParams> next_params_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_BOCPD_H_
