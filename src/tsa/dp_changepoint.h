// Dynamic-programming change-point search with the normal (L2) loss, per
// Truong et al.'s "Selective Review of Offline Change Point Detection
// Methods" [72], used by the long-term detector (§5.3) when the trend is not
// a clean linear ramp. Finds the segmentation into k+1 segments minimizing
// the total within-segment variance; the single-change variant ("the
// partition point that minimizes the variance on both sides") is k=1.
#ifndef FBDETECT_SRC_TSA_DP_CHANGEPOINT_H_
#define FBDETECT_SRC_TSA_DP_CHANGEPOINT_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fbdetect {

struct Segmentation {
  // Indices of the first element of each post-change segment, ascending.
  std::vector<size_t> change_points;
  double total_cost = 0.0;  // Sum of within-segment squared deviations.
  bool valid = false;
};

// Optimal segmentation with exactly `num_changes` change points, each segment
// at least `min_segment` long. O(num_changes * n^2) time, O(num_changes * n)
// space. Returns valid=false when the series cannot host that many segments.
Segmentation DpSegment(std::span<const double> values, size_t num_changes,
                       size_t min_segment = 2);

// Convenience: the variance-minimizing single split (k=1). Returns the index
// of the first post-change element, or 0 when no valid split exists.
size_t BestSingleSplit(std::span<const double> values, size_t min_segment = 2);

// PELT (Pruned Exact Linear Time, Killick et al. 2012): optimal penalized
// segmentation with an UNKNOWN number of change points. Minimizes
//   Σ_segments cost(segment) + penalty * (#change points)
// under the same L2 (within-segment variance) cost as DpSegment, with the
// standard pruning rule that discards candidate last-change positions which
// can never again be optimal — expected near-linear time when change points
// are sparse, O(n^2) worst case. `total_cost` excludes the penalty term so
// the value is comparable to DpSegment's. Returns valid=false only when the
// series is shorter than one minimum segment.
Segmentation PeltSegment(std::span<const double> values, double penalty,
                         size_t min_segment = 2);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_DP_CHANGEPOINT_H_
