#include "src/tsa/cusum.h"

#include <cmath>

#include "src/stats/descriptive.h"

namespace fbdetect {

std::vector<double> CusumPath(std::span<const double> values) {
  std::vector<double> path(values.size(), 0.0);
  if (values.empty()) {
    return path;
  }
  const double mean = Mean(values);
  double running = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    running += values[i] - mean;
    path[i] = running;
  }
  return path;
}

CusumResult CusumLocate(std::span<const double> values, size_t min_segment) {
  CusumResult result;
  const size_t n = values.size();
  if (min_segment < 1) {
    min_segment = 1;
  }
  if (n < 2 * min_segment) {
    return result;
  }
  const std::vector<double> path = CusumPath(values);
  double best = 0.0;
  size_t best_index = 0;
  // A change at index t (first post-change point) corresponds to the CUSUM
  // peak at t-1; scan the allowed split range.
  for (size_t t = min_segment; t + min_segment <= n; ++t) {
    const double magnitude = std::fabs(path[t - 1]);
    if (magnitude > best) {
      best = magnitude;
      best_index = t;
    }
  }
  if (best_index == 0 || best <= 0.0) {
    return result;
  }
  result.found = true;
  result.change_point = best_index;
  result.max_cusum = best;
  result.mean_before = Mean(values.subspan(0, best_index));
  result.mean_after = Mean(values.subspan(best_index));
  return result;
}

}  // namespace fbdetect
