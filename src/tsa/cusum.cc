#include "src/tsa/cusum.h"

#include <cmath>

#include "src/stats/descriptive.h"

namespace fbdetect {

std::vector<double> CusumPath(std::span<const double> values) {
  std::vector<double> path(values.size(), 0.0);
  if (values.empty()) {
    return path;
  }
  const double mean = Mean(values);
  double running = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    running += values[i] - mean;
    path[i] = running;
  }
  return path;
}

CusumResult CusumLocate(std::span<const double> values, size_t min_segment) {
  CusumResult result;
  const size_t n = values.size();
  if (min_segment < 1) {
    min_segment = 1;
  }
  if (n < 2 * min_segment) {
    return result;
  }
  const std::vector<double> path = CusumPath(values);
  double best = 0.0;
  size_t best_index = 0;
  // A change at index t (first post-change point) corresponds to the CUSUM
  // peak at t-1; scan the allowed split range.
  for (size_t t = min_segment; t + min_segment <= n; ++t) {
    const double magnitude = std::fabs(path[t - 1]);
    if (magnitude > best) {
      best = magnitude;
      best_index = t;
    }
  }
  if (best_index == 0 || best <= 0.0) {
    return result;
  }
  result.found = true;
  result.change_point = best_index;
  result.max_cusum = best;
  result.mean_before = Mean(values.subspan(0, best_index));
  result.mean_after = Mean(values.subspan(best_index));
  return result;
}

bool OnlineCusum::Observe(double value) {
  if (!std::isfinite(value)) {
    return false;
  }
  if (!frozen_) {
    baseline_.Add(value);
    if (baseline_.count() >= config_.baseline_points) {
      mean_ = baseline_.mean();
      sd_ = std::sqrt(baseline_.sample_variance());
      // Relative floor so a constant (or near-constant) baseline cannot
      // yield a zero-width band that any 1-ulp wiggle would cross.
      const double floor = 1e-9 * std::max(1.0, std::fabs(mean_));
      if (!(sd_ > floor)) {
        sd_ = floor;
      }
      frozen_ = true;
    }
    return false;
  }
  const double k = config_.drift_sigma * sd_;
  const double centered = value - mean_;
  g_pos_ = std::max(0.0, g_pos_ + centered - k);
  g_neg_ = std::max(0.0, g_neg_ - centered - k);
  if (triggered_) {
    return false;
  }
  const double h = config_.threshold_sigma * sd_;
  if (g_pos_ > h) {
    triggered_ = true;
    direction_ = 1;
  } else if (g_neg_ > h) {
    triggered_ = true;
    direction_ = -1;
  }
  return triggered_;
}

void OnlineCusum::Reset() {
  triggered_ = false;
  direction_ = 0;
  g_pos_ = 0.0;
  g_neg_ = 0.0;
}

}  // namespace fbdetect
