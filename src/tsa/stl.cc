#include "src/tsa/stl.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stats/descriptive.h"
#include "src/tsa/loess.h"

namespace fbdetect {
namespace {

// Next odd number >= x.
size_t NextOdd(size_t x) { return x % 2 == 0 ? x + 1 : x; }

// Centered moving average of width `width` (handles even widths with the
// standard 2x(MA) trick by averaging two offset windows).
std::vector<double> CenteredMovingAverage(std::span<const double> values, size_t width) {
  const size_t n = values.size();
  std::vector<double> out(n, 0.0);
  if (width == 0 || n == 0) {
    return out;
  }
  // Window sums via a prefix-sum table: O(n) total instead of O(n * width).
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t half = width / 2;
    size_t lo = i >= half ? i - half : 0;
    size_t hi = std::min(n, i + half + 1);
    if (width % 2 == 0) {
      hi = std::min(n, i + half);  // Symmetric even window.
      if (hi <= lo) {
        hi = lo + 1;
      }
    }
    out[i] = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace

std::vector<double> Decomposition::Deseasonalized() const {
  std::vector<double> out(trend.size());
  for (size_t i = 0; i < trend.size(); ++i) {
    out[i] = trend[i] + residual[i];
  }
  return out;
}

Decomposition StlDecompose(std::span<const double> values, size_t period,
                           const StlConfig& config) {
  Decomposition result;
  const size_t n = values.size();
  result.seasonal.assign(n, 0.0);
  result.trend.assign(values.begin(), values.end());
  result.residual.assign(n, 0.0);
  if (period < 2 || n < 2 * period) {
    return result;  // valid=false; everything stays in trend.
  }

  const size_t trend_span =
      config.trend_span != 0 ? config.trend_span : NextOdd(period + period / 2);
  const size_t lowpass_span = config.lowpass_span != 0 ? config.lowpass_span : NextOdd(period);

  std::vector<double> seasonal(n, 0.0);
  std::vector<double> trend(n, 0.0);
  std::vector<double> robustness;  // Empty = unweighted.

  for (int outer = 0; outer < std::max(1, config.outer_iterations); ++outer) {
    for (int inner = 0; inner < std::max(1, config.inner_iterations); ++inner) {
      // Step 1: detrend.
      std::vector<double> detrended(n);
      for (size_t i = 0; i < n; ++i) {
        detrended[i] = values[i] - trend[i];
      }
      // Step 2: cycle-subseries smoothing. Each phase (i mod period) is
      // smoothed independently with loess, producing the raw seasonal.
      std::vector<double> cycle(n, 0.0);
      for (size_t phase = 0; phase < period; ++phase) {
        std::vector<double> subseries;
        std::vector<double> subweights;
        std::vector<size_t> indices;
        for (size_t i = phase; i < n; i += period) {
          subseries.push_back(detrended[i]);
          indices.push_back(i);
          if (!robustness.empty()) {
            subweights.push_back(robustness[i]);
          }
        }
        const std::vector<double> smoothed =
            LoessSmoothWeighted(subseries, config.seasonal_span, subweights);
        for (size_t k = 0; k < indices.size(); ++k) {
          cycle[indices[k]] = smoothed[k];
        }
      }
      // Step 3: low-pass filter of the cycle-subseries (moving average of
      // width `period`, then loess) to extract leftover trend in it.
      std::vector<double> lowpass = CenteredMovingAverage(cycle, period);
      lowpass = LoessSmooth(lowpass, lowpass_span);
      // Step 4: seasonal = cycle - lowpass (centers the seasonal around 0).
      for (size_t i = 0; i < n; ++i) {
        seasonal[i] = cycle[i] - lowpass[i];
      }
      // Step 5: deseasonalize and smooth for the new trend.
      std::vector<double> deseasonalized(n);
      for (size_t i = 0; i < n; ++i) {
        deseasonalized[i] = values[i] - seasonal[i];
      }
      trend = LoessSmoothWeighted(deseasonalized, trend_span, robustness);
    }
    if (outer + 1 < config.outer_iterations) {
      // Outer loop: recompute robustness weights from residuals (bisquare).
      std::vector<double> abs_residuals(n);
      for (size_t i = 0; i < n; ++i) {
        abs_residuals[i] = std::fabs(values[i] - seasonal[i] - trend[i]);
      }
      const double h = 6.0 * Median(abs_residuals);
      robustness.assign(n, 1.0);
      if (h > 0.0) {
        for (size_t i = 0; i < n; ++i) {
          const double u = abs_residuals[i] / h;
          const double w = u >= 1.0 ? 0.0 : (1.0 - u * u) * (1.0 - u * u);
          robustness[i] = w;
        }
      }
    }
  }

  result.seasonal = std::move(seasonal);
  result.trend = std::move(trend);
  for (size_t i = 0; i < n; ++i) {
    result.residual[i] = values[i] - result.seasonal[i] - result.trend[i];
  }
  result.valid = true;
  return result;
}

Decomposition MovingAverageDecompose(std::span<const double> values, size_t period) {
  Decomposition result;
  const size_t n = values.size();
  result.seasonal.assign(n, 0.0);
  result.trend.assign(values.begin(), values.end());
  result.residual.assign(n, 0.0);
  if (period < 2 || n < 2 * period) {
    return result;
  }
  result.trend = CenteredMovingAverage(values, period);
  // Per-phase means of the detrended series.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<size_t> phase_count(period, 0);
  for (size_t i = 0; i < n; ++i) {
    phase_sum[i % period] += values[i] - result.trend[i];
    ++phase_count[i % period];
  }
  double grand_mean = 0.0;
  for (size_t p = 0; p < period; ++p) {
    phase_sum[p] /= std::max<size_t>(1, phase_count[p]);
    grand_mean += phase_sum[p];
  }
  grand_mean /= static_cast<double>(period);
  for (size_t i = 0; i < n; ++i) {
    result.seasonal[i] = phase_sum[i % period] - grand_mean;
    result.residual[i] = values[i] - result.trend[i] - result.seasonal[i];
  }
  result.valid = true;
  return result;
}

}  // namespace fbdetect
