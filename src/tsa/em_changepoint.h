// Iterative CUSUM + Expectation-Maximization change-point detection with the
// likelihood-ratio validation of §5.2.1.
//
// The loop alternates:
//   E-step: given segment means, reassign the split point to the position
//           that maximizes the two-segment Gaussian likelihood (equivalently
//           minimizes the combined residual sum of squares);
//   M-step: recompute the two segment means.
// CUSUM provides the initial split. Iteration stops at convergence or after
// `max_iterations`. The converged split is then validated with the
// likelihood-ratio chi-squared test at `significance_level` (paper: 0.01).
#ifndef FBDETECT_SRC_TSA_EM_CHANGEPOINT_H_
#define FBDETECT_SRC_TSA_EM_CHANGEPOINT_H_

#include <cstddef>
#include <span>

namespace fbdetect {

struct ChangePointConfig {
  size_t min_segment = 4;           // Minimum points on each side of the split.
  int max_iterations = 20;          // EM iteration budget ("computation time").
  double significance_level = 0.01; // For the likelihood-ratio test.
};

struct ChangePoint {
  bool found = false;
  size_t index = 0;  // First element of the post-change segment.
  double mean_before = 0.0;
  double mean_after = 0.0;
  double delta = 0.0;       // mean_after - mean_before.
  double p_value = 1.0;     // From the likelihood-ratio test.
  int iterations_used = 0;
};

// Finds and validates the maximum-likelihood single change point. Returns
// found=false when the series is too short, constant, or the test does not
// reject H0 (no change).
ChangePoint DetectChangePoint(std::span<const double> values,
                              const ChangePointConfig& config = {});

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSA_EM_CHANGEPOINT_H_
