#include "src/tsa/sax.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace fbdetect {

SaxEncoder::SaxEncoder(std::span<const double> reference, const SaxConfig& config)
    : config_(config) {
  FBD_CHECK(config_.num_buckets >= 1 && config_.num_buckets <= 26);
  if (reference.empty()) {
    range_min_ = 0.0;
    range_max_ = 0.0;
  } else {
    range_min_ = Min(reference);
    range_max_ = Max(reference);
  }
  if (range_max_ <= range_min_) {
    // Degenerate reference: one bucket covering everything.
    config_.num_buckets = 1;
  }
  bucket_width_ = (range_max_ - range_min_) / static_cast<double>(config_.num_buckets);

  // Count reference points per bucket to determine validity.
  std::vector<size_t> counts(static_cast<size_t>(config_.num_buckets), 0);
  for (double v : reference) {
    ++counts[static_cast<size_t>(BucketIndex(v))];
  }
  letter_valid_.assign(static_cast<size_t>(config_.num_buckets), false);
  const double min_count =
      config_.min_bucket_fraction * static_cast<double>(reference.size());
  for (int b = 0; b < config_.num_buckets; ++b) {
    if (!reference.empty() && static_cast<double>(counts[static_cast<size_t>(b)]) >= min_count &&
        counts[static_cast<size_t>(b)] > 0) {
      letter_valid_[static_cast<size_t>(b)] = true;
      valid_letters_.push_back(static_cast<char>('a' + b));
    }
  }
}

int SaxEncoder::BucketIndex(double value) const {
  if (bucket_width_ <= 0.0) {
    return 0;
  }
  // Non-finite values never fit a bucket, and static_cast<int> of a NaN or
  // out-of-int-range offset is undefined behavior — clamp in double space
  // before converting. NaN maps to the first bucket (both comparisons below
  // are false), +-Inf to the edge buckets.
  const double offset = (value - range_min_) / bucket_width_;
  if (offset >= static_cast<double>(config_.num_buckets - 1)) {
    return config_.num_buckets - 1;
  }
  if (offset >= 1.0) {
    return static_cast<int>(offset);
  }
  return 0;
}

char SaxEncoder::Encode(double value) const {
  return static_cast<char>('a' + BucketIndex(value));
}

std::string SaxEncoder::EncodeSeries(std::span<const double> values) const {
  std::string encoded;
  encoded.reserve(values.size());
  for (double v : values) {
    encoded.push_back(Encode(v));
  }
  return encoded;
}

bool SaxEncoder::IsValidLetter(char letter) const {
  const int bucket = letter - 'a';
  if (bucket < 0 || bucket >= config_.num_buckets) {
    return false;
  }
  return letter_valid_[static_cast<size_t>(bucket)];
}

char SaxEncoder::LargestValidLetter() const {
  return valid_letters_.empty() ? '\0' : valid_letters_.back();
}

double SaxEncoder::BucketLowerBound(char letter) const {
  const int bucket = std::clamp(letter - 'a', 0, config_.num_buckets - 1);
  return range_min_ + static_cast<double>(bucket) * bucket_width_;
}

double SaxEncoder::InvalidFraction(const std::string& encoded) const {
  if (encoded.empty()) {
    return 1.0;
  }
  size_t invalid = 0;
  for (char letter : encoded) {
    if (!IsValidLetter(letter)) {
      ++invalid;
    }
  }
  return static_cast<double>(invalid) / static_cast<double>(encoded.size());
}

}  // namespace fbdetect
