#include "src/tsa/em_changepoint.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/stats/hypothesis.h"
#include "src/tsa/cusum.h"

namespace fbdetect {
namespace {

// Combined residual sum of squares of a two-segment mean model split at t,
// computed in O(1) from prefix sums. The prefix sums MUST be built over
// grand-mean-centered values: the Σx² − (Σx)²/n form cancels catastrophically
// when the level dwarfs the variation (a 0.05% step on a ~1e12 ns latency
// baseline squares to ~1e24 against ulps of ~1e8), losing the split and even
// going negative. RSS is shift-invariant, so centering costs nothing and
// keeps both terms at the scale of the variation itself; residual rounding
// noise is clamped at zero.
double SplitRss(const std::vector<double>& prefix_sum, const std::vector<double>& prefix_sq,
                size_t t, size_t n) {
  const double sum_before = prefix_sum[t];
  const double sq_before = prefix_sq[t];
  const double sum_after = prefix_sum[n] - sum_before;
  const double sq_after = prefix_sq[n] - sq_before;
  const double nb = static_cast<double>(t);
  const double na = static_cast<double>(n - t);
  const double rss_before = std::max(0.0, sq_before - sum_before * sum_before / nb);
  const double rss_after = std::max(0.0, sq_after - sum_after * sum_after / na);
  return rss_before + rss_after;
}

}  // namespace

ChangePoint DetectChangePoint(std::span<const double> values, const ChangePointConfig& config) {
  ChangePoint result;
  const size_t n = values.size();
  const size_t min_segment = config.min_segment < 1 ? 1 : config.min_segment;
  if (n < 2 * min_segment) {
    return result;
  }

  // Initialization: CUSUM peak.
  const CusumResult init = CusumLocate(values, min_segment);
  if (!init.found) {
    return result;
  }
  size_t split = init.change_point;

  // Prefix sums enable O(n) E-steps. Values are centered at the grand mean
  // first so SplitRss stays well-conditioned on large-offset data (see its
  // comment); the split location is invariant to the shift.
  const double grand_mean = Mean(values);
  std::vector<double> prefix_sum(n + 1, 0.0);
  std::vector<double> prefix_sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double centered = values[i] - grand_mean;
    prefix_sum[i + 1] = prefix_sum[i] + centered;
    prefix_sq[i + 1] = prefix_sq[i] + centered * centered;
  }

  int iterations = 0;
  for (; iterations < config.max_iterations; ++iterations) {
    // E-step: best split given the mean-per-segment model class — scan the
    // RSS of every admissible split. (With Gaussian segments and free means,
    // the likelihood-maximizing split is the RSS-minimizing one.)
    size_t best_split = split;
    double best_rss = SplitRss(prefix_sum, prefix_sq, split, n);
    for (size_t t = min_segment; t + min_segment <= n; ++t) {
      const double rss = SplitRss(prefix_sum, prefix_sq, t, n);
      if (rss < best_rss) {
        best_rss = rss;
        best_split = t;
      }
    }
    if (best_split == split) {
      ++iterations;
      break;  // Converged.
    }
    split = best_split;  // M-step (means) is implicit in SplitRss.
  }

  const auto before = values.subspan(0, split);
  const auto after = values.subspan(split);
  result.index = split;
  result.mean_before = Mean(before);
  result.mean_after = Mean(after);
  result.delta = result.mean_after - result.mean_before;
  result.iterations_used = iterations;

  // Validation: likelihood-ratio chi-squared test (§5.2.1).
  const LikelihoodRatioResult test =
      MeanShiftLikelihoodRatioTest(values, split, config.significance_level);
  result.p_value = test.p_value;
  result.found = test.significant;
  return result;
}

}  // namespace fbdetect
