#include "src/tsa/loess.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fbdetect {
namespace {

double Tricube(double u) {
  const double a = 1.0 - std::fabs(u) * std::fabs(u) * std::fabs(u);
  return a <= 0.0 ? 0.0 : a * a * a;
}

// Weighted local linear fit evaluated at point i (the generic path: handles
// clamped edge windows and robustness weights).
double LoessFitAt(std::span<const double> values, std::span<const double> robustness,
                  size_t span, size_t i) {
  const size_t n = values.size();
  // Neighborhood of `span` points centered on i, shifted at the edges.
  size_t lo = i >= span / 2 ? i - span / 2 : 0;
  if (lo + span > n) {
    lo = n - span;
  }
  const size_t hi = lo + span;  // Exclusive.
  const double max_dist =
      std::max(static_cast<double>(i - lo), static_cast<double>(hi - 1 - i));
  // Weighted linear fit over the neighborhood.
  double sw = 0.0;
  double swx = 0.0;
  double swy = 0.0;
  double swxx = 0.0;
  double swxy = 0.0;
  for (size_t j = lo; j < hi; ++j) {
    const double dist = std::fabs(static_cast<double>(j) - static_cast<double>(i));
    double w = max_dist > 0.0 ? Tricube(dist / (max_dist + 1.0)) : 1.0;
    if (!robustness.empty()) {
      w *= robustness[j];
    }
    if (w <= 0.0) {
      continue;
    }
    const double x = static_cast<double>(j);
    sw += w;
    swx += w * x;
    swy += w * values[j];
    swxx += w * x * x;
    swxy += w * x * values[j];
  }
  if (sw <= 0.0) {
    return values[i];
  }
  const double denom = sw * swxx - swx * swx;
  const double x_i = static_cast<double>(i);
  if (std::fabs(denom) < 1e-12 * sw * swxx + 1e-300) {
    return swy / sw;  // Fall back to the weighted mean.
  }
  const double slope = (sw * swxy - swx * swy) / denom;
  const double intercept = (swy - slope * swx) / sw;
  return slope * x_i + intercept;
}

}  // namespace

std::vector<double> LoessSmoothWeighted(std::span<const double> values, size_t span,
                                        std::span<const double> robustness) {
  const size_t n = values.size();
  std::vector<double> smoothed(n, 0.0);
  if (n == 0) {
    return smoothed;
  }
  FBD_CHECK(robustness.empty() || robustness.size() == n);
  if (n == 1) {
    smoothed[0] = values[0];
    return smoothed;
  }
  span = std::clamp<size_t>(span, 2, n);

  // Fast path for the unweighted case (STL's default: outer_iterations == 1
  // keeps the robustness weights empty). Away from the edges every window is
  // the same shape, so the tricube weights form one fixed kernel and the fit
  // at i collapses to two kernel dot products:
  //   smoothed[i] = (swy - slope * swk) / sw,
  //   slope = (sw * swky - swk * swy) / (sw * swkk - swk^2),
  // where sw/swk/swkk are kernel constants and swy/swky are dot products of
  // the kernel (and the kernel times the centered offset) with the window.
  // This is the same least-squares fit with the arithmetic hoisted out of the
  // per-point loop. Edge windows are clamped and keep the generic path.
  const size_t half = span / 2;
  if (robustness.empty() && n > span) {
    const double center = static_cast<double>(half);
    const double max_dist = std::max(center, static_cast<double>(span - 1 - half));
    std::vector<double> kernel(span);
    std::vector<double> kernel_k(span);  // kernel * centered offset.
    double sw = 0.0;
    double swk = 0.0;
    double swkk = 0.0;
    for (size_t k = 0; k < span; ++k) {
      const double offset = static_cast<double>(k) - center;
      const double w = max_dist > 0.0 ? Tricube(std::fabs(offset) / (max_dist + 1.0)) : 1.0;
      kernel[k] = w;
      kernel_k[k] = w * offset;
      sw += w;
      swk += w * offset;
      swkk += w * offset * offset;
    }
    const double denom = sw * swkk - swk * swk;
    const bool degenerate = sw <= 0.0 || std::fabs(denom) < 1e-12 * sw * swkk + 1e-300;
    // Interior: lo = i - half >= 0 and lo + span <= n.
    const size_t first = half;
    const size_t last = n - span + half;  // Inclusive.
    for (size_t i = first; i <= last; ++i) {
      const double* window = values.data() + (i - half);
      double swy = 0.0;
      double swky = 0.0;
      for (size_t k = 0; k < span; ++k) {
        swy += kernel[k] * window[k];
        swky += kernel_k[k] * window[k];
      }
      if (degenerate) {
        smoothed[i] = sw > 0.0 ? swy / sw : values[i];
      } else {
        const double slope = (sw * swky - swk * swy) / denom;
        smoothed[i] = (swy - slope * swk) / sw;
      }
    }
    for (size_t i = 0; i < first; ++i) {
      smoothed[i] = LoessFitAt(values, robustness, span, i);
    }
    for (size_t i = last + 1; i < n; ++i) {
      smoothed[i] = LoessFitAt(values, robustness, span, i);
    }
    return smoothed;
  }

  for (size_t i = 0; i < n; ++i) {
    smoothed[i] = LoessFitAt(values, robustness, span, i);
  }
  return smoothed;
}

std::vector<double> LoessSmooth(std::span<const double> values, size_t span) {
  return LoessSmoothWeighted(values, span, {});
}

}  // namespace fbdetect
