#include "src/tsa/loess.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fbdetect {
namespace {

double Tricube(double u) {
  const double a = 1.0 - std::fabs(u) * std::fabs(u) * std::fabs(u);
  return a <= 0.0 ? 0.0 : a * a * a;
}

}  // namespace

std::vector<double> LoessSmoothWeighted(std::span<const double> values, size_t span,
                                        std::span<const double> robustness) {
  const size_t n = values.size();
  std::vector<double> smoothed(n, 0.0);
  if (n == 0) {
    return smoothed;
  }
  FBD_CHECK(robustness.empty() || robustness.size() == n);
  if (n == 1) {
    smoothed[0] = values[0];
    return smoothed;
  }
  span = std::clamp<size_t>(span, 2, n);

  for (size_t i = 0; i < n; ++i) {
    // Neighborhood of `span` points centered on i, shifted at the edges.
    size_t lo = i >= span / 2 ? i - span / 2 : 0;
    if (lo + span > n) {
      lo = n - span;
    }
    const size_t hi = lo + span;  // Exclusive.
    const double max_dist =
        std::max(static_cast<double>(i - lo), static_cast<double>(hi - 1 - i));
    // Weighted linear fit over the neighborhood.
    double sw = 0.0;
    double swx = 0.0;
    double swy = 0.0;
    double swxx = 0.0;
    double swxy = 0.0;
    for (size_t j = lo; j < hi; ++j) {
      const double dist = std::fabs(static_cast<double>(j) - static_cast<double>(i));
      double w = max_dist > 0.0 ? Tricube(dist / (max_dist + 1.0)) : 1.0;
      if (!robustness.empty()) {
        w *= robustness[j];
      }
      if (w <= 0.0) {
        continue;
      }
      const double x = static_cast<double>(j);
      sw += w;
      swx += w * x;
      swy += w * values[j];
      swxx += w * x * x;
      swxy += w * x * values[j];
    }
    if (sw <= 0.0) {
      smoothed[i] = values[i];
      continue;
    }
    const double denom = sw * swxx - swx * swx;
    const double x_i = static_cast<double>(i);
    if (std::fabs(denom) < 1e-12 * sw * swxx + 1e-300) {
      smoothed[i] = swy / sw;  // Fall back to the weighted mean.
    } else {
      const double slope = (sw * swxy - swx * swy) / denom;
      const double intercept = (swy - slope * swx) / sw;
      smoothed[i] = slope * x_i + intercept;
    }
  }
  return smoothed;
}

std::vector<double> LoessSmooth(std::span<const double> values, size_t span) {
  return LoessSmoothWeighted(values, span, {});
}

}  // namespace fbdetect
