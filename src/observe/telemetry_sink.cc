#include "src/observe/telemetry_sink.h"

#include <utility>

namespace fbdetect {

TelemetrySink::TelemetrySink(TimeSeriesDatabase* db, std::string service)
    : db_(db), service_(std::move(service)), batch_(db) {}

size_t TelemetrySink::Persist(const TelemetryRegistry& registry, TimePoint now) {
  size_t points = 0;
  for (const CounterSnapshot& counter : registry.SnapshotCounters()) {
    batch_.Add(MetricId{service_, MetricKind::kApplication, counter.name, {}}, now,
               static_cast<double>(counter.value));
    ++points;
  }
  for (const HistogramSnapshot& histogram : registry.SnapshotHistograms()) {
    HistogramCursor& cursor = histogram_cursor_[histogram.name];
    const uint64_t delta_count = histogram.count - cursor.count;
    const uint64_t delta_sum = histogram.sum - cursor.sum;
    cursor.count = histogram.count;
    cursor.sum = histogram.sum;
    if (delta_count == 0) {
      continue;  // No recordings this interval: a gap, not a zero.
    }
    batch_.Add(
        MetricId{service_, MetricKind::kLatency, histogram.name + ".mean", {}}, now,
        static_cast<double>(delta_sum) / static_cast<double>(delta_count));
    ++points;
  }
  batch_.Commit();
  return points;
}

}  // namespace fbdetect
