#include "src/observe/telemetry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <mutex>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#include <unistd.h>
#endif

namespace fbdetect {

size_t Histogram::BucketIndex(uint64_t value) {
  const size_t width = static_cast<size_t>(std::bit_width(value));
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << i) - 1;
}

TelemetryRegistry::Stripe& TelemetryRegistry::StripeFor(std::string_view name) {
  return stripes_[std::hash<std::string_view>{}(name) % kNumStripes];
}

Counter* TelemetryRegistry::GetCounter(std::string_view name, CounterStability stability) {
  Stripe& stripe = StripeFor(name);
  {
    std::shared_lock lock(stripe.mutex);
    auto it = stripe.counter_index.find(name);
    if (it != stripe.counter_index.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(stripe.mutex);
  auto it = stripe.counter_index.find(name);
  if (it != stripe.counter_index.end()) {
    return it->second;
  }
  NamedCounter& named = stripe.counters.emplace_back();
  named.name = std::string(name);
  named.stability = stability;
  stripe.counter_index.emplace(std::string_view(named.name), &named.counter);
  return &named.counter;
}

Histogram* TelemetryRegistry::GetHistogram(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  {
    std::shared_lock lock(stripe.mutex);
    auto it = stripe.histogram_index.find(name);
    if (it != stripe.histogram_index.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(stripe.mutex);
  auto it = stripe.histogram_index.find(name);
  if (it != stripe.histogram_index.end()) {
    return it->second;
  }
  stripe.histograms.emplace_back();
  NamedHistogram& named = stripe.histograms.back();
  named.name = std::string(name);
  stripe.histogram_index.emplace(std::string_view(named.name), &named.histogram);
  return &named.histogram;
}

std::vector<CounterSnapshot> TelemetryRegistry::SnapshotCounters() const {
  std::vector<CounterSnapshot> out;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock lock(stripe.mutex);
    for (const NamedCounter& named : stripe.counters) {
      out.push_back(CounterSnapshot{named.name, named.counter.value(), named.stability});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) { return a.name < b.name; });
  return out;
}

std::vector<HistogramSnapshot> TelemetryRegistry::SnapshotHistograms() const {
  std::vector<HistogramSnapshot> out;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock lock(stripe.mutex);
    for (const NamedHistogram& named : stripe.histograms) {
      HistogramSnapshot snapshot;
      snapshot.name = named.name;
      snapshot.count = named.histogram.count();
      snapshot.sum = named.histogram.sum();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        snapshot.buckets[i] = named.histogram.bucket(i);
      }
      out.push_back(std::move(snapshot));
    }
  }
  std::sort(out.begin(), out.end(), [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
    return a.name < b.name;
  });
  return out;
}

void TelemetryRegistry::Reset() {
  for (Stripe& stripe : stripes_) {
    std::unique_lock lock(stripe.mutex);
    for (NamedCounter& named : stripe.counters) {
      named.counter.Set(0);
    }
    for (NamedHistogram& named : stripe.histograms) {
      // Histograms have no Reset on the hot-path type; rebuild in place.
      named.histogram.~Histogram();
      new (&named.histogram) Histogram();
    }
  }
}

size_t TelemetryRegistry::counter_count() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock lock(stripe.mutex);
    total += stripe.counters.size();
  }
  return total;
}

size_t TelemetryRegistry::histogram_count() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock lock(stripe.mutex);
    total += stripe.histograms.size();
  }
  return total;
}

uint64_t StageTimer::WallNowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

uint64_t StageTimer::ThreadCpuNowNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

StageTimer::StageTimer(Histogram* wall_ns, Histogram* cpu_ns)
    : wall_ns_(wall_ns), cpu_ns_(cpu_ns) {
  if (wall_ns_ != nullptr) {
    start_wall_ = WallNowNanos();
  }
  if (cpu_ns_ != nullptr) {
    start_cpu_ = ThreadCpuNowNanos();
  }
}

StageTimer::~StageTimer() {
  if (wall_ns_ != nullptr) {
    wall_ns_->Record(WallNowNanos() - start_wall_);
  }
  if (cpu_ns_ != nullptr) {
    const uint64_t now = ThreadCpuNowNanos();
    cpu_ns_->Record(now >= start_cpu_ ? now - start_cpu_ : 0);
  }
}

}  // namespace fbdetect
