// Self-observability substrate for the detection pipeline (DESIGN.md §12).
//
// FBDetect's value proposition is funnel attrition (§5 / Fig. 6 of the
// paper): raw change points are cut by 3-4 orders of magnitude before a
// ticket is filed. This module makes that attrition — and the cost of
// producing it — observable from inside the process: monotonic counters for
// per-stage candidate-in/out counts, log-bucketed histograms for stage
// latencies, and RAII StageTimers recording wall and per-thread CPU time.
//
// Design constraints (all load-bearing for the pipeline):
//  * Determinism. Counters tagged kDeterministic count EVENTS (a series
//    scanned, a candidate surviving a stage), never scheduling artifacts, so
//    their values are byte-identical for any scan_threads. Counters tagged
//    kRuntime (pool batches, wall-clock sums) and all histograms are
//    excluded from the deterministic export.
//  * Allocation-light hot path. Handles (Counter*/Histogram*) are registered
//    once up front; recording is a relaxed atomic add with zero allocation
//    and zero locking. Registration itself is lock-striped by name hash so
//    concurrent registries of independent subsystems never contend.
//  * Near-zero cost when off. Every pipeline call site guards recording
//    behind one predictable branch (a cached bool); StageTimer reads no
//    clock when handed null histograms.
#ifndef FBDETECT_SRC_OBSERVE_TELEMETRY_H_
#define FBDETECT_SRC_OBSERVE_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fbdetect {

// Whether a counter's value is a pure function of the input data (and thus
// byte-identical across scan_threads) or depends on scheduling/timing.
enum class CounterStability { kDeterministic, kRuntime };

// Canonical names of the generation-gated / streaming scan counters
// (DESIGN.md §14), shared between the pipeline's registration and the tests
// that assert on them. Per gated run: pipeline.scan.series_in ==
// tsdb.scan.dirty + tsdb.scan.cache_hit; tsdb.scan.clean additionally
// counts series skipped by whole-run short-circuits.
inline constexpr const char kCounterScanDirty[] = "tsdb.scan.dirty";
inline constexpr const char kCounterScanClean[] = "tsdb.scan.clean";
inline constexpr const char kCounterScanCacheHit[] = "tsdb.scan.cache_hit";
inline constexpr const char kCounterRunShortCircuits[] =
    "pipeline.run.short_circuits";
inline constexpr const char kCounterStreamingAlerts[] =
    "pipeline.streaming.alerts";
inline constexpr const char kCounterListCacheShardRefreshes[] =
    "tsdb.scan.list_cache_shard_refreshes";

// A monotonic event counter. Add is wait-free (relaxed fetch_add); Set exists
// only for export-time mirroring of externally maintained stats (TSDB shard
// counters, pool stats) into the registry.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Fixed log-spaced (power-of-two) buckets: bucket i counts values whose
// bit-width is i, i.e. [2^(i-1), 2^i) for i >= 1 and {0} for i = 0. 44
// buckets cover [0, ~8.8e12] — nanosecond timings up to ~2.4 hours — with
// the last bucket absorbing anything larger. No configuration, no
// allocation, no locking: Record is three relaxed atomic adds.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 44;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Inclusive upper bound of bucket i (2^i - 1); UINT64_MAX for the last.
  static uint64_t BucketUpperBound(size_t i);
  static size_t BucketIndex(uint64_t value);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Snapshots for export; sorted by name so every render is deterministic.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
  CounterStability stability = CounterStability::kDeterministic;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
};

// Named counter/histogram registry. Lookup-or-create is lock-striped by name
// hash (shared lock on the hit path, exclusive only to insert); handles are
// stable for the registry's lifetime (instruments live in per-stripe deques
// that never relocate).
class TelemetryRegistry {
 public:
  explicit TelemetryRegistry(bool enabled = false) : enabled_(enabled) {}
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // The global on/off gate callers cache and branch on before recording.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // Returns the instrument registered under `name`, creating it on first
  // use. The stability tag is fixed by the first registration.
  Counter* GetCounter(std::string_view name,
                      CounterStability stability = CounterStability::kDeterministic);
  Histogram* GetHistogram(std::string_view name);

  // Name-sorted snapshots (deterministic iteration order for export).
  std::vector<CounterSnapshot> SnapshotCounters() const;
  std::vector<HistogramSnapshot> SnapshotHistograms() const;

  // Zeroes every instrument (names and handles stay registered).
  void Reset();

  size_t counter_count() const;
  size_t histogram_count() const;

 private:
  static constexpr size_t kNumStripes = 16;

  struct NamedCounter {
    std::string name;
    CounterStability stability = CounterStability::kDeterministic;
    Counter counter;
  };
  struct NamedHistogram {
    std::string name;
    Histogram histogram;
  };
  struct Stripe {
    mutable std::shared_mutex mutex;
    std::deque<NamedCounter> counters;          // Deque: stable addresses.
    std::deque<NamedHistogram> histograms;
    std::unordered_map<std::string_view, Counter*> counter_index;
    std::unordered_map<std::string_view, Histogram*> histogram_index;
  };

  Stripe& StripeFor(std::string_view name);

  std::atomic<bool> enabled_;
  std::array<Stripe, kNumStripes> stripes_;
};

// RAII stage timer: records elapsed wall time (and, where the platform
// supports per-thread CPU clocks, CPU time) in nanoseconds into the given
// histograms on destruction. Null histograms make construction and
// destruction free of clock reads — the enabled check is "pass nullptr".
class StageTimer {
 public:
  explicit StageTimer(Histogram* wall_ns, Histogram* cpu_ns = nullptr);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  // Current thread's monotonic wall clock, nanoseconds.
  static uint64_t WallNowNanos();
  // Current thread's CPU clock, nanoseconds; 0 where unsupported.
  static uint64_t ThreadCpuNowNanos();

 private:
  Histogram* wall_ns_;
  Histogram* cpu_ns_;
  uint64_t start_wall_ = 0;
  uint64_t start_cpu_ = 0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_OBSERVE_TELEMETRY_H_
