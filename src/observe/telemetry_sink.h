// Self-hosted telemetry retention (DESIGN.md §15): periodic TelemetryRegistry
// snapshots persisted into the TSDB as ordinary time series, so the
// pipeline's own attrition and latency metrics are scanned for regressions by
// the same detection stack that watches the fleet — FBDetect monitoring
// FBDetect.
//
// Mapping:
//   counter `name`    -> MetricId{service, kApplication, entity = name}
//                        absolute value at snapshot time (monotonic).
//   histogram `name`  -> MetricId{service, kLatency, entity = name + ".mean"}
//                        mean of the values recorded SINCE THE LAST snapshot
//                        (delta sum / delta count) — a per-interval latency
//                        level, which is what the change-point detectors
//                        expect. Intervals with no recordings write nothing
//                        (a gap, not a zero).
//
// The sink writes through the normal ingest path (WriteBatch), so persisted
// telemetry participates in sealing, retention, durability, and scanning
// exactly like fleet telemetry.
#ifndef FBDETECT_SRC_OBSERVE_TELEMETRY_SINK_H_
#define FBDETECT_SRC_OBSERVE_TELEMETRY_SINK_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/sim_time.h"
#include "src/observe/telemetry.h"
#include "src/tsdb/database.h"

namespace fbdetect {

class TelemetrySink {
 public:
  // Writes snapshots into `db` under `service` (e.g. "fbdetect.self").
  // `db` must outlive the sink.
  TelemetrySink(TimeSeriesDatabase* db, std::string service);

  // Persists one snapshot stamped `now`. Timestamps must be strictly
  // increasing across calls (the database drops a repeated timestamp as a
  // duplicate, which is harmless but wasted work). Returns the number of
  // points written.
  size_t Persist(const TelemetryRegistry& registry, TimePoint now);

  const std::string& service() const { return service_; }

 private:
  struct HistogramCursor {
    uint64_t sum = 0;
    uint64_t count = 0;
  };

  TimeSeriesDatabase* db_;
  std::string service_;
  WriteBatch batch_;
  // Last-seen histogram totals, for per-interval deltas.
  std::unordered_map<std::string, HistogramCursor> histogram_cursor_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_OBSERVE_TELEMETRY_SINK_H_
