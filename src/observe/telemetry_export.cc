#include "src/observe/telemetry_export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace fbdetect {
namespace {

void AppendU64(std::string& out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

// JSON string escaping is minimal here: registered names are code constants
// (dotted ASCII identifiers), so quoting suffices; a stray quote or
// backslash is still escaped for safety.
void AppendJsonString(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

std::string PrometheusName(const std::string& name) {
  std::string out = "fbd_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

}  // namespace

std::string RenderTelemetryJson(const TelemetryRegistry& registry, bool include_runtime) {
  const std::vector<CounterSnapshot> counters = registry.SnapshotCounters();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSnapshot& counter : counters) {
    if (counter.stability != CounterStability::kDeterministic) {
      continue;
    }
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, counter.name);
    out += ": ";
    AppendU64(out, counter.value);
  }
  out += first ? "}" : "\n  }";
  if (include_runtime) {
    out += ",\n  \"runtime_counters\": {";
    first = true;
    for (const CounterSnapshot& counter : counters) {
      if (counter.stability != CounterStability::kRuntime) {
        continue;
      }
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonString(out, counter.name);
      out += ": ";
      AppendU64(out, counter.value);
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"histograms\": [";
    const std::vector<HistogramSnapshot> histograms = registry.SnapshotHistograms();
    for (size_t h = 0; h < histograms.size(); ++h) {
      const HistogramSnapshot& histogram = histograms[h];
      out += h == 0 ? "\n    {" : ",\n    {";
      out += "\"name\": ";
      AppendJsonString(out, histogram.name);
      out += ", \"count\": ";
      AppendU64(out, histogram.count);
      out += ", \"sum\": ";
      AppendU64(out, histogram.sum);
      // Sparse buckets: only non-empty ones, as [upper_bound, count] pairs.
      out += ", \"buckets\": [";
      bool first_bucket = true;
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        if (histogram.buckets[i] == 0) {
          continue;
        }
        if (!first_bucket) {
          out += ", ";
        }
        first_bucket = false;
        out += '[';
        AppendU64(out, Histogram::BucketUpperBound(i));
        out += ", ";
        AppendU64(out, histogram.buckets[i]);
        out += ']';
      }
      out += "]}";
    }
    out += histograms.empty() ? "]" : "\n  ]";
  }
  out += "\n}\n";
  return out;
}

std::string RenderTelemetryPrometheus(const TelemetryRegistry& registry) {
  std::string out;
  for (const CounterSnapshot& counter : registry.SnapshotCounters()) {
    const std::string name = PrometheusName(counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendU64(out, counter.value);
    out += '\n';
  }
  for (const HistogramSnapshot& histogram : registry.SnapshotHistograms()) {
    const std::string name = PrometheusName(histogram.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (histogram.buckets[i] == 0) {
        continue;
      }
      cumulative += histogram.buckets[i];
      out += name + "_bucket{le=\"";
      AppendU64(out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendU64(out, cumulative);
      out += '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    AppendU64(out, histogram.count);
    out += '\n';
    out += name + "_sum ";
    AppendU64(out, histogram.sum);
    out += '\n';
    out += name + "_count ";
    AppendU64(out, histogram.count);
    out += '\n';
  }
  return out;
}

bool WriteTelemetryFile(const TelemetryRegistry& registry, const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = RenderTelemetryJson(registry, /*include_runtime=*/true);
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace fbdetect
