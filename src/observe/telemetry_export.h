// Export formats for a TelemetryRegistry snapshot.
//
// Two renderers over the same name-sorted snapshot:
//  * JSON — deterministic by construction (sorted names, integer values,
//    fixed field order). With include_runtime = false only kDeterministic
//    counters are emitted, which is the form the observability tests
//    byte-compare across scan_threads values.
//  * Prometheus text exposition — counters as `fbd_<name> <value>` and
//    histograms as the conventional `_bucket{le=...}/_sum/_count` triplet,
//    for scraping by a standard collector.
#ifndef FBDETECT_SRC_OBSERVE_TELEMETRY_EXPORT_H_
#define FBDETECT_SRC_OBSERVE_TELEMETRY_EXPORT_H_

#include <string>

#include "src/observe/telemetry.h"

namespace fbdetect {

// Deterministic JSON object: {"counters": {...}, "runtime_counters": {...},
// "histograms": [...]}. The last two sections appear only when
// include_runtime is true; the "counters" section alone is byte-identical
// across scan_threads for a deterministic pipeline.
std::string RenderTelemetryJson(const TelemetryRegistry& registry, bool include_runtime);

// Prometheus text exposition format (everything, timings included). Metric
// names are prefixed with `fbd_` and non-alphanumeric characters in
// registered names map to '_'.
std::string RenderTelemetryPrometheus(const TelemetryRegistry& registry);

// Writes RenderTelemetryJson(registry, /*include_runtime=*/true) to `path`.
// Returns false (and writes nothing) when the file cannot be opened. Backs
// the --telemetry-out flag on the benches, examples, and tools.
bool WriteTelemetryFile(const TelemetryRegistry& registry, const std::string& path);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_OBSERVE_TELEMETRY_EXPORT_H_
