#include "src/service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <span>
#include <utility>

#include "src/observe/telemetry.h"
#include "src/observe/telemetry_export.h"
#include "src/report/report.h"

namespace fbdetect {
namespace {

// epoll user data: low tags for the server's own fds, connection serials
// start at 16 (see next_conn_serial_).
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kDrainTag = 2;

uint64_t NowNanos() { return StageTimer::WallNowNanos(); }

void Bump(std::atomic<uint64_t>& counter, Counter* mirror, uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
  if (mirror != nullptr) {
    mirror->Add(n);
  }
}

std::span<const uint8_t> BodySpan(const std::string& body) {
  return {reinterpret_cast<const uint8_t*>(body.data()), body.size()};
}

void DrainEventFd(int fd) {
  uint64_t value = 0;
  while (::read(fd, &value, sizeof(value)) == static_cast<ssize_t>(sizeof(value))) {
  }
}

bool ParseTimePoint(const std::string& text, TimePoint* out) {
  const auto [p, err] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return err == std::errc() && p == text.data() + text.size();
}

}  // namespace

struct ServiceServer::Connection {
  explicit Connection(HttpParser::Limits limits) : parser(limits) {}

  uint64_t serial = 0;
  int fd = -1;
  HttpParser parser;
  std::string write_buffer;
  size_t write_offset = 0;
  uint32_t events = 0;  // Current epoll interest mask.
  // A request of this connection is in the worker stages; reads are paused
  // (interest dropped, TCP backpressure does the rest) until its completion
  // arrives, so per-connection buffered memory stays bounded.
  bool awaiting_completion = false;
  bool close_after_write = false;
  uint64_t deadline_ns = 0;  // 0 = no request in flight on the wire.
};

ServiceServer::ServiceServer(TimeSeriesDatabase* db, Pipeline* pipeline,
                             ServiceOptions options)
    : db_(db),
      pipeline_(pipeline),
      options_(std::move(options)),
      bucket_(options_.admit_points_per_sec, options_.admit_burst_points),
      parse_queue_(options_.parse_high_watermark_points),
      ingest_queue_(options_.ingest_queue_points),
      control_queue_(64) {
  TelemetryRegistry& registry = pipeline_->telemetry();
  const auto runtime = [&registry](std::string_view name) {
    return registry.GetCounter(name, CounterStability::kRuntime);
  };
  tm_offered_ = runtime("service.offered_requests");
  tm_admitted_points_ = runtime("service.admitted_points");
  tm_shed_admission_ = runtime("service.shed_admission");
  tm_shed_backpressure_ = runtime("service.shed_backpressure");
  tm_shed_drain_ = runtime("service.shed_drain");
  tm_malformed_ = runtime("service.malformed_requests");
  tm_evicted_ = runtime("service.evicted_slow_clients");
  tm_commits_ = runtime("service.commits");
  tm_queue_points_ = runtime("service.queued_points");
  tm_ingest_latency_ns_ = registry.GetHistogram("service.ingest_latency_ns");
}

ServiceServer::~ServiceServer() {
  JoinWorkers();
  for (auto& [serial, conn] : connections_) {
    ::close(conn->fd);
  }
  connections_.clear();
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_, &drain_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

Status ServiceServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal(std::string("bind failed: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 512) != 0) {
    return Status::Internal(std::string("listen failed: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  drain_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0 || drain_fd_ < 0) {
    return Status::Internal(std::string("epoll/eventfd failed: ") + std::strerror(errno));
  }
  const auto watch = [this](int fd, uint64_t tag) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  };
  if (watch(listen_fd_, kListenTag) != 0 || watch(wake_fd_, kWakeTag) != 0 ||
      watch(drain_fd_, kDrainTag) != 0) {
    return Status::Internal(std::string("epoll_ctl failed: ") + std::strerror(errno));
  }

  const int parse_threads = std::max(1, options_.parse_threads);
  parse_workers_.reserve(static_cast<size_t>(parse_threads));
  for (int i = 0; i < parse_threads; ++i) {
    parse_workers_.emplace_back([this] { ParseWorker(); });
  }
  ingest_worker_ = std::thread([this] { IngestWorker(); });
  control_worker_ = std::thread([this] { ControlWorker(); });
  return Status::Ok();
}

bool ServiceServer::Run() {
  if (epoll_fd_ < 0) {
    return false;
  }
  epoll_event events[64];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 20);
    if (n < 0 && errno != EINTR) {
      break;
    }
    const uint64_t now = NowNanos();
    for (int i = 0; i < std::max(n, 0); ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptReady(now);
        continue;
      }
      if (tag == kWakeTag) {
        DrainEventFd(wake_fd_);
        continue;
      }
      if (tag == kDrainTag) {
        DrainEventFd(drain_fd_);
        if (!draining_.exchange(true, std::memory_order_relaxed)) {
          drain_started_ns_ = now;
          accepting_ = false;
          if (listen_fd_ >= 0) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
            ::close(listen_fd_);
            listen_fd_ = -1;
          }
        }
        continue;
      }
      const auto it = connections_.find(tag);
      if (it == connections_.end()) {
        continue;  // Closed earlier in this batch.
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(*it->second);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ConnectionReadable(*it->second, now);
      }
      const auto again = connections_.find(tag);
      if (again != connections_.end() && (events[i].events & EPOLLOUT) != 0) {
        ConnectionWritable(*again->second);
      }
    }
    DrainCompletions();
    const uint64_t after = NowNanos();
    SweepTimeouts(after);
    if (tm_queue_points_ != nullptr) {
      tm_queue_points_->Set(parse_queue_.cost() + ingest_queue_.cost());
    }
    if (draining_.load(std::memory_order_relaxed)) {
      AdvanceDrain(after);
      if (workers_joined_) {
        break;
      }
    }
  }
  JoinWorkers();
  DrainCompletions();
  // Best-effort final flush of buffered responses before the fds go away.
  for (auto& [serial, conn] : connections_) {
    if (conn->write_offset < conn->write_buffer.size()) {
      (void)::send(conn->fd, conn->write_buffer.data() + conn->write_offset,
                   conn->write_buffer.size() - conn->write_offset, MSG_NOSIGNAL);
    }
    ::close(conn->fd);
  }
  connections_.clear();
  return drained_.load(std::memory_order_relaxed);
}

void ServiceServer::BeginDrain() {
  // Async-signal-safe: one write syscall on a pre-created eventfd.
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(drain_fd_, &one, sizeof(one));
}

void ServiceServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void ServiceServer::JoinWorkers() {
  if (workers_joined_) {
    return;
  }
  workers_joined_ = true;
  parse_queue_.Close();
  ingest_queue_.Close();
  control_queue_.Close();
  for (std::thread& worker : parse_workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  if (ingest_worker_.joinable()) {
    ingest_worker_.join();
  }
  if (control_worker_.joinable()) {
    control_worker_.join();
  }
}

// --- Event-loop internals ---

void ServiceServer::AcceptReady(uint64_t now_ns) {
  (void)now_ns;
  while (accepting_ && listen_fd_ >= 0) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN (drained) or transient error; epoll will re-arm.
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    HttpParser::Limits limits;
    limits.max_body_bytes = options_.max_body_bytes;
    auto conn = std::make_unique<Connection>(limits);
    conn->serial = next_conn_serial_++;
    conn->fd = fd;
    conn->events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->serial;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(conn->serial, std::move(conn));
  }
}

void ServiceServer::UpdateInterest(Connection& conn, uint32_t events) {
  if (conn.events == events) {
    return;
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.serial;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.events = events;
  }
}

void ServiceServer::ConnectionReadable(Connection& conn, uint64_t now_ns) {
  if (conn.awaiting_completion || !conn.write_buffer.empty()) {
    // A request is still being answered; pause reads (level-triggered epoll
    // would spin otherwise) until the response flushes.
    UpdateInterest(conn, conn.events & ~static_cast<uint32_t>(EPOLLIN));
    return;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      CloseConnection(conn);
      return;
    }
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    if (conn.deadline_ns == 0 && options_.request_timeout_ms > 0) {
      conn.deadline_ns = now_ns + options_.request_timeout_ms * 1'000'000ull;
    }
    const HttpParser::Result result = conn.parser.Feed(buf, static_cast<size_t>(n));
    if (result == HttpParser::Result::kError) {
      Bump(malformed_, tm_malformed_);
      conn.close_after_write = true;
      SendResponse(conn, conn.parser.error_status(), "text/plain",
                   conn.parser.error_reason());
      return;
    }
    if (result == HttpParser::Result::kComplete) {
      HandleRequest(conn, now_ns);
      // Whatever the outcome (queued or answered inline), reads stay paused
      // until the response is fully written; pipelined bytes wait buffered.
      const auto it = connections_.find(conn.serial);
      if (it != connections_.end()) {
        UpdateInterest(conn, conn.events & ~static_cast<uint32_t>(EPOLLIN));
      }
      return;
    }
  }
}

void ServiceServer::ConnectionWritable(Connection& conn) {
  while (conn.write_offset < conn.write_buffer.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buffer.data() + conn.write_offset,
               conn.write_buffer.size() - conn.write_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      CloseConnection(conn);
      return;
    }
    conn.write_offset += static_cast<size_t>(n);
  }
  conn.write_buffer.clear();
  conn.write_offset = 0;
  if (conn.close_after_write) {
    CloseConnection(conn);
    return;
  }
  // Response delivered: the request cycle is over.
  conn.deadline_ns = 0;
  conn.parser.Reset();
  UpdateInterest(conn, EPOLLIN);
  // A pipelined next request may already be buffered.
  const HttpParser::Result result = conn.parser.Continue();
  if (result == HttpParser::Result::kError) {
    Bump(malformed_, tm_malformed_);
    conn.close_after_write = true;
    SendResponse(conn, conn.parser.error_status(), "text/plain",
                 conn.parser.error_reason());
    return;
  }
  const uint64_t now = NowNanos();
  if (conn.parser.buffered_bytes() > 0 && options_.request_timeout_ms > 0) {
    conn.deadline_ns = now + options_.request_timeout_ms * 1'000'000ull;
  }
  if (result == HttpParser::Result::kComplete) {
    HandleRequest(conn, now);
    const auto it = connections_.find(conn.serial);
    if (it != connections_.end()) {
      UpdateInterest(conn, conn.events & ~static_cast<uint32_t>(EPOLLIN));
    }
  }
}

void ServiceServer::HandleRequest(Connection& conn, uint64_t now_ns) {
  const HttpRequest& request = conn.parser.request();
  const std::string_view path = HttpPath(request.target);
  if (request.method == "POST" && path == "/ingest") {
    HandleIngest(conn, request, now_ns);
    return;
  }
  if (HandleImmediate(conn, request)) {
    return;
  }

  // Control-plane endpoints run on the control worker under the db phase
  // mutex; the event loop only queues them.
  ControlJob job;
  job.conn_serial = conn.serial;
  if (request.method == "POST" && path == "/run") {
    job.kind = ControlJob::Kind::kRun;
    job.service = HttpQueryParam(request.target, "service");
    const std::string as_of = HttpQueryParam(request.target, "as_of");
    if (job.service.empty() || !ParseTimePoint(as_of, &job.as_of)) {
      SendResponse(conn, 400, "text/plain", "need service=<name>&as_of=<seconds>");
      return;
    }
  } else if (request.method == "GET" && path == "/quarantine") {
    job.kind = ControlJob::Kind::kQuarantine;
  } else if (request.method == "POST" && path == "/seal") {
    job.kind = ControlJob::Kind::kSeal;
    const std::string boundary = HttpQueryParam(request.target, "boundary");
    if (boundary.empty()) {
      job.boundary = max_ingested_ts_.load(std::memory_order_relaxed) + 1;
    } else if (!ParseTimePoint(boundary, &job.boundary)) {
      SendResponse(conn, 400, "text/plain", "bad boundary");
      return;
    }
  } else {
    SendResponse(conn, 404, "text/plain", "unknown target");
    return;
  }
  control_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!control_queue_.TryPush(std::move(job), 1)) {
    control_submitted_.fetch_sub(1, std::memory_order_relaxed);
    SendResponse(conn, 503, "application/json", "{\"error\":\"control queue full\"}",
                 {"Retry-After: 1"});
    return;
  }
  conn.awaiting_completion = true;
}

void ServiceServer::HandleIngest(Connection& conn, const HttpRequest& request,
                                 uint64_t now_ns) {
  const bool binary = request.Header("content-type") == "application/x-fbdetect";
  uint32_t points = 0;
  if (binary) {
    const Status peek = PeekWirePoints(BodySpan(request.body), &points);
    if (!peek.ok()) {
      Bump(malformed_, tm_malformed_);
      SendResponse(conn, 400, "text/plain", peek.message());
      return;
    }
  } else {
    points = CountTextPoints(request.body);
  }

  // Shed taxonomy, in decision order — every well-formed request lands in
  // exactly one of {admitted, shed_drain, shed_backpressure, shed_admission}.
  Bump(offered_, tm_offered_);
  if (draining_.load(std::memory_order_relaxed)) {
    Bump(shed_drain_, tm_shed_drain_);
    SendResponse(conn, 503, "application/json", "{\"shed\":\"drain\"}",
                 {"Retry-After: 1"});
    return;
  }
  UpdateWatermark();
  if (backpressure_) {
    Bump(shed_backpressure_, tm_shed_backpressure_);
    SendResponse(conn, 503, "application/json", "{\"shed\":\"backpressure\"}",
                 {"Retry-After: 1"});
    return;
  }
  if (!bucket_.Admit(points, now_ns)) {
    Bump(shed_admission_, tm_shed_admission_);
    SendResponse(conn, 429, "application/json", "{\"shed\":\"admission\"}",
                 {"Retry-After: 1"});
    return;
  }
  if (points == 0) {
    // An empty batch admits trivially: nothing to queue or commit.
    admitted_requests_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(conn, 200, "application/json", "{\"status\":\"ok\",\"points\":0}");
    return;
  }

  ParseJob job;
  job.conn_serial = conn.serial;
  job.body = std::move(conn.parser.mutable_request().body);
  job.binary = binary;
  job.points = points;
  job.received_ns = now_ns;
  parse_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!parse_queue_.TryPush(std::move(job), points)) {
    parse_submitted_.fetch_sub(1, std::memory_order_relaxed);
    bucket_.Refund(points);
    backpressure_ = true;  // The queue is at capacity: flip hysteresis now.
    Bump(shed_backpressure_, tm_shed_backpressure_);
    SendResponse(conn, 503, "application/json", "{\"shed\":\"backpressure\"}",
                 {"Retry-After: 1"});
    return;
  }
  admitted_requests_.fetch_add(1, std::memory_order_relaxed);
  Bump(admitted_points_, tm_admitted_points_, points);
  conn.awaiting_completion = true;
}

bool ServiceServer::HandleImmediate(Connection& conn, const HttpRequest& request) {
  const std::string_view path = HttpPath(request.target);
  if (request.method == "GET") {
    if (path == "/healthz") {
      SendResponse(conn, 200, "application/json", HealthJson());
      return true;
    }
    if (path == "/stats") {
      SendResponse(conn, 200, "application/json", StatsJson());
      return true;
    }
    if (path == "/config") {
      SendResponse(conn, 200, "application/json", ConfigJson());
      return true;
    }
    if (path == "/metrics") {
      SendResponse(conn, 200, "text/plain; version=0.0.4",
                   RenderTelemetryPrometheus(pipeline_->telemetry()));
      return true;
    }
    if (path == "/telemetry") {
      SendResponse(conn, 200, "application/json",
                   RenderTelemetryJson(pipeline_->telemetry(), /*include_runtime=*/true));
      return true;
    }
  }
  if (request.method == "POST" && path == "/drain") {
    BeginDrain();
    SendResponse(conn, 202, "application/json", "{\"draining\":true}");
    return true;
  }
  return false;
}

void ServiceServer::SendResponse(Connection& conn, int status,
                                 std::string_view content_type, std::string_view body,
                                 const std::vector<std::string>& extra) {
  const bool keep_alive = conn.parser.request().keep_alive && !conn.close_after_write;
  if (!keep_alive) {
    conn.close_after_write = true;
  }
  conn.write_buffer += BuildHttpResponse(status, content_type, body, keep_alive, extra);
  UpdateInterest(conn, (conn.events & ~static_cast<uint32_t>(EPOLLIN)) | EPOLLOUT);
}

void ServiceServer::CloseConnection(Connection& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  connections_.erase(conn.serial);  // `conn` is dead; callers return immediately.
}

void ServiceServer::PostCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void ServiceServer::DrainCompletions() {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    const auto it = connections_.find(completion.conn_serial);
    if (it == connections_.end()) {
      continue;  // Client evicted or gone; the ack has no one to go to.
    }
    Connection& conn = *it->second;
    conn.awaiting_completion = false;
    SendResponse(conn, completion.status, completion.content_type, completion.body);
  }
}

void ServiceServer::SweepTimeouts(uint64_t now_ns) {
  if (options_.request_timeout_ms == 0) {
    return;
  }
  std::vector<uint64_t> doomed;
  for (const auto& [serial, conn] : connections_) {
    // Slow-CLIENT defense only: a connection waiting on the server's own
    // commit (awaiting_completion) is never the client's fault.
    if (conn->deadline_ns != 0 && now_ns > conn->deadline_ns &&
        !conn->awaiting_completion) {
      doomed.push_back(serial);
    }
  }
  for (const uint64_t serial : doomed) {
    const auto it = connections_.find(serial);
    if (it != connections_.end()) {
      Bump(evicted_slow_, tm_evicted_);
      CloseConnection(*it->second);
    }
  }
}

void ServiceServer::UpdateWatermark() {
  const uint64_t cost = parse_queue_.cost();
  if (!backpressure_ && cost >= options_.parse_high_watermark_points) {
    backpressure_ = true;
  } else if (backpressure_ && cost <= options_.parse_low_watermark_points) {
    backpressure_ = false;
  }
}

void ServiceServer::AdvanceDrain(uint64_t now_ns) {
  const bool deadline_hit =
      options_.drain_deadline_ms > 0 &&
      now_ns - drain_started_ns_ > options_.drain_deadline_ms * 1'000'000ull;
  const bool parse_idle = parse_done_.load(std::memory_order_acquire) ==
                          parse_submitted_.load(std::memory_order_acquire);
  const bool ingest_idle = ingest_done_.load(std::memory_order_acquire) ==
                           ingest_submitted_.load(std::memory_order_acquire);
  if (!checkpoint_enqueued_ && parse_idle && ingest_idle) {
    // Every admitted batch is committed and acked; checkpoint past the
    // newest ingested timestamp so the WAL tail is empty on reopen.
    ControlJob job;
    job.kind = ControlJob::Kind::kDrainCheckpoint;
    job.boundary = max_ingested_ts_.load(std::memory_order_relaxed) + 1;
    control_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (control_queue_.TryPush(std::move(job), 1)) {
      checkpoint_enqueued_ = true;
    } else {
      control_submitted_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (checkpoint_done_.load(std::memory_order_acquire)) {
    bool flushed;
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      flushed = completions_.empty();
    }
    for (const auto& [serial, conn] : connections_) {
      flushed = flushed && conn->write_buffer.empty() && !conn->awaiting_completion;
    }
    if (flushed || deadline_hit) {
      drained_.store(true, std::memory_order_relaxed);
      JoinWorkers();
    }
    return;
  }
  if (deadline_hit) {
    // Checkpoint never completed inside the budget: give up losslessly for
    // acked-and-checkpointed data only (drained_ stays false).
    JoinWorkers();
  }
}

// --- Worker stages ---

void ServiceServer::ParseWorker() {
  ParseJob job;
  while (parse_queue_.Pop(&job)) {
    IngestJob out;
    out.conn_serial = job.conn_serial;
    out.received_ns = job.received_ns;
    const Status parsed =
        job.binary ? ParseWireBatch(BodySpan(job.body), &out.batch)
                   : ParseTextBatch(job.body, &out.batch);
    if (!parsed.ok()) {
      // Admitted but undecodable: the points never reach the database and
      // the client learns exactly why (still counted admitted — admission
      // priced the peek, not the decode).
      Bump(malformed_, tm_malformed_);
      PostCompletion({job.conn_serial, 400, "text/plain", parsed.message()});
      parse_done_.fetch_add(1, std::memory_order_release);
      continue;
    }
    const uint64_t cost = out.batch.total_points;
    ingest_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (!ingest_queue_.Push(std::move(out), cost)) {
      ingest_submitted_.fetch_sub(1, std::memory_order_relaxed);
      PostCompletion({job.conn_serial, 503, "application/json",
                      "{\"error\":\"shutting down\"}"});
    }
    parse_done_.fetch_add(1, std::memory_order_release);
  }
}

void ServiceServer::IngestWorker() {
  WriteBatch batch(db_);
  struct PendingAck {
    uint64_t conn_serial;
    uint32_t points;
    uint64_t received_ns;
  };
  std::vector<PendingAck> pending;
  uint64_t staged = 0;

  const auto flush = [&] {
    if (pending.empty()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(db_phase_mutex_);
      batch.Commit();
    }
    Bump(commits_, tm_commits_);
    // Ack-after-commit: the 200 exists only once the points are applied, so
    // a drain that waits for acked work to finish can checkpoint losslessly.
    const uint64_t now = NowNanos();
    uint64_t flushed_points = 0;
    for (const PendingAck& ack : pending) {
      acked_points_.fetch_add(ack.points, std::memory_order_relaxed);
      flushed_points += ack.points;
      if (tm_ingest_latency_ns_ != nullptr && now > ack.received_ns) {
        tm_ingest_latency_ns_->Record(now - ack.received_ns);
      }
      PostCompletion({ack.conn_serial, 200, "application/json",
                      "{\"status\":\"ok\",\"points\":" + std::to_string(ack.points) + "}"});
      ingest_done_.fetch_add(1, std::memory_order_release);
    }
    pending.clear();
    staged = 0;
    if (options_.seal_every_points > 0) {
      const uint64_t total =
          points_since_seal_.fetch_add(flushed_points, std::memory_order_relaxed) +
          flushed_points;
      if (total >= options_.seal_every_points) {
        points_since_seal_.store(0, std::memory_order_relaxed);
        ControlJob job;
        job.kind = ControlJob::Kind::kSeal;
        job.boundary = max_ingested_ts_.load(std::memory_order_relaxed) + 1;
        control_submitted_.fetch_add(1, std::memory_order_relaxed);
        if (!control_queue_.TryPush(std::move(job), 1)) {
          // Control plane busy: drop the mark; a later flush re-triggers.
          control_submitted_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    }
  };

  IngestJob job;
  for (;;) {
    if (!ingest_queue_.TryPop(&job)) {
      // Queue idle: commit whatever is staged so acks never wait on a quiet
      // wire, then block for the next batch.
      flush();
      if (!ingest_queue_.Pop(&job)) {
        break;
      }
    }
    TimePoint batch_max = 0;
    uint32_t points = 0;
    for (const WireSeries& series : job.batch.series) {
      const InternedMetricId id = db_->Intern(series.id);
      for (size_t i = 0; i < series.timestamps.size(); ++i) {
        batch.Add(id, series.timestamps[i], series.values[i]);
        batch_max = std::max(batch_max, series.timestamps[i]);
      }
      points += static_cast<uint32_t>(series.timestamps.size());
    }
    TimePoint seen = max_ingested_ts_.load(std::memory_order_relaxed);
    while (batch_max > seen &&
           !max_ingested_ts_.compare_exchange_weak(seen, batch_max,
                                                   std::memory_order_relaxed)) {
    }
    staged += points;
    pending.push_back({job.conn_serial, points, job.received_ns});
    if (staged >= options_.flush_points) {
      flush();
    }
  }
  flush();
}

void ServiceServer::ControlWorker() {
  ControlJob job;
  while (control_queue_.Pop(&job)) {
    switch (job.kind) {
      case ControlJob::Kind::kSeal: {
        {
          std::lock_guard<std::mutex> lock(db_phase_mutex_);
          db_->SealBefore(job.boundary);
          db_->SyncDurable();
        }
        seals_.fetch_add(1, std::memory_order_relaxed);
        if (job.conn_serial != 0) {
          PostCompletion({job.conn_serial, 200, "application/json",
                          "{\"sealed_before\":" + std::to_string(job.boundary) + "}"});
        }
        break;
      }
      case ControlJob::Kind::kRun: {
        std::string body;
        {
          std::lock_guard<std::mutex> lock(db_phase_mutex_);
          for (const Regression& regression : pipeline_->RunAt(job.service, job.as_of)) {
            body += ToJsonLine(regression);
            body += '\n';
          }
        }
        PostCompletion({job.conn_serial, 200, "application/x-ndjson", std::move(body)});
        break;
      }
      case ControlJob::Kind::kQuarantine: {
        std::string body;
        {
          std::lock_guard<std::mutex> lock(db_phase_mutex_);
          body = RenderQuarantine(pipeline_->quarantine_report(), /*max_rows=*/200);
        }
        PostCompletion({job.conn_serial, 200, "text/plain", std::move(body)});
        break;
      }
      case ControlJob::Kind::kDrainCheckpoint: {
        {
          std::lock_guard<std::mutex> lock(db_phase_mutex_);
          db_->SealBefore(job.boundary);
          db_->SyncDurable();
        }
        seals_.fetch_add(1, std::memory_order_relaxed);
        checkpoint_done_.store(true, std::memory_order_release);
        break;
      }
    }
    control_done_.fetch_add(1, std::memory_order_release);
  }
}

// --- Introspection ---

ServiceServer::Stats ServiceServer::stats() const {
  Stats s;
  s.offered_requests = offered_.load(std::memory_order_relaxed);
  s.admitted_requests = admitted_requests_.load(std::memory_order_relaxed);
  s.admitted_points = admitted_points_.load(std::memory_order_relaxed);
  s.acked_points = acked_points_.load(std::memory_order_relaxed);
  s.shed_admission = shed_admission_.load(std::memory_order_relaxed);
  s.shed_backpressure = shed_backpressure_.load(std::memory_order_relaxed);
  s.shed_drain = shed_drain_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.evicted_slow_clients = evicted_slow_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.seals = seals_.load(std::memory_order_relaxed);
  s.parse_queue_peak_points = parse_queue_.max_cost_observed();
  s.ingest_queue_peak_points = ingest_queue_.max_cost_observed();
  return s;
}

std::string ServiceServer::HealthJson() const {
  std::string out = "{\"status\":\"";
  out += draining_.load(std::memory_order_relaxed) ? "draining" : "ok";
  out += "\",\"degraded\":";
  out += db_->durable_degraded() ? "true" : "false";
  out += ",\"connections\":" + std::to_string(connections_.size());
  out += ",\"acked_points\":" +
         std::to_string(acked_points_.load(std::memory_order_relaxed));
  out += "}";
  return out;
}

std::string ServiceServer::StatsJson() const {
  const Stats s = stats();
  std::string out = "{";
  const auto field = [&out](std::string_view name, uint64_t value, bool last = false) {
    out += "\"";
    out += name;
    out += "\":" + std::to_string(value);
    if (!last) {
      out += ",";
    }
  };
  field("offered_requests", s.offered_requests);
  field("admitted_requests", s.admitted_requests);
  field("admitted_points", s.admitted_points);
  field("acked_points", s.acked_points);
  field("shed_admission", s.shed_admission);
  field("shed_backpressure", s.shed_backpressure);
  field("shed_drain", s.shed_drain);
  field("malformed", s.malformed);
  field("evicted_slow_clients", s.evicted_slow_clients);
  field("commits", s.commits);
  field("seals", s.seals);
  field("parse_queue_points", parse_queue_.cost());
  field("ingest_queue_points", ingest_queue_.cost());
  field("parse_queue_peak_points", s.parse_queue_peak_points);
  field("ingest_queue_peak_points", s.ingest_queue_peak_points, /*last=*/true);
  out += "}";
  return out;
}

std::string ServiceServer::ConfigJson() const {
  std::string out = "{";
  out += "\"admit_points_per_sec\":" + std::to_string(options_.admit_points_per_sec);
  out += ",\"admit_burst_points\":" + std::to_string(bucket_.burst());
  out += ",\"parse_high_watermark_points\":" +
         std::to_string(options_.parse_high_watermark_points);
  out += ",\"parse_low_watermark_points\":" +
         std::to_string(options_.parse_low_watermark_points);
  out += ",\"ingest_queue_points\":" + std::to_string(options_.ingest_queue_points);
  out += ",\"parse_threads\":" + std::to_string(options_.parse_threads);
  out += ",\"flush_points\":" + std::to_string(options_.flush_points);
  out += ",\"seal_every_points\":" + std::to_string(options_.seal_every_points);
  out += ",\"request_timeout_ms\":" + std::to_string(options_.request_timeout_ms);
  out += ",\"drain_deadline_ms\":" + std::to_string(options_.drain_deadline_ms);
  out += ",\"max_body_bytes\":" + std::to_string(options_.max_body_bytes);
  out += ",\"max_connections\":" + std::to_string(options_.max_connections);
  out += "}";
  return out;
}

}  // namespace fbdetect
