#include "src/service/workload.h"

#include <cstring>

namespace fbdetect {
namespace {

// Scratch database tuned for staging only: the workload never scans it.
TsdbOptions ScratchOptions() {
  TsdbOptions options;
  options.shard_count = 4;
  return options;
}

}  // namespace

WireWorkload::WireWorkload(const WireWorkloadOptions& options)
    : options_(options),
      scratch_db_(ScratchOptions()),
      simulator_(options.service),
      batch_(&scratch_db_),
      next_tick_(options.start) {
  if (options_.inject_faults) {
    injector_ = std::make_unique<FaultInjector>(options_.faults);
  }
}

WireWorkload::~WireWorkload() = default;

std::string WireWorkload::NextBody(uint32_t* points) {
  simulator_.Tick(next_tick_, batch_);
  next_tick_ += simulator_.config().tick;
  if (injector_ != nullptr) {
    injector_->Corrupt(batch_);
  }
  WireBatch wire;
  // Export the staged columns and clear them in place: the scratch database
  // never sees a Commit, so it stays a pure interning/layout donor.
  batch_.MutateColumns([&](const InternedMetricId& id,
                           std::vector<TimePoint>& timestamps,
                           std::vector<double>& values) {
    if (!timestamps.empty()) {
      WireSeries series;
      series.id = scratch_db_.Resolve(id);
      series.timestamps = timestamps;
      series.values = values;
      wire.total_points += timestamps.size();
      wire.series.push_back(std::move(series));
    }
    timestamps.clear();
    values.clear();
  });
  if (points != nullptr) {
    *points = static_cast<uint32_t>(wire.total_points);
  }
  std::string body;
  EncodeWireBatch(wire, body);
  return body;
}

SyntheticWorkload::SyntheticWorkload(const std::string& service, int series_count,
                                     int points_per_series, TimePoint start,
                                     Duration step)
    : next_start_(start), step_(step) {
  WireBatch batch;
  batch.series.reserve(static_cast<size_t>(series_count));
  for (int s = 0; s < series_count; ++s) {
    WireSeries series;
    series.id.service = service;
    series.id.kind = MetricKind::kApplication;
    series.id.entity = "synthetic_" + std::to_string(s);
    series.timestamps.assign(static_cast<size_t>(points_per_series), 0);
    series.values.assign(static_cast<size_t>(points_per_series), 0.0);
    batch.series.push_back(std::move(series));
    batch.total_points += static_cast<size_t>(points_per_series);
  }
  points_per_batch_ = static_cast<uint32_t>(batch.total_points);
  EncodeWireBatch(batch, template_);
  // Record where each series' point array landed so NextBody can patch
  // timestamps/values without re-encoding identities.
  size_t at = kWireHeaderBytes;
  slots_.reserve(batch.series.size());
  for (const WireSeries& series : batch.series) {
    at += 1 + 1 + 2 + 2 + 4;  // Series header.
    at += series.id.service.size() + series.id.entity.size() +
          series.id.metadata.size();
    slots_.push_back(SeriesSlot{at, static_cast<uint32_t>(series.timestamps.size())});
    at += series.timestamps.size() * 16;
  }
}

uint32_t SyntheticWorkload::NextBody(std::string& body) {
  body = template_;
  char* base = body.data();
  for (const SeriesSlot& slot : slots_) {
    char* p = base + slot.offset;
    for (uint32_t i = 0; i < slot.count; ++i) {
      const TimePoint ts = next_start_ + static_cast<TimePoint>(i) * step_;
      // Cheap deterministic wiggle so Gorilla sees non-constant values.
      const double value =
          100.0 + static_cast<double>((batch_index_ * 31 + i * 7) % 97) * 0.125;
      std::memcpy(p, &ts, 8);
      std::memcpy(p + 8, &value, 8);
      p += 16;
    }
  }
  next_start_ += static_cast<TimePoint>(slots_.empty() ? 0 : slots_[0].count) * step_;
  ++batch_index_;
  return points_per_batch_;
}

}  // namespace fbdetect
