// Load generators for the service endpoint (bench + tests), reusing the
// fleet layer instead of inventing a second telemetry model.
//
// WireWorkload drives a PR-1 ServiceSimulator tick-by-tick, stages each tick
// into a WriteBatch against a private scratch database (so interning and
// column layout match the real ingest path), optionally corrupts the staged
// columns through the PR-4 FaultInjector (dirty-telemetry realism for the
// overload tests), and exports the staged columns as an encoded wire body.
//
// SyntheticWorkload is the throughput instrument: a fixed series population
// whose encoded body is built once and then timestamp/value-patched in
// place per batch — generation costs one 16-byte write per point, so the
// bench measures the server, not the client.
#ifndef FBDETECT_SRC_SERVICE_WORKLOAD_H_
#define FBDETECT_SRC_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fault_injector.h"
#include "src/fleet/service.h"
#include "src/service/wire.h"
#include "src/tsdb/database.h"

namespace fbdetect {

struct WireWorkloadOptions {
  ServiceConfig service;
  // When set, staged columns pass through FaultInjector::Corrupt before
  // export — duplicated, reordered, and garbage points ride the wire like
  // real retransmitted fleet telemetry.
  bool inject_faults = false;
  FaultInjectorConfig faults;
  TimePoint start = 0;
};

class WireWorkload {
 public:
  explicit WireWorkload(const WireWorkloadOptions& options);
  ~WireWorkload();

  // Advances one simulator tick and returns the encoded binary request body
  // for it. `points` (optional) receives the batch's point count.
  std::string NextBody(uint32_t* points = nullptr);

  // Schedules a simulator event (regression, cost shift, ...) so the wire
  // stream carries a detectable anomaly — the byte-identity tests compare
  // /run output against an offline pipeline over the same bodies.
  void ScheduleEvent(const InjectedEvent& event) { simulator_.ScheduleEvent(event); }

  TimePoint next_tick() const { return next_tick_; }
  const ServiceConfig& config() const { return simulator_.config(); }

 private:
  WireWorkloadOptions options_;
  TimeSeriesDatabase scratch_db_;
  ServiceSimulator simulator_;
  WriteBatch batch_;
  std::unique_ptr<FaultInjector> injector_;
  TimePoint next_tick_;
};

class SyntheticWorkload {
 public:
  // `series_count` distinct application series under `service`, each
  // contributing `points_per_series` points per batch, starting at `start`
  // with `step` seconds between consecutive points of a series.
  SyntheticWorkload(const std::string& service, int series_count,
                    int points_per_series, TimePoint start, Duration step);

  // Overwrites `body` with the next batch. Returns the batch's point count.
  uint32_t NextBody(std::string& body);

  uint32_t points_per_batch() const { return points_per_batch_; }

 private:
  struct SeriesSlot {
    size_t offset;  // Byte offset of the series' first point in template_.
    uint32_t count;
  };

  std::string template_;
  std::vector<SeriesSlot> slots_;
  uint32_t points_per_batch_ = 0;
  TimePoint next_start_;
  Duration step_;
  uint64_t batch_index_ = 0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_WORKLOAD_H_
