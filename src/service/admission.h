// Token-bucket admission control for the ingest front door (DESIGN.md §16).
//
// Tokens are POINTS, not requests: a 10k-point batch costs 10k tokens, so
// capacity is expressed in the same unit the pipeline's throughput is — the
// wire header's total_points peek prices a request before it is parsed.
// Refill is computed lazily from the caller-supplied clock, which keeps the
// bucket deterministic under test (feed a fake clock) and syscall-free in
// production (the event loop already reads the time per wakeup).
//
// Single-threaded by design: only the event-loop thread admits. Shed
// decisions are therefore strictly ordered, which is what makes the
// offered == admitted + shed accounting exact rather than racy.
#ifndef FBDETECT_SRC_SERVICE_ADMISSION_H_
#define FBDETECT_SRC_SERVICE_ADMISSION_H_

#include <cstdint>

namespace fbdetect {

class TokenBucket {
 public:
  // rate = points/second sustained; burst = bucket depth (points admitted in
  // an instant from a full bucket). rate == 0 disables limiting entirely.
  TokenBucket(uint64_t rate_points_per_sec, uint64_t burst_points)
      : rate_(rate_points_per_sec),
        burst_(burst_points > 0 ? burst_points : rate_points_per_sec),
        tokens_(static_cast<double>(burst_)) {}

  // Debits `points` if the bucket (refilled to `now_ns`) covers them.
  bool Admit(uint64_t points, uint64_t now_ns) {
    if (rate_ == 0) {
      return true;
    }
    Refill(now_ns);
    if (tokens_ < static_cast<double>(points)) {
      return false;
    }
    tokens_ -= static_cast<double>(points);
    return true;
  }

  // Returns a debit that was never used (the request was shed downstream of
  // the bucket, e.g. by a full parse queue) so double-charging cannot starve
  // honest load.
  void Refund(uint64_t points) {
    if (rate_ == 0) {
      return;
    }
    tokens_ += static_cast<double>(points);
    if (tokens_ > static_cast<double>(burst_)) {
      tokens_ = static_cast<double>(burst_);
    }
  }

  double tokens() const { return tokens_; }
  uint64_t rate() const { return rate_; }
  uint64_t burst() const { return burst_; }

 private:
  void Refill(uint64_t now_ns) {
    if (last_ns_ != 0 && now_ns > last_ns_) {
      tokens_ += static_cast<double>(now_ns - last_ns_) * 1e-9 *
                 static_cast<double>(rate_);
      if (tokens_ > static_cast<double>(burst_)) {
        tokens_ = static_cast<double>(burst_);
      }
    }
    last_ns_ = now_ns;
  }

  uint64_t rate_;
  uint64_t burst_;
  double tokens_;
  uint64_t last_ns_ = 0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_ADMISSION_H_
