#include "src/service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace fbdetect {
namespace {

Status Errno(const char* op) {
  return Status::Internal(std::string(op) + " failed: " + std::strerror(errno));
}

}  // namespace

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status HttpClient::Connect(const std::string& host, uint16_t port, int timeout_ms) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::Ok();
}

Status HttpClient::SendAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status HttpClient::Request(std::string_view method, std::string_view target,
                           std::string_view content_type, std::string_view body,
                           HttpResponse* response) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("not connected");
  }
  std::string head;
  head.reserve(160);
  head.append(method);
  head.push_back(' ');
  head.append(target);
  head.append(" HTTP/1.1\r\nHost: fbdetect\r\nContent-Length: ");
  head.append(std::to_string(body.size()));
  if (!content_type.empty()) {
    head.append("\r\nContent-Type: ");
    head.append(content_type);
  }
  head.append("\r\n\r\n");
  Status status = SendAll(head.data(), head.size());
  if (status.ok() && !body.empty()) {
    status = SendAll(body.data(), body.size());
  }
  if (!status.ok()) {
    Close();
    return status;
  }

  // Read one response: status line + headers, then Content-Length body.
  size_t header_end = std::string::npos;
  while ((header_end = read_buffer_.find("\r\n\r\n")) == std::string::npos) {
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      const Status error =
          n == 0 ? Status::Internal("connection closed mid-response") : Errno("recv");
      Close();
      return error;
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
    if (read_buffer_.size() > (64u << 20)) {
      Close();
      return Status::Internal("response headers never terminated");
    }
  }
  const std::string_view head_view(read_buffer_.data(), header_end);
  if (head_view.size() < 12 || head_view.substr(0, 5) != "HTTP/") {
    Close();
    return Status::Internal("malformed response status line");
  }
  response->status = 0;
  std::from_chars(head_view.data() + 9, head_view.data() + 12, response->status);
  size_t content_length = 0;
  response->keep_alive = true;
  size_t line_start = head_view.find("\r\n");
  while (line_start != std::string_view::npos && line_start + 2 < head_view.size()) {
    line_start += 2;
    size_t line_end = head_view.find("\r\n", line_start);
    if (line_end == std::string_view::npos) {
      line_end = head_view.size();
    }
    const std::string_view line = head_view.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string name(line.substr(0, colon));
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') {
        value.remove_prefix(1);
      }
      if (name == "content-length") {
        std::from_chars(value.data(), value.data() + value.size(), content_length);
      } else if (name == "connection" && value == "close") {
        response->keep_alive = false;
      }
    }
    line_start = line_end;
  }
  const size_t body_start = header_end + 4;
  while (read_buffer_.size() - body_start < content_length) {
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      const Status error =
          n == 0 ? Status::Internal("connection closed mid-body") : Errno("recv");
      Close();
      return error;
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
  response->body.assign(read_buffer_, body_start, content_length);
  read_buffer_.erase(0, body_start + content_length);
  if (!response->keep_alive) {
    Close();
  }
  return Status::Ok();
}

}  // namespace fbdetect
