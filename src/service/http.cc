#include "src/service/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace fbdetect {
namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool TokenEquals(std::string_view value, std::string_view token) {
  return value.size() == token.size() &&
         std::equal(value.begin(), value.end(), token.begin(),
                    [](unsigned char a, unsigned char b) {
                      return std::tolower(a) == std::tolower(b);
                    });
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) {
      return value;
    }
  }
  return {};
}

std::string_view HttpPath(std::string_view target) {
  const size_t q = target.find('?');
  return q == std::string_view::npos ? target : target.substr(0, q);
}

std::string HttpQueryParam(std::string_view target, std::string_view key) {
  const size_t q = target.find('?');
  if (q == std::string_view::npos) {
    return {};
  }
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (eq == std::string_view::npos && pair == key) {
      return {};
    }
    if (amp == std::string_view::npos) {
      break;
    }
    query.remove_prefix(amp + 1);
  }
  return {};
}

HttpParser::Result HttpParser::Fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return Result::kError;
}

HttpParser::Result HttpParser::Feed(const char* data, size_t size) {
  if (state_ == State::kError) {
    return Result::kError;
  }
  if (state_ == State::kComplete) {
    return Result::kComplete;
  }
  if (size > 0) {
    buffer_.append(data, size);
  }
  if (state_ == State::kHeaders) {
    const Result result = ParseHeaders();
    if (result != Result::kComplete || state_ != State::kBody) {
      return result;
    }
  }
  // kBody: wait for Content-Length bytes past the parsed prefix.
  const size_t available = buffer_.size() - parsed_;
  if (available < body_remaining_) {
    return Result::kNeedMore;
  }
  request_.body.assign(buffer_, parsed_, body_remaining_);
  parsed_ += body_remaining_;
  body_remaining_ = 0;
  state_ = State::kComplete;
  return Result::kComplete;
}

// Returns kComplete with state_ == kBody when the header block parsed clean
// (the caller then continues with the body), kNeedMore, or kError.
HttpParser::Result HttpParser::ParseHeaders() {
  const std::string_view pending(buffer_.data() + parsed_, buffer_.size() - parsed_);
  const size_t end = pending.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    if (pending.size() > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds limit");
    }
    return Result::kNeedMore;
  }
  if (end > limits_.max_header_bytes) {
    return Fail(431, "header block exceeds limit");
  }
  std::string_view block = pending.substr(0, end);
  request_ = HttpRequest{};
  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = block.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? block : block.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1) {
    return Fail(400, "malformed request line");
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(505, "unsupported HTTP version");
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.keep_alive = version == "HTTP/1.1";
  if (request_.target.empty() || request_.target[0] != '/') {
    return Fail(400, "target must be origin-form");
  }

  size_t content_length = 0;
  bool have_length = false;
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{} : block.substr(line_end + 2);
  while (!rest.empty()) {
    size_t eol = rest.find("\r\n");
    const std::string_view header =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    if (header.empty()) {
      continue;
    }
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header line");
    }
    std::string name = ToLower(header.substr(0, colon));
    if (name.find(' ') != std::string::npos || name.find('\t') != std::string::npos) {
      return Fail(400, "whitespace in header name");
    }
    const std::string_view value = Trim(header.substr(colon + 1));
    if (name == "content-length") {
      size_t length = 0;
      const auto [p, err] = std::from_chars(value.data(), value.data() + value.size(), length);
      if (err != std::errc() || p != value.data() + value.size() ||
          (have_length && length != content_length)) {
        return Fail(400, "bad content-length");
      }
      content_length = length;
      have_length = true;
    } else if (name == "transfer-encoding") {
      return Fail(501, "chunked transfer not supported");
    } else if (name == "connection") {
      if (TokenEquals(value, "close")) {
        request_.keep_alive = false;
      } else if (TokenEquals(value, "keep-alive")) {
        request_.keep_alive = true;
      }
    }
    request_.headers.emplace_back(std::move(name), std::string(value));
  }
  if (content_length > limits_.max_body_bytes) {
    return Fail(413, "body exceeds limit");
  }
  parsed_ += end + 4;
  body_remaining_ = content_length;
  state_ = State::kBody;
  return Result::kComplete;
}

void HttpParser::Reset() {
  if (state_ != State::kComplete) {
    return;
  }
  // Compact: drop the consumed prefix, keep pipelined bytes for the next
  // request so a client that batched two requests is not stalled.
  buffer_.erase(0, parsed_);
  parsed_ = 0;
  state_ = State::kHeaders;
  request_ = HttpRequest{};
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive,
                              const std::vector<std::string>& extra_headers) {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(status));
  out.push_back(' ');
  out.append(HttpStatusText(status));
  out.append("\r\nContent-Type: ");
  out.append(content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append(keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close");
  for (const std::string& header : extra_headers) {
    out.append("\r\n");
    out.append(header);
  }
  out.append("\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace fbdetect
