#include "src/service/wire.h"

#include <algorithm>
#include <charconv>
#include <cstring>

namespace fbdetect {
namespace {

constexpr int kMaxKind = static_cast<int>(MetricKind::kApplication);
constexpr size_t kSeriesHeaderBytes = 1 + 1 + 2 + 2 + 4;

template <typename T>
void PutRaw(std::string& out, const T& value) {
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T GetRaw(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Resolves a kind name back to the enum; -1 when unknown.
int KindFromName(std::string_view name) {
  for (int k = 0; k <= kMaxKind; ++k) {
    if (name == MetricKindName(static_cast<MetricKind>(k))) {
      return k;
    }
  }
  return -1;
}

}  // namespace

void EncodeWireBatch(const WireBatch& batch, std::string& out) {
  PutRaw<uint32_t>(out, kWireMagic);
  PutRaw<uint32_t>(out, static_cast<uint32_t>(batch.total_points));
  PutRaw<uint32_t>(out, static_cast<uint32_t>(batch.series.size()));
  for (const WireSeries& series : batch.series) {
    PutRaw<uint8_t>(out, static_cast<uint8_t>(series.id.kind));
    PutRaw<uint8_t>(out, static_cast<uint8_t>(series.id.service.size()));
    PutRaw<uint16_t>(out, static_cast<uint16_t>(series.id.entity.size()));
    PutRaw<uint16_t>(out, static_cast<uint16_t>(series.id.metadata.size()));
    PutRaw<uint32_t>(out, static_cast<uint32_t>(series.timestamps.size()));
    out.append(series.id.service);
    out.append(series.id.entity);
    out.append(series.id.metadata);
    for (size_t i = 0; i < series.timestamps.size(); ++i) {
      PutRaw<TimePoint>(out, series.timestamps[i]);
      PutRaw<double>(out, series.values[i]);
    }
  }
}

Status PeekWirePoints(std::span<const uint8_t> data, uint32_t* total_points) {
  if (data.size() < kWireHeaderBytes) {
    return Status::InvalidArgument("wire batch shorter than header");
  }
  if (GetRaw<uint32_t>(data.data()) != kWireMagic) {
    return Status::InvalidArgument("wire batch has bad magic");
  }
  const uint32_t points = GetRaw<uint32_t>(data.data() + 4);
  if (points > kWireMaxPoints) {
    return Status::InvalidArgument("wire batch point count exceeds cap");
  }
  *total_points = points;
  return Status::Ok();
}

Status ParseWireBatch(std::span<const uint8_t> data, WireBatch* out) {
  out->Clear();
  uint32_t declared_points = 0;
  FBD_RETURN_IF_ERROR(PeekWirePoints(data, &declared_points));
  const uint32_t series_count = GetRaw<uint32_t>(data.data() + 8);
  if (series_count > kWireMaxSeries) {
    return Status::InvalidArgument("wire batch series count exceeds cap");
  }
  size_t at = kWireHeaderBytes;
  uint64_t summed_points = 0;
  out->series.reserve(std::min<uint32_t>(series_count, 1024));
  for (uint32_t s = 0; s < series_count; ++s) {
    if (data.size() - at < kSeriesHeaderBytes) {
      return Status::InvalidArgument("wire series header truncated");
    }
    const uint8_t* p = data.data() + at;
    const int kind = GetRaw<uint8_t>(p);
    const size_t service_len = GetRaw<uint8_t>(p + 1);
    const size_t entity_len = GetRaw<uint16_t>(p + 2);
    const size_t metadata_len = GetRaw<uint16_t>(p + 4);
    const uint32_t count = GetRaw<uint32_t>(p + 6);
    at += kSeriesHeaderBytes;
    if (kind > kMaxKind) {
      return Status::InvalidArgument("wire series has unknown metric kind");
    }
    if (count == 0 || count > kWireMaxPoints) {
      return Status::InvalidArgument("wire series has bad point count");
    }
    const size_t strings = service_len + entity_len + metadata_len;
    if (data.size() - at < strings) {
      return Status::InvalidArgument("wire series identity truncated");
    }
    summed_points += count;
    if (summed_points > declared_points) {
      return Status::InvalidArgument("wire batch points exceed declared total");
    }
    WireSeries series;
    series.id.kind = static_cast<MetricKind>(kind);
    const char* str = reinterpret_cast<const char*>(data.data() + at);
    series.id.service.assign(str, service_len);
    series.id.entity.assign(str + service_len, entity_len);
    series.id.metadata.assign(str + service_len + entity_len, metadata_len);
    at += strings;
    if ((data.size() - at) / 16 < count) {
      return Status::InvalidArgument("wire series points truncated");
    }
    series.timestamps.reserve(count);
    series.values.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      series.timestamps.push_back(GetRaw<TimePoint>(data.data() + at));
      series.values.push_back(GetRaw<double>(data.data() + at + 8));
      at += 16;
    }
    out->series.push_back(std::move(series));
  }
  if (at != data.size()) {
    return Status::InvalidArgument("wire batch has trailing bytes");
  }
  if (summed_points != declared_points) {
    return Status::InvalidArgument("wire batch declared total != summed points");
  }
  out->total_points = summed_points;
  return Status::Ok();
}

uint32_t CountTextPoints(std::string_view body) {
  uint32_t points = 0;
  size_t at = 0;
  while (at < body.size()) {
    size_t end = body.find('\n', at);
    if (end == std::string_view::npos) {
      end = body.size();
    }
    const std::string_view line = body.substr(at, end - at);
    if (!line.empty() && line[0] != '#' && line != "\r") {
      ++points;
    }
    at = end + 1;
  }
  return points;
}

Status ParseTextBatch(std::string_view body, WireBatch* out) {
  out->Clear();
  size_t at = 0;
  size_t line_no = 0;
  while (at < body.size()) {
    size_t end = body.find('\n', at);
    if (end == std::string_view::npos) {
      end = body.size();
    }
    std::string_view line = body.substr(at, end - at);
    at = end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // service|kind|entity|metadata|timestamp|value
    std::string_view fields[6];
    size_t field = 0;
    size_t start = 0;
    for (size_t i = 0; i <= line.size() && field < 6; ++i) {
      if (i == line.size() || line[i] == '|') {
        fields[field++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (field != 6 || start <= line.size()) {
      return Status::InvalidArgument("text batch line " + std::to_string(line_no) +
                                     ": want 6 |-separated fields");
    }
    const int kind = KindFromName(fields[1]);
    if (kind < 0) {
      return Status::InvalidArgument("text batch line " + std::to_string(line_no) +
                                     ": unknown kind");
    }
    TimePoint ts = 0;
    auto [ts_end, ts_err] =
        std::from_chars(fields[4].data(), fields[4].data() + fields[4].size(), ts);
    if (ts_err != std::errc() || ts_end != fields[4].data() + fields[4].size()) {
      return Status::InvalidArgument("text batch line " + std::to_string(line_no) +
                                     ": bad timestamp");
    }
    double value = 0;
    auto [v_end, v_err] =
        std::from_chars(fields[5].data(), fields[5].data() + fields[5].size(), value);
    if (v_err != std::errc() || v_end != fields[5].data() + fields[5].size()) {
      return Status::InvalidArgument("text batch line " + std::to_string(line_no) +
                                     ": bad value");
    }
    if (fields[0].size() > 255 || fields[2].size() > 65535 || fields[3].size() > 65535) {
      return Status::InvalidArgument("text batch line " + std::to_string(line_no) +
                                     ": identity component too long");
    }
    // Coalesce consecutive lines of the same series into one column.
    if (out->series.empty() || out->series.back().id.service != fields[0] ||
        out->series.back().id.kind != static_cast<MetricKind>(kind) ||
        out->series.back().id.entity != fields[2] ||
        out->series.back().id.metadata != fields[3]) {
      WireSeries series;
      series.id.service = std::string(fields[0]);
      series.id.kind = static_cast<MetricKind>(kind);
      series.id.entity = std::string(fields[2]);
      series.id.metadata = std::string(fields[3]);
      out->series.push_back(std::move(series));
    }
    out->series.back().timestamps.push_back(ts);
    out->series.back().values.push_back(value);
    ++out->total_points;
    if (out->total_points > kWireMaxPoints) {
      return Status::InvalidArgument("text batch point count exceeds cap");
    }
  }
  return Status::Ok();
}

}  // namespace fbdetect
