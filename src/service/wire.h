// Ingest wire format for the service endpoint (DESIGN.md §16).
//
// Binary batches ('FBIN') are the hot path: the 12-byte header carries the
// batch's total point count so admission control can price a request BEFORE
// parsing it — the front door peeks, debits the token bucket, and only then
// pays for the decode on a parse worker. A pipe-separated text form exists
// for curl-ability; it is priced by line count at the same peek step.
//
// Layout (little-endian, matching the WAL/chunk stores on the platforms this
// repo targets):
//   u32 magic 'FBIN'   u32 total_points   u32 series_count
//   per series:
//     u8  kind         u8  service_len    u16 entity_len   u16 metadata_len
//     u32 count
//     service bytes, entity bytes, metadata bytes
//     count x (i64 timestamp, f64 value)
//
// Parsing is strict and allocation-bounded: every length is validated
// against the remaining buffer before use, total_points must equal the sum
// of per-series counts, and hard caps reject absurd counts outright — a
// malformed or adversarial batch yields Status, never an abort, oversized
// allocation, or hang (fuzzed by tools/fuzz_wire).
#ifndef FBDETECT_SRC_SERVICE_WIRE_H_
#define FBDETECT_SRC_SERVICE_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {

inline constexpr uint32_t kWireMagic = 0x4E494246;  // "FBIN".
inline constexpr size_t kWireHeaderBytes = 12;
// Caps: one request is one WriteBatch flush unit, not a bulk import.
inline constexpr uint32_t kWireMaxSeries = 1u << 20;
inline constexpr uint32_t kWireMaxPoints = 1u << 24;

struct WireSeries {
  MetricId id;
  std::vector<TimePoint> timestamps;
  std::vector<double> values;
};

struct WireBatch {
  std::vector<WireSeries> series;
  size_t total_points = 0;

  void Clear() {
    series.clear();
    total_points = 0;
  }
};

// Serializes `batch` in the binary format, appending to `out`.
void EncodeWireBatch(const WireBatch& batch, std::string& out);

// Reads only the fixed header: magic + total point count. This is the
// admission peek — O(1), no allocation.
Status PeekWirePoints(std::span<const uint8_t> data, uint32_t* total_points);

// Full strict parse of a binary batch into `out` (cleared first).
Status ParseWireBatch(std::span<const uint8_t> data, WireBatch* out);

// Text form, one point per line:
//   service|kind_name|entity|metadata|timestamp|value
// Blank lines and lines starting with '#' are skipped. `metadata` may be
// empty. Kind names are MetricKindName() strings ("gcpu", "latency", ...).
Status ParseTextBatch(std::string_view body, WireBatch* out);

// Number of point-bearing lines, for pricing a text batch before parsing.
uint32_t CountTextPoints(std::string_view body);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_WIRE_H_
