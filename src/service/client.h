// Minimal blocking HTTP/1.1 client for the bench load generator and the
// service tests. One connection per client; requests are serial (send,
// then read exactly one Content-Length-framed response) — deliberately the
// same discipline the server enforces.
#ifndef FBDETECT_SRC_SERVICE_CLIENT_H_
#define FBDETECT_SRC_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace fbdetect {

struct HttpResponse {
  int status = 0;
  std::string body;
  bool keep_alive = true;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Connects (or reconnects) to host:port. `timeout_ms` bounds every socket
  // operation (connect, send, recv); 0 = no timeout.
  Status Connect(const std::string& host, uint16_t port, int timeout_ms = 10000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One round trip. On a transport error the connection is closed and a
  // non-ok Status returned; HTTP-level errors (4xx/5xx) are SUCCESSFUL calls
  // with response->status set — shed responses are data, not failures.
  Status Request(std::string_view method, std::string_view target,
                 std::string_view content_type, std::string_view body,
                 HttpResponse* response);

  Status Get(std::string_view target, HttpResponse* response) {
    return Request("GET", target, "", "", response);
  }
  Status Post(std::string_view target, std::string_view content_type,
              std::string_view body, HttpResponse* response) {
    return Request("POST", target, content_type, body, response);
  }

 private:
  Status SendAll(const char* data, size_t size);

  int fd_ = -1;
  std::string read_buffer_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_CLIENT_H_
