// Minimal HTTP/1.1 for the service surface (DESIGN.md §16). No external
// deps: the server speaks exactly the subset its endpoints need —
// Content-Length framed requests, serial per connection (no pipelining
// trickery: a second request queued behind an unanswered first simply waits
// in the parser buffer), keep-alive by default.
//
// The parser is incremental — feed it bytes as epoll delivers them — and
// hardened: header and body size caps, strict Content-Length validation,
// chunked transfer rejected with 501, malformed input always lands in
// kError with an HTTP status to send back, never an abort or unbounded
// buffer (fuzzed by tools/fuzz_wire).
#ifndef FBDETECT_SRC_SERVICE_HTTP_H_
#define FBDETECT_SRC_SERVICE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fbdetect {

struct HttpRequest {
  std::string method;
  std::string target;  // Path + optional ?query, as received.
  std::vector<std::pair<std::string, std::string>> headers;  // Names lowercased.
  std::string body;
  bool keep_alive = true;

  // First header value under `name` (lowercase), or "".
  std::string_view Header(std::string_view name) const;
};

// Path component of a request target ("/ingest?x=1" -> "/ingest").
std::string_view HttpPath(std::string_view target);
// Value of query parameter `key` ("" when absent). No %-decoding — the
// service's parameters are identifiers and integers.
std::string HttpQueryParam(std::string_view target, std::string_view key);

class HttpParser {
 public:
  enum class Result {
    kNeedMore,   // Feed more bytes.
    kComplete,   // request() is valid; call Reset() before the next one.
    kError,      // Protocol error; send error_status() and close.
  };

  struct Limits {
    // Defaults: 16 KiB headers, 8 MiB body (the service's one-batch unit).
    Limits() : max_header_bytes(16 * 1024), max_body_bytes(8 * 1024 * 1024) {}
    size_t max_header_bytes;
    size_t max_body_bytes;
  };

  explicit HttpParser(Limits limits = Limits()) : limits_(limits) {}

  // Consumes bytes into the internal buffer and advances the state machine.
  // After kComplete, unconsumed bytes (the start of the next request) are
  // retained internally; Reset() keeps them for the next parse.
  Result Feed(const char* data, size_t size);
  // Continues parsing from already-buffered bytes (after Reset()).
  Result Continue() { return Feed(nullptr, 0); }

  const HttpRequest& request() const { return request_; }
  // Mutable access after kComplete so the caller can move a large body out
  // instead of copying it; Reset() discards whatever is left either way.
  HttpRequest& mutable_request() { return request_; }
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }
  // Bytes buffered but not yet parsed into a request.
  size_t buffered_bytes() const { return buffer_.size() - parsed_; }

  // Forgets the completed request and re-arms for the next one on the same
  // connection (pipelined bytes already received are kept).
  void Reset();

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  Result Fail(int status, std::string reason);
  Result ParseHeaders();

  Limits limits_;
  std::string buffer_;
  size_t parsed_ = 0;  // Bytes of buffer_ consumed by completed parsing.
  State state_ = State::kHeaders;
  size_t body_remaining_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

// Serializes a response. `extra_headers` are raw "Name: value" lines.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive,
                              const std::vector<std::string>& extra_headers = {});

const char* HttpStatusText(int status);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_HTTP_H_
