// Bounded multi-producer single-consumer (or multi-consumer) queue with
// cost accounting, the coupling element between the service's pipeline
// stages (accept -> parse -> flush -> seal; DESIGN.md §16).
//
// Each item carries a cost (points for ingest batches, 1 for control jobs);
// the queue bounds the SUM of costs, not the item count, so memory is
// bounded by configured watermarks regardless of batch-size mix. Producers
// choose the overload policy at the call site: TryPush fails fast (the front
// door sheds instead of blocking the event loop), Push blocks (interior
// stages propagate backpressure upstream). Close() wakes everyone; a closed
// queue rejects producers and drains remaining items to consumers.
//
// The high-water mark of the summed cost is tracked so tests can assert the
// bound actually held under a 4x-capacity slam.
#ifndef FBDETECT_SRC_SERVICE_BOUNDED_QUEUE_H_
#define FBDETECT_SRC_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace fbdetect {

template <typename T>
class BoundedQueue {
 public:
  // `capacity_cost` bounds the sum of item costs held at once. One oversized
  // item (cost > capacity) is still accepted when the queue is empty —
  // otherwise it could never transit.
  explicit BoundedQueue(uint64_t capacity_cost) : capacity_(capacity_cost) {}

  // Blocks until the item fits (or the queue is empty) — interior-stage
  // backpressure. Returns false iff the queue was closed.
  bool Push(T item, uint64_t cost) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || items_.empty() || cost_ + cost <= capacity_;
    });
    if (closed_) {
      return false;
    }
    Enqueue(std::move(item), cost);
    return true;
  }

  // Fails fast when the item does not fit — front-door shed path. Never
  // blocks.
  bool TryPush(T item, uint64_t cost) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || (!items_.empty() && cost_ + cost > capacity_)) {
      return false;
    }
    Enqueue(std::move(item), cost);
    return true;
  }

  // Blocks until an item is available; false iff closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;
    }
    Dequeue(out);
    return true;
  }

  // Non-blocking pop; false when nothing is queued right now.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return false;
    }
    Dequeue(out);
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  // Current summed cost of queued items.
  uint64_t cost() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cost_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // Highest summed cost ever held — the bound the overload tests assert on.
  uint64_t max_cost_observed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_cost_;
  }

 private:
  void Enqueue(T item, uint64_t cost) {
    items_.emplace_back(std::move(item), cost);
    cost_ += cost;
    if (cost_ > max_cost_) {
      max_cost_ = cost_;
    }
    not_empty_.notify_one();
  }

  void Dequeue(T* out) {
    *out = std::move(items_.front().first);
    cost_ -= items_.front().second;
    items_.pop_front();
    not_full_.notify_all();
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::pair<T, uint64_t>> items_;
  uint64_t capacity_;
  uint64_t cost_ = 0;
  uint64_t max_cost_ = 0;
  bool closed_ = false;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_BOUNDED_QUEUE_H_
