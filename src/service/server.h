// Overload-safe service mode: a long-lived epoll server owning a Pipeline +
// durable TimeSeriesDatabase (DESIGN.md §16).
//
// Stage layout (each arrow a BoundedQueue with cost = points):
//
//   accept/epoll ──peek──> [parse queue] ──> parse workers ──> [ingest queue]
//        │ shed 429/503                             │ errors        │
//        │<────────── completions (eventfd) ────────┴── acks ── ingest worker
//                                                                  │ flush
//   control worker <── [control queue] <── seal marks ─────────────┘
//     (RunAt / seal / drain checkpoint, under the db phase mutex)
//
// Robustness contract:
//  * The event-loop thread NEVER blocks on a queue: requests the parse queue
//    cannot take are shed with 503 (high/low watermark hysteresis), requests
//    the token bucket cannot cover are shed with 429, and during drain new
//    ingest gets 503 — all before the body is parsed, priced by the wire
//    header's total_points peek. offered == admitted + shed, exactly.
//  * Interior stages block (Push) — backpressure propagates upstream until
//    the front door sheds, so total queued memory is bounded by the two
//    queue capacities regardless of offered load.
//  * 200 is sent only AFTER the WriteBatch holding the request committed
//    (ack-after-commit): SIGTERM drain — stop accepting, flush both queues,
//    SealBefore(max_ts + 1) + SyncDurable, exit — therefore never loses an
//    acked point across a durable reopen.
//  * Readers (RunAt, quarantine) and the ingest committer share a db phase
//    mutex: the TSDB's single-writer-or-many-readers discipline holds with
//    live ingest, so /run output is byte-identical to an offline pipeline
//    over the same admitted batches.
#ifndef FBDETECT_SRC_SERVICE_SERVER_H_
#define FBDETECT_SRC_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/pipeline.h"
#include "src/service/admission.h"
#include "src/service/bounded_queue.h"
#include "src/service/http.h"
#include "src/service/wire.h"
#include "src/tsdb/database.h"

namespace fbdetect {

struct ServiceOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; the bound port is port() after Start.

  // Admission: sustained points/sec (0 = unlimited) and bucket depth
  // (0 = one second's worth).
  uint64_t admit_points_per_sec = 0;
  uint64_t admit_burst_points = 0;

  // Parse-queue watermarks (points). Above high, ingest sheds 503 until the
  // queue drains below low. Capacity is the high watermark: the event loop
  // only ever TryPushes.
  uint64_t parse_high_watermark_points = 256 * 1024;
  uint64_t parse_low_watermark_points = 64 * 1024;
  // Ingest-queue capacity (points); parse workers block on it.
  uint64_t ingest_queue_points = 256 * 1024;

  int parse_threads = 2;
  // WriteBatch commit threshold; a drained queue also flushes, so acks never
  // wait on a quiet wire.
  uint64_t flush_points = 32 * 1024;
  // Enqueue a durable checkpoint (SealBefore) every N committed points;
  // 0 = only at drain.
  uint64_t seal_every_points = 0;

  // A connection must complete request + response inside this budget once
  // its first request byte arrives; violators are evicted (slow-client
  // defense). 0 disables.
  uint64_t request_timeout_ms = 10'000;
  uint64_t drain_deadline_ms = 30'000;

  size_t max_body_bytes = 8 * 1024 * 1024;
  size_t max_connections = 1024;
};

class ServiceServer {
 public:
  // `db` and `pipeline` must outlive the server; the pipeline must scan
  // `db`. The server registers service.* instruments in the pipeline's
  // telemetry registry.
  ServiceServer(TimeSeriesDatabase* db, Pipeline* pipeline, ServiceOptions options);
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds, listens, and spawns the worker threads. The event loop itself
  // runs on the caller's thread in Run().
  Status Start();

  // The event loop; returns after drain completes (BeginDrain) or Stop().
  // Exit value: true = drained cleanly within the deadline.
  bool Run();

  // Async-signal-safe drain trigger (one write to an eventfd) — call it
  // from the SIGTERM handler. Idempotent.
  void BeginDrain();

  // Hard stop for tests: unblocks Run without the checkpoint.
  void Stop();

  uint16_t port() const { return port_; }

  // Deterministic shed/admission accounting, readable while running.
  struct Stats {
    uint64_t offered_requests = 0;    // Well-formed ingest requests seen.
    uint64_t admitted_requests = 0;
    uint64_t admitted_points = 0;
    uint64_t acked_points = 0;        // Points whose 200 was posted.
    uint64_t shed_admission = 0;      // 429: token bucket.
    uint64_t shed_backpressure = 0;   // 503: parse-queue watermark.
    uint64_t shed_drain = 0;          // 503: draining.
    uint64_t malformed = 0;           // 4xx before pricing.
    uint64_t evicted_slow_clients = 0;
    uint64_t commits = 0;             // WriteBatch flushes.
    uint64_t seals = 0;               // Checkpoints (incl. drain's).
    uint64_t parse_queue_peak_points = 0;
    uint64_t ingest_queue_peak_points = 0;
    uint64_t shed() const { return shed_admission + shed_backpressure + shed_drain; }
  };
  Stats stats() const;

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  bool drained() const { return drained_.load(std::memory_order_relaxed); }

 private:
  struct Connection;

  // A parsed-and-admitted ingest body on its way to the parse workers.
  struct ParseJob {
    uint64_t conn_serial = 0;
    std::string body;
    bool binary = true;
    uint32_t points = 0;
    uint64_t received_ns = 0;
  };
  // A decoded batch on its way to the ingest worker.
  struct IngestJob {
    uint64_t conn_serial = 0;
    WireBatch batch;
    uint64_t received_ns = 0;
  };
  // A response ready to be written by the event loop.
  struct Completion {
    uint64_t conn_serial = 0;
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
  };
  struct ControlJob {
    enum class Kind { kSeal, kRun, kQuarantine, kDrainCheckpoint } kind = Kind::kSeal;
    uint64_t conn_serial = 0;
    TimePoint boundary = 0;
    std::string service;
    TimePoint as_of = 0;
  };

  void ParseWorker();
  void IngestWorker();
  void ControlWorker();

  // Event-loop internals.
  void AcceptReady(uint64_t now_ns);
  void ConnectionReadable(Connection& conn, uint64_t now_ns);
  void ConnectionWritable(Connection& conn);
  void HandleRequest(Connection& conn, uint64_t now_ns);
  void HandleIngest(Connection& conn, const HttpRequest& request, uint64_t now_ns);
  // Immediate (non-queued) endpoints; returns false when the target is
  // unknown.
  bool HandleImmediate(Connection& conn, const HttpRequest& request);
  void SendResponse(Connection& conn, int status, std::string_view content_type,
                    std::string_view body, const std::vector<std::string>& extra = {});
  void CloseConnection(Connection& conn);
  void PostCompletion(Completion completion);
  void DrainCompletions();
  void SweepTimeouts(uint64_t now_ns);
  void AdvanceDrain(uint64_t now_ns);
  void UpdateWatermark();
  void UpdateInterest(Connection& conn, uint32_t events);
  // Closes all queues and joins the worker threads. Idempotent.
  void JoinWorkers();
  std::string HealthJson() const;
  std::string StatsJson() const;
  std::string ConfigJson() const;

  TimeSeriesDatabase* db_;
  Pipeline* pipeline_;
  ServiceOptions options_;
  uint16_t port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;   // Completions ready.
  int drain_fd_ = -1;  // BeginDrain (signal-safe).

  TokenBucket bucket_;
  BoundedQueue<ParseJob> parse_queue_;
  BoundedQueue<IngestJob> ingest_queue_;
  BoundedQueue<ControlJob> control_queue_;

  std::vector<std::thread> parse_workers_;
  std::thread ingest_worker_;
  std::thread control_worker_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  // Serializes the TSDB's writer phase (ingest commits, seals) against its
  // reader phase (RunAt, quarantine, durable stats) — the single-writer-or-
  // many-readers contract, enforced at service level.
  std::mutex db_phase_mutex_;

  // Connections keyed by a monotonically increasing serial (the epoll user
  // datum), never reused — a stale completion can never ack the wrong client
  // after fd reuse.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_serial_ = 16;  // Low serials tag the listen/event fds.

  // Per-stage submitted/done counters; drain is complete exactly when every
  // stage has caught up (done == submitted) — no sleeps, no races.
  std::atomic<uint64_t> parse_submitted_{0}, parse_done_{0};
  std::atomic<uint64_t> ingest_submitted_{0}, ingest_done_{0};
  std::atomic<uint64_t> control_submitted_{0}, control_done_{0};
  std::atomic<bool> checkpoint_done_{false};
  bool checkpoint_enqueued_ = false;
  bool workers_joined_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> stop_{false};
  bool accepting_ = true;
  bool backpressure_ = false;  // Watermark hysteresis, event-loop only.
  uint64_t drain_started_ns_ = 0;
  std::atomic<TimePoint> max_ingested_ts_{0};
  std::atomic<uint64_t> points_since_seal_{0};

  // Stats counters (relaxed; Stats() snapshots).
  std::atomic<uint64_t> offered_{0}, admitted_requests_{0}, admitted_points_{0},
      acked_points_{0}, shed_admission_{0}, shed_backpressure_{0}, shed_drain_{0},
      malformed_{0}, evicted_slow_{0}, commits_{0}, seals_{0};

  // Telemetry mirrors (service.*), registered in the pipeline's registry.
  Counter* tm_offered_ = nullptr;
  Counter* tm_admitted_points_ = nullptr;
  Counter* tm_shed_admission_ = nullptr;
  Counter* tm_shed_backpressure_ = nullptr;
  Counter* tm_shed_drain_ = nullptr;
  Counter* tm_malformed_ = nullptr;
  Counter* tm_evicted_ = nullptr;
  Counter* tm_commits_ = nullptr;
  Counter* tm_queue_points_ = nullptr;
  Histogram* tm_ingest_latency_ns_ = nullptr;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_SERVICE_SERVER_H_
