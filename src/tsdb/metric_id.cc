#include "src/tsdb/metric_id.h"

namespace fbdetect {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kGcpu:
      return "gcpu";
    case MetricKind::kCpu:
      return "cpu";
    case MetricKind::kMemory:
      return "memory";
    case MetricKind::kThroughput:
      return "throughput";
    case MetricKind::kLatency:
      return "latency";
    case MetricKind::kErrorRate:
      return "error_rate";
    case MetricKind::kCoredumpCount:
      return "coredump_count";
    case MetricKind::kEndpointCost:
      return "endpoint_cost";
    case MetricKind::kIoPerDataType:
      return "io_per_data_type";
    case MetricKind::kMaxThroughput:
      return "max_throughput";
    case MetricKind::kPeakDemand:
      return "peak_demand";
    case MetricKind::kApplication:
      return "application";
  }
  return "unknown";
}

std::string MetricId::ToString() const {
  std::string out = service;
  out.push_back('/');
  out += MetricKindName(kind);
  if (!entity.empty()) {
    out.push_back('/');
    out += entity;
  }
  if (!metadata.empty()) {
    out.push_back('@');
    out += metadata;
  }
  return out;
}

size_t MetricIdHash::operator()(const MetricId& id) const {
  const std::hash<std::string> string_hash;
  size_t h = string_hash(id.service);
  h = h * 1315423911u + static_cast<size_t>(id.kind);
  h = h * 1315423911u + string_hash(id.entity);
  h = h * 1315423911u + string_hash(id.metadata);
  return h;
}

size_t InternedMetricIdHash::operator()(const InternedMetricId& id) const {
  // SplitMix64-style finalizer over the packed components; symbols are dense
  // small integers, so raw mixing would cluster shards without it.
  uint64_t h = (static_cast<uint64_t>(id.service) << 32) ^
               (static_cast<uint64_t>(id.entity) << 8) ^
               (static_cast<uint64_t>(id.metadata) << 40) ^
               static_cast<uint64_t>(id.kind);
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return static_cast<size_t>(h ^ (h >> 31));
}

}  // namespace fbdetect
