#include "src/tsdb/symbol_table.h"

#include <mutex>

#include "src/common/check.h"

namespace fbdetect {

SymbolTable::SymbolTable() {
  names_.emplace_back();
  index_.emplace(std::string_view(names_.back()), kEmptySymbol);
}

uint32_t SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(mutex_);
  // Another writer may have interned it between the locks.
  const auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const uint32_t symbol = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), symbol);
  return symbol;
}

std::optional<uint32_t> SymbolTable::Find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& SymbolTable::Name(uint32_t symbol) const {
  std::shared_lock lock(mutex_);
  FBD_CHECK(symbol < names_.size());
  return names_[symbol];
}

size_t SymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

}  // namespace fbdetect
