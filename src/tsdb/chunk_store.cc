#include "src/tsdb/chunk_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/check.h"
#include "src/tsdb/durable_io.h"
#include "src/tsdb/wal.h"  // Crc32c

namespace fbdetect {
namespace {

constexpr uint32_t kChunkMagic = 0x4642434B;  // "FBCK"
// magic + crc + id(4*u32) + count + payload_len + bit_count + first + last.
constexpr size_t kRecordHeaderBytes = 4 + 4 + 16 + 4 + 4 + 8 + 8 + 8;
// A payload longer than this is torn garbage, not an allocation request.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " failed for " + path + ": " +
                          std::strerror(errno));
}

template <typename T>
void PutRaw(std::vector<uint8_t>& out, const T& value) {
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T GetRaw(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

ChunkStore::~ChunkStore() {
  for (const Mapping& m : mappings_) {
    ::munmap(m.data, m.size);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status ChunkStore::Open(const std::string& path, const RestoreFn& restore,
                        bool fsync) {
  FBD_CHECK(fd_ < 0);
  path_ = path;
  fsync_ = fsync;
  const int fd = durable_io::Open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open", path);
  }
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  fd_ = fd;
  const uint64_t size = static_cast<uint64_t>(file_size);
  Status mapped = EnsureMapped(size);
  if (!mapped.ok()) {
    return mapped;
  }
  const uint8_t* base =
      mappings_.empty() ? nullptr : mappings_.back().data;
  // Validate records sequentially; stop (and truncate) at the first record
  // whose magic, bounds, or CRC fails — the torn tail of an interrupted
  // persist, not an error.
  uint64_t valid_end = 0;
  while (size - valid_end >= kRecordHeaderBytes) {
    const uint8_t* rec = base + valid_end;
    const uint32_t magic = GetRaw<uint32_t>(rec);
    const uint32_t crc = GetRaw<uint32_t>(rec + 4);
    const uint32_t payload_len = GetRaw<uint32_t>(rec + 28);
    if (magic != kChunkMagic || payload_len > kMaxPayloadBytes ||
        size - valid_end - kRecordHeaderBytes < payload_len) {
      break;
    }
    const size_t record_bytes = kRecordHeaderBytes + payload_len;
    if (Crc32c(rec + 8, record_bytes - 8) != crc) {
      break;
    }
    RestoredChunk chunk;
    chunk.id.service = GetRaw<uint32_t>(rec + 8);
    chunk.id.kind = static_cast<MetricKind>(GetRaw<uint32_t>(rec + 12));
    chunk.id.entity = GetRaw<uint32_t>(rec + 16);
    chunk.id.metadata = GetRaw<uint32_t>(rec + 20);
    chunk.count = GetRaw<uint32_t>(rec + 24);
    chunk.payload_len = payload_len;
    chunk.bit_count = GetRaw<uint64_t>(rec + 32);
    chunk.first = GetRaw<TimePoint>(rec + 40);
    chunk.last = GetRaw<TimePoint>(rec + 48);
    chunk.payload_offset = valid_end + kRecordHeaderBytes;
    ++stats_.restored_chunks;
    if (restore) {
      restore(chunk);
    }
    valid_end += record_bytes;
  }
  stats_.truncated_bytes = size - valid_end;
  if (stats_.truncated_bytes > 0 &&
      ::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    return ErrnoStatus("ftruncate", path);
  }
  append_offset_ = valid_end;
  stats_.file_bytes = valid_end;
  return Status::Ok();
}

Status ChunkStore::Append(const InternedMetricId& id,
                          std::span<const uint8_t> payload, uint64_t bit_count,
                          uint32_t count, TimePoint first, TimePoint last,
                          uint64_t* payload_offset) {
  FBD_CHECK(fd_ >= 0);
  FBD_CHECK(payload.size() <= kMaxPayloadBytes);
  std::vector<uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutRaw<uint32_t>(record, kChunkMagic);
  PutRaw<uint32_t>(record, 0);  // CRC placeholder.
  PutRaw<uint32_t>(record, id.service);
  PutRaw<uint32_t>(record, static_cast<uint32_t>(id.kind));
  PutRaw<uint32_t>(record, id.entity);
  PutRaw<uint32_t>(record, id.metadata);
  PutRaw<uint32_t>(record, count);
  PutRaw<uint32_t>(record, static_cast<uint32_t>(payload.size()));
  PutRaw<uint64_t>(record, bit_count);
  PutRaw<TimePoint>(record, first);
  PutRaw<TimePoint>(record, last);
  record.insert(record.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(record.data() + 8, record.size() - 8);
  std::memcpy(record.data() + 4, &crc, 4);

  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        durable_io::Pwrite(fd_, record.data() + written, record.size() - written,
                           static_cast<off_t>(append_offset_ + written));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pwrite", path_);
    }
    written += static_cast<size_t>(n);
  }
  if (payload_offset != nullptr) {
    *payload_offset = append_offset_ + kRecordHeaderBytes;
  }
  append_offset_ += record.size();
  ++stats_.appends;
  stats_.append_bytes += record.size();
  stats_.file_bytes = append_offset_;
  return Status::Ok();
}

Status ChunkStore::Sync() {
  FBD_CHECK(fd_ >= 0);
  if (fsync_ && durable_io::Fsync(fd_) != 0) {
    return ErrnoStatus("fsync", path_);
  }
  return EnsureMapped(append_offset_);
}

std::span<const uint8_t> ChunkStore::Payload(uint64_t offset, uint32_t len) const {
  FBD_CHECK(fd_ >= 0);
  FBD_CHECK(offset + len <= append_offset_);
  FBD_CHECK(!mappings_.empty());
  const Mapping& mapping = mappings_.back();
  FBD_CHECK(offset + len <= mapping.size);
  return {mapping.data + offset, len};
}

Status ChunkStore::EnsureMapped(uint64_t end) {
  if (end == 0) {
    return Status::Ok();
  }
  if (!mappings_.empty() && mappings_.back().size >= end) {
    return Status::Ok();
  }
  // Round the mapping generously (next power of two, >= 1 MiB) so growth
  // costs O(log file size) remaps. Old mappings are kept — spans handed out
  // earlier must stay valid — so over-rounding also bounds their count.
  uint64_t target = 1u << 20;
  while (target < end) {
    target <<= 1;
  }
  void* data = ::mmap(nullptr, target, PROT_READ, MAP_SHARED, fd_, 0);
  if (data == MAP_FAILED) {
    return ErrnoStatus("mmap", path_);
  }
  mappings_.push_back(Mapping{static_cast<uint8_t*>(data), target});
  ++stats_.remaps;
  return Status::Ok();
}

}  // namespace fbdetect
