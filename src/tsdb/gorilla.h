// Gorilla-style time-series compression (Pelkonen et al., VLDB 2015) — the
// storage format behind Meta's ODS, the production TSDB FBDetect reads from.
//
// Timestamps are delta-of-delta encoded (regular series cost ~1 bit/point);
// values are XOR encoded against the previous value (unchanged values cost
// 1 bit; small mantissa changes cost a dozen bits). At FBDetect's scale
// (~800k series at 10-minute resolution over 10+ day windows) this is the
// difference between fitting in memory and not.
//
// CompressedTimeSeries is an append-only encoder plus a decoder that
// materializes a TimeSeries; the round trip is exact (bit-level) for both
// timestamps and IEEE-754 doubles.
#ifndef FBDETECT_SRC_TSDB_GORILLA_H_
#define FBDETECT_SRC_TSDB_GORILLA_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {

// Append-only bit stream.
class BitWriter {
 public:
  void WriteBit(bool bit);
  // Writes the low `bits` bits of `value`, most significant first.
  void WriteBits(uint64_t value, int bits);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t bit_count() const { return bit_count_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::vector<uint8_t>& bytes, size_t bit_count)
      : bytes_(&bytes), bit_count_(bit_count) {}

  bool ReadBit();
  uint64_t ReadBits(int bits);
  bool AtEnd() const { return position_ >= bit_count_; }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t bit_count_;
  size_t position_ = 0;
};

class CompressedTimeSeries {
 public:
  // Appends a point; timestamps must be strictly increasing.
  void Append(TimePoint timestamp, double value);

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Compressed size in bytes (for compression-ratio accounting).
  size_t byte_size() const { return stream_.bytes().size(); }

  // Decodes the full series. Exact round trip.
  TimeSeries Decode() const;

 private:
  size_t count_ = 0;
  TimePoint first_timestamp_ = 0;
  TimePoint last_timestamp_ = 0;
  Duration last_delta_ = 0;
  uint64_t last_value_bits_ = 0;
  int last_leading_ = -1;   // Leading zero count of the previous XOR block.
  int last_trailing_ = 0;   // Trailing zero count of the previous XOR block.
  BitWriter stream_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_GORILLA_H_
