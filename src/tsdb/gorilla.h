// Gorilla-style time-series compression (Pelkonen et al., VLDB 2015) — the
// storage format behind Meta's ODS, the production TSDB FBDetect reads from.
//
// Timestamps are delta-of-delta encoded (regular series cost ~1 bit/point);
// values are XOR encoded against the previous value (unchanged values cost
// 1 bit; small mantissa changes cost a dozen bits). At FBDetect's scale
// (~800k series at 10-minute resolution over 10+ day windows) this is the
// difference between fitting in memory and not.
//
// CompressedTimeSeries is an append-only encoder plus a decoder that
// materializes a TimeSeries; the round trip is exact (bit-level) for both
// timestamps and IEEE-754 doubles.
#ifndef FBDETECT_SRC_TSDB_GORILLA_H_
#define FBDETECT_SRC_TSDB_GORILLA_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {

// Append-only bit stream.
class BitWriter {
 public:
  BitWriter() = default;
  // Adopts an existing stream (deserialization); `bit_count` must fit in
  // `bytes`, checked in the constructor.
  BitWriter(std::vector<uint8_t> bytes, size_t bit_count);

  void WriteBit(bool bit);
  // Writes the low `bits` bits of `value`, most significant first.
  void WriteBits(uint64_t value, int bits);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t bit_count() const { return bit_count_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

class BitReader {
 public:
  // `bit_count` must fit in `bytes` — checked, so a truncated or corrupted
  // stream fails loudly instead of reading out of bounds.
  BitReader(const std::vector<uint8_t>& bytes, size_t bit_count);

  bool ReadBit();
  uint64_t ReadBits(int bits);
  bool AtEnd() const { return position_ >= bit_count_; }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t bit_count_;
  size_t position_ = 0;
};

// Zero-copy view of an encoded Gorilla stream that lives in storage the view
// does not own — in practice a chunk payload inside a memory-mapped chunk
// file (src/tsdb/chunk_store.h). Decodes through the same two-phase
// FastBitReader + prefix-kernel path as CompressedTimeSeries, reading the
// mapped bytes in place (page-cache-served, no copy into a vector). The view
// is only valid while the underlying bytes are; chunk-file mappings are
// never unmapped before database destruction, which is what makes handing
// these spans to the scan path safe.
class CompressedChunkView {
 public:
  CompressedChunkView(const uint8_t* data, size_t size_bytes, size_t bit_count,
                      size_t count)
      : data_(data), size_bytes_(size_bytes), bit_count_(bit_count), count_(count) {}

  size_t size() const { return count_; }

  // Appends all points to `out` (which must end before this chunk's first
  // timestamp). Same contracts as the CompressedTimeSeries forms: DecodeInto
  // aborts on corruption; TryDecodeInto returns kDataLoss with `out` holding
  // the valid prefix. Mapped storage survived a crash/recovery cycle, so the
  // durable read path always uses the Try form.
  void DecodeInto(TimeSeries& out) const;
  Status TryDecodeInto(TimeSeries& out) const;

 private:
  const uint8_t* data_;
  size_t size_bytes_;
  size_t bit_count_;
  size_t count_;
};

class CompressedTimeSeries {
 public:
  // Appends a point; timestamps must be strictly increasing.
  void Append(TimePoint timestamp, double value);

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Compressed size in bytes (for compression-ratio accounting).
  size_t byte_size() const { return stream_.bytes().size(); }

  // Raw stream parts, the inverse of FromRaw (serialization, tests).
  const std::vector<uint8_t>& bytes() const { return stream_.bytes(); }
  size_t bit_count() const { return stream_.bit_count(); }

  TimePoint first_timestamp() const { return first_timestamp_; }
  TimePoint last_timestamp() const { return last_timestamp_; }

  // Decodes the full series. Exact round trip.
  TimeSeries Decode() const;

  // Appends all points to `out` (which must end before first_timestamp()).
  // The scratch-reuse form of Decode() for the tiered scan path. Decoding a
  // truncated stream aborts via FBD_CHECK rather than reading past the end.
  void DecodeInto(TimeSeries& out) const;

  // Recoverable decode for untrusted streams (deserialized storage, fuzzing,
  // fault injection): every bit read is bounds-checked, XOR block shapes are
  // validated, timestamp arithmetic is overflow-safe, and decoded timestamps
  // must be strictly increasing. Returns kDataLoss (with `out` possibly
  // holding a valid prefix) instead of aborting or reading out of bounds.
  Status TryDecodeInto(TimeSeries& out) const;

  // Reconstructs a chunk from raw stream parts, e.g. deserialized storage.
  // Checks that `bit_count` fits in `bytes`; a stream that still understates
  // the data for `count` points fails loudly at Decode time.
  static CompressedTimeSeries FromRaw(std::vector<uint8_t> bytes, size_t bit_count,
                                      size_t count);

 private:
  // Two-phase batch decode backing both DecodeInto (checked = false: any
  // corruption aborts) and TryDecodeInto (checked = true: corruption is a
  // kDataLoss status and `out` keeps the valid prefix).
  Status DecodeCore(TimeSeries& out, bool checked) const;
  size_t count_ = 0;
  TimePoint first_timestamp_ = 0;
  TimePoint last_timestamp_ = 0;
  Duration last_delta_ = 0;
  uint64_t last_value_bits_ = 0;
  int last_leading_ = -1;   // Leading zero count of the previous XOR block.
  int last_trailing_ = 0;   // Trailing zero count of the previous XOR block.
  BitWriter stream_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_GORILLA_H_
